// Wall-clock timing and deadline helpers.
#ifndef TDLIB_UTIL_TIMER_H_
#define TDLIB_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace tdlib {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline: Expired() becomes true once the budget elapses.
/// A non-positive budget means "no deadline".
///
/// Thread-safe for concurrent Expired() calls: both members are immutable
/// after construction and each call reads the monotonic clock afresh. The
/// chase shares one Deadline across all of a pass's parallel match tasks.
class Deadline {
 public:
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  bool Expired() const {
    return budget_ > 0 && timer_.ElapsedSeconds() >= budget_;
  }

 private:
  double budget_;
  Timer timer_;
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_TIMER_H_
