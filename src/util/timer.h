// Wall-clock timing and deadline helpers.
#ifndef TDLIB_UTIL_TIMER_H_
#define TDLIB_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

#include "util/fault.h"

namespace tdlib {

/// Nanosecond-tick stopwatch on the steady clock. The single timing
/// primitive of the library: Timer, Deadline, trace spans (util/trace_span)
/// and the phase instrumentation all read the clock through StopWatch::Now()
/// instead of ad-hoc Clock::now() pairs, so "what clock and what unit" is
/// decided in exactly one place.
class StopWatch {
 public:
  StopWatch() : start_(Now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Now(); }

  /// Nanoseconds on the steady clock since an arbitrary fixed epoch.
  static std::int64_t Now() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Elapsed ticks since construction/Reset.
  std::int64_t ElapsedNanos() const { return Now() - start_; }
  std::int64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// The tick the stopwatch was started at (for span records).
  std::int64_t start_nanos() const { return start_; }

 private:
  std::int64_t start_;
};

/// RAII accumulator: adds the scope's elapsed seconds to *sink on
/// destruction. The unit of the chase's phase breakdown and of bench
/// sections that used to hand-roll Clock::now() pairs.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += watch_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  StopWatch watch_;
};

/// Monotonic stopwatch (seconds/micros view over StopWatch).
class Timer {
 public:
  Timer() = default;

  /// Restarts the stopwatch.
  void Reset() { watch_.Reset(); }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }

  /// Elapsed time in microseconds.
  std::int64_t ElapsedMicros() const { return watch_.ElapsedMicros(); }

 private:
  StopWatch watch_;
};

/// A soft deadline: Expired() becomes true once the budget elapses.
/// A non-positive budget means "no deadline".
///
/// Thread-safe for concurrent Expired() calls: both members are immutable
/// after construction and each call reads the monotonic clock afresh. The
/// chase shares one Deadline across all of a pass's parallel match tasks.
class Deadline {
 public:
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  bool Expired() const {
    // FaultSite::kDeadline forces expiry mid-search — even on a deadline-
    // free run — so the kTimeout paths are testable without wall-clock
    // races. Off (the default), the gate is one relaxed load.
    if (FaultInjectionEnabled() && ShouldInject(FaultSite::kDeadline)) {
      return true;
    }
    return budget_ > 0 && timer_.ElapsedSeconds() >= budget_;
  }

 private:
  double budget_;
  Timer timer_;
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_TIMER_H_
