// Scoped tracing: per-job phase spans into a bounded ring buffer.
//
// A TraceSpan times one phase of work (a chase pass's match phase, a job's
// on-worker run, a solver escalation round) on the steady clock and records
// a TraceEvent when it closes. Spans nest naturally — a thread-local depth
// counter stamps each event with its nesting level, and a thread-local
// "current job" id (set by TraceJobScope at the top of a job) scopes every
// span under the job that produced it, even though the phases themselves
// never pass a job id around.
//
// The recording side mirrors util/metrics' discipline: gated on one relaxed
// atomic bool (a disabled span reads no clock and touches no shared state),
// zero allocation (events are PODs whose names are static string literals;
// the ring buffer is preallocated), and strictly write-only from the hot
// path — nothing the solver computes ever depends on what was recorded, so
// tracing on vs. off is byte-identical by construction (ctest-enforced).
//
// The buffer is a bounded ring: when full, the oldest events fall off and
// Dropped() counts them. WriteChromeTrace() dumps the surviving window as
// Chrome trace_event JSON ("ph":"X" complete events) loadable in
// chrome://tracing or Perfetto.
#ifndef TDLIB_UTIL_TRACE_SPAN_H_
#define TDLIB_UTIL_TRACE_SPAN_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace tdlib {

/// Global tracing switch, independent of the metrics switch. Default OFF.
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// One closed span. POD: `name` must be a static string literal (spans
/// never own their names — that is what keeps recording allocation-free).
struct TraceEvent {
  const char* name = "";
  std::uint64_t job = 0;      ///< job id from the enclosing TraceJobScope
  std::int64_t start_ns = 0;  ///< steady-clock tick the span opened at
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;      ///< small dense id of the recording thread
  std::uint16_t depth = 0;    ///< nesting level within the thread
};

/// Bounded MPSC-ish ring of TraceEvents. A mutex guards the ring: spans
/// close at phase granularity (thousands per second, not millions), so a
/// short critical section is cheaper to reason about than a lock-free slot
/// scheme and keeps the type TSan-clean.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 16);

  void Record(const TraceEvent& event);

  /// Surviving events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Total Record() calls and how many fell off the ring.
  std::uint64_t TotalRecorded() const;
  std::uint64_t Dropped() const;

  void Clear();

  /// Chrome trace_event JSON: {"traceEvents":[...]}. Timestamps are
  /// microseconds relative to the oldest surviving event.
  void WriteChromeTrace(std::ostream& out) const;

  std::size_t capacity() const { return capacity_; }

  /// The process-wide buffer TraceSpan records into.
  static TraceBuffer& Global();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;  // ring_[total_ % capacity_] is the next slot
};

/// Scopes every span on this thread under one job id (restores the previous
/// id on destruction, so nested scopes and reused worker threads behave).
class TraceJobScope {
 public:
  explicit TraceJobScope(std::uint64_t job_id);
  ~TraceJobScope();

  TraceJobScope(const TraceJobScope&) = delete;
  TraceJobScope& operator=(const TraceJobScope&) = delete;

 private:
  std::uint64_t saved_;
};

/// The job id spans on this thread currently record under (0 = none).
std::uint64_t CurrentTraceJob();

/// RAII span. Arms only if TracingEnabled() at construction; a disarmed
/// span's destructor is a single branch.
class TraceSpan {
 public:
  /// `name` must be a static string literal.
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::int64_t start_ns_;
  std::uint16_t depth_;
  bool armed_;
};

/// Records a pre-timed event (e.g. a queue-wait measured across threads,
/// where RAII scoping is impossible). No-op unless TracingEnabled().
void RecordTraceEvent(const char* name, std::uint64_t job,
                      std::int64_t start_ns, std::int64_t dur_ns);

}  // namespace tdlib

#endif  // TDLIB_UTIL_TRACE_SPAN_H_
