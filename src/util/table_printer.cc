#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

namespace tdlib {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::size_t cols = headers_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      os << cell << std::string(width[c] - cell.size(), ' ');
      os << (c + 1 == cols ? "\n" : "  ");
    }
  };
  print_row(headers_);
  for (std::size_t c = 0; c < cols; ++c) {
    os << std::string(width[c], '-') << (c + 1 == cols ? "\n" : "  ");
  }
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace tdlib
