// Deterministic, seedable pseudo-random generator for tests and benches.
#ifndef TDLIB_UTIL_RNG_H_
#define TDLIB_UTIL_RNG_H_

#include <atomic>
#include <cstdint>

#ifndef NDEBUG
#include <cassert>
#endif

namespace tdlib {

/// xoshiro256** — small, fast, reproducible across platforms.
///
/// tdlib never uses std::mt19937 for workload generation because workload
/// reproducibility across standard libraries matters for the benchmark
/// harness (EXPERIMENTS.md records seeds).
///
/// Thread-safety: an Rng is owned by exactly one thread at a time —
/// Next() mutates unguarded state, and a lock here would tax every draw on
/// the generator hot path for a sharing pattern tdlib never needs.
/// Concurrent code derives one Rng per job/thread from a master seed
/// instead of sharing a generator (see engine/workload.cc, which seeds
/// each job as `seed ^ mix(index)`), keeping batches reproducible
/// regardless of scheduling. Handing a generator from one thread to
/// another between draws is fine. NDEBUG-off builds detect overlapping
/// draws from two threads with an in-use flag and assert.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      s = t ^ (t >> 31);
    }
  }

  /// Copying clones the generator state (the copy replays the original's
  /// future draws) and resets the debug in-use flag, keeping Rng copyable
  /// in Debug builds despite the atomic member.
  Rng(const Rng& other) { CopyState(other); }
  Rng& operator=(const Rng& other) {
    CopyState(other);
    return *this;
  }

  /// Uniform 64-bit value. Precondition: no concurrent call on the same
  /// instance (see the thread-safety note above).
  std::uint64_t Next() {
    DebugUseGuard guard(this);
    std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Precondition: bound > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform int in [lo, hi] inclusive. Precondition: lo <= hi.
  int IntIn(int lo, int hi) {
    return lo + static_cast<int>(Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability num/den.
  bool Chance(std::uint64_t num, std::uint64_t den) { return Below(den) < num; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  void CopyState(const Rng& other) {
    for (int i = 0; i < 4; ++i) state_[i] = other.state_[i];
  }

#ifndef NDEBUG
  // Trips when two threads are inside Next() at once; sequential handoff
  // between threads never sets the flag across a draw boundary.
  struct DebugUseGuard {
    explicit DebugUseGuard(Rng* rng) : rng_(rng) {
      assert(!rng_->in_use_.exchange(true, std::memory_order_acquire) &&
             "concurrent Rng use; derive one Rng per thread from a master "
             "seed (see util/rng.h)");
    }
    ~DebugUseGuard() { rng_->in_use_.store(false, std::memory_order_release); }
    Rng* rng_;
  };
#else
  struct DebugUseGuard {
    explicit DebugUseGuard(Rng*) {}
  };
#endif

  // Present in every build mode so Rng's layout does not depend on NDEBUG
  // (a Release library serving a Debug client would otherwise read state_
  // at the wrong offsets). Release builds never touch it.
  std::atomic<bool> in_use_{false};

  std::uint64_t state_[4];
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_RNG_H_
