// Deterministic, seedable pseudo-random generator for tests and benches.
#ifndef TDLIB_UTIL_RNG_H_
#define TDLIB_UTIL_RNG_H_

#include <cstdint>

namespace tdlib {

/// xoshiro256** — small, fast, reproducible across platforms.
///
/// tdlib never uses std::mt19937 for workload generation because workload
/// reproducibility across standard libraries matters for the benchmark
/// harness (EXPERIMENTS.md records seeds).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      s = t ^ (t >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t Next() {
    std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Precondition: bound > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform int in [lo, hi] inclusive. Precondition: lo <= hi.
  int IntIn(int lo, int hi) {
    return lo + static_cast<int>(Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability num/den.
  bool Chance(std::uint64_t num, std::uint64_t den) { return Below(den) < num; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_RNG_H_
