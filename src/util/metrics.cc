#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace tdlib {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Exact decimal rendering of an integer nanosecond quantity as seconds:
/// "0.0025", "1", "12.5". Both export formats use this so bucket bounds and
/// sums never pick up float-formatting noise.
std::string NanosAsSeconds(std::int64_t ns) {
  bool negative = ns < 0;
  if (negative) ns = -ns;
  std::int64_t whole = ns / 1000000000;
  std::int64_t frac = ns % 1000000000;
  std::ostringstream oss;
  if (negative) oss << '-';
  oss << whole;
  if (frac != 0) {
    char digits[10];
    std::snprintf(digits, sizeof(digits), "%09lld",
                  static_cast<long long>(frac));
    int len = 9;
    while (len > 0 && digits[len - 1] == '0') --len;
    oss << '.';
    oss.write(digits, len);
  }
  return oss.str();
}

std::int64_t SecondsToNanos(double seconds) {
  double ns = seconds * 1e9;
  if (!(ns > 0)) return 0;  // negatives and NaN clamp to zero
  if (ns >= 9.2e18) return INT64_MAX;
  return static_cast<std::int64_t>(std::llround(ns));
}

/// Minimal JSON string escaping (metric names are plain identifiers, but
/// exports should be valid JSON for arbitrary names anyway).
void AppendJsonString(std::ostringstream& oss, const std::string& s) {
  oss << '"';
  for (char c : s) {
    switch (c) {
      case '"': oss << "\\\""; break;
      case '\\': oss << "\\\\"; break;
      case '\n': oss << "\\n"; break;
      case '\t': oss << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          oss << buf;
        } else {
          oss << c;
        }
    }
  }
  oss << '"';
}

/// Prometheus metric names use underscores, not dots.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace metrics_internal {

int ThisThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local int slot =
      static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                       static_cast<unsigned>(kShards));
  return slot;
}

}  // namespace metrics_internal

std::int64_t Counter::Value() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (cumulative.size() != other.cumulative.size()) return;
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    cumulative[i] += other.cumulative[i];
  }
  count += other.count;
  sum_ns += other.sum_ns;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(metrics_internal::kShards) {
  bounds_ns_.reserve(bounds_.size());
  for (double b : bounds_) bounds_ns_.push_back(SecondsToNanos(b));
  for (auto& shard : shards_) {
    shard.buckets = std::vector<std::atomic<std::int64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double seconds) {
  if (!MetricsEnabled()) return;
  std::int64_t ns = SecondsToNanos(seconds);
  // First bucket whose bound is >= the observation (+Inf bucket at the end).
  std::size_t idx = std::lower_bound(bounds_ns_.begin(), bounds_ns_.end(), ns) -
                    bounds_ns_.begin();
  Shard& shard = shards_[metrics_internal::ThisThreadShard()];
  shard.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  shard.sum_ns.fetch_add(ns, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  std::vector<std::int64_t> per_bucket(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < per_bucket.size(); ++i) {
      per_bucket[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum_ns += shard.sum_ns.load(std::memory_order_relaxed);
  }
  snap.cumulative.resize(bounds_.size());
  std::int64_t running = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    running += per_bucket[i];
    snap.cumulative[i] = running;
  }
  snap.count = running + per_bucket.back();
  return snap;
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum_ns.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> LatencyBuckets() {
  // 1 / 2.5 / 5 per decade, 1µs .. 10s. Every bound is a round nanosecond
  // count, so exports print exact decimals.
  return {0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
          0.0001,   0.00025,   0.0005,   0.001,   0.0025,   0.005,
          0.01,     0.025,     0.05,     0.1,     0.25,     0.5,
          1.0,      2.5,       5.0,      10.0};
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream oss;
  oss << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) oss << ',';
    first = false;
    AppendJsonString(oss, name);
    oss << ':' << value;
  }
  oss << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) oss << ',';
    first = false;
    AppendJsonString(oss, name);
    oss << ':' << value;
  }
  oss << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) oss << ',';
    first = false;
    AppendJsonString(oss, name);
    oss << ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) oss << ',';
      oss << NanosAsSeconds(SecondsToNanos(h.bounds[i]));
    }
    oss << "],\"cumulative\":[";
    for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
      if (i) oss << ',';
      oss << h.cumulative[i];
    }
    oss << "],\"count\":" << h.count
        << ",\"sum_seconds\":" << NanosAsSeconds(h.sum_ns) << '}';
  }
  oss << "}}";
  return oss.str();
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::ostringstream oss;
  for (const auto& [name, value] : counters) {
    std::string pname = PrometheusName(name);
    oss << "# TYPE " << pname << " counter\n";
    oss << pname << ' ' << value << '\n';
  }
  for (const auto& [name, value] : gauges) {
    std::string pname = PrometheusName(name);
    oss << "# TYPE " << pname << " gauge\n";
    oss << pname << ' ' << value << '\n';
  }
  for (const auto& [name, h] : histograms) {
    std::string pname = PrometheusName(name);
    oss << "# TYPE " << pname << " histogram\n";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      oss << pname << "_bucket{le=\""
          << NanosAsSeconds(SecondsToNanos(h.bounds[i])) << "\"} "
          << h.cumulative[i] << '\n';
    }
    oss << pname << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    oss << pname << "_sum " << NanosAsSeconds(h.sum_ns) << '\n';
    oss << pname << "_count " << h.count << '\n';
  }
  return oss.str();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace tdlib
