#include "util/csv_writer.h"

namespace tdlib {

CsvWriter::CsvWriter(std::ostream& os, const std::vector<std::string>& header)
    : os_(os) {
  WriteRow(header);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << Escape(cells[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace tdlib
