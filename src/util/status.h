// Minimal Result<T> for fallible operations (parsers, builders).
#ifndef TDLIB_UTIL_STATUS_H_
#define TDLIB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace tdlib {

/// Machine-readable failure class. The message says what went wrong; the
/// code says what KIND of wrong, so callers (tdbatch's exit codes, the fuzz
/// harness's corrupt-input checks) can branch without parsing prose.
enum class ErrorCode {
  kUnknown = 0,      ///< unclassified (legacy Error(string) callers)
  kInvalidArgument,  ///< bad parameter or flag value
  kNotFound,         ///< missing/unreadable file or named entity
  kParseError,       ///< malformed source text (TD programs)
  kCorrupt,          ///< malformed serialized state (stores, checkpoints)
  kResourceExhausted,///< a budget, queue bound or allocation gave out
  kUnavailable,      ///< the target exists but cannot serve right now
};

inline std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknown: return "unknown";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kParseError: return "parse-error";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kResourceExhausted: return "resource-exhausted";
    case ErrorCode::kUnavailable: return "unavailable";
  }
  return "?";
}

/// Either a value or an error message. tdlib avoids exceptions (matching the
/// style of the database codebases this library is modeled on); fallible
/// functions return Result<T> and hot-path invariants use assertions.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Named constructor for errors.
  static Result Error(std::string message) {
    return Error(ErrorCode::kUnknown, std::move(message));
  }

  /// Typed-error constructor.
  static Result Error(ErrorCode code, std::string message) {
    Result r;
    r.code_ = code;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  const std::string& error() const { return error_; }

  /// kUnknown on success or for untyped errors.
  ErrorCode code() const { return code_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

 private:
  Result() = default;
  std::optional<T> value_;
  std::string error_;
  ErrorCode code_ = ErrorCode::kUnknown;
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_STATUS_H_
