// Minimal Result<T> for fallible operations (parsers, builders).
#ifndef TDLIB_UTIL_STATUS_H_
#define TDLIB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace tdlib {

/// Either a value or an error message. tdlib avoids exceptions (matching the
/// style of the database codebases this library is modeled on); fallible
/// functions return Result<T> and hot-path invariants use assertions.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Named constructor for errors.
  static Result Error(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  const std::string& error() const { return error_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

 private:
  Result() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_STATUS_H_
