// Small string helpers shared by parsers and printers.
#ifndef TDLIB_UTIL_STRINGS_H_
#define TDLIB_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tdlib {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` at every occurrence of `sep` (single character), trimming
/// ASCII whitespace from each piece. Empty pieces are preserved.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Returns true if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace tdlib

#endif  // TDLIB_UTIL_STRINGS_H_
