#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>

namespace tdlib {

void ParallelFor(TaskExecutor* pool, std::size_t n,
                 std::function<void(std::size_t)> fn, int priority) {
  if (n == 0) return;
  if (pool == nullptr || n == 1 || pool->num_threads() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared by the caller and every helper thunk. Heap-allocated because a
  // helper may be dequeued *after* the caller has returned (all indices
  // were claimed by faster threads); such a stale helper must still be able
  // to read `next`, see the cursor exhausted, and exit without touching
  // anything stack-bound. fn lives here for the same reason — though a
  // stale helper never actually invokes it (the cursor check comes first).
  struct State {
    std::function<void(std::size_t)> fn;
    std::size_t n;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->fn = std::move(fn);
  state->n = n;

  auto drain = [](const std::shared_ptr<State>& s) {
    for (;;) {
      std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) return;
      s->fn(i);
      // acq_rel keeps the RMW chain a release sequence: the waiter's
      // acquire load of the final count synchronizes with every task's
      // writes, not just the last one's.
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        std::lock_guard<std::mutex> lock(s->mu);  // pairs with the cv wait
        s->cv.notify_all();
      }
    }
  };

  const std::size_t width = static_cast<std::size_t>(pool->num_threads());
  std::size_t helpers = std::min(n - 1, width);
  if (pool->QueueDepth() >= width) helpers = 0;  // saturated: don't pile on
  for (std::size_t h = 0; h < helpers; ++h) {
    // A refused submission (pool shutting down) is fine: the caller's own
    // drain below completes every unclaimed index.
    if (!pool->Submit([state, drain] { drain(state); }, priority)) break;
  }

  drain(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
}

}  // namespace tdlib
