#include "util/fault.h"

#include <cstdio>
#include <cstdlib>

#include "util/metrics.h"

namespace tdlib {
namespace {

// arm_at semantics: 0 = disarmed, kAlways = fire on every evaluation,
// anything else = fire when the evaluation counter reaches that value.
constexpr std::uint64_t kAlways = ~std::uint64_t{0};

struct SiteState {
  std::atomic<std::uint64_t> evals{0};
  std::atomic<std::uint64_t> arm_at{0};
  std::atomic<std::uint64_t> injected{0};
};

SiteState g_sites[kNumFaultSites];
std::atomic<bool> g_enabled{false};

SiteState& State(FaultSite site) { return g_sites[static_cast<int>(site)]; }

// Site names double as the TDLIB_FAULT vocabulary and the metrics suffix.
constexpr std::string_view kSiteNames[kNumFaultSites] = {
    "chase-alloc",       "cancel-queue",  "cancel-match",
    "cancel-fire",       "cancel-checkpoint", "cancel-resume",
    "deadline",          "checkpoint-corrupt", "fire-order-flip",
    "cluster.socket-read", "cluster.socket-write", "cluster.frame-corrupt",
};

// Injection counters are registered lazily (the registry allocates per
// name), and only the sites that actually fire appear in a snapshot.
Counter* InjectionCounter(FaultSite site) {
  static Counter* counters[kNumFaultSites] = {};
  const int i = static_cast<int>(site);
  if (counters[i] == nullptr) {
    counters[i] = MetricsRegistry::Global().GetCounter(
        "fault.injected." + std::string(kSiteNames[i]));
  }
  return counters[i];
}

}  // namespace

bool FaultInjectionEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void ArmFault(FaultSite site, std::uint64_t nth) {
  if (nth == 0) nth = 1;
  SiteState& s = State(site);
  // Count from "now": nth is relative to the arming point, so a test can
  // re-arm the same site without tracking historical evaluation totals.
  s.arm_at.store(s.evals.load(std::memory_order_relaxed) + nth,
                 std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void ArmFaultAlways(FaultSite site) {
  State(site).arm_at.store(kAlways, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void DisarmFault(FaultSite site) {
  State(site).arm_at.store(0, std::memory_order_relaxed);
}

void DisarmAllFaults() {
  for (SiteState& s : g_sites) {
    s.arm_at.store(0, std::memory_order_relaxed);
    s.evals.store(0, std::memory_order_relaxed);
    s.injected.store(0, std::memory_order_relaxed);
  }
  g_enabled.store(false, std::memory_order_relaxed);
}

bool ShouldInject(FaultSite site) {
  SiteState& s = State(site);
  const std::uint64_t arm = s.arm_at.load(std::memory_order_relaxed);
  if (arm == 0) return false;
  const std::uint64_t eval =
      s.evals.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire;
  if (arm == kAlways) {
    fire = true;
  } else {
    fire = eval == arm;
    // One-shot: exactly-once even if two threads race past the same count
    // (fetch_add hands out distinct eval values, so only one matches).
    if (fire) s.arm_at.store(0, std::memory_order_relaxed);
  }
  if (fire) {
    s.injected.fetch_add(1, std::memory_order_relaxed);
    // The metrics counter is itself gated on MetricsEnabled(); injection
    // accounting in --metrics output only exists when metrics are on.
    InjectionCounter(site)->Add(1);
  }
  return fire;
}

std::uint64_t FaultInjectionCount(FaultSite site) {
  return State(site).injected.load(std::memory_order_relaxed);
}

std::string_view FaultSiteName(FaultSite site) {
  return kSiteNames[static_cast<int>(site)];
}

std::optional<FaultSite> FaultSiteFromName(std::string_view name) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (kSiteNames[i] == name) return static_cast<FaultSite>(i);
  }
  return std::nullopt;
}

bool ArmFaultsFromSpec(std::string_view spec, std::string* error) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    std::string_view name = entry;
    std::uint64_t nth = 0;  // 0 = always
    const std::size_t colon = entry.find(':');
    if (colon != std::string_view::npos) {
      name = entry.substr(0, colon);
      std::string_view count = entry.substr(colon + 1);
      nth = 0;
      if (count.empty()) {
        if (error != nullptr) *error = "empty count in '" + std::string(entry) + "'";
        return false;
      }
      for (char c : count) {
        if (c < '0' || c > '9') {
          if (error != nullptr) {
            *error = "bad count in '" + std::string(entry) + "'";
          }
          return false;
        }
        nth = nth * 10 + static_cast<std::uint64_t>(c - '0');
      }
      if (nth == 0) {
        if (error != nullptr) *error = "count must be >= 1 in '" +
                                       std::string(entry) + "'";
        return false;
      }
    }
    std::optional<FaultSite> site = FaultSiteFromName(name);
    if (!site.has_value()) {
      if (error != nullptr) *error = "unknown fault site '" +
                                     std::string(name) + "'";
      return false;
    }
    if (nth == 0) {
      ArmFaultAlways(*site);
    } else {
      ArmFault(*site, nth);
    }
  }
  return true;
}

void ArmFaultsFromEnv() {
  const char* spec = std::getenv("TDLIB_FAULT");
  if (spec == nullptr || spec[0] == '\0') return;
  std::string error;
  if (!ArmFaultsFromSpec(spec, &error)) {
    std::fprintf(stderr, "TDLIB_FAULT ignored: %s\n", error.c_str());
  }
}

void CorruptBytes(std::string* bytes, std::uint64_t seed) {
  if (bytes->empty()) return;
  // splitmix64: one multiply-xor round is plenty to decorrelate adjacent
  // seeds, and the corruption stays a pure function of (bytes size, seed).
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  if (seed % 2 == 0) {
    bytes->resize(z % bytes->size());  // truncation, possibly to empty
  } else {
    const std::size_t byte = static_cast<std::size_t>(z % bytes->size());
    (*bytes)[byte] = static_cast<char>(
        (*bytes)[byte] ^ static_cast<char>(1 << ((z >> 8) % 8)));
  }
}

void MaybeCorruptCheckpointBytes(std::string* bytes, std::uint64_t seed) {
  if (!FaultInjectionEnabled()) return;
  if (!ShouldInject(FaultSite::kCheckpointCorrupt)) return;
  CorruptBytes(bytes, seed);
}

}  // namespace tdlib
