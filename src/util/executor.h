// TaskExecutor: the minimal task-submission interface the lower layers see.
//
// The chase (src/chase/) wants to fan its per-pass match tasks out on the
// engine's thread pool, but the engine layer sits *above* the chase in the
// dependency order (engine -> chase -> logic -> util). This interface breaks
// the cycle: ThreadPool (engine) implements it, ChaseConfig (chase) holds a
// pointer to it, and neither layer includes the other's headers.
//
// Implementations must be thread-safe: Submit, num_threads and QueueDepth
// may be called concurrently from any thread, including from inside a task
// running on the executor itself (nested submission). An executor may reject
// a submission (e.g. during shutdown) by returning false; callers must then
// run the task themselves or drop it — util/parallel.h's ParallelFor does
// the former, which is what makes nested fan-out deadlock-free.
#ifndef TDLIB_UTIL_EXECUTOR_H_
#define TDLIB_UTIL_EXECUTOR_H_

#include <cstddef>
#include <functional>

namespace tdlib {

/// Abstract task submission target (implemented by engine/ThreadPool).
class TaskExecutor {
 public:
  virtual ~TaskExecutor() = default;

  /// Enqueues a task; higher `priority` runs first. Returns false iff the
  /// executor refuses the task (it will then never run).
  virtual bool Submit(std::function<void()> task, int priority) = 0;

  /// Number of worker threads (the executor's maximum useful parallelism).
  virtual int num_threads() const = 0;

  /// Tasks queued but not yet picked up; a congestion signal for callers
  /// deciding whether nested fan-out would help or just churn the queue.
  virtual std::size_t QueueDepth() const = 0;
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_EXECUTOR_H_
