// Disjoint-set forest with union by rank and path compression.
//
// Used throughout tdlib to compute the equivalence closures that the paper's
// diagram notation relies on: "each type of edge label represents an
// equivalence relation; implied edges may be omitted in diagrams".
#ifndef TDLIB_UTIL_UNION_FIND_H_
#define TDLIB_UTIL_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace tdlib {

/// Disjoint-set forest over the integers [0, size).
///
/// All operations are amortized near-constant time. The structure can grow
/// (`AddElement`) but never shrinks.
class UnionFind {
 public:
  UnionFind() = default;

  /// Creates a forest of `size` singleton sets {0}, {1}, ..., {size-1}.
  explicit UnionFind(std::size_t size);

  /// Appends a new singleton set and returns its element id.
  int AddElement();

  /// Returns the canonical representative of `x`'s set (with path
  /// compression, hence non-const).
  int Find(int x);

  /// Merges the sets containing `a` and `b`. Returns true if they were
  /// previously distinct.
  bool Union(int a, int b);

  /// Returns true iff `a` and `b` are in the same set.
  bool Connected(int a, int b) { return Find(a) == Find(b); }

  /// Number of elements in the forest.
  std::size_t size() const { return parent_.size(); }

  /// Number of distinct sets.
  std::size_t num_sets() const { return num_sets_; }

  /// Returns a dense relabeling: result[x] is an id in [0, num_sets) that is
  /// equal for x, y iff Connected(x, y). Ids are assigned in order of first
  /// appearance, which makes the labeling deterministic.
  std::vector<int> DenseClassIds();

 private:
  std::vector<int> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t num_sets_ = 0;
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_UNION_FIND_H_
