#include "util/union_find.h"

#include <numeric>

namespace tdlib {

UnionFind::UnionFind(std::size_t size)
    : parent_(size), rank_(size, 0), num_sets_(size) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

int UnionFind::AddElement() {
  int id = static_cast<int>(parent_.size());
  parent_.push_back(id);
  rank_.push_back(0);
  ++num_sets_;
  return id;
}

int UnionFind::Find(int x) {
  int root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    int next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return true;
}

std::vector<int> UnionFind::DenseClassIds() {
  std::vector<int> ids(parent_.size(), -1);
  std::vector<int> root_to_id(parent_.size(), -1);
  int next = 0;
  for (std::size_t x = 0; x < parent_.size(); ++x) {
    int r = Find(static_cast<int>(x));
    if (root_to_id[r] < 0) root_to_id[r] = next++;
    ids[x] = root_to_id[r];
  }
  return ids;
}

}  // namespace tdlib
