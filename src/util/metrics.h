// Process-wide metrics: named counters, gauges and latency histograms.
//
// Design constraints, in order:
//   1. Non-perturbing. Instrumentation must never change what the solver
//      computes: metric writes are pure sinks (nothing reads them back on
//      the hot path) and the whole layer is gated on one relaxed atomic
//      bool, so "metrics off" costs one predictable branch per call site.
//      The byte-parity tests in tests/metrics_test.cc enforce that enabling
//      metrics leaves instances, traces and deterministic counters
//      byte-identical at every thread count.
//   2. Lock-free hot path. A Counter/Histogram spreads its writes over
//      kShards cache-line-padded atomic cells indexed by a thread-local
//      shard slot (round-robin per thread creation), so concurrent writers
//      from the engine pool do not bounce one cache line. Reads (Value(),
//      Snapshot()) sum the shards — explicitly, at export time, never on
//      the hot path.
//   3. Zero allocation after registration. Counter/Gauge/Histogram lookup
//      happens once per call site (function-local static pointer into the
//      registry); Add/Observe touch only preallocated cells. Registry
//      pointers are stable for the process lifetime.
//   4. Exact, associative aggregation. Histogram sums are kept as integer
//      nanoseconds, so merging per-shard (or per-process) snapshots is
//      associative to the bit and the export goldens are deterministic.
//
// Exports: MetricsRegistry::Snapshot() -> MetricsSnapshot, which renders as
// a JSON object (ToJson) or Prometheus text exposition v0.0.4
// (ToPrometheus). Names are sorted, bucket bounds print as exact decimals
// (they are stored as round nanosecond values), so both forms are stable
// enough for golden tests.
#ifndef TDLIB_UTIL_METRICS_H_
#define TDLIB_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tdlib {

/// Global instrumentation switch. Default OFF: a disabled Counter::Add is a
/// relaxed load + branch and nothing else. tdbatch's --metrics flag and the
/// tests flip it explicitly.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace metrics_internal {

/// Shard count for write-spreading. Power of two, sized for "more shards
/// than typical engine threads" without bloating every metric.
constexpr int kShards = 16;

/// One cache line per cell so two shards never false-share.
struct alignas(64) ShardCell {
  std::atomic<std::int64_t> value{0};
};

/// The calling thread's fixed shard slot in [0, kShards). Assigned
/// round-robin at first use per thread.
int ThisThreadShard();

}  // namespace metrics_internal

/// Monotonically increasing count, sharded for concurrent writers.
class Counter {
 public:
  /// No-op unless MetricsEnabled().
  void Add(std::int64_t n = 1) {
    if (!MetricsEnabled()) return;
    shards_[metrics_internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over all shards (export-time read).
  std::int64_t Value() const;

  /// Zeroes every shard (test isolation; not for concurrent use with Add).
  void Reset();

 private:
  metrics_internal::ShardCell shards_[metrics_internal::kShards];
};

/// Instantaneous level (queue depth, in-flight jobs). Single atomic cell:
/// gauges move on control-path events, not per-tuple work, so sharding
/// would only complicate the read.
class Gauge {
 public:
  void Set(std::int64_t v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t n) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Mergeable point-in-time view of one histogram. `cumulative[i]` counts
/// observations <= bounds[i] (Prometheus "le" convention); `count` includes
/// the implicit +Inf bucket; `sum_ns` is the exact integer-nanosecond total
/// of all observations, which is what makes MergeFrom associative.
struct HistogramSnapshot {
  std::vector<double> bounds;        ///< ascending upper bounds, seconds
  std::vector<std::int64_t> cumulative;
  std::int64_t count = 0;
  std::int64_t sum_ns = 0;

  /// Element-wise accumulate; `other` must have identical bounds.
  void MergeFrom(const HistogramSnapshot& other);
};

/// Fixed-bucket latency histogram (seconds in, integer nanoseconds stored).
class Histogram {
 public:
  /// `bounds` are ascending bucket upper bounds in seconds; an implicit
  /// +Inf bucket catches the rest. Bounds are frozen at construction.
  explicit Histogram(std::vector<double> bounds);

  /// Records one latency. No-op unless MetricsEnabled().
  void Observe(double seconds);

  HistogramSnapshot Snapshot() const;
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::int64_t>> buckets;  // bounds + 1 (+Inf)
    std::atomic<std::int64_t> sum_ns{0};
  };

  std::vector<double> bounds_;
  std::vector<std::int64_t> bounds_ns_;  // exact integer comparison key
  std::vector<Shard> shards_;
};

/// The default latency ladder: a 1 / 2.5 / 5 decade ladder from 1µs to 10s.
/// All bounds are exact in nanoseconds, so exports print clean decimals.
std::vector<double> LatencyBuckets();

/// Everything a registry knew at one instant. Counters/gauges/histograms
/// are name-sorted maps, so iteration (and therefore export text) is
/// deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  /// Prometheus text exposition (TYPE comments, _bucket/_sum/_count series).
  std::string ToPrometheus() const;
};

/// Owner of all metric objects. GetCounter/GetGauge/GetHistogram return
/// stable pointers (the registry never deletes a metric), so call sites
/// cache them in function-local statics and pay the map lookup once.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. Names should be static literals in
  /// snake_case.dotted.form ("engine.jobs_completed").
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first creation; later calls return the
  /// existing histogram regardless.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (test isolation between cases).
  void Reset();

  /// The process-wide registry the instrumentation layer publishes into.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_METRICS_H_
