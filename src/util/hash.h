// Hash-combining utilities shared by all tdlib containers.
#ifndef TDLIB_UTIL_HASH_H_
#define TDLIB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace tdlib {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(std::size_t* seed, std::size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hashes a range of hashable elements into a single value.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  for (; first != last; ++first) {
    HashCombine(&seed, std::hash<typename std::iterator_traits<It>::value_type>{}(*first));
  }
  return seed;
}

/// std::hash specialization helper for pairs of hashable types.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = std::hash<A>{}(p.first);
    HashCombine(&seed, std::hash<B>{}(p.second));
    return seed;
  }
};

/// std::hash for vectors of hashable types.
struct VectorHash {
  template <typename T>
  std::size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_HASH_H_
