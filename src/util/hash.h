// Hash-combining utilities shared by all tdlib containers.
#ifndef TDLIB_UTIL_HASH_H_
#define TDLIB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace tdlib {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline void HashCombine(std::size_t* seed, std::size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hashes a range of hashable elements into a single value.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t seed = 0xcbf29ce484222325ULL;
  for (; first != last; ++first) {
    HashCombine(&seed, std::hash<typename std::iterator_traits<It>::value_type>{}(*first));
  }
  return seed;
}

/// std::hash specialization helper for pairs of hashable types.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = std::hash<A>{}(p.first);
    HashCombine(&seed, std::hash<B>{}(p.second));
    return seed;
  }
};

/// std::hash for vectors of hashable types.
struct VectorHash {
  template <typename T>
  std::size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

/// SplitMix64 finalizer: a full-avalanche bijection on 64 bits, used to
/// decorrelate the two lanes of HashBytes128 below.
inline std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A 128-bit content hash (two finalized 64-bit lanes). Not cryptographic:
/// it addresses content in trusted stores (the result cache's canonical-form
/// fingerprints), where 128 bits make accidental collisions negligible but
/// no adversary is feeding inputs.
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

/// Hashes a byte range into 128 bits: two FNV-1a-style lanes walked over the
/// same bytes with different seeds and mixing orders, cross-finalized with
/// SplitMix64 so each output word depends on both lanes and the length.
inline Hash128 HashBytes128(const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t a = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t b = 0x9ae16a3b2f90404fULL;  // independent second seed
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;  // FNV-1a prime
  for (std::size_t i = 0; i < len; ++i) {
    a = (a ^ p[i]) * kPrime;
    b = (b + p[i] + 1) * kPrime;
  }
  Hash128 h;
  h.hi = SplitMix64(a ^ (static_cast<std::uint64_t>(len) * kPrime));
  h.lo = SplitMix64(b ^ (a << 32 | a >> 32));
  return h;
}

}  // namespace tdlib

#endif  // TDLIB_UTIL_HASH_H_
