#include "util/strings.h"

#include <cctype>

namespace tdlib {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::vector<std::string> SplitAndTrim(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(Trim(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace tdlib
