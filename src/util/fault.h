// Seeded fault injection for robustness testing.
//
// The solver stack has many failure paths a healthy run never takes:
// allocation failure mid-chase, cancellation landing exactly on a phase
// boundary, a deadline expiring inside a search, a checkpoint corrupted on
// disk. This plane lets tests and the tdfuzz harness force each one
// deterministically, through named injection points compiled into the
// production code.
//
// Design constraints (mirroring util/metrics.h):
//   1. Zero-cost when off. Every site is guarded by
//      `FaultInjectionEnabled() && ShouldInject(site)`; disabled, that is
//      one relaxed atomic load and a branch. The flag flips on only when a
//      fault is armed, so production runs never pay the per-site counters.
//   2. Deterministic. ArmFault(site, nth) fires on exactly the nth
//      evaluation of that site after arming (1-based), then disarms itself;
//      ArmFaultAlways(site) fires on every evaluation until disarmed.
//      Evaluation counts are process-wide atomics, so single-threaded
//      harness runs are exactly reproducible.
//   3. Observable. Every actual injection bumps a per-site counter AND the
//      `fault.injected.<site>` metrics counter, so injected faults show up
//      in --metrics output next to the outcomes they caused.
//
// The TDLIB_FAULT environment variable arms sites without code changes:
//   TDLIB_FAULT="chase-alloc:3,deadline"   (nth omitted = every time)
#ifndef TDLIB_UTIL_FAULT_H_
#define TDLIB_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tdlib {

/// Named injection points, one per hardened failure path.
enum class FaultSite {
  kChaseAlloc = 0,     ///< allocation failure between fires -> parked checkpoint
  kCancelQueue,        ///< cancel observed at worker pickup -> kCancelled
  kCancelMatch,        ///< cancel at the matching-phase boundary
  kCancelFire,         ///< cancel between fires
  kCancelCheckpoint,   ///< cancel racing the checkpoint capture
  kCancelResume,       ///< cancel at resume entry (checkpoint preserved)
  kDeadline,           ///< Deadline::Expired() forced true
  kCheckpointCorrupt,  ///< serialized checkpoint bytes corrupted in flight
  kFireOrderFlip,      ///< canonical fire-order comparison reversed (a
                       ///  deliberate bug for testing the differential
                       ///  harness's detection/minimization pipeline)
  kSocketRead,         ///< "cluster.socket-read": frame read cut short
                       ///  (truncated stream, as if the peer died mid-send)
  kSocketWrite,        ///< "cluster.socket-write": frame write fails
                       ///  (connection dropped under the sender)
  kFrameCorrupt,       ///< "cluster.frame-corrupt": outgoing cluster frame
                       ///  payload run through CorruptBytes before the wire
};
inline constexpr int kNumFaultSites =
    static_cast<int>(FaultSite::kFrameCorrupt) + 1;

/// Global gate. False until the first Arm*; DisarmAllFaults() restores it.
bool FaultInjectionEnabled();

/// Fires on the nth evaluation of `site` from now (1-based), once.
void ArmFault(FaultSite site, std::uint64_t nth = 1);

/// Fires on every evaluation of `site` until disarmed.
void ArmFaultAlways(FaultSite site);

void DisarmFault(FaultSite site);

/// Disarms every site, zeroes all counters and turns the global gate off.
/// Tests call this in set-up/tear-down for isolation.
void DisarmAllFaults();

/// The per-site evaluation hook. Returns true iff the armed fault fires at
/// this evaluation. Always call behind FaultInjectionEnabled() — the
/// counter bookkeeping is not free.
bool ShouldInject(FaultSite site);

/// How many times `site` actually fired since the last DisarmAllFaults.
std::uint64_t FaultInjectionCount(FaultSite site);

/// "chase-alloc", "cancel-queue", ... (the TDLIB_FAULT spelling).
std::string_view FaultSiteName(FaultSite site);
std::optional<FaultSite> FaultSiteFromName(std::string_view name);

/// Arms sites from a spec string: comma-separated `site` or `site:nth`
/// entries. Returns false (arming nothing further) on the first malformed
/// entry, with a description in *error when non-null.
bool ArmFaultsFromSpec(std::string_view spec, std::string* error = nullptr);

/// Reads TDLIB_FAULT and arms accordingly (malformed specs are ignored with
/// a one-line stderr warning). Entry points call this once at start-up.
void ArmFaultsFromEnv();

/// Deterministically damages serialized bytes: even seeds truncate the
/// buffer at a seed-derived offset, odd seeds flip one seed-derived bit.
/// The corruption helper behind FaultSite::kCheckpointCorrupt and the
/// corrupt-corpus regression suite.
void CorruptBytes(std::string* bytes, std::uint64_t seed);

/// Applies CorruptBytes(bytes, seed) iff kCheckpointCorrupt is armed and
/// fires at this evaluation. Call sites that persist checkpoints/sessions
/// route their bytes through here so the corruption plane can reach them.
void MaybeCorruptCheckpointBytes(std::string* bytes, std::uint64_t seed);

}  // namespace tdlib

#endif  // TDLIB_UTIL_FAULT_H_
