// ParallelFor: deadlock-free nested fan-out over a TaskExecutor.
//
// The chase's match phase and any similar "N independent read-only tasks"
// workload share one scheduling problem: the caller may itself be running
// on a pool worker (a BatchSolver job), so it cannot simply submit N tasks
// and block — if every worker did that, the pool would deadlock with all
// workers waiting and all tasks queued. ParallelFor sidesteps the cycle by
// making the *caller* a worker: indices are claimed from a shared atomic
// cursor, helper thunks are submitted to the pool, and the caller drains
// the same cursor on its own thread. The caller only ever waits for indices
// actively running on other workers — never for queued work — so progress
// is guaranteed with any pool width, including zero available workers.
//
// Determinism: which thread runs fn(i) is scheduling-dependent, but every i
// in [0, n) runs exactly once and ParallelFor returns only after all
// invocations (on any thread) have completed, with their writes visible to
// the caller. Callers that need a deterministic result must make fn(i)
// write only to per-index slots and merge in index order afterwards — the
// chase does exactly that.
#ifndef TDLIB_UTIL_PARALLEL_H_
#define TDLIB_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "util/executor.h"

namespace tdlib {

/// Runs fn(0), ..., fn(n-1), each exactly once, using `pool` workers plus
/// the calling thread; returns after every invocation has completed. With a
/// null pool (or n <= 1, or a single-thread pool) this is a plain serial
/// loop — the serial fallback ablations rely on.
///
/// Work-count heuristic: when the pool's queue is already at least as deep
/// as its width, every worker has a backlog and helper thunks would only
/// churn the queue, so none are submitted and the caller drains all indices
/// itself (results are identical either way). `priority` is the submission
/// priority for helper thunks; nested callers pass a high value so inner
/// tasks jump ahead of queued outer work and shorten the critical path.
void ParallelFor(TaskExecutor* pool, std::size_t n,
                 std::function<void(std::size_t)> fn, int priority = 0);

}  // namespace tdlib

#endif  // TDLIB_UTIL_PARALLEL_H_
