// Aligned text tables for experiment output.
//
// The benchmark harness prints the same rows/series the paper reports; this
// printer produces the human-readable form (CSV output is separate).
#ifndef TDLIB_UTIL_TABLE_PRINTER_H_
#define TDLIB_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace tdlib {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells print empty, extra cells are kept.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each cell with operator<< semantics.
  template <typename... Ts>
  void AddRowValues(const Ts&... values) {
    AddRow({FormatCell(values)...});
  }

  /// Writes the table to `os`.
  void Print(std::ostream& os) const;

  /// Returns the rendered table as a string.
  std::string ToString() const;

 private:
  template <typename T>
  static std::string FormatCell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else {
      return std::to_string(value);
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_TABLE_PRINTER_H_
