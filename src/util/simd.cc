#include "util/simd.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define TDLIB_SIMD_X86 1
#include <immintrin.h>
#else
#define TDLIB_SIMD_X86 0
#endif

namespace tdlib {
namespace {

// ---- Dispatch ---------------------------------------------------------------

SimdLevel DetectHardware() {
#if TDLIB_SIMD_X86 && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAVX2;
#endif
#if TDLIB_SIMD_X86 && defined(__SSE2__)
  return SimdLevel::kSSE2;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel InitialLevel() {
  const char* force = std::getenv("TDLIB_FORCE_SCALAR");
  if (force != nullptr && force[0] == '1') return SimdLevel::kScalar;
  return DetectHardware();
}

// Relaxed atomic: read on every kernel call (one load, always the same
// value after startup), written only by SetSimdLevelForTesting.
std::atomic<SimdLevel>& ActiveLevelStorage() {
  static std::atomic<SimdLevel> level{InitialLevel()};
  return level;
}

// ---- Scalar reference kernels ----------------------------------------------
//
// These define the semantics; every vector path below must match them bit
// for bit (tests/simd_test.cc compares across all supported levels).

std::uint64_t EqMaskScalar(const std::int32_t* base, std::ptrdiff_t stride,
                           std::size_t n, std::int32_t value) {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mask |= static_cast<std::uint64_t>(base[static_cast<std::ptrdiff_t>(i) *
                                            stride] == value)
            << i;
  }
  return mask;
}

std::uint64_t EqMaskGatherScalar(const std::int32_t* base,
                                 std::ptrdiff_t stride,
                                 const std::int32_t* ids, std::size_t n,
                                 std::int32_t value) {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mask |= static_cast<std::uint64_t>(
                base[static_cast<std::ptrdiff_t>(ids[i]) * stride] == value)
            << i;
  }
  return mask;
}

std::size_t IntersectScalar(const std::int32_t* a, std::size_t na,
                            const std::int32_t* b, std::size_t nb,
                            std::int32_t* out) {
  std::size_t ia = 0, ib = 0, n = 0;
  while (ia < na && ib < nb) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      out[n++] = a[ia];
      ++ia;
      ++ib;
    }
  }
  return n;
}

// Heavily skewed pairs: for each element of the small run, gallop into the
// large one (doubling steps + a bracketed lower_bound). O(na log nb) beats
// any linear scan once nb/na is large; the output set is the same either
// way, so the strategy choice is invisible to callers.
std::size_t IntersectGallop(const std::int32_t* a, std::size_t na,
                            const std::int32_t* b, std::size_t nb,
                            std::int32_t* out) {
  std::size_t n = 0;
  const std::int32_t* cursor = b;
  const std::int32_t* bend = b + nb;
  for (std::size_t ia = 0; ia < na && cursor != bend; ++ia) {
    const std::int32_t target = a[ia];
    if (*cursor < target) {
      std::ptrdiff_t step = 1;
      const std::int32_t* low = cursor;  // invariant: *low < target
      while (low + step < bend && low[step] < target) {
        low += step;
        step <<= 1;
      }
      const std::int32_t* high = low + step < bend ? low + step : bend;
      cursor = std::lower_bound(low + 1, high, target);
      if (cursor == bend) break;
    }
    if (*cursor == target) {
      out[n++] = target;
      ++cursor;
    }
  }
  return n;
}

// The size ratio past which the galloping strategy replaces the linear /
// block-compare merge. Pure wall-time heuristic: both strategies produce
// the identical set, so this constant never shows up in any counter.
constexpr std::size_t kGallopRatio = 32;

// ---- Hash -------------------------------------------------------------------
//
// Position-mixed additive hash: mix(component, position) avalanches each
// component together with its index, and the mixes are SUMMED — addition
// mod 2^32 is associative and commutative, so eight positions can be mixed
// in lanes and folded in any order while matching the scalar left-to-right
// fold bit for bit. A sequential boost-style combine chain could not be
// vectorized without changing its value.

inline std::uint32_t MixComponent(std::uint32_t x, std::uint32_t position) {
  x ^= (position + 1) * 0x9E3779B9u;
  x *= 0x85EBCA6Bu;
  x ^= x >> 13;
  x *= 0xC2B2AE35u;
  x ^= x >> 16;
  return x;
}

inline std::uint64_t FinalizeHash(std::uint32_t acc, int arity) {
  std::uint64_t h =
      acc + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(arity) + 1);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

std::uint64_t HashRowScalar(const std::int32_t* row, int arity,
                            std::ptrdiff_t stride) {
  std::uint32_t acc = 0;
  for (int i = 0; i < arity; ++i) {
    acc += MixComponent(
        static_cast<std::uint32_t>(row[static_cast<std::ptrdiff_t>(i) *
                                       stride]),
        static_cast<std::uint32_t>(i));
  }
  return FinalizeHash(acc, arity);
}

// ---- SSE2 kernels -----------------------------------------------------------

#if TDLIB_SIMD_X86 && defined(__SSE2__)

std::uint64_t EqMaskSse2(const std::int32_t* base, std::size_t n,
                         std::int32_t value) {
  std::uint64_t mask = 0;
  const __m128i needle = _mm_set1_epi32(value);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i block =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + i));
    const int bits =
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(block, needle)));
    mask |= static_cast<std::uint64_t>(bits) << i;
  }
  if (i < n) mask |= EqMaskScalar(base + i, 1, n - i, value) << i;
  return mask;
}

std::size_t IntersectSse2(const std::int32_t* a, std::size_t na,
                          const std::int32_t* b, std::size_t nb,
                          std::int32_t* out) {
  std::size_t ia = 0, ib = 0, n = 0;
  while (ia < na && ib + 4 <= nb) {
    const std::int32_t target = a[ia];
    if (b[ib + 3] < target) {  // whole block below: skip it in one compare
      ib += 4;
      continue;
    }
    const __m128i needle = _mm_set1_epi32(target);
    const __m128i block =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + ib));
    if (_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(block, needle)))) {
      out[n++] = target;
    }
    ++ia;
  }
  return n + IntersectScalar(a + ia, na - ia, b + ib, nb - ib, out + n);
}

#endif  // SSE2

// ---- AVX2 kernels -----------------------------------------------------------
//
// Compiled with per-function target attributes so the TU (and the whole
// library) builds without -mavx2; dispatch guarantees these only run on
// hardware that has the instructions.

#if TDLIB_SIMD_X86 && defined(__GNUC__)
#define TDLIB_TARGET_AVX2 __attribute__((target("avx2")))

TDLIB_TARGET_AVX2
std::uint64_t EqMaskAvx2(const std::int32_t* base, std::size_t n,
                         std::int32_t value) {
  std::uint64_t mask = 0;
  const __m256i needle = _mm256_set1_epi32(value);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i block =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + i));
    const int bits = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(block, needle)));
    mask |= static_cast<std::uint64_t>(static_cast<unsigned>(bits)) << i;
  }
  if (i < n) mask |= EqMaskScalar(base + i, 1, n - i, value) << i;
  return mask;
}

TDLIB_TARGET_AVX2
std::uint64_t EqMaskStridedAvx2(const std::int32_t* base,
                                std::ptrdiff_t stride, std::size_t n,
                                std::int32_t value) {
  std::uint64_t mask = 0;
  const __m256i needle = _mm256_set1_epi32(value);
  const __m256i vstride = _mm256_set1_epi32(static_cast<int>(stride));
  __m256i idx = _mm256_mullo_epi32(
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7), vstride);
  const __m256i step = _mm256_set1_epi32(static_cast<int>(8 * stride));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i block = _mm256_i32gather_epi32(base, idx, 4);
    const int bits = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(block, needle)));
    mask |= static_cast<std::uint64_t>(static_cast<unsigned>(bits)) << i;
    idx = _mm256_add_epi32(idx, step);
  }
  if (i < n) {
    mask |= EqMaskScalar(base + static_cast<std::ptrdiff_t>(i) * stride,
                         stride, n - i, value)
            << i;
  }
  return mask;
}

TDLIB_TARGET_AVX2
std::uint64_t EqMaskGatherAvx2(const std::int32_t* base, std::ptrdiff_t stride,
                               const std::int32_t* ids, std::size_t n,
                               std::int32_t value) {
  std::uint64_t mask = 0;
  const __m256i needle = _mm256_set1_epi32(value);
  const __m256i vstride = _mm256_set1_epi32(static_cast<int>(stride));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    if (stride != 1) idx = _mm256_mullo_epi32(idx, vstride);
    const __m256i block = _mm256_i32gather_epi32(base, idx, 4);
    const int bits = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(block, needle)));
    mask |= static_cast<std::uint64_t>(static_cast<unsigned>(bits)) << i;
  }
  if (i < n) mask |= EqMaskGatherScalar(base, stride, ids + i, n - i, value)
                     << i;
  return mask;
}

TDLIB_TARGET_AVX2
std::size_t IntersectAvx2(const std::int32_t* a, std::size_t na,
                          const std::int32_t* b, std::size_t nb,
                          std::int32_t* out) {
  std::size_t ia = 0, ib = 0, n = 0;
  while (ia < na && ib + 8 <= nb) {
    const std::int32_t target = a[ia];
    if (b[ib + 7] < target) {  // whole block below: skip it in one compare
      ib += 8;
      continue;
    }
    const __m256i needle = _mm256_set1_epi32(target);
    const __m256i block =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + ib));
    if (_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(block, needle)))) {
      out[n++] = target;
    }
    ++ia;
  }
  return n + IntersectScalar(a + ia, na - ia, b + ib, nb - ib, out + n);
}

TDLIB_TARGET_AVX2
std::uint64_t HashRowAvx2(const std::int32_t* row, int arity) {
  // Lanes hold positions i..i+7; the mix runs per lane and the lane sums
  // fold into the scalar accumulator — addition mod 2^32 commutes, so the
  // result equals the scalar left-to-right fold exactly.
  const __m256i golden = _mm256_set1_epi32(static_cast<int>(0x9E3779B9u));
  const __m256i m1 = _mm256_set1_epi32(static_cast<int>(0x85EBCA6Bu));
  const __m256i m2 = _mm256_set1_epi32(static_cast<int>(0xC2B2AE35u));
  __m256i pos1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8);  // position + 1
  const __m256i step = _mm256_set1_epi32(8);
  __m256i acc = _mm256_setzero_si256();
  int i = 0;
  for (; i + 8 <= arity; i += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    x = _mm256_xor_si256(x, _mm256_mullo_epi32(pos1, golden));
    x = _mm256_mullo_epi32(x, m1);
    x = _mm256_xor_si256(x, _mm256_srli_epi32(x, 13));
    x = _mm256_mullo_epi32(x, m2);
    x = _mm256_xor_si256(x, _mm256_srli_epi32(x, 16));
    acc = _mm256_add_epi32(acc, x);
    pos1 = _mm256_add_epi32(pos1, step);
  }
  alignas(32) std::uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint32_t sum = 0;
  for (std::uint32_t lane : lanes) sum += lane;
  for (; i < arity; ++i) {
    sum += MixComponent(static_cast<std::uint32_t>(row[i]),
                        static_cast<std::uint32_t>(i));
  }
  return FinalizeHash(sum, arity);
}

TDLIB_TARGET_AVX2
void HashRowsColumnarAvx2(const std::int32_t* base, std::size_t n_rows,
                          int arity, std::ptrdiff_t attr_stride,
                          std::uint64_t* out) {
  // Lanes hold rows r..r+7; each attribute contributes one contiguous load
  // (rows are adjacent within a column) mixed with that attribute's
  // position constant.
  const __m256i m1 = _mm256_set1_epi32(static_cast<int>(0x85EBCA6Bu));
  const __m256i m2 = _mm256_set1_epi32(static_cast<int>(0xC2B2AE35u));
  std::size_t r = 0;
  for (; r + 8 <= n_rows; r += 8) {
    __m256i acc = _mm256_setzero_si256();
    for (int i = 0; i < arity; ++i) {
      const __m256i salt = _mm256_set1_epi32(static_cast<int>(
          (static_cast<std::uint32_t>(i) + 1) * 0x9E3779B9u));
      __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          base + static_cast<std::ptrdiff_t>(i) * attr_stride + r));
      x = _mm256_xor_si256(x, salt);
      x = _mm256_mullo_epi32(x, m1);
      x = _mm256_xor_si256(x, _mm256_srli_epi32(x, 13));
      x = _mm256_mullo_epi32(x, m2);
      x = _mm256_xor_si256(x, _mm256_srli_epi32(x, 16));
      acc = _mm256_add_epi32(acc, x);
    }
    alignas(32) std::uint32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (int lane = 0; lane < 8; ++lane) {
      out[r + static_cast<std::size_t>(lane)] =
          FinalizeHash(lanes[lane], arity);
    }
  }
  for (; r < n_rows; ++r) {
    out[r] = HashRowScalar(base + r, arity, attr_stride);
  }
}

#undef TDLIB_TARGET_AVX2
#endif  // AVX2

// Gather indices are 32-bit lanes: an id * stride product past INT32_MAX
// would wrap and load the wrong component. All call sites keep arenas well
// under 2^31 int32s (ids are int), but the kernels guard anyway and fall
// back to scalar on the (never-seen) overflow.
bool GatherIndexFits(std::int64_t max_index, std::ptrdiff_t stride) {
  return max_index * stride <= INT32_MAX;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  return ActiveLevelStorage().load(std::memory_order_relaxed);
}

SimdLevel DetectedSimdLevel() { return DetectHardware(); }

void SetSimdLevelForTesting(SimdLevel level) {
  if (level > DetectHardware()) level = DetectHardware();
  ActiveLevelStorage().store(level, std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSSE2: return "sse2";
    case SimdLevel::kAVX2: return "avx2";
  }
  return "?";
}

std::uint64_t EqMaskI32(const std::int32_t* base, std::ptrdiff_t stride,
                        std::size_t n, std::int32_t value) {
  assert(n <= 64 && "EqMaskI32 blocks are at most 64 wide");
  const SimdLevel level = ActiveSimdLevel();
#if TDLIB_SIMD_X86 && defined(__GNUC__)
  if (level == SimdLevel::kAVX2) {
    if (stride == 1) return EqMaskAvx2(base, n, value);
    if (GatherIndexFits(static_cast<std::int64_t>(n), stride)) {
      return EqMaskStridedAvx2(base, stride, n, value);
    }
  }
#endif
#if TDLIB_SIMD_X86 && defined(__SSE2__)
  if (level >= SimdLevel::kSSE2 && stride == 1) {
    return EqMaskSse2(base, n, value);
  }
#endif
  (void)level;
  return EqMaskScalar(base, stride, n, value);
}

std::uint64_t EqMaskGatherI32(const std::int32_t* base, std::ptrdiff_t stride,
                              const std::int32_t* ids, std::size_t n,
                              std::int32_t value) {
  assert(n <= 64 && "EqMaskGatherI32 blocks are at most 64 wide");
  const SimdLevel level = ActiveSimdLevel();
#if TDLIB_SIMD_X86 && defined(__GNUC__)
  if (level == SimdLevel::kAVX2 && n > 0 &&
      GatherIndexFits(ids[n - 1], stride)) {  // ids ascend at every call site
    return EqMaskGatherAvx2(base, stride, ids, n, value);
  }
#endif
  (void)level;
  return EqMaskGatherScalar(base, stride, ids, n, value);
}

std::size_t IntersectI32(const std::int32_t* a, std::size_t na,
                         const std::int32_t* b, std::size_t nb,
                         std::int32_t* out) {
  // Canonical orientation: `a` is the smaller run (the result is symmetric).
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  if (nb / na >= kGallopRatio) return IntersectGallop(a, na, b, nb, out);
  const SimdLevel level = ActiveSimdLevel();
#if TDLIB_SIMD_X86 && defined(__GNUC__)
  if (level == SimdLevel::kAVX2) return IntersectAvx2(a, na, b, nb, out);
#endif
#if TDLIB_SIMD_X86 && defined(__SSE2__)
  if (level >= SimdLevel::kSSE2) return IntersectSse2(a, na, b, nb, out);
#endif
  (void)level;
  return IntersectScalar(a, na, b, nb, out);
}

std::uint64_t HashRowI32(const std::int32_t* row, int arity,
                         std::ptrdiff_t stride) {
#if TDLIB_SIMD_X86 && defined(__GNUC__)
  if (ActiveSimdLevel() == SimdLevel::kAVX2 && stride == 1 && arity >= 8) {
    return HashRowAvx2(row, arity);
  }
#endif
  return HashRowScalar(row, arity, stride);
}

void HashRowsI32(const std::int32_t* base, std::size_t n_rows, int arity,
                 std::ptrdiff_t row_stride, std::ptrdiff_t attr_stride,
                 std::uint64_t* out) {
#if TDLIB_SIMD_X86 && defined(__GNUC__)
  if (ActiveSimdLevel() == SimdLevel::kAVX2 && row_stride == 1) {
    HashRowsColumnarAvx2(base, n_rows, arity, attr_stride, out);
    return;
  }
#endif
  for (std::size_t r = 0; r < n_rows; ++r) {
    out[r] = HashRowScalar(base + static_cast<std::ptrdiff_t>(r) * row_stride,
                           arity, attr_stride);
  }
}

}  // namespace tdlib
