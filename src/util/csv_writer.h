// CSV emission for benchmark series (machine-readable experiment output).
#ifndef TDLIB_UTIL_CSV_WRITER_H_
#define TDLIB_UTIL_CSV_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

namespace tdlib {

/// Streams rows in RFC-4180 CSV format. Quoting is applied only when needed.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& os, const std::vector<std::string>& header);

  /// Writes one data row.
  void WriteRow(const std::vector<std::string>& cells);

 private:
  static std::string Escape(const std::string& cell);
  std::ostream& os_;
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_CSV_WRITER_H_
