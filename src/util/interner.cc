#include "util/interner.h"

#include <functional>

namespace tdlib {

Interner::Shard& Interner::ShardFor(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % kNumShards];
}

int Interner::Intern(std::string_view name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.ids.find(std::string(name));
  if (it != shard.ids.end()) return it->second;
  // New name: claim the next dense id under the global names lock (held
  // briefly, inside the shard lock — see the lock-order note in the
  // header). Holding the shard lock across the whole insert is what makes
  // the id unique per name: a racing Intern of the same name waits here and
  // then finds the entry.
  int id;
  {
    std::lock_guard<std::mutex> names_lock(names_mu_);
    id = static_cast<int>(names_.size());
    names_.emplace_back(name);
  }
  shard.ids.emplace(std::string(name), id);
  return id;
}

int Interner::Lookup(std::string_view name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.ids.find(std::string(name));
  return it == shard.ids.end() ? -1 : it->second;
}

const std::string& Interner::NameOf(int id) const {
  // The deque never shrinks and entries are never rewritten, so the
  // returned reference is stable; the lock only fences the read of the
  // deque's internal structure against a concurrent push_back.
  std::lock_guard<std::mutex> lock(names_mu_);
  return names_[static_cast<std::size_t>(id)];
}

std::size_t Interner::size() const {
  std::lock_guard<std::mutex> lock(names_mu_);
  return names_.size();
}

}  // namespace tdlib
