#include "util/interner.h"

namespace tdlib {

int Interner::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  int id = static_cast<int>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

int Interner::Lookup(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? -1 : it->second;
}

const std::string& Interner::NameOf(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_[static_cast<std::size_t>(id)];
}

std::size_t Interner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

}  // namespace tdlib
