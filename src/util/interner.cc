#include "util/interner.h"

namespace tdlib {

int Interner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  int id = static_cast<int>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

int Interner::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? -1 : it->second;
}

}  // namespace tdlib
