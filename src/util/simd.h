// SIMD kernels for the match hot path, behind runtime CPU dispatch.
//
// The chase's inner loops are memory-bound scans over flat int32 slabs
// (logic/tuple_store.h's arenas, logic/instance.h's CSR posting lists) —
// exactly the shape vector units pay for. This header exposes the three
// kernel families those loops need:
//
//   * EqMaskI32 / EqMaskGatherI32 — evaluate one bound body-row position
//     over a whole candidate block at once, producing a survivor bitmask
//     (up to 64 candidates per call). The strided form covers both direct
//     stride-1 column loads (columnar stores, consecutive-id scans) and
//     constant-stride walks (row-major columns); the gather form covers
//     posting-list candidate blocks, whose ids are dense in the list but
//     scattered in the arena.
//   * IntersectI32 — intersection of two ascending unique id runs, the
//     block-compare core of the multi-list candidate intersection.
//   * HashRowI32 / HashRowsI32 — the TupleStore dedup hash, as a pure
//     function of the row components so it is layout-blind (row-major and
//     columnar stores converge to identical tables) and lane-parallel
//     (positions hash independently and combine associatively).
//
// Bit-identity contract: every kernel computes a pure function of its
// inputs, and the SSE2/AVX2 paths are bit-for-bit identical to the scalar
// fallbacks — same masks, same intersection sets, same hashes. Dispatch is
// therefore invisible to everything above: hom_nodes, hom_candidates,
// fired steps, instances and traces do not depend on the CPU the process
// landed on. tests/simd_test.cc enforces the kernel-level identity across
// every level the host supports; the chase parity suites enforce it end to
// end.
//
// Dispatch: the level is detected once per process (AVX2 when the CPU has
// it, else SSE2 on x86-64, else scalar) and can be capped — never raised —
// by the TDLIB_FORCE_SCALAR=1 environment variable or, for tests, by
// SetSimdLevelForTesting. Kernels branch on the cached level internally;
// callers never see function pointers. The AVX2 bodies are compiled with
// per-function target attributes, so the library itself builds without
// -mavx2 and still uses AVX2 where the CPU offers it.
#ifndef TDLIB_UTIL_SIMD_H_
#define TDLIB_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace tdlib {

/// Instruction-set tier a kernel call may use. Levels are totally ordered;
/// dispatch picks the highest level the host CPU (and any forced cap)
/// allows.
enum class SimdLevel {
  kScalar = 0,  ///< portable C++ (always available; the reference semantics)
  kSSE2 = 1,    ///< 128-bit compares/masks (x86-64 baseline)
  kAVX2 = 2,    ///< 256-bit compares, hardware gathers, 32-bit lane multiply
};

/// The level kernels currently dispatch to: min(detected hardware, forced
/// cap). Detection runs once on first use; TDLIB_FORCE_SCALAR=1 in the
/// environment caps it at kScalar for the whole process (the CI leg that
/// exercises the scalar fallbacks on AVX2 machines).
SimdLevel ActiveSimdLevel();

/// The hardware ceiling, ignoring any forced cap.
SimdLevel DetectedSimdLevel();

/// Caps dispatch at `level` for testing (clamped to the hardware ceiling —
/// requesting AVX2 on an SSE2-only host yields SSE2). Pass DetectedSimdLevel()
/// to restore. Not thread-safe against concurrent kernel calls; tests only.
void SetSimdLevelForTesting(SimdLevel level);

/// Short name ("scalar", "sse2", "avx2") for logs and bench labels.
const char* SimdLevelName(SimdLevel level);

// ---- Block equality masks ---------------------------------------------------

/// Compares up to 64 strided components against `value`: bit i of the
/// result is set iff base[i * stride] == value, for i in [0, n); bits >= n
/// are zero. n must be <= 64. stride 1 is the columnar fast path (one or
/// two cache lines per block); larger strides walk a row-major column.
std::uint64_t EqMaskI32(const std::int32_t* base, std::ptrdiff_t stride,
                        std::size_t n, std::int32_t value);

/// Gathered form: bit i set iff base[ids[i] * stride] == value. `ids` is a
/// dense block of tuple ids (a slice of a posting list or intersection
/// result); the components they select are scattered in the arena, which is
/// what the AVX2 hardware gather covers.
std::uint64_t EqMaskGatherI32(const std::int32_t* base, std::ptrdiff_t stride,
                              const std::int32_t* ids, std::size_t n,
                              std::int32_t value);

// ---- Sorted-run intersection ------------------------------------------------

/// Intersects two ascending runs of unique int32 ids into `out` (which must
/// have room for min(na, nb) entries; it may alias neither input). Returns
/// the output size. The result is the set intersection in ascending order —
/// identical across dispatch levels and across the internal block-compare /
/// galloping strategy choice, so callers may treat the routine as a pure
/// set operation.
std::size_t IntersectI32(const std::int32_t* a, std::size_t na,
                         const std::int32_t* b, std::size_t nb,
                         std::int32_t* out);

// ---- Row hashing ------------------------------------------------------------

/// The TupleStore dedup hash of one row of `arity` strided components
/// (component i at row[i * stride]). Layout-blind by construction: the value
/// depends only on the component sequence, never on where it lives, so
/// row-major and columnar stores build identical tables. Position-mixed
/// additive combine: each component is avalanche-mixed with its index and
/// the mixes are summed, which is what lets the SIMD paths hash eight
/// positions per vector and still match the scalar fold bit for bit.
std::uint64_t HashRowI32(const std::int32_t* row, int arity,
                         std::ptrdiff_t stride = 1);

/// Hashes `n_rows` rows in one call: component (r, i) lives at
/// base[r * row_stride + i * attr_stride], out[r] receives that row's
/// HashRowI32. Columnar stores (row_stride 1, attr_stride = column
/// capacity) take the wide path — one contiguous load per attribute, rows
/// in lanes; row-major falls back to per-row hashing. Used by the dedup
/// table's bulk rehash.
void HashRowsI32(const std::int32_t* base, std::size_t n_rows, int arity,
                 std::ptrdiff_t row_stride, std::ptrdiff_t attr_stride,
                 std::uint64_t* out);

}  // namespace tdlib

#endif  // TDLIB_UTIL_SIMD_H_
