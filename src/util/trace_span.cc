#include "util/trace_span.h"

#include <atomic>

#include "util/timer.h"

namespace tdlib {

namespace {

std::atomic<bool> g_tracing_enabled{false};

thread_local std::uint64_t t_current_job = 0;
thread_local std::uint16_t t_span_depth = 0;

/// Small dense id per recording thread (Chrome traces key lanes by tid;
/// OS thread ids are large and non-reproducible across runs).
std::uint32_t ThisThreadTraceId() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void AppendEscaped(std::ostream& out, const char* s) {
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out << '\\';
    out << *s;
  }
}

}  // namespace

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceBuffer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[total_ % capacity_] = event;
  ++total_;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  std::uint64_t count = total_ < capacity_ ? total_ : capacity_;
  out.reserve(count);
  std::uint64_t first = total_ - count;
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(ring_[(first + i) % capacity_]);
  }
  return out;
}

std::uint64_t TraceBuffer::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TraceBuffer::Dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  total_ = 0;
}

void TraceBuffer::WriteChromeTrace(std::ostream& out) const {
  std::vector<TraceEvent> events = Snapshot();
  std::int64_t epoch = events.empty() ? 0 : events.front().start_ns;
  for (const TraceEvent& e : events) {
    if (e.start_ns < epoch) epoch = e.start_ns;
  }
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i) out << ',';
    out << "{\"name\":\"";
    AppendEscaped(out, e.name);
    out << "\",\"cat\":\"tdlib\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
        << ",\"ts\":" << (e.start_ns - epoch) / 1000
        << ",\"dur\":" << e.dur_ns / 1000 << ",\"args\":{\"job\":" << e.job
        << ",\"depth\":" << e.depth << "}}";
  }
  out << "]}";
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

TraceJobScope::TraceJobScope(std::uint64_t job_id) : saved_(t_current_job) {
  t_current_job = job_id;
}

TraceJobScope::~TraceJobScope() { t_current_job = saved_; }

std::uint64_t CurrentTraceJob() { return t_current_job; }

TraceSpan::TraceSpan(const char* name)
    : name_(name), start_ns_(0), depth_(0), armed_(TracingEnabled()) {
  if (!armed_) return;
  depth_ = t_span_depth++;
  start_ns_ = StopWatch::Now();
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  std::int64_t end_ns = StopWatch::Now();
  --t_span_depth;
  TraceEvent event;
  event.name = name_;
  event.job = t_current_job;
  event.start_ns = start_ns_;
  event.dur_ns = end_ns - start_ns_;
  event.tid = ThisThreadTraceId();
  event.depth = depth_;
  TraceBuffer::Global().Record(event);
}

void RecordTraceEvent(const char* name, std::uint64_t job,
                      std::int64_t start_ns, std::int64_t dur_ns) {
  if (!TracingEnabled()) return;
  TraceEvent event;
  event.name = name;
  event.job = job;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.tid = ThisThreadTraceId();
  event.depth = 0;
  TraceBuffer::Global().Record(event);
}

}  // namespace tdlib
