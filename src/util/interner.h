// String interning: bidirectional mapping between names and dense ids.
#ifndef TDLIB_UTIL_INTERNER_H_
#define TDLIB_UTIL_INTERNER_H_

#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tdlib {

/// Maps strings to dense ids (0, 1, 2, ...) and back.
///
/// tdlib uses interners for attribute names, semigroup symbols and variable
/// names so that all hot-path comparisons are integer comparisons.
///
/// Thread-safety: all members may be called concurrently. Interning is off
/// the solver hot path (it happens during parsing and construction, before
/// jobs run), so the audit for the engine layer chose a plain mutex here —
/// it costs nothing where it matters and removes the class from the list
/// of things a concurrent caller must think about. Names are stored in a
/// deque so the reference returned by NameOf stays valid while other
/// threads intern.
class Interner {
 public:
  /// Returns the id of `name`, interning it if new.
  int Intern(std::string_view name);

  /// Returns the id of `name`, or -1 if it has never been interned.
  int Lookup(std::string_view name) const;

  /// Returns the name for `id`. Precondition: 0 <= id < size(). The
  /// reference stays valid for the interner's lifetime.
  const std::string& NameOf(int id) const;

  /// Returns true if `name` has been interned.
  bool Contains(std::string_view name) const { return Lookup(name) >= 0; }

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<std::string> names_;  ///< deque: stable references under growth
  std::unordered_map<std::string, int> ids_;
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_INTERNER_H_
