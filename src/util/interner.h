// String interning: bidirectional mapping between names and dense ids.
#ifndef TDLIB_UTIL_INTERNER_H_
#define TDLIB_UTIL_INTERNER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tdlib {

/// Maps strings to dense ids (0, 1, 2, ...) and back.
///
/// tdlib uses interners for attribute names, semigroup symbols and variable
/// names so that all hot-path comparisons are integer comparisons.
class Interner {
 public:
  /// Returns the id of `name`, interning it if new.
  int Intern(std::string_view name);

  /// Returns the id of `name`, or -1 if it has never been interned.
  int Lookup(std::string_view name) const;

  /// Returns the name for `id`. Precondition: 0 <= id < size().
  const std::string& NameOf(int id) const { return names_[id]; }

  /// Returns true if `name` has been interned.
  bool Contains(std::string_view name) const { return Lookup(name) >= 0; }

  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_INTERNER_H_
