// String interning: bidirectional mapping between names and dense ids.
#ifndef TDLIB_UTIL_INTERNER_H_
#define TDLIB_UTIL_INTERNER_H_

#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tdlib {

/// Maps strings to dense ids (0, 1, 2, ...) and back.
///
/// tdlib uses interners for attribute names, semigroup symbols and variable
/// names so that all hot-path comparisons are integer comparisons.
///
/// Thread-safety: all members may be called concurrently. The name -> id
/// map is sharded by string hash with one mutex per shard, so concurrent
/// Intern/Lookup calls on different names proceed in parallel — the chase's
/// parallel match phase made the old single global mutex the one
/// write-shared structure every worker could serialize on. The id -> name
/// side stays global (ids must be dense across shards) behind its own
/// mutex, but its critical sections are a deque push_back or an index read;
/// the string hashing and map probing — the actual work — happen under the
/// shard lock only. Names are stored in a deque so the reference returned
/// by NameOf stays valid while other threads intern.
///
/// Lock order: shard mutex, then names mutex; nothing ever takes them the
/// other way around, so the pair cannot deadlock.
///
/// Determinism note: ids are assigned in Intern arrival order. Single-
/// threaded construction (parsing, generators — all current callers) gets
/// the same dense ids as before; concurrent interning of NEW names gets
/// scheduling-dependent ids, so keep construction single-threaded where id
/// stability matters (hot paths only intern existing names, which is
/// id-stable and shard-parallel).
class Interner {
 public:
  /// Returns the id of `name`, interning it if new.
  int Intern(std::string_view name);

  /// Returns the id of `name`, or -1 if it has never been interned.
  int Lookup(std::string_view name) const;

  /// Returns the name for `id`. Precondition: 0 <= id < size(). The
  /// reference stays valid for the interner's lifetime.
  const std::string& NameOf(int id) const;

  /// Returns true if `name` has been interned.
  bool Contains(std::string_view name) const { return Lookup(name) >= 0; }

  std::size_t size() const;

 private:
  // 16 shards: enough to make same-shard collisions rare at the pool widths
  // the engine runs (hardware threads), small enough that the array of
  // mutexes stays cache-resident.
  static constexpr std::size_t kNumShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, int> ids;
  };

  Shard& ShardFor(std::string_view name) const;

  mutable Shard shards_[kNumShards];
  mutable std::mutex names_mu_;
  std::deque<std::string> names_;  ///< deque: stable references under growth
};

}  // namespace tdlib

#endif  // TDLIB_UTIL_INTERNER_H_
