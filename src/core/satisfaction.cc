#include "core/satisfaction.h"

#include <cassert>

namespace tdlib {

Valuation HeadSeedValuation(const Dependency& dep,
                            const Valuation& body_match) {
  Valuation initial = Valuation::For(dep.head());
  for (int attr = 0; attr < dep.schema().arity(); ++attr) {
    for (int v = 0; v < dep.head().NumVars(attr); ++v) {
      if (dep.IsUniversal(attr, v)) {
        initial.Set(attr, v, body_match.Get(attr, v));
      }
    }
  }
  return initial;
}

SatisfactionResult CheckSatisfaction(const Dependency& dep,
                                     const Instance& instance,
                                     HomSearchOptions options) {
  SatisfactionResult result;
  bool budget_hit = false;

  HomomorphismSearch body_search(dep.body(), instance, options);
  HomSearchStatus body_status = body_search.ForEach([&](const Valuation& h) {
    ++result.body_matches;
    // Try to extend h to the head: universal variables keep their binding,
    // existential variables are free.
    HomomorphismSearch head_search(dep.head(), instance, options);
    head_search.SetInitial(HeadSeedValuation(dep, h));
    HomSearchStatus head_status = head_search.FindAny(nullptr);
    result.nodes += head_search.nodes_explored();
    if (head_status == HomSearchStatus::kBudget) {
      budget_hit = true;
      return false;
    }
    if (head_status == HomSearchStatus::kExhausted) {
      result.counterexample = h;
      return false;  // found a violation; stop
    }
    return true;
  });
  result.nodes += body_search.nodes_explored();

  if (budget_hit || body_status == HomSearchStatus::kBudget) {
    result.verdict = Satisfaction::kUnknown;
    result.counterexample.reset();
  } else if (result.counterexample.has_value()) {
    result.verdict = Satisfaction::kViolated;
  } else {
    result.verdict = Satisfaction::kSatisfied;
  }
  return result;
}

bool Satisfies(const Instance& instance, const Dependency& dep) {
  return CheckSatisfaction(dep, instance).verdict == Satisfaction::kSatisfied;
}

int FirstViolated(const DependencySet& deps, const Instance& instance) {
  for (std::size_t i = 0; i < deps.items.size(); ++i) {
    SatisfactionResult r = CheckSatisfaction(deps.items[i], instance);
    assert(r.verdict != Satisfaction::kUnknown);
    if (r.verdict == Satisfaction::kViolated) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace tdlib
