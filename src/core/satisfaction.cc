#include "core/satisfaction.h"

#include <cassert>

namespace tdlib {

// Pure function of (dep, body_match): no shared scratch buffer or cached
// result. The parallel chase calls this from concurrent match tasks (one
// head-witness search per body match), so any future memoization here must
// be per-caller, never a shared static — a shared seed valuation would be
// written by every task at once. HeadSeedValuationInto keeps exactly that
// discipline: the scratch is the CALLER's.
void HeadSeedValuationInto(const Dependency& dep, const Valuation& body_match,
                           Valuation* out) {
  out->values.resize(static_cast<std::size_t>(dep.schema().arity()));
  for (int attr = 0; attr < dep.schema().arity(); ++attr) {
    // assign reuses the column's capacity: a match stream seeds thousands of
    // head searches per dependency without touching the allocator.
    out->values[attr].assign(
        static_cast<std::size_t>(dep.head().NumVars(attr)), -1);
    for (int v = 0; v < dep.head().NumVars(attr); ++v) {
      if (dep.IsUniversal(attr, v)) {
        out->values[attr][v] = body_match.Get(attr, v);
      }
    }
  }
}

Valuation HeadSeedValuation(const Dependency& dep,
                            const Valuation& body_match) {
  Valuation initial;
  HeadSeedValuationInto(dep, body_match, &initial);
  return initial;
}

HeadChecker::HeadChecker(const Dependency& dep, const Instance& instance,
                         const HomSearchOptions& options)
    : search_(dep.head(), instance, options),
      seed_template_(Valuation::For(dep.head())) {
  // The universal positions are a property of the dependency; resolving
  // them once here turns each per-match seed into a column copy plus
  // |universals| stores (HeadSeedValuation's semantics, minus its
  // per-variable IsUniversal scan).
  for (int attr = 0; attr < dep.schema().arity(); ++attr) {
    for (int v = 0; v < dep.head().NumVars(attr); ++v) {
      if (dep.IsUniversal(attr, v)) universals_.emplace_back(attr, v);
    }
  }
}

bool HeadChecker::Witnessed(const Valuation& h, HomSearchStats* stats) {
  seed_ = seed_template_;  // column-wise assign; capacity reused
  for (auto [attr, var] : universals_) {
    seed_.values[attr][var] = h.Get(attr, var);
  }
  search_.SetInitial(seed_);
  HomSearchStatus status = search_.FindAny(nullptr);
  stats->MergeFrom(search_.stats());
  return status == HomSearchStatus::kFound;
}

SatisfactionResult CheckSatisfaction(const Dependency& dep,
                                     const Instance& instance,
                                     HomSearchOptions options) {
  SatisfactionResult result;
  // Per-call stats aggregation: each search owns its HomSearchStats and the
  // counters are summed here after each search finishes (the same
  // sum-after-join discipline the parallel chase uses).
  HomSearchStats stats;

  HomomorphismSearch body_search(dep.body(), instance, options);
  // One HeadChecker serves the whole body-match stream — reuse keeps the
  // allocator off the per-match path (the chase uses the same class).
  HeadChecker head(dep, instance, options);
  HomSearchStatus body_status = body_search.ForEach([&](const Valuation& h) {
    ++result.body_matches;
    // Try to extend h to the head: universal variables keep their binding,
    // existential variables are free.
    HomSearchStats head_stats;
    bool witnessed = head.Witnessed(h, &head_stats);
    stats.MergeFrom(head_stats);
    if (head_stats.budget_hit) {
      return false;
    }
    if (!witnessed) {
      result.counterexample = h;
      return false;  // found a violation; stop
    }
    return true;
  });
  stats.MergeFrom(body_search.stats());
  result.nodes = stats.nodes;
  result.candidates = stats.candidates;

  if (stats.budget_hit || body_status == HomSearchStatus::kBudget) {
    result.verdict = Satisfaction::kUnknown;
    result.counterexample.reset();
  } else if (result.counterexample.has_value()) {
    result.verdict = Satisfaction::kViolated;
  } else {
    result.verdict = Satisfaction::kSatisfied;
  }
  return result;
}

bool Satisfies(const Instance& instance, const Dependency& dep) {
  return CheckSatisfaction(dep, instance).verdict == Satisfaction::kSatisfied;
}

int FirstViolated(const DependencySet& deps, const Instance& instance) {
  for (std::size_t i = 0; i < deps.items.size(); ++i) {
    SatisfactionResult r = CheckSatisfaction(deps.items[i], instance);
    assert(r.verdict != Satisfaction::kUnknown);
    if (r.verdict == Satisfaction::kViolated) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace tdlib
