#include "core/satisfaction.h"

#include <cassert>

namespace tdlib {

// Pure function: builds and returns a FRESH valuation on every call, with
// no shared scratch buffer or cached result. The parallel chase calls this
// from concurrent match tasks (one head-witness search per body match), so
// any future memoization here must be per-caller, never a shared static —
// a shared seed valuation would be written by every task at once.
Valuation HeadSeedValuation(const Dependency& dep,
                            const Valuation& body_match) {
  Valuation initial = Valuation::For(dep.head());
  for (int attr = 0; attr < dep.schema().arity(); ++attr) {
    for (int v = 0; v < dep.head().NumVars(attr); ++v) {
      if (dep.IsUniversal(attr, v)) {
        initial.Set(attr, v, body_match.Get(attr, v));
      }
    }
  }
  return initial;
}

SatisfactionResult CheckSatisfaction(const Dependency& dep,
                                     const Instance& instance,
                                     HomSearchOptions options) {
  SatisfactionResult result;
  // Per-call stats aggregation: each search owns its HomSearchStats and the
  // counters are summed here after each search finishes (the same
  // sum-after-join discipline the parallel chase uses).
  HomSearchStats stats;

  HomomorphismSearch body_search(dep.body(), instance, options);
  HomSearchStatus body_status = body_search.ForEach([&](const Valuation& h) {
    ++result.body_matches;
    // Try to extend h to the head: universal variables keep their binding,
    // existential variables are free.
    HomomorphismSearch head_search(dep.head(), instance, options);
    head_search.SetInitial(HeadSeedValuation(dep, h));
    HomSearchStatus head_status = head_search.FindAny(nullptr);
    stats.MergeFrom(head_search.stats());
    if (head_status == HomSearchStatus::kBudget) {
      return false;
    }
    if (head_status == HomSearchStatus::kExhausted) {
      result.counterexample = h;
      return false;  // found a violation; stop
    }
    return true;
  });
  stats.MergeFrom(body_search.stats());
  result.nodes = stats.nodes;

  if (stats.budget_hit || body_status == HomSearchStatus::kBudget) {
    result.verdict = Satisfaction::kUnknown;
    result.counterexample.reset();
  } else if (result.counterexample.has_value()) {
    result.verdict = Satisfaction::kViolated;
  } else {
    result.verdict = Satisfaction::kSatisfied;
  }
  return result;
}

bool Satisfies(const Instance& instance, const Dependency& dep) {
  return CheckSatisfaction(dep, instance).verdict == Satisfaction::kSatisfied;
}

int FirstViolated(const DependencySet& deps, const Instance& instance) {
  for (std::size_t i = 0; i < deps.items.size(); ++i) {
    SatisfactionResult r = CheckSatisfaction(deps.items[i], instance);
    assert(r.verdict != Satisfaction::kUnknown);
    if (r.verdict == Satisfaction::kViolated) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace tdlib
