// Dependency satisfaction over finite instances (model checking).
//
// This is the "logical consequence" primitive of the paper's *true database
// interpretation*: a dependency holds in a finite database M iff every
// homomorphic match of its antecedents extends to a match of its conclusion.
// The part (B) verification ("this structure is a model for each dependency
// in D but not for D0") is exactly this check.
#ifndef TDLIB_CORE_SATISFACTION_H_
#define TDLIB_CORE_SATISFACTION_H_

#include <cstdint>
#include <optional>

#include "core/dependency.h"
#include "logic/homomorphism.h"
#include "logic/instance.h"

namespace tdlib {

/// Three-valued satisfaction verdict. kUnknown only occurs when a node
/// budget is configured and exhausted.
enum class Satisfaction { kSatisfied, kViolated, kUnknown };

/// Outcome details of a satisfaction check.
struct SatisfactionResult {
  Satisfaction verdict = Satisfaction::kUnknown;

  /// When kViolated: a body valuation with no head extension.
  std::optional<Valuation> counterexample;

  /// Number of body homomorphisms enumerated.
  std::uint64_t body_matches = 0;

  /// Total search nodes across body and head searches.
  std::uint64_t nodes = 0;
};

/// The standard seed for a head-witness search: a valuation over
/// `dep.head()`'s variable space with every universal variable bound to its
/// value in `body_match` and every existential variable left free. Shared by
/// satisfaction checking and the chase's applicability tests.
Valuation HeadSeedValuation(const Dependency& dep, const Valuation& body_match);

/// Checks whether `instance` satisfies `dep`.
SatisfactionResult CheckSatisfaction(const Dependency& dep,
                                     const Instance& instance,
                                     HomSearchOptions options = {});

/// Convenience: true iff the check returns kSatisfied.
bool Satisfies(const Instance& instance, const Dependency& dep);

/// Checks a set; returns the index of the first violated dependency, or -1
/// if all are satisfied. (Asserts if any check hits a budget.)
int FirstViolated(const DependencySet& deps, const Instance& instance);

}  // namespace tdlib

#endif  // TDLIB_CORE_SATISFACTION_H_
