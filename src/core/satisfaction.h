// Dependency satisfaction over finite instances (model checking).
//
// This is the "logical consequence" primitive of the paper's *true database
// interpretation*: a dependency holds in a finite database M iff every
// homomorphic match of its antecedents extends to a match of its conclusion.
// The part (B) verification ("this structure is a model for each dependency
// in D but not for D0") is exactly this check.
#ifndef TDLIB_CORE_SATISFACTION_H_
#define TDLIB_CORE_SATISFACTION_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/dependency.h"
#include "logic/homomorphism.h"
#include "logic/instance.h"

namespace tdlib {

/// Three-valued satisfaction verdict. kUnknown only occurs when a node
/// budget is configured and exhausted.
enum class Satisfaction { kSatisfied, kViolated, kUnknown };

/// Outcome details of a satisfaction check.
struct SatisfactionResult {
  Satisfaction verdict = Satisfaction::kUnknown;

  /// When kViolated: a body valuation with no head extension.
  std::optional<Valuation> counterexample;

  /// Number of body homomorphisms enumerated.
  std::uint64_t body_matches = 0;

  /// Total search nodes across body and head searches.
  std::uint64_t nodes = 0;

  /// Candidate tuples tried across all searches. Unlike `nodes` this is NOT
  /// invariant under HomSearchOptions::use_intersection — it is exactly the
  /// per-candidate filtering work the posting-list intersection prunes.
  std::uint64_t candidates = 0;
};

/// The standard seed for a head-witness search: a valuation over
/// `dep.head()`'s variable space with every universal variable bound to its
/// value in `body_match` and every existential variable left free. Shared by
/// satisfaction checking and the chase's applicability tests.
Valuation HeadSeedValuation(const Dependency& dep, const Valuation& body_match);

/// Allocation-free variant for match streams: writes the seed into *out,
/// reusing its buffers (after the first call per (caller, dep) no
/// allocation happens). `out` is caller-owned scratch — the reuse stays
/// per-caller, so concurrent match tasks still share nothing.
void HeadSeedValuationInto(const Dependency& dep, const Valuation& body_match,
                           Valuation* out);

/// Head-witness tester for ONE dependency against ONE instance, reusable
/// across a whole body-match stream: the search object, the seed-valuation
/// template and the universal-position list are built once, so the
/// per-match cost is the head search itself — not a dozen vector
/// allocations. Shared by satisfaction checking and the chase's match/fire
/// phases. Strictly single-thread like the search it wraps; concurrent
/// match tasks each own their checker (per-caller scratch, nothing
/// shared). Reuse is invisible in the counters: the same searches explore
/// the same nodes. Reads the instance through a reference, so it observes
/// tuples inserted between calls (the chase's firing phase relies on
/// this); both referents must outlive the checker.
class HeadChecker {
 public:
  HeadChecker(const Dependency& dep, const Instance& instance,
              const HomSearchOptions& options);

  /// True if `h` (a body match for the dependency) extends to its head;
  /// merges the head search's counters into *stats.
  bool Witnessed(const Valuation& h, HomSearchStats* stats);

 private:
  HomomorphismSearch search_;
  Valuation seed_template_;  ///< all-unbound head valuation
  std::vector<std::pair<int, int>> universals_;  ///< (attr, var) to seed
  Valuation seed_;
};

/// Checks whether `instance` satisfies `dep`.
SatisfactionResult CheckSatisfaction(const Dependency& dep,
                                     const Instance& instance,
                                     HomSearchOptions options = {});

/// Convenience: true iff the check returns kSatisfied.
bool Satisfies(const Instance& instance, const Dependency& dep);

/// Checks a set; returns the index of the first violated dependency, or -1
/// if all are satisfied. (Asserts if any check hits a budget.)
int FirstViolated(const DependencySet& deps, const Instance& instance);

}  // namespace tdlib

#endif  // TDLIB_CORE_SATISFACTION_H_
