#include "core/dependency.h"

#include <sstream>

#include "logic/homomorphism.h"

namespace tdlib {

int Dependency::Builder::Var(int attr, std::string name) {
  int id = body_.NewVariable(attr, name);
  int id2 = head_.NewVariable(attr, body_.VarName(attr, id));
  (void)id2;
  return id;
}

Result<Dependency> Dependency::Builder::Build() && {
  if (body_.num_rows() == 0) {
    return Result<Dependency>::Error("dependency has no antecedents");
  }
  if (head_.num_rows() == 0) {
    return Result<Dependency>::Error("dependency has no conclusion");
  }
  if (std::string err = body_.CheckInvariants(); !err.empty()) {
    return Result<Dependency>::Error("body: " + err);
  }
  if (std::string err = head_.CheckInvariants(); !err.empty()) {
    return Result<Dependency>::Error("head: " + err);
  }
  std::vector<std::vector<bool>> universal(body_.schema().arity());
  for (int attr = 0; attr < body_.schema().arity(); ++attr) {
    universal[attr].assign(body_.NumVars(attr), false);
  }
  for (const Row& r : body_.rows()) {
    for (int attr = 0; attr < body_.schema().arity(); ++attr) {
      universal[attr][r[attr]] = true;
    }
  }
  return Dependency(std::move(body_), std::move(head_), std::move(universal));
}

bool Dependency::IsFull() const {
  for (const Row& r : head_.rows()) {
    for (int attr = 0; attr < schema().arity(); ++attr) {
      if (!universal_[attr][r[attr]]) return false;
    }
  }
  return true;
}

bool Dependency::IsTrivial() const {
  // Trivial iff the head maps into the frozen body while fixing every
  // universal variable (identity on body variables).
  Instance frozen = body_.Freeze();
  HomomorphismSearch search(head_, frozen);
  Valuation initial = Valuation::For(head_);
  for (int attr = 0; attr < schema().arity(); ++attr) {
    for (int v = 0; v < head_.NumVars(attr); ++v) {
      if (universal_[attr][v]) initial.Set(attr, v, v);
    }
  }
  search.SetInitial(initial);
  return search.FindAny(nullptr) == HomSearchStatus::kFound;
}

std::string Dependency::ToString() const {
  auto render = [&](const Tableau& t) {
    std::vector<std::string> atoms;
    for (const Row& r : t.rows()) {
      std::string atom = "R(";
      for (int attr = 0; attr < schema().arity(); ++attr) {
        if (attr > 0) atom += ",";
        atom += t.VarName(attr, r[attr]);
      }
      atom += ")";
      atoms.push_back(std::move(atom));
    }
    std::string out;
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      if (i > 0) out += " & ";
      out += atoms[i];
    }
    return out;
  };
  return render(body_) + " => " + render(head_);
}

std::string Dependency::CheckInvariants() const {
  if (std::string err = body_.CheckInvariants(); !err.empty()) return err;
  if (std::string err = head_.CheckInvariants(); !err.empty()) return err;
  for (int attr = 0; attr < schema().arity(); ++attr) {
    if (body_.NumVars(attr) != head_.NumVars(attr)) {
      return "body/head variable space mismatch";
    }
    for (int v = 0; v < body_.NumVars(attr); ++v) {
      if (body_.VarName(attr, v) != head_.VarName(attr, v)) {
        return "body/head variable name mismatch";
      }
    }
  }
  if (body_.num_rows() == 0) return "empty body";
  if (head_.num_rows() == 0) return "empty head";
  return "";
}

Dependency Dependency::RenameVariables(const std::string& suffix) const {
  Builder b(schema_ptr());
  for (int attr = 0; attr < schema().arity(); ++attr) {
    for (int v = 0; v < body_.NumVars(attr); ++v) {
      b.Var(attr, body_.VarName(attr, v) + suffix);
    }
  }
  for (const Row& r : body_.rows()) b.AddBodyRow(r);
  for (const Row& r : head_.rows()) b.AddHeadRow(r);
  Result<Dependency> result = std::move(b).Build();
  // Renaming a valid dependency cannot fail.
  return std::move(result).value();
}

void DependencySet::Add(Dependency d, std::string name) {
  items.push_back(std::move(d));
  names.push_back(std::move(name));
}

std::string DependencySet::ToString() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i < names.size() && !names[i].empty()) oss << names[i] << ": ";
    oss << items[i].ToString() << "\n";
  }
  return oss.str();
}

}  // namespace tdlib
