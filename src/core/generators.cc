#include "core/generators.h"

namespace tdlib {

Dependency RandomDependency(Rng* rng, const TdGeneratorOptions& options,
                            SchemaPtr schema) {
  if (schema == nullptr) {
    schema = std::make_shared<const Schema>(
        Schema::Numbered(options.arity, "X"));
  }
  const int arity = schema->arity();
  Dependency::Builder builder(schema);
  std::vector<std::vector<int>> pool(arity);
  auto var = [&](int attr, bool reuse_only) {
    if (!pool[attr].empty() && (reuse_only || rng->Chance(1, 2))) {
      return pool[attr][rng->Below(pool[attr].size())];
    }
    int v = builder.Var(attr);
    pool[attr].push_back(v);
    return v;
  };
  for (int r = 0; r < options.body_rows; ++r) {
    Row row(arity);
    for (int attr = 0; attr < arity; ++attr) {
      row[attr] = var(attr, /*reuse_only=*/false);
    }
    builder.AddBodyRow(std::move(row));
  }
  for (int r = 0; r < options.head_rows; ++r) {
    Row row(arity);
    for (int attr = 0; attr < arity; ++attr) {
      row[attr] = var(attr, options.force_full);
    }
    builder.AddHeadRow(std::move(row));
  }
  return std::move(builder).Build().value();
}

Instance RandomInstance(Rng* rng, const SchemaPtr& schema, int domain,
                        int tuples) {
  Instance inst(schema);
  inst.Reserve(static_cast<std::size_t>(tuples),
               static_cast<std::size_t>(domain));
  for (int attr = 0; attr < schema->arity(); ++attr) {
    for (int v = 0; v < domain; ++v) inst.AddValue(attr);
  }
  for (int t = 0; t < tuples; ++t) {
    Tuple tuple(schema->arity());
    for (int attr = 0; attr < schema->arity(); ++attr) {
      tuple[attr] = static_cast<int>(rng->Below(domain));
    }
    inst.AddTuple(tuple);
  }
  return inst;
}

}  // namespace tdlib
