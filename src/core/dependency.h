// Template dependencies and embedded implicational dependencies.
//
// A template dependency (TD, Sadri & Ullman 1980) states: whenever the
// antecedent rows all match tuples of the database, a tuple matching the
// conclusion row is also present. Symbols of the conclusion that appear in
// the antecedents are universally quantified; the rest are existential.
//
//   R(a, b, c) & R(a, b', c')  =>  R(a*, b, c')        (the paper's Fig. 1)
//
// An embedded implicational dependency (EID, Chandra–Lewis–Makowsky 1981)
// generalizes the conclusion to a conjunction of atoms. tdlib represents
// both with one class, `Dependency`; `IsTd()` distinguishes them. The paper
// proves its result for TDs, which strengthens the EID result — keeping both
// in the library lets the test suite exercise exactly that containment.
#ifndef TDLIB_CORE_DEPENDENCY_H_
#define TDLIB_CORE_DEPENDENCY_H_

#include <string>
#include <vector>

#include "logic/tableau.h"
#include "util/status.h"

namespace tdlib {

/// An implicational dependency body => head over a single typed relation.
///
/// Body and head are tableaux over one shared variable space: both Tableau
/// objects carry identical per-attribute variable counts and names. A
/// variable is *universal* iff it occurs in some body row; all other
/// variables are existentially quantified in the head.
class Dependency {
 public:
  /// Use DependencyBuilder to construct; this type is immutable after build.
  class Builder;

  const Schema& schema() const { return body_.schema(); }
  const SchemaPtr& schema_ptr() const { return body_.schema_ptr(); }

  const Tableau& body() const { return body_; }
  const Tableau& head() const { return head_; }

  /// True iff this is a template dependency (single conclusion atom).
  bool IsTd() const { return head_.num_rows() == 1; }

  /// True iff variable (attr, var) occurs in the body ("universal").
  bool IsUniversal(int attr, int var) const { return universal_[attr][var]; }

  /// A dependency is *full* when every head variable is universal (the
  /// paper: "if a*, b*, ..., c* all appear among the antecedents, then the
  /// dependency is said to be full, otherwise embedded").
  bool IsFull() const;

  /// A dependency is *trivial* when the head already maps into the body
  /// fixing universal variables — such a dependency holds in every database.
  bool IsTrivial() const;

  /// Human-readable single-line rendering:
  ///   R(a,b,c) & R(a,b1,c1) => R(a2,b,c1)
  std::string ToString() const;

  /// Structural validation; returns "" or a description of the first
  /// problem (empty body, head/body variable-space mismatch, ...).
  std::string CheckInvariants() const;

  /// Builds a copy of this dependency whose variables are freshly renamed
  /// (used when the same dependency is instantiated repeatedly).
  Dependency RenameVariables(const std::string& suffix) const;

 private:
  Dependency(Tableau body, Tableau head,
             std::vector<std::vector<bool>> universal)
      : body_(std::move(body)),
        head_(std::move(head)),
        universal_(std::move(universal)) {}

  Tableau body_;
  Tableau head_;
  std::vector<std::vector<bool>> universal_;  // [attr][var]
};

/// Incrementally assembles a Dependency. Typical use:
///
///   Dependency::Builder b(schema);
///   int a = b.Var(0, "a"), s1 = b.Var(1, "b"), ...;
///   b.AddBodyRow({a, s1, z1});
///   b.AddHeadRow({a2, s1, z2});
///   Dependency d = std::move(b).Build().value();
class Dependency::Builder {
 public:
  explicit Builder(SchemaPtr schema) : body_(schema), head_(std::move(schema)) {}

  /// Allocates a fresh typed variable; usable in body and head rows.
  int Var(int attr, std::string name = "");

  /// Appends an antecedent atom.
  void AddBodyRow(Row row) { body_.AddRow(std::move(row)); }

  /// Appends a conclusion atom.
  void AddHeadRow(Row row) { head_.AddRow(std::move(row)); }

  /// Validates and produces the dependency.
  Result<Dependency> Build() &&;

 private:
  Tableau body_;
  Tableau head_;
};

/// A named finite set of dependencies (the paper's "D").
struct DependencySet {
  std::vector<Dependency> items;
  std::vector<std::string> names;  ///< parallel to items; may be empty

  void Add(Dependency d, std::string name = "");
  std::string ToString() const;
};

}  // namespace tdlib

#endif  // TDLIB_CORE_DEPENDENCY_H_
