#include "core/parser.h"

#include <cctype>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace tdlib {
namespace {

// A tiny hand-rolled tokenizer over the dependency grammar.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  // Token kinds: identifier, punctuation ('(', ')', ',', '&'), arrow "=>",
  // or end. Returned as strings; "" means end of input.
  std::string Next() {
    SkipSpace();
    if (pos_ >= text_.size()) return "";
    char c = text_[pos_];
    if (c == '(' || c == ')' || c == ',' || c == '&') {
      ++pos_;
      return std::string(1, c);
    }
    if (c == '=' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      pos_ += 2;
      return "=>";
    }
    if (IsIdentStart(c)) {
      std::size_t start = pos_;
      while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
      return std::string(text_.substr(start, pos_ - start));
    }
    ++pos_;
    return std::string(1, c);  // unknown char; parser will reject it
  }

  std::string Peek() {
    std::size_t save = pos_;
    std::string tok = Next();
    pos_ = save;
    return tok;
  }

 private:
  static bool IsIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '\'' || c == '*';
  }
  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

struct AtomList {
  std::vector<std::vector<std::string>> atoms;  // variable names per column
};

// Parses "R(v,...) & R(v,...) & ..." until `stop` or end.
Result<AtomList> ParseAtoms(Lexer* lex, const Schema& schema,
                            const std::string& stop) {
  AtomList list;
  while (true) {
    std::string tok = lex->Next();
    if (tok != "R") {
      return Result<AtomList>::Error("expected atom 'R(...)', got '" + tok + "'");
    }
    if (lex->Next() != "(") return Result<AtomList>::Error("expected '('");
    std::vector<std::string> vars;
    while (true) {
      std::string v = lex->Next();
      if (v.empty() || v == "," || v == ")" || v == "&" || v == "=>") {
        return Result<AtomList>::Error("expected variable name");
      }
      vars.push_back(v);
      std::string sep = lex->Next();
      if (sep == ")") break;
      if (sep != ",") return Result<AtomList>::Error("expected ',' or ')'");
    }
    if (static_cast<int>(vars.size()) != schema.arity()) {
      return Result<AtomList>::Error(
          "atom has " + std::to_string(vars.size()) + " columns, schema has " +
          std::to_string(schema.arity()));
    }
    list.atoms.push_back(std::move(vars));
    std::string next = lex->Peek();
    if (next == "&") {
      lex->Next();
      continue;
    }
    if (next == stop || next.empty()) return list;
    return Result<AtomList>::Error("unexpected token '" + next + "'");
  }
}

}  // namespace

Result<Dependency> ParseDependency(const SchemaPtr& schema,
                                   std::string_view text) {
  Lexer lex(text);
  Result<AtomList> body = ParseAtoms(&lex, *schema, "=>");
  if (!body.ok()) return Result<Dependency>::Error(body.error());
  if (lex.Next() != "=>") {
    return Result<Dependency>::Error("expected '=>'");
  }
  Result<AtomList> head = ParseAtoms(&lex, *schema, "");
  if (!head.ok()) return Result<Dependency>::Error(head.error());

  Dependency::Builder builder(schema);
  // name -> (attr, var id); enforces the typing restriction.
  std::map<std::string, std::pair<int, int>> vars;
  auto intern = [&](const std::string& name, int attr) -> Result<int> {
    auto it = vars.find(name);
    if (it != vars.end()) {
      if (it->second.first != attr) {
        return Result<int>::Error(
            "variable '" + name + "' appears in two different columns ('" +
            schema->name(it->second.first) + "' and '" + schema->name(attr) +
            "'), violating the typing restriction");
      }
      return it->second.second;
    }
    int id = builder.Var(attr, name);
    vars.emplace(name, std::make_pair(attr, id));
    return id;
  };
  auto add_rows = [&](const AtomList& list, bool is_body) -> std::string {
    for (const auto& atom : list.atoms) {
      Row row(schema->arity());
      for (int attr = 0; attr < schema->arity(); ++attr) {
        Result<int> v = intern(atom[attr], attr);
        if (!v.ok()) return v.error();
        row[attr] = v.value();
      }
      if (is_body) {
        builder.AddBodyRow(std::move(row));
      } else {
        builder.AddHeadRow(std::move(row));
      }
    }
    return "";
  };
  if (std::string err = add_rows(body.value(), true); !err.empty()) {
    return Result<Dependency>::Error(err);
  }
  if (std::string err = add_rows(head.value(), false); !err.empty()) {
    return Result<Dependency>::Error(err);
  }
  return std::move(builder).Build();
}

std::string FormatDependency(const Dependency& dep) { return dep.ToString(); }

Result<DependencySet> ParseDependencyProgram(std::string_view text,
                                             SchemaPtr* schema_out) {
  DependencySet set;
  SchemaPtr schema;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fail = [&](const std::string& msg) {
      return Result<DependencySet>::Error("line " + std::to_string(line_no) +
                                          ": " + msg);
    };
    if (StartsWith(trimmed, "schema")) {
      if (schema != nullptr) return fail("duplicate schema line");
      std::vector<std::string> parts = SplitAndTrim(trimmed.substr(6), ' ');
      std::vector<std::string> names;
      for (auto& p : parts) {
        if (!p.empty()) names.push_back(std::move(p));
      }
      Schema s(std::move(names));
      if (std::string err = s.Validate(); !err.empty()) return fail(err);
      schema = std::make_shared<const Schema>(std::move(s));
      continue;
    }
    if (StartsWith(trimmed, "td")) {
      if (schema == nullptr) return fail("'td' before 'schema'");
      std::string_view rest = Trim(trimmed.substr(2));
      std::string name;
      std::size_t colon = rest.find(':');
      if (colon != std::string_view::npos) {
        name = std::string(Trim(rest.substr(0, colon)));
        rest = Trim(rest.substr(colon + 1));
      }
      Result<Dependency> dep = ParseDependency(schema, rest);
      if (!dep.ok()) return fail(dep.error());
      set.Add(std::move(dep).value(), std::move(name));
      continue;
    }
    return fail("unrecognized directive: '" + std::string(trimmed) + "'");
  }
  if (schema == nullptr) {
    return Result<DependencySet>::Error("missing 'schema' line");
  }
  if (schema_out != nullptr) *schema_out = schema;
  return set;
}

}  // namespace tdlib
