#include "core/diagram.h"

#include <algorithm>
#include <sstream>

#include "util/union_find.h"

namespace tdlib {

Diagram::Diagram(SchemaPtr schema, int num_antecedents)
    : schema_(std::move(schema)), num_antecedents_(num_antecedents) {}

void Diagram::AddEdge(int attr, int u, int v) {
  edges_.push_back(Edge{attr, u, v});
}

bool Diagram::AddEdgeByName(const std::string& attr_name, int u, int v) {
  int attr = schema_->IndexOf(attr_name);
  if (attr < 0) return false;
  AddEdge(attr, u, v);
  return true;
}

std::vector<int> Diagram::Classes(int attr) const {
  UnionFind uf(num_nodes());
  for (const Edge& e : edges_) {
    if (e.attr == attr) uf.Union(e.u, e.v);
  }
  return uf.DenseClassIds();
}

bool Diagram::Agree(int attr, int u, int v) const {
  std::vector<int> classes = Classes(attr);
  return classes[u] == classes[v];
}

Result<Dependency> Diagram::ToDependency() const {
  if (std::string err = CheckInvariants(); !err.empty()) {
    return Result<Dependency>::Error(err);
  }
  Dependency::Builder builder(schema_);
  // vars[attr][class] -> variable id
  std::vector<std::vector<int>> node_var(schema_->arity(),
                                         std::vector<int>(num_nodes(), -1));
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    std::vector<int> classes = Classes(attr);
    int num_classes = 0;
    for (int c : classes) num_classes = std::max(num_classes, c + 1);
    std::vector<int> class_var(num_classes, -1);
    for (int node = 0; node < num_nodes(); ++node) {
      int c = classes[node];
      if (class_var[c] < 0) class_var[c] = builder.Var(attr);
      node_var[attr][node] = class_var[c];
    }
  }
  for (int node = 0; node < num_antecedents_; ++node) {
    Row row(schema_->arity());
    for (int attr = 0; attr < schema_->arity(); ++attr) {
      row[attr] = node_var[attr][node];
    }
    builder.AddBodyRow(std::move(row));
  }
  Row conclusion(schema_->arity());
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    conclusion[attr] = node_var[attr][conclusion_node()];
  }
  builder.AddHeadRow(std::move(conclusion));
  return std::move(builder).Build();
}

Result<Diagram> Diagram::FromDependency(const Dependency& dep) {
  if (!dep.IsTd()) {
    return Result<Diagram>::Error(
        "diagrams represent template dependencies (single conclusion atom)");
  }
  Diagram diagram(dep.schema_ptr(), dep.body().num_rows());
  // Nodes: body row i -> node i; head row -> conclusion node.
  // For each attribute, group nodes by variable and add a spanning path.
  for (int attr = 0; attr < dep.schema().arity(); ++attr) {
    std::vector<int> last_node_with_var(dep.body().NumVars(attr), -1);
    auto link = [&](int node, int var) {
      if (last_node_with_var[var] >= 0) {
        diagram.AddEdge(attr, last_node_with_var[var], node);
      }
      last_node_with_var[var] = node;
    };
    for (int i = 0; i < dep.body().num_rows(); ++i) {
      link(i, dep.body().row(i)[attr]);
    }
    link(diagram.conclusion_node(), dep.head().row(0)[attr]);
  }
  return diagram;
}

std::string Diagram::CheckInvariants() const {
  for (const Edge& e : edges_) {
    if (e.attr < 0 || e.attr >= schema_->arity()) return "edge attr out of range";
    if (e.u < 0 || e.u >= num_nodes() || e.v < 0 || e.v >= num_nodes()) {
      return "edge endpoint out of range";
    }
  }
  if (num_antecedents_ <= 0) return "diagram needs at least one antecedent";
  return "";
}

std::string Diagram::ToDot() const {
  std::ostringstream oss;
  oss << "graph dependency {\n";
  for (int node = 0; node < num_nodes(); ++node) {
    if (node == conclusion_node()) {
      oss << "  n" << node << " [label=\"*\", shape=doublecircle];\n";
    } else {
      oss << "  n" << node << " [label=\"" << (node + 1) << "\"];\n";
    }
  }
  for (const Edge& e : edges_) {
    oss << "  n" << e.u << " -- n" << e.v << " [label=\""
        << schema_->name(e.attr) << "\"];\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace tdlib
