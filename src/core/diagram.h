// Fagin-style dependency diagrams (the notation of the paper's figures).
//
// "A dependency with k antecedents and one conclusion is represented by an
//  undirected graph with k + 1 nodes. The nodes represent tuples in the
//  relation, and the labels of edges are attributes on which those tuples
//  agree. ... A numbered node is an antecedent, and the node labelled * is
//  the conclusion."
//
// Each attribute's edges generate an equivalence relation on nodes; implied
// edges may be omitted. Diagram <-> Dependency conversions are exact up to
// variable renaming and implied-edge closure.
#ifndef TDLIB_CORE_DIAGRAM_H_
#define TDLIB_CORE_DIAGRAM_H_

#include <string>
#include <vector>

#include "core/dependency.h"
#include "logic/schema.h"
#include "util/status.h"

namespace tdlib {

/// An undirected, attribute-labeled multigraph over k+1 tuple nodes, one of
/// which is the conclusion node "*".
class Diagram {
 public:
  struct Edge {
    int attr;  ///< attribute whose value the two tuples share
    int u;     ///< node id
    int v;     ///< node id
  };

  /// Creates a diagram with `num_antecedents` antecedent nodes (ids
  /// 0..num_antecedents-1) and one conclusion node (id num_antecedents).
  Diagram(SchemaPtr schema, int num_antecedents);

  const Schema& schema() const { return *schema_; }
  int num_nodes() const { return num_antecedents_ + 1; }
  int num_antecedents() const { return num_antecedents_; }

  /// The conclusion node's id (the paper's "*").
  int conclusion_node() const { return num_antecedents_; }

  /// Adds an agreement edge: nodes `u` and `v` share their `attr` value.
  void AddEdge(int attr, int u, int v);

  /// Adds an edge by attribute name. Returns false if the name is unknown.
  bool AddEdgeByName(const std::string& attr_name, int u, int v);

  const std::vector<Edge>& edges() const { return edges_; }

  /// True iff `u` and `v` are in the same `attr`-equivalence class (follows
  /// implied edges, i.e. the transitive closure).
  bool Agree(int attr, int u, int v) const;

  /// Dense equivalence-class ids of all nodes under `attr` (class ids are
  /// in order of first node appearance).
  std::vector<int> Classes(int attr) const;

  /// Converts to a template dependency: one variable per (attribute,
  /// equivalence class); the conclusion node's variable is existential when
  /// its class contains no antecedent node.
  Result<Dependency> ToDependency() const;

  /// Builds the diagram of a TD (head must have exactly one row): one node
  /// per body row plus the conclusion node; edges connect nodes whose rows
  /// share a variable (a spanning path per class, not the full clique —
  /// "implied edges may be omitted in diagrams to avoid clutter").
  static Result<Diagram> FromDependency(const Dependency& dep);

  /// Structural validation ("" = OK).
  std::string CheckInvariants() const;

  /// GraphViz rendering (undirected; node "*" for the conclusion), for
  /// documentation and debugging.
  std::string ToDot() const;

 private:
  SchemaPtr schema_;
  int num_antecedents_;
  std::vector<Edge> edges_;
};

}  // namespace tdlib

#endif  // TDLIB_CORE_DIAGRAM_H_
