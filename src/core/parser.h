// Text format for dependencies.
//
// Grammar (whitespace-insensitive, '#' starts a line comment):
//
//   dependency  := atoms "=>" atoms
//   atoms       := atom ("&" atom)*
//   atom        := "R" "(" var ("," var)* ")"
//   var         := [A-Za-z_][A-Za-z0-9_'*]*
//
// The relation symbol is always R (the paper's single-relation setting).
// Variable typing is positional: the same variable name in two different
// columns is a parse error, enforcing the paper's typing restriction.
// Variables that appear only after "=>" are existential.
//
// Example (the paper's Fig. 1):
//   R(a,b,c) & R(a,b2,c2) => R(a9,b,c2)
#ifndef TDLIB_CORE_PARSER_H_
#define TDLIB_CORE_PARSER_H_

#include <string>
#include <string_view>

#include "core/dependency.h"
#include "util/status.h"

namespace tdlib {

/// Parses one dependency over the given schema.
Result<Dependency> ParseDependency(const SchemaPtr& schema,
                                   std::string_view text);

/// Renders a dependency in the grammar above; round-trips through
/// ParseDependency up to whitespace.
std::string FormatDependency(const Dependency& dep);

/// Parses a multi-line program:
///
///   schema A B C
///   td name1: R(a,b,c) & R(a,b2,c2) => R(a9,b,c2)
///   td name2: ...
///
/// Returns the set; the schema line must come first.
Result<DependencySet> ParseDependencyProgram(std::string_view text,
                                             SchemaPtr* schema_out);

}  // namespace tdlib

#endif  // TDLIB_CORE_PARSER_H_
