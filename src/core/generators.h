// Workload generators shared by tests and benchmarks.
//
// All generators are deterministic functions of the Rng seed (EXPERIMENTS.md
// records seeds), and the distributions are intentionally simple: variable
// reuse with probability 1/2 makes agreements (the interesting structure of
// typed TDs) common without hand-tuning.
#ifndef TDLIB_CORE_GENERATORS_H_
#define TDLIB_CORE_GENERATORS_H_

#include "core/dependency.h"
#include "logic/instance.h"
#include "util/rng.h"

namespace tdlib {

struct TdGeneratorOptions {
  int arity = 3;
  int body_rows = 2;
  int head_rows = 1;        ///< >1 generates EIDs
  bool force_full = false;  ///< head draws only from body variables
};

/// Generates a random dependency over a fresh numbered schema (or over
/// `schema` when provided; its arity then overrides options.arity).
Dependency RandomDependency(Rng* rng, const TdGeneratorOptions& options,
                            SchemaPtr schema = nullptr);

/// Generates a random instance: `domain` values per attribute, `tuples`
/// uniform draws (duplicates collapse, so the result may be smaller).
Instance RandomInstance(Rng* rng, const SchemaPtr& schema, int domain,
                        int tuples);

}  // namespace tdlib

#endif  // TDLIB_CORE_GENERATORS_H_
