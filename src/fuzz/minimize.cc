// Divergence minimization: greedy delta-debugging over the structure of a
// diverging job. Two granularities, coarse to fine — drop whole premise
// dependencies, then drop individual body/head rows of every remaining
// tableau — iterated to a fixpoint. The predicate is the harness itself:
// a removal is kept iff CheckJobAcrossAxes still reports a divergence.
//
// Minimization re-solves the job many times, so it only runs after a
// divergence is found — the steady-state fuzz loop never pays for it.
#include <string>
#include <utility>
#include <vector>

#include "core/dependency.h"
#include "fuzz/fuzz.h"

namespace tdlib {
namespace {

bool StillDiverges(const Job& job, const FuzzOptions& options) {
  return !CheckJobAcrossAxes(job, options).empty();
}

// Rebuilds `dep` without body row `drop_body` / head row `drop_head`
// (either may be -1 = keep all). Variables are compacted: only ids still
// referenced by a surviving row are re-allocated, in ascending order per
// attribute, preserving their names. Returns false when the reduced
// dependency is structurally invalid (e.g. empty body) — the caller just
// skips that removal.
bool DropRow(const Dependency& dep, int drop_body, int drop_head,
             Dependency* out) {
  const Tableau& body = dep.body();
  const Tableau& head = dep.head();
  const int arity = dep.schema().arity();

  std::vector<Row> body_rows, head_rows;
  for (int i = 0; i < body.num_rows(); ++i) {
    if (i != drop_body) body_rows.push_back(body.row(i));
  }
  for (int i = 0; i < head.num_rows(); ++i) {
    if (i != drop_head) head_rows.push_back(head.row(i));
  }
  if (body_rows.empty() || head_rows.empty()) return false;

  // Per-attribute old-id -> new-id map over the surviving rows.
  std::vector<std::vector<int>> remap(static_cast<std::size_t>(arity));
  for (int attr = 0; attr < arity; ++attr) {
    remap[attr].assign(static_cast<std::size_t>(body.NumVars(attr)), -1);
  }
  Dependency::Builder builder(dep.schema_ptr());
  auto remap_rows = [&](std::vector<Row>* rows) {
    for (Row& row : *rows) {
      for (int attr = 0; attr < arity; ++attr) {
        int& v = row[static_cast<std::size_t>(attr)];
        if (remap[attr][static_cast<std::size_t>(v)] < 0) {
          remap[attr][static_cast<std::size_t>(v)] =
              builder.Var(attr, body.VarName(attr, v));
        }
        v = remap[attr][static_cast<std::size_t>(v)];
      }
    }
  };
  remap_rows(&body_rows);
  remap_rows(&head_rows);
  for (Row& row : body_rows) builder.AddBodyRow(std::move(row));
  for (Row& row : head_rows) builder.AddHeadRow(std::move(row));
  Result<Dependency> built = std::move(builder).Build();
  if (!built.ok()) return false;
  *out = std::move(built).value();
  return true;
}

// One pass of premise dropping; returns true if anything was removed.
bool ShrinkPremises(Job* job, const FuzzOptions& options) {
  bool shrunk = false;
  for (std::size_t i = 0; i < job->dependencies.items.size();) {
    Job candidate = *job;
    candidate.dependencies.items.erase(candidate.dependencies.items.begin() +
                                       static_cast<std::ptrdiff_t>(i));
    if (i < candidate.dependencies.names.size()) {
      candidate.dependencies.names.erase(
          candidate.dependencies.names.begin() +
          static_cast<std::ptrdiff_t>(i));
    }
    if (StillDiverges(candidate, options)) {
      *job = std::move(candidate);
      shrunk = true;  // same index now holds the next premise
    } else {
      ++i;
    }
  }
  return shrunk;
}

// One pass of row dropping over one dependency slot (a premise index, or
// the goal when index < 0); returns true if anything was removed.
bool ShrinkRows(Job* job, int premise_index, const FuzzOptions& options) {
  bool shrunk = false;
  auto current = [&]() -> const Dependency& {
    return premise_index < 0
               ? job->goal
               : job->dependencies.items[static_cast<std::size_t>(
                     premise_index)];
  };
  auto try_drop = [&](int drop_body, int drop_head) {
    Dependency reduced = current();
    if (!DropRow(current(), drop_body, drop_head, &reduced)) return false;
    Job candidate = *job;
    if (premise_index < 0) {
      candidate.goal = std::move(reduced);
    } else {
      candidate.dependencies.items[static_cast<std::size_t>(premise_index)] =
          std::move(reduced);
    }
    if (!StillDiverges(candidate, options)) return false;
    *job = std::move(candidate);
    return true;
  };
  for (int i = 0; i < current().body().num_rows();) {
    if (try_drop(i, -1)) {
      shrunk = true;  // rows shifted down; retry the same index
    } else {
      ++i;
    }
  }
  for (int i = 0; i < current().head().num_rows();) {
    if (try_drop(-1, i)) {
      shrunk = true;
    } else {
      ++i;
    }
  }
  return shrunk;
}

}  // namespace

Job MinimizeDivergence(const Job& job, const FuzzOptions& options) {
  if (!StillDiverges(job, options)) return job;
  Job minimal = job;
  bool progressed = true;
  while (progressed) {
    progressed = ShrinkPremises(&minimal, options);
    for (int i = -1;
         i < static_cast<int>(minimal.dependencies.items.size()); ++i) {
      progressed = ShrinkRows(&minimal, i, options) || progressed;
    }
  }
  return minimal;
}

}  // namespace tdlib
