// Repro files: a diverging (usually minimized) job rendered as a
// core/parser dependency program, replayable with `tdfuzz --replay=FILE`.
// The format is deliberately the same one FileWorkload reads — '#' header
// lines, a `schema` line, `td` lines, last td = goal — so a repro can also
// be fed straight to tdbatch for ad-hoc poking.
#include <cctype>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/parser.h"
#include "fuzz/fuzz.h"
#include "logic/schema.h"

namespace tdlib {
namespace {

// True iff `name` is a token the parser grammar accepts:
// [A-Za-z_][A-Za-z0-9_'*]*.
bool ParseableName(const std::string& name) {
  if (name.empty()) return false;
  auto head = static_cast<unsigned char>(name[0]);
  if (!std::isalpha(head) && name[0] != '_') return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    auto c = static_cast<unsigned char>(name[i]);
    if (!std::isalnum(c) && name[i] != '_' && name[i] != '\'' &&
        name[i] != '*') {
      return false;
    }
  }
  return true;
}

// True iff formatting `dep` and re-parsing it reconstructs the same
// dependency: every variable name is grammatical AND no two distinct
// variables share a name (the parser interns by name, so a duplicate would
// silently unify two variables — worse than a parse error).
bool RoundTripSafe(const Dependency& dep) {
  const Tableau& body = dep.body();
  std::set<std::string> seen;
  for (int attr = 0; attr < dep.schema().arity(); ++attr) {
    for (int v = 0; v < body.NumVars(attr); ++v) {
      const std::string& name = body.VarName(attr, v);
      if (!ParseableName(name) || !seen.insert(name).second) return false;
    }
  }
  return true;
}

bool RoundTripSafe(const Job& job) {
  const Schema& schema = job.goal.schema();
  for (int attr = 0; attr < schema.arity(); ++attr) {
    if (!ParseableName(schema.name(attr))) return false;
  }
  for (const Dependency& dep : job.dependencies.items) {
    if (!RoundTripSafe(dep)) return false;
  }
  return RoundTripSafe(job.goal);
}

// Rebuilds `dep` over `schema` with synthetic collision-free variable names
// c<attr>_<id> (the '_' separator keeps c1_23 and c12_3 distinct).
Dependency CanonicalizeDependency(const Dependency& dep,
                                  const SchemaPtr& schema) {
  const int arity = dep.schema().arity();
  Dependency::Builder builder(schema);
  std::vector<std::vector<int>> remap(static_cast<std::size_t>(arity));
  for (int attr = 0; attr < arity; ++attr) {
    remap[attr].assign(
        static_cast<std::size_t>(dep.body().NumVars(attr)), -1);
  }
  auto add_rows = [&](const Tableau& tableau, bool to_body) {
    for (const Row& original : tableau.rows()) {
      Row row = original;
      for (int attr = 0; attr < arity; ++attr) {
        int& v = row[static_cast<std::size_t>(attr)];
        if (remap[attr][static_cast<std::size_t>(v)] < 0) {
          remap[attr][static_cast<std::size_t>(v)] = builder.Var(
              attr, "c" + std::to_string(attr) + "_" + std::to_string(v));
        }
        v = remap[attr][static_cast<std::size_t>(v)];
      }
      if (to_body) {
        builder.AddBodyRow(std::move(row));
      } else {
        builder.AddHeadRow(std::move(row));
      }
    }
  };
  add_rows(dep.body(), true);
  add_rows(dep.head(), false);
  // The input was a valid dependency and the rebuild is a pure renaming,
  // so Build() cannot fail.
  return std::move(builder).Build().value();
}

// Renames attributes to C0..C{n-1} and variables to c<attr>_<id> — a pure
// isomorphism, applied when the job's own names would not survive the
// format -> parse round trip (reduction schemas use primed and digit-led
// attribute names the grammar rejects).
Job CanonicalizeJob(const Job& job) {
  const int arity = job.goal.schema().arity();
  std::vector<std::string> attr_names;
  attr_names.reserve(static_cast<std::size_t>(arity));
  for (int attr = 0; attr < arity; ++attr) {
    attr_names.push_back("C" + std::to_string(attr));
  }
  SchemaPtr schema = MakeSchema(std::move(attr_names));
  Job canonical = job;
  for (Dependency& dep : canonical.dependencies.items) {
    dep = CanonicalizeDependency(dep, schema);
  }
  canonical.goal = CanonicalizeDependency(canonical.goal, schema);
  return canonical;
}

}  // namespace

std::string FormatReproProgram(const Job& original_job,
                               const FuzzOptions& options,
                               const std::string& axis) {
  const Job job =
      RoundTripSafe(original_job) ? original_job : CanonicalizeJob(original_job);
  std::ostringstream oss;
  oss << "# tdfuzz repro: case=" << job.name << " axis=" << axis
      << " seed=" << options.seed << "\n";
  oss << "# replay with: tdfuzz --replay=<this file>\n";
  const Schema& schema = job.goal.schema();
  oss << "schema";
  for (int attr = 0; attr < schema.arity(); ++attr) {
    oss << ' ' << schema.name(attr);
  }
  oss << '\n';
  for (std::size_t i = 0; i < job.dependencies.items.size(); ++i) {
    std::string name = i < job.dependencies.names.size() &&
                               !job.dependencies.names[i].empty()
                           ? job.dependencies.names[i]
                           : "p" + std::to_string(i);
    oss << "td " << name << ": "
        << FormatDependency(job.dependencies.items[i]) << '\n';
  }
  oss << "td goal: " << FormatDependency(job.goal) << '\n';
  return oss.str();
}

Result<Job> ParseReproProgram(std::string_view text) {
  SchemaPtr schema;
  Result<DependencySet> parsed = ParseDependencyProgram(text, &schema);
  if (!parsed.ok()) {
    return Result<Job>::Error(ErrorCode::kParseError,
                              "repro program: " + parsed.error());
  }
  DependencySet deps = std::move(parsed).value();
  if (deps.items.empty()) {
    return Result<Job>::Error(
        ErrorCode::kParseError,
        "repro program has no td lines (the last td is the goal; at least "
        "one is required)");
  }
  Dependency goal = std::move(deps.items.back());
  deps.items.pop_back();
  if (!deps.names.empty()) deps.names.pop_back();
  return Job{"replay", std::move(deps), std::move(goal), DualSolverConfig{},
             0};
}

}  // namespace tdlib
