// Case generation for tdfuzz: three families, all pure in (seed, round,
// index). The families are chosen to cover the three behavioral regimes of
// the dual solver — quickly-terminating random questions, the structured
// semigroup-reduction instances (whose regimes interleave implied /
// refuted / gap), and Fig.1-style embedded pumping gadgets whose chase
// side never terminates (the regime where budgets, checkpoints and resume
// actually bind).
#include <string>
#include <utility>
#include <vector>

#include "core/generators.h"
#include "core/parser.h"
#include "engine/workload.h"
#include "fuzz/fuzz.h"
#include "logic/schema.h"
#include "util/rng.h"

namespace tdlib {
namespace {

// SplitMix64 finalizer: decorrelates (seed, round, index) into an Rng seed
// so neighboring rounds/cases share no draw stream.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t CaseSeed(std::uint64_t seed, std::uint64_t round,
                       std::uint64_t index) {
  return Mix(seed ^ Mix(round ^ Mix(index)));
}

// Redraws a goal until it is non-trivial (a trivial goal holds everywhere
// and the case degenerates); bounded so a pathological generator setting
// cannot loop forever.
Dependency NonTrivialGoal(Rng* rng, const TdGeneratorOptions& gen,
                          const SchemaPtr& schema) {
  Dependency goal = RandomDependency(rng, gen, schema);
  for (int redraw = 0; goal.IsTrivial() && redraw < 64; ++redraw) {
    goal = RandomDependency(rng, gen, schema);
  }
  return goal;
}

Job RandomTdCase(std::uint64_t case_seed, std::string name,
                 const DualSolverConfig& solver) {
  Rng rng(case_seed);
  TdGeneratorOptions gen;
  gen.arity = rng.IntIn(2, 3);
  gen.body_rows = rng.IntIn(1, 3);
  gen.head_rows = rng.IntIn(1, 2);
  gen.force_full = rng.Chance(1, 2);
  DependencySet deps;
  Dependency first = RandomDependency(&rng, gen);
  SchemaPtr schema = first.schema_ptr();
  deps.Add(std::move(first), "p0");
  const int extra = rng.IntIn(1, 2);
  for (int k = 0; k < extra; ++k) {
    gen.force_full = rng.Chance(1, 2);
    deps.Add(RandomDependency(&rng, gen, schema), "p" + std::to_string(k + 1));
  }
  gen.force_full = false;
  Dependency goal = NonTrivialGoal(&rng, gen, schema);
  return Job{std::move(name), std::move(deps), std::move(goal), solver, 0};
}

Job ReductionCase(std::uint64_t case_seed, std::string name,
                  const DualSolverConfig& solver) {
  Rng rng(case_seed);
  // The sweep is deterministic in its size; vary the size a little and pick
  // one job from it, so successive rounds walk different presentation
  // shapes without re-deriving the reduction machinery here.
  WorkloadOptions options;
  options.size = 6 + static_cast<int>(rng.Below(6));
  std::vector<Job> sweep = ReductionSweepWorkload(options);
  Job picked = std::move(sweep[rng.Below(sweep.size())]);
  picked.name = std::move(name);
  picked.config = solver;
  picked.priority = 0;
  return picked;
}

Job GadgetCase(std::uint64_t case_seed, std::string name,
               const DualSolverConfig& solver) {
  Rng rng(case_seed);
  // The paper's Fig.1 embedded TD: every fire invents a fresh a9, which
  // enables the next fire — the canonical pumping gadget, and the shape
  // where checkpoint/resume and burst capping are actually exercised.
  SchemaPtr schema = MakeSchema({"A", "B", "C"});
  Result<Dependency> fig1 =
      ParseDependency(schema, "R(a,b,c) & R(a,b2,c2) => R(a9,b,c2)");
  DependencySet deps;
  deps.Add(std::move(fig1).value(), "fig1");
  TdGeneratorOptions gen;
  gen.body_rows = rng.IntIn(1, 2);
  gen.head_rows = 1;
  if (rng.Chance(1, 2)) {
    gen.force_full = true;  // a full companion keeps some cases terminating
    deps.Add(RandomDependency(&rng, gen, schema), "extra");
  }
  gen.force_full = false;
  gen.body_rows = 2;
  Dependency goal = NonTrivialGoal(&rng, gen, schema);
  return Job{std::move(name), std::move(deps), std::move(goal), solver, 0};
}

}  // namespace

std::vector<Job> GenerateFuzzCases(const FuzzOptions& options,
                                   std::uint64_t round) {
  std::vector<Job> cases;
  cases.reserve(static_cast<std::size_t>(options.cases_per_round));
  const DualSolverConfig solver = FuzzSolverConfig(options);
  for (int i = 0; i < options.cases_per_round; ++i) {
    const std::uint64_t case_seed =
        CaseSeed(options.seed, round, static_cast<std::uint64_t>(i));
    std::string name = "r" + std::to_string(round) + "/c" + std::to_string(i);
    switch (i % 3) {
      case 0:
        cases.push_back(RandomTdCase(case_seed, "random/" + name, solver));
        break;
      case 1:
        cases.push_back(
            ReductionCase(case_seed, "reduction/" + name, solver));
        break;
      default:
        cases.push_back(GadgetCase(case_seed, "gadget/" + name, solver));
        break;
    }
  }
  return cases;
}

}  // namespace tdlib
