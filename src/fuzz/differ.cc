// The differential runner: one reference solve per case, then one solve
// per axis variant, each compared under its invariance class.
//
// Reference shape (the configuration every byte-identity promise is stated
// against): delta matching, serial, row-major layout, intersection + SIMD
// on, no auto-burst, trace recording on, pure step/tuple budgets (no
// deadline, no per-search node budget — the two knobs documented to void
// cross-mode identity by stopping searches mid-stream).
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cache/result_cache.h"
#include "chase/dual_solver.h"
#include "engine/service.h"
#include "engine/thread_pool.h"
#include "fuzz/fuzz.h"
#include "logic/tuple_store.h"
#include "util/fault.h"
#include "util/metrics.h"

namespace tdlib {
namespace {

std::string RenderTrace(const std::vector<ChaseStep>& trace) {
  std::ostringstream oss;
  for (const ChaseStep& step : trace) {
    oss << step.dependency_index << '[';
    for (const auto& column : step.body_match.values) {
      for (int v : column) oss << v << ' ';
      oss << '|';
    }
    oss << "]->";
    for (int id : step.new_tuples) oss << id << ' ';
    oss << '\n';
  }
  return oss.str();
}

RunDigest DigestOf(const DualResult& dual) {
  RunDigest d;
  d.verdict = std::string(DualVerdictName(dual.verdict));
  const ChaseResult& chase = dual.implication.chase;
  d.chase_status = std::string(ChaseStatusName(chase.status));
  d.rounds_used = dual.rounds_used;
  d.steps = chase.steps;
  d.passes = chase.passes;
  d.hom_nodes = chase.hom_nodes;
  d.hom_candidates = chase.hom_candidates;
  d.match_tasks = chase.match_tasks;
  d.carried_passes = chase.carried_passes;
  d.candidates_checked = dual.counterexample.candidates_checked;
  d.trace_text = RenderTrace(chase.trace);
  if (dual.implication.counterexample.has_value()) {
    std::ostringstream bytes;
    dual.implication.counterexample->Serialize(bytes);
    d.instance_text = bytes.str();
  }
  d.certain = dual.verdict != DualVerdict::kUnknown;
  return d;
}

RunDigest DigestOfImplication(const ImplicationResult& result,
                              const ChaseSession* session) {
  RunDigest d;
  switch (result.verdict) {
    case Implication::kImplied: d.verdict = "IMPLIED"; break;
    case Implication::kNotImplied: d.verdict = "NOT-IMPLIED"; break;
    case Implication::kUnknown: d.verdict = "UNKNOWN"; break;
  }
  const ChaseResult& chase = result.chase;
  d.chase_status = std::string(ChaseStatusName(chase.status));
  d.steps = chase.steps;
  d.passes = chase.passes;
  d.hom_nodes = chase.hom_nodes;
  d.hom_candidates = chase.hom_candidates;
  d.match_tasks = chase.match_tasks;
  d.carried_passes = chase.carried_passes;
  d.trace_text = RenderTrace(chase.trace);
  if (result.counterexample.has_value()) {
    std::ostringstream bytes;
    result.counterexample->Serialize(bytes);
    d.instance_text = bytes.str();
  } else if (session != nullptr && session->CanResume()) {
    // Budget-stopped: the byte-for-byte artifact is the parked session
    // (pumped instance + checkpoint) itself.
    std::ostringstream bytes;
    session->Serialize(bytes);
    d.instance_text = bytes.str();
  }
  d.certain = result.verdict != Implication::kUnknown;
  return d;
}

// Arms the fire-order-flip sabotage site for the duration of one variant
// solve (FuzzOptions::inject_fire_order_flip — harness self-test only).
class FlipGuard {
 public:
  explicit FlipGuard(bool active) : active_(active) {
    if (active_) ArmFaultAlways(FaultSite::kFireOrderFlip);
  }
  ~FlipGuard() {
    if (active_) DisarmFault(FaultSite::kFireOrderFlip);
  }

 private:
  bool active_;
};

// Restores the process-global default tuple layout on scope exit (the
// layout axis flips it; leaking kColumnar would contaminate every later
// run in this process, reference runs included).
class LayoutGuard {
 public:
  LayoutGuard() : previous_(DefaultTupleLayout()) {}
  ~LayoutGuard() { SetDefaultTupleLayout(previous_); }

 private:
  TupleLayout previous_;
};

struct FuzzMetrics {
  Counter* rounds;
  Counter* cases;
  Counter* runs;
  Counter* divergences;
};

FuzzMetrics& GetFuzzMetrics() {
  static FuzzMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    auto* fm = new FuzzMetrics();
    fm->rounds = r.GetCounter("fuzz.rounds");
    fm->cases = r.GetCounter("fuzz.cases");
    fm->runs = r.GetCounter("fuzz.runs");
    fm->divergences = r.GetCounter("fuzz.divergences");
    return fm;
  }();
  return *m;
}

}  // namespace

DualSolverConfig FuzzSolverConfig(const FuzzOptions& options) {
  DualSolverConfig config;
  config.rounds = 2;
  config.base_chase.max_steps = options.base_steps;
  config.base_chase.max_tuples = 100000;
  config.base_chase.record_trace = true;
  config.base_counterexample.max_tuples = 3;
  config.base_counterexample.max_candidates = 50000;
  return config;
}

std::string CompareDigests(const RunDigest& reference,
                           const RunDigest& variant, AxisClass axis_class) {
  std::ostringstream oss;
  auto diff = [&oss](const char* field, const auto& expected,
                     const auto& got) {
    oss << field << ": reference=" << expected << " variant=" << got;
  };
  if (axis_class == AxisClass::kVerdictWhenBothCertain) {
    if (reference.certain && variant.certain &&
        reference.verdict != variant.verdict) {
      diff("verdict", reference.verdict, variant.verdict);
      return oss.str();
    }
    return "";
  }
  // Semantic stream first — the fields every remaining class compares.
  if (reference.verdict != variant.verdict) {
    diff("verdict", reference.verdict, variant.verdict);
  } else if (reference.chase_status != variant.chase_status) {
    diff("chase_status", reference.chase_status, variant.chase_status);
  } else if (reference.rounds_used != variant.rounds_used) {
    diff("rounds_used", reference.rounds_used, variant.rounds_used);
  } else if (reference.steps != variant.steps) {
    diff("steps", reference.steps, variant.steps);
  } else if (reference.passes != variant.passes) {
    diff("passes", reference.passes, variant.passes);
  } else if (reference.candidates_checked != variant.candidates_checked) {
    diff("candidates_checked", reference.candidates_checked,
         variant.candidates_checked);
  } else if (reference.trace_text != variant.trace_text) {
    diff("trace", "<reference fire stream>", "<differs>");
  } else if (reference.instance_text != variant.instance_text) {
    diff("instance_bytes", "<reference serialization>", "<differs>");
  }
  if (!oss.str().empty() ||
      axis_class == AxisClass::kSemanticsAndFireStream) {
    return oss.str();
  }
  // Matching-work counters, for the byte-identity classes.
  if (reference.hom_nodes != variant.hom_nodes) {
    diff("hom_nodes", reference.hom_nodes, variant.hom_nodes);
  } else if (reference.match_tasks != variant.match_tasks) {
    diff("match_tasks", reference.match_tasks, variant.match_tasks);
  } else if (reference.carried_passes != variant.carried_passes) {
    diff("carried_passes", reference.carried_passes, variant.carried_passes);
  } else if (axis_class == AxisClass::kFullIdentity &&
             reference.hom_candidates != variant.hom_candidates) {
    diff("hom_candidates", reference.hom_candidates, variant.hom_candidates);
  }
  return oss.str();
}

std::vector<FuzzDivergence> CheckJobAcrossAxes(const Job& job,
                                               const FuzzOptions& options,
                                               int* solver_runs) {
  std::vector<FuzzDivergence> out;
  int runs = 0;
  const DualSolverConfig reference_config = FuzzSolverConfig(options);

  DualResult reference =
      SolveImplication(job.dependencies, job.goal, reference_config);
  ++runs;
  const RunDigest reference_digest = DigestOf(reference);

  auto run_variant = [&](const DualSolverConfig& config) {
    FlipGuard flip(options.inject_fire_order_flip);
    DualResult result = SolveImplication(job.dependencies, job.goal, config);
    ++runs;
    return DigestOf(result);
  };
  auto check = [&](const char* axis, const RunDigest& variant,
                   AxisClass axis_class) {
    std::string detail =
        CompareDigests(reference_digest, variant, axis_class);
    if (!detail.empty()) out.push_back({job.name, axis, std::move(detail)});
  };

  {
    DualSolverConfig naive = reference_config;
    naive.base_chase.use_delta = false;
    check("naive", run_variant(naive), AxisClass::kSemanticsAndFireStream);
  }
  {
    ThreadPool pool(options.threads > 0 ? options.threads : 2);
    DualSolverConfig pooled = reference_config;
    pooled.base_chase.pool = &pool;
    check("threads", run_variant(pooled), AxisClass::kFullIdentity);
  }
  {
    LayoutGuard restore;
    SetDefaultTupleLayout(TupleLayout::kColumnar);
    check("layout", run_variant(reference_config),
          AxisClass::kFullIdentity);
  }
  {
    DualSolverConfig single_list = reference_config;
    single_list.base_chase.use_intersection = false;
    check("intersection", run_variant(single_list),
          AxisClass::kSameExceptHomCandidates);
  }
  {
    DualSolverConfig scalar = reference_config;
    scalar.base_chase.use_simd = false;
    check("simd", run_variant(scalar), AxisClass::kFullIdentity);
  }
  {
    DualSolverConfig burst = reference_config;
    burst.base_chase.auto_burst = true;
    check("auto-burst", run_variant(burst),
          AxisClass::kVerdictWhenBothCertain);
  }

  if (options.check_resume) {
    // Resume axis, at the session level where byte-identity is promised:
    // run small, park, serialize, restore from bytes, continue big — and
    // demand the continuation equals one uninterrupted big run, down to the
    // serialized bytes of the final parked session (when both park).
    ChaseConfig big;
    big.max_steps = options.base_steps;
    big.max_tuples = 100000;
    big.record_trace = true;
    ChaseConfig small = big;
    small.max_steps = options.base_steps / 3 + 1;

    ChaseSession reference_session;
    ImplicationResult uninterrupted = ChaseImplies(
        job.dependencies, job.goal, big, &reference_session);
    ++runs;
    RunDigest reference_resume =
        DigestOfImplication(uninterrupted, &reference_session);

    ChaseSession session;
    {
      FlipGuard flip(options.inject_fire_order_flip);
      ChaseImplies(job.dependencies, job.goal, small, &session);
      ++runs;
      if (session.CanResume()) {
        // Round-trip the parked session through its wire format — the
        // deserializer is under test here as much as the resume.
        std::ostringstream bytes;
        session.Serialize(bytes);
        std::istringstream in(bytes.str());
        Result<ChaseSession> restored =
            ChaseSession::Deserialize(job.goal.schema_ptr(), in);
        if (restored.ok()) {
          session = std::move(restored).value();
        } else {
          out.push_back({job.name, "resume",
                         "session round-trip failed: " + restored.error()});
        }
      }
      ImplicationResult resumed =
          ChaseImplies(job.dependencies, job.goal, big, &session);
      ++runs;
      RunDigest variant = DigestOfImplication(resumed, &session);
      std::string detail = CompareDigests(reference_resume, variant,
                                          AxisClass::kFullIdentity);
      if (!detail.empty()) {
        out.push_back({job.name, "resume", std::move(detail)});
      }
    }
  }

  if (options.check_service) {
    // Serial vs service: the exact job through SolverService (workers +
    // lent chase pool) must reproduce the serial RunJob summary.
    JobResult serial = RunJob(job);
    ++runs;
    JobResult via_service;
    {
      FlipGuard flip(options.inject_fire_order_flip);
      ServiceOptions service_options;
      service_options.num_threads = 2;
      SolverService service(service_options);
      via_service = service.Submit(job).Wait();
      ++runs;
    }
    if (serial.DeterministicSummary() != via_service.DeterministicSummary()) {
      out.push_back({job.name, "service",
                     "summary: reference=" + serial.DeterministicSummary() +
                         " variant=" + via_service.DeterministicSummary()});
    }
  }

  if (options.check_cache) {
    // Cached vs fresh: the same job submitted twice through a cache-enabled
    // service. The cold submit misses and runs a chase; the warm one is
    // served from the canonical-form result cache — and BOTH must reproduce
    // the serial reference summary byte for byte (kFullIdentity on the
    // deterministic fields), which is the cache's transparency contract.
    JobResult serial = RunJob(job);
    ++runs;
    JobResult cold, warm;
    {
      FlipGuard flip(options.inject_fire_order_flip);
      ServiceOptions service_options;
      service_options.num_threads = 2;
      service_options.result_cache = std::make_shared<ResultCache>();
      SolverService service(service_options);
      cold = service.Submit(job).Wait();
      ++runs;  // the warm submit deliberately runs no solver
      warm = service.Submit(job).Wait();
    }
    if (serial.DeterministicSummary() != cold.DeterministicSummary()) {
      out.push_back({job.name, "cache",
                     "cold summary: reference=" + serial.DeterministicSummary() +
                         " variant=" + cold.DeterministicSummary()});
    }
    if (serial.DeterministicSummary() != warm.DeterministicSummary()) {
      out.push_back({job.name, "cache",
                     "warm summary: reference=" + serial.DeterministicSummary() +
                         " variant=" + warm.DeterministicSummary()});
    }
    if (cold.status == JobStatus::kCompleted &&
        warm.cache_source != CacheSource::kHit) {
      out.push_back(
          {job.name, "cache",
           "warm submit not served from cache (source=" +
               std::string(CacheSourceName(warm.cache_source)) + ")"});
    }
  }

  if (solver_runs != nullptr) *solver_runs += runs;
  return out;
}

FuzzRoundReport RunFuzzRound(const FuzzOptions& options,
                             std::uint64_t round) {
  FuzzRoundReport report;
  report.round = round;
  std::vector<Job> cases = GenerateFuzzCases(options, round);
  report.cases = static_cast<int>(cases.size());
  for (const Job& job : cases) {
    std::vector<FuzzDivergence> divergences =
        CheckJobAcrossAxes(job, options, &report.solver_runs);
    for (FuzzDivergence& d : divergences) {
      report.divergences.push_back(std::move(d));
    }
  }
  FuzzMetrics& m = GetFuzzMetrics();
  m.rounds->Add(1);
  m.cases->Add(report.cases);
  m.runs->Add(report.solver_runs);
  m.divergences->Add(static_cast<std::int64_t>(report.divergences.size()));
  return report;
}

}  // namespace tdlib
