// tdfuzz: the differential fuzzing harness (TxCheck-style, adapted to TD
// implication).
//
// The engine promises a family of semantics-preserving equivalences: delta
// vs naive matching, any thread count, row-major vs columnar tuple layout,
// intersection and SIMD candidate filtering on or off, auto-burst pass
// tuning, and checkpoint/resume — each leaves a documented slice of the
// output (verdicts, instances, traces, counters) byte-identical. Those
// promises are this library's substitute for an external oracle: TD
// implication is undecidable (the paper's main result), so no reference
// implementation can say what the right answer IS — but eight
// configurations of the same solver can still be required to AGREE.
//
// The harness generates endless deterministic streams of implication
// questions (random TDs, semigroup-reduction instances, Fig.1-style
// pumping/gap gadgets), solves each under every axis variant, and
// cross-checks the digests under each axis's invariance class. A divergence
// is shrunk by delta-debugging over dependencies and tableau rows into the
// smallest job that still diverges, then rendered as a replayable repro
// program (core/parser format) that `tdfuzz --replay=FILE` re-checks.
//
// Everything is a pure function of (seed, round, case index): re-running a
// seed replays the exact stream, which is what makes a CI fuzz leg and a
// repro file meaningful.
#ifndef TDLIB_FUZZ_FUZZ_H_
#define TDLIB_FUZZ_FUZZ_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/job.h"
#include "util/status.h"

namespace tdlib {

/// Harness knobs. Defaults give a fast bounded round (~a dozen solver runs
/// per case); the CI leg runs a few rounds of this shape under a wall
/// budget.
struct FuzzOptions {
  std::uint64_t seed = 1;

  /// Cases generated per round (cycling through the three families).
  int cases_per_round = 6;

  /// Worker count for the thread-count axis (the reference is serial).
  int threads = 4;

  /// Round-0 chase step budget of every solve; the dual solver's escalation
  /// doubles it once (rounds = 2). Small by design: divergences in fire
  /// order or counter accounting show up within a few hundred steps.
  std::uint64_t base_steps = 300;

  /// Check the resume-at-checkpoint axis (serialize mid-run, restore,
  /// continue, demand byte-identity with the uninterrupted run).
  bool check_resume = true;

  /// Check the serial-vs-service axis (same job through SolverService).
  bool check_service = true;

  /// Check the cached-vs-fresh axis: the same job submitted twice through a
  /// cache-enabled service — the cold (miss) and warm (hit) results must
  /// both be byte-identical to the serial reference (kFullIdentity), and
  /// the warm submit must actually be served from the cache.
  bool check_cache = true;

  /// Sabotage knob for harness self-tests: arm the fire-order-flip fault
  /// site (util/fault.h) around every VARIANT run, so the variants fire
  /// pending steps in reversed canonical order while the reference does
  /// not. A correct harness must catch this as a divergence on every
  /// byte-compared axis and minimize it; a harness that misses it is
  /// vacuous. Never set outside tests.
  bool inject_fire_order_flip = false;
};

/// How much of two run digests an axis requires to match.
enum class AxisClass {
  /// Everything: verdict, status, all counters, trace, instance bytes.
  kFullIdentity,
  /// Everything except hom_candidates (intersection changes how many
  /// candidate tuples are TRIED, never which nodes are expanded).
  kSameExceptHomCandidates,
  /// Verdict, status, steps, passes, trace and instance bytes — but not the
  /// matching-work counters (hom_nodes, hom_candidates, match_tasks,
  /// carried_passes), which naive and delta matching legitimately split
  /// differently.
  kSemanticsAndFireStream,
  /// Verdicts compared only when BOTH runs are certain (kGoal/kFixpoint
  /// chases): auto_burst moves pass boundaries, so budget-stopped runs may
  /// stop at different points, but certificates must never flip.
  kVerdictWhenBothCertain,
};

/// Deterministic fingerprint of one dual-solver run: every field the axis
/// classes compare, flattened to strings so divergence reports are
/// self-describing.
struct RunDigest {
  std::string verdict;        ///< DualVerdictName
  std::string chase_status;   ///< ChaseStatusName of the last chase attempt
  int rounds_used = 0;
  std::uint64_t steps = 0;
  std::uint64_t passes = 0;
  std::uint64_t hom_nodes = 0;
  std::uint64_t hom_candidates = 0;
  std::uint64_t match_tasks = 0;
  std::uint64_t carried_passes = 0;
  std::uint64_t candidates_checked = 0;  ///< model-search side
  std::string trace_text;     ///< rendered fire stream (dep, match, tuples)
  std::string instance_text;  ///< serialized counterexample ("" if none)

  /// True iff the chase ended in a certificate (kGoal or kFixpoint), the
  /// precondition for kVerdictWhenBothCertain comparisons.
  bool certain = false;
};

/// One detected disagreement between the reference run and a variant.
struct FuzzDivergence {
  std::string case_name;
  std::string axis;    ///< "naive", "threads", "layout", "intersection",
                       ///  "simd", "auto-burst", "resume", "service", "cache"
  std::string detail;  ///< first differing field, with both values
};

/// Outcome of one fuzz round.
struct FuzzRoundReport {
  std::uint64_t round = 0;
  int cases = 0;
  int solver_runs = 0;
  std::vector<FuzzDivergence> divergences;
};

/// The per-case solver budgets every axis run shares (reference shape:
/// delta matching, serial, row-major, intersection+SIMD on, no auto-burst,
/// trace recording on, no deadline and no hom budget — the regime where
/// every byte-identity promise is unconditional).
DualSolverConfig FuzzSolverConfig(const FuzzOptions& options);

/// Generates the deterministic case list for (options.seed, round): random
/// TDs with varied shape, semigroup-reduction sweep instances, and Fig.1
/// pumping-gadget questions. Pure in (seed, round).
std::vector<Job> GenerateFuzzCases(const FuzzOptions& options,
                                   std::uint64_t round);

/// Solves `job` under every axis variant and returns the divergences (empty
/// = all promises held). `solver_runs`, when non-null, accumulates the
/// number of solves performed (for round accounting).
std::vector<FuzzDivergence> CheckJobAcrossAxes(const Job& job,
                                               const FuzzOptions& options,
                                               int* solver_runs = nullptr);

/// Compares two digests under an axis class; returns "" when they agree,
/// else a one-line description of the first differing field.
std::string CompareDigests(const RunDigest& reference,
                           const RunDigest& variant, AxisClass axis_class);

/// Generates round `round`, checks every case, publishes fuzz.* metrics.
FuzzRoundReport RunFuzzRound(const FuzzOptions& options, std::uint64_t round);

/// Delta-debugs `job` down to a (locally) minimal job that still diverges
/// under `options`: greedily drops whole premise dependencies, then
/// body/head rows of every remaining tableau, re-checking after each
/// removal, to a fixpoint. Returns `job` unchanged if it does not diverge.
Job MinimizeDivergence(const Job& job, const FuzzOptions& options);

/// Renders `job` as a replayable repro program: a '#' header recording the
/// seed and axis, then a core/parser dependency program whose LAST td is
/// the goal (the files-workload convention).
std::string FormatReproProgram(const Job& job, const FuzzOptions& options,
                               const std::string& axis);

/// Parses a repro program back into a Job (premises = all but the last td,
/// goal = the last; a single-td program is a goal with no premises).
/// Malformed text yields ErrorCode::kParseError.
Result<Job> ParseReproProgram(std::string_view text);

}  // namespace tdlib

#endif  // TDLIB_FUZZ_FUZZ_H_
