// Finite semigroups as multiplication tables, with the paper's
// zero/identity/cancellation vocabulary.
//
// "A semigroup G has zero 0 if x0 = 0x = 0 for each x in G ... and has
//  identity I if xI = Ix = x. A semigroup with zero 0 and with an identity
//  has the cancellation property if it satisfies
//    (i)  (xy = xy' != 0 or yx = y'x != 0) => y = y'.
//  If G has zero but no identity, G has the cancellation property if it
//  satisfies both (i) and
//    (ii) (xy = x or yx = x) => x = 0."
#ifndef TDLIB_SEMIGROUP_TABLE_H_
#define TDLIB_SEMIGROUP_TABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "semigroup/presentation.h"

namespace tdlib {

/// A finite magma given by its multiplication table; most methods only make
/// semigroup-theoretic sense when IsAssociative() holds.
class MultiplicationTable {
 public:
  /// Creates the n-element table with all products = 0 (element 0).
  explicit MultiplicationTable(int size);

  int size() const { return size_; }

  int Product(int a, int b) const { return table_[a * size_ + b]; }
  void SetProduct(int a, int b, int value) { table_[a * size_ + b] = value; }

  /// Left-to-right product of a non-empty element sequence.
  int EvaluateElements(const std::vector<int>& elements) const;

  /// Evaluates a word under `assignment` (symbol id -> element).
  int EvaluateWord(const Word& w, const std::vector<int>& assignment) const;

  /// True iff (ab)c == a(bc) for all a, b, c.
  bool IsAssociative() const;

  /// The zero element (x0 = 0x = 0 for all x), or nullopt.
  std::optional<int> ZeroElement() const;

  /// The identity element, or nullopt.
  std::optional<int> IdentityElement() const;

  /// Checks cancellation condition (i) relative to `zero`.
  bool SatisfiesCancellationI(int zero) const;

  /// Checks cancellation condition (ii) relative to `zero`.
  bool SatisfiesCancellationII(int zero) const;

  /// The paper's cancellation property: (i) if an identity exists, (i)+(ii)
  /// otherwise. Requires a zero element; returns false without one.
  bool HasCancellationProperty() const;

  /// True iff `eq` holds under `assignment`.
  bool SatisfiesEquation(const Equation& eq,
                         const std::vector<int>& assignment) const;

  /// True iff every equation of `p` holds under `assignment`.
  bool SatisfiesPresentation(const Presentation& p,
                             const std::vector<int>& assignment) const;

  /// Returns a table one element larger in which the new element is a
  /// two-sided identity (the proof of part (B): "Adjoin to G an identity
  /// element I and call the resulting semigroup G'."). The new element's id
  /// is the old size; existing ids are unchanged.
  MultiplicationTable AdjoinIdentity() const;

  /// Renders the Cayley table.
  std::string ToString() const;

  // ---- Stock constructions used by tests and the model finder ------------

  /// Null semigroup: every product is 0. Identity-free for size >= 2 and
  /// trivially cancellative — the simplest Main-Lemma-compatible refuter.
  static MultiplicationTable Null(int size);

  /// Cyclic group Z_n (element 0 is the group identity; NO zero element) —
  /// used by tests as a non-example.
  static MultiplicationTable CyclicGroup(int n);

  /// Z_n with a fresh zero adjoined as element 0 (group elements shift up
  /// by one). Has a zero AND an identity; satisfies (i).
  static MultiplicationTable CyclicGroupWithZero(int n);

 private:
  int size_;
  std::vector<int> table_;
};

}  // namespace tdlib

#endif  // TDLIB_SEMIGROUP_TABLE_H_
