// Normalization of presentations to the paper's (2,1) form.
//
// "We restrict the strings x_i and y_i appearing in the antecedents of phi
//  to be of length 2 and 1, respectively. Imposing this restriction is a
//  simple matter; if phi contains a conjunct ABC = DA, for example, we
//  introduce new symbols E and F into S, add the equations AB = E and
//  DA = F, and replace the equation ABC = DA by EC = F."
//
// The normalizer implements exactly that subword-naming scheme. Equations
// whose two sides both reduce to single symbols (aliases A = B) cannot take
// the (2,1) shape; they are eliminated by symbol substitution, which only
// changes the presentation, not the presented semigroup.
#ifndef TDLIB_SEMIGROUP_NORMALIZER_H_
#define TDLIB_SEMIGROUP_NORMALIZER_H_

#include <string>
#include <vector>

#include "semigroup/presentation.h"

namespace tdlib {

/// Result of normalization.
struct NormalizationResult {
  Presentation normalized;

  /// Fresh symbols introduced for subwords (paper's E, F, ...), as
  /// (symbol id in `normalized`, the subword it abbreviates).
  std::vector<std::pair<int, Word>> introduced;

  /// Symbols eliminated by aliasing, as (old id, replacement id), relative
  /// to the ORIGINAL presentation's ids.
  std::vector<std::pair<int, int>> aliases;
};

/// Produces an equivalent presentation in which every equation has
/// |lhs| = 2 and |rhs| = 1. Absorption equations are re-added for the final
/// (possibly extended) alphabet. The distinguished symbols 0 and A0 are
/// never eliminated by aliasing.
///
/// Precondition: `input.CheckInvariants()` is empty.
NormalizationResult NormalizeTo21(const Presentation& input);

}  // namespace tdlib

#endif  // TDLIB_SEMIGROUP_NORMALIZER_H_
