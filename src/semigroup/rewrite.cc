#include "semigroup/rewrite.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "util/hash.h"
#include "util/timer.h"

namespace tdlib {

WordProblemResult ProveEqual(const Presentation& p, const Word& from,
                             const Word& to,
                             const WordProblemConfig& config) {
  WordProblemResult result;
  Deadline deadline(config.deadline_seconds);

  // BFS over the rewrite graph with parent pointers for derivation replay.
  std::vector<Word> words;
  std::vector<int> parent;
  std::unordered_map<Word, int, VectorHash> seen;
  auto push = [&](Word w, int from_idx) -> int {
    auto [it, inserted] = seen.emplace(w, static_cast<int>(words.size()));
    if (!inserted) return -1;
    words.push_back(std::move(w));
    parent.push_back(from_idx);
    return static_cast<int>(words.size()) - 1;
  };
  auto extract = [&](int idx) {
    std::vector<Word> chain;
    for (int i = idx; i >= 0; i = parent[i]) chain.push_back(words[i]);
    std::reverse(chain.begin(), chain.end());
    return chain;
  };

  push(from, -1);
  if (from == to) {
    result.status = WordProblemStatus::kEqual;
    result.derivation = {from};
    result.states_explored = 1;
    return result;
  }

  for (std::size_t head = 0; head < words.size(); ++head) {
    if (deadline.Expired() ||
        (config.max_states > 0 && words.size() > config.max_states)) {
      result.status = WordProblemStatus::kLimit;
      result.states_explored = head;
      return result;
    }
    const Word current = words[head];  // copy: `words` may reallocate
    for (const Equation& eq : p.equations()) {
      for (int dir = 0; dir < 2; ++dir) {
        const Word& pat = dir == 0 ? eq.lhs : eq.rhs;
        const Word& rep = dir == 0 ? eq.rhs : eq.lhs;
        if (pat.size() > current.size()) continue;
        if (current.size() - pat.size() + rep.size() >
            static_cast<std::size_t>(config.max_word_length)) {
          continue;
        }
        for (int offset : FindOccurrences(current, pat)) {
          Word next = ReplaceAt(current, offset, pat, rep);
          int idx = push(std::move(next), static_cast<int>(head));
          if (idx >= 0 && words[idx] == to) {
            result.status = WordProblemStatus::kEqual;
            result.derivation = extract(idx);
            result.states_explored = words.size();
            return result;
          }
        }
      }
    }
  }
  result.status = WordProblemStatus::kExhausted;
  result.states_explored = words.size();
  return result;
}

WordProblemResult ProveA0IsZero(const Presentation& p,
                                const WordProblemConfig& config) {
  return ProveEqual(p, Word{p.a0()}, Word{p.zero()}, config);
}

std::string WordProblemResult::ToString(const Presentation& p) const {
  std::ostringstream oss;
  switch (status) {
    case WordProblemStatus::kEqual: oss << "EQUAL"; break;
    case WordProblemStatus::kExhausted: oss << "EXHAUSTED"; break;
    case WordProblemStatus::kLimit: oss << "LIMIT"; break;
  }
  oss << " (" << states_explored << " states)";
  if (!derivation.empty()) {
    oss << "\n";
    for (const Word& w : derivation) oss << "  " << p.WordToString(w) << "\n";
  }
  return oss.str();
}

}  // namespace tdlib
