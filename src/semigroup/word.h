// Words over a semigroup alphabet.
#ifndef TDLIB_SEMIGROUP_WORD_H_
#define TDLIB_SEMIGROUP_WORD_H_

#include <string>
#include <vector>

namespace tdlib {

/// A word is a non-empty sequence of symbol ids. (Semigroups, not monoids:
/// the paper's structures have no identity unless one is adjoined, so the
/// empty word is not a valid element and validation rejects it.)
using Word = std::vector<int>;

/// Returns all start offsets at which `pattern` occurs in `w`.
std::vector<int> FindOccurrences(const Word& w, const Word& pattern);

/// Returns `w` with the occurrence of `pattern` at `offset` replaced by
/// `replacement`. Precondition: the occurrence exists.
Word ReplaceAt(const Word& w, int offset, const Word& pattern,
               const Word& replacement);

}  // namespace tdlib

#endif  // TDLIB_SEMIGROUP_WORD_H_
