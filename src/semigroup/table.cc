#include "semigroup/table.h"

#include <cassert>
#include <sstream>

namespace tdlib {

MultiplicationTable::MultiplicationTable(int size)
    : size_(size), table_(static_cast<std::size_t>(size) * size, 0) {}

int MultiplicationTable::EvaluateElements(const std::vector<int>& elements) const {
  assert(!elements.empty());
  int acc = elements[0];
  for (std::size_t i = 1; i < elements.size(); ++i) {
    acc = Product(acc, elements[i]);
  }
  return acc;
}

int MultiplicationTable::EvaluateWord(const Word& w,
                                      const std::vector<int>& assignment) const {
  assert(!w.empty());
  int acc = assignment[w[0]];
  for (std::size_t i = 1; i < w.size(); ++i) {
    acc = Product(acc, assignment[w[i]]);
  }
  return acc;
}

bool MultiplicationTable::IsAssociative() const {
  for (int a = 0; a < size_; ++a) {
    for (int b = 0; b < size_; ++b) {
      int ab = Product(a, b);
      for (int c = 0; c < size_; ++c) {
        if (Product(ab, c) != Product(a, Product(b, c))) return false;
      }
    }
  }
  return true;
}

std::optional<int> MultiplicationTable::ZeroElement() const {
  for (int z = 0; z < size_; ++z) {
    bool ok = true;
    for (int x = 0; x < size_ && ok; ++x) {
      ok = Product(z, x) == z && Product(x, z) == z;
    }
    if (ok) return z;
  }
  return std::nullopt;
}

std::optional<int> MultiplicationTable::IdentityElement() const {
  for (int e = 0; e < size_; ++e) {
    bool ok = true;
    for (int x = 0; x < size_ && ok; ++x) {
      ok = Product(e, x) == x && Product(x, e) == x;
    }
    if (ok) return e;
  }
  return std::nullopt;
}

bool MultiplicationTable::SatisfiesCancellationI(int zero) const {
  for (int x = 0; x < size_; ++x) {
    for (int y = 0; y < size_; ++y) {
      for (int y2 = 0; y2 < size_; ++y2) {
        if (y == y2) continue;
        if (Product(x, y) == Product(x, y2) && Product(x, y) != zero) {
          return false;
        }
        if (Product(y, x) == Product(y2, x) && Product(y, x) != zero) {
          return false;
        }
      }
    }
  }
  return true;
}

bool MultiplicationTable::SatisfiesCancellationII(int zero) const {
  for (int x = 0; x < size_; ++x) {
    if (x == zero) continue;
    for (int y = 0; y < size_; ++y) {
      if (Product(x, y) == x || Product(y, x) == x) return false;
    }
  }
  return true;
}

bool MultiplicationTable::HasCancellationProperty() const {
  std::optional<int> zero = ZeroElement();
  if (!zero.has_value()) return false;
  if (!SatisfiesCancellationI(*zero)) return false;
  if (IdentityElement().has_value()) return true;
  return SatisfiesCancellationII(*zero);
}

bool MultiplicationTable::SatisfiesEquation(
    const Equation& eq, const std::vector<int>& assignment) const {
  return EvaluateWord(eq.lhs, assignment) == EvaluateWord(eq.rhs, assignment);
}

bool MultiplicationTable::SatisfiesPresentation(
    const Presentation& p, const std::vector<int>& assignment) const {
  for (const Equation& eq : p.equations()) {
    if (!SatisfiesEquation(eq, assignment)) return false;
  }
  return true;
}

MultiplicationTable MultiplicationTable::AdjoinIdentity() const {
  MultiplicationTable g(size_ + 1);
  const int identity = size_;
  for (int a = 0; a < size_; ++a) {
    for (int b = 0; b < size_; ++b) g.SetProduct(a, b, Product(a, b));
  }
  for (int a = 0; a <= size_; ++a) {
    g.SetProduct(a, identity, a);
    g.SetProduct(identity, a, a);
  }
  return g;
}

std::string MultiplicationTable::ToString() const {
  std::ostringstream oss;
  oss << "    ";
  for (int b = 0; b < size_; ++b) oss << b << " ";
  oss << "\n";
  for (int a = 0; a < size_; ++a) {
    oss << a << " | ";
    for (int b = 0; b < size_; ++b) oss << Product(a, b) << " ";
    oss << "\n";
  }
  return oss.str();
}

MultiplicationTable MultiplicationTable::Null(int size) {
  return MultiplicationTable(size);  // constructor zero-fills
}

MultiplicationTable MultiplicationTable::CyclicGroup(int n) {
  MultiplicationTable g(n);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) g.SetProduct(a, b, (a + b) % n);
  }
  return g;
}

MultiplicationTable MultiplicationTable::CyclicGroupWithZero(int n) {
  MultiplicationTable g(n + 1);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) g.SetProduct(a + 1, b + 1, (a + b) % n + 1);
  }
  // Row/column 0 remain 0: the adjoined zero.
  return g;
}

}  // namespace tdlib
