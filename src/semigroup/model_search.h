// Finite semigroup model finder.
//
// Part (B) of the Reduction Theorem consumes "a finite S-generated semigroup
// without identity having the cancellation property" in which the
// presentation's equations hold but A0 != 0. This module searches for such
// witnesses:
//
//   * a seeded family check (null semigroups — the simplest structures
//     satisfying the paper's conditions), and
//   * brute-force enumeration of small multiplication tables with element 0
//     pinned as the zero, with associativity / no-identity / cancellation
//     filters, crossed with all symbol assignments.
//
// The Main Lemma guarantees no *total* such procedure exists; bounds are
// explicit and exhaustion below a bound is reported as such.
#ifndef TDLIB_SEMIGROUP_MODEL_SEARCH_H_
#define TDLIB_SEMIGROUP_MODEL_SEARCH_H_

#include <cstdint>
#include <optional>
#include <string>

#include "semigroup/presentation.h"
#include "semigroup/table.h"

namespace tdlib {

/// A refutation witness: a finite cancellation semigroup without identity,
/// plus a symbol assignment, under which every equation of the presentation
/// holds while A0 maps to a non-zero element.
struct SemigroupWitness {
  MultiplicationTable table;
  std::vector<int> assignment;  ///< symbol id -> element; assignment[0] = zero

  /// Re-verifies every required property; "" or the first failure.
  std::string Verify(const Presentation& p) const;
};

struct ModelSearchConfig {
  /// Largest table size for brute-force enumeration.
  int max_size = 4;

  /// Try the seeded families before brute force.
  bool use_seeds = true;

  /// Wall clock (<= 0 = none).
  double deadline_seconds = 0;
};

enum class ModelSearchStatus { kFound, kExhausted, kLimit };

struct ModelSearchResult {
  ModelSearchStatus status = ModelSearchStatus::kLimit;
  std::optional<SemigroupWitness> witness;
  std::uint64_t tables_checked = 0;
  std::uint64_t assignments_checked = 0;
};

/// Searches for a witness refuting "A0 = 0 follows from p's equations" in
/// the class of finite identity-free cancellation semigroups with zero.
ModelSearchResult FindRefutingSemigroup(const Presentation& p,
                                        const ModelSearchConfig& config = {});

}  // namespace tdlib

#endif  // TDLIB_SEMIGROUP_MODEL_SEARCH_H_
