#include "semigroup/presentation.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "util/strings.h"

namespace tdlib {

Presentation::Presentation() {
  names_.push_back("0");
  names_.push_back("A0");
}

int Presentation::AddSymbol(std::string_view name) {
  int existing = SymbolId(name);
  if (existing >= 0) return existing;
  names_.emplace_back(name);
  return static_cast<int>(names_.size()) - 1;
}

int Presentation::SymbolId(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Presentation::AddEquation(Word lhs, Word rhs) {
  equations_.push_back(Equation{std::move(lhs), std::move(rhs)});
}

bool Presentation::AddEquationFromText(std::string_view text) {
  std::size_t eq = text.find('=');
  if (eq == std::string_view::npos) return false;
  auto parse_side = [&](std::string_view side) -> std::optional<Word> {
    Word w;
    for (auto& tok : SplitAndTrim(side, ' ')) {
      if (tok.empty()) continue;
      w.push_back(AddSymbol(tok));
    }
    if (w.empty()) return std::nullopt;
    return w;
  };
  auto lhs = parse_side(text.substr(0, eq));
  auto rhs = parse_side(text.substr(eq + 1));
  if (!lhs || !rhs) return false;
  AddEquation(std::move(*lhs), std::move(*rhs));
  return true;
}

void Presentation::AddAbsorptionEquations() {
  auto have = [&](const Equation& e) {
    return std::find(equations_.begin(), equations_.end(), e) !=
           equations_.end();
  };
  for (int a = 0; a < num_symbols(); ++a) {
    Equation left{Word{zero(), a}, Word{zero()}};
    Equation right{Word{a, zero()}, Word{zero()}};
    if (!have(left)) equations_.push_back(left);
    if (!have(right)) equations_.push_back(right);
  }
}

bool Presentation::HasAbsorptionEquations() const {
  for (int a = 0; a < num_symbols(); ++a) {
    Equation left{Word{zero(), a}, Word{zero()}};
    Equation right{Word{a, zero()}, Word{zero()}};
    if (std::find(equations_.begin(), equations_.end(), left) ==
        equations_.end()) {
      return false;
    }
    if (std::find(equations_.begin(), equations_.end(), right) ==
        equations_.end()) {
      return false;
    }
  }
  return true;
}

bool Presentation::IsNormalized() const {
  for (const Equation& e : equations_) {
    if (e.lhs.size() != 2 || e.rhs.size() != 1) return false;
  }
  return true;
}

std::string Presentation::WordToString(const Word& w) const {
  std::string out;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i > 0) out += " ";
    out += names_[w[i]];
  }
  return out;
}

std::string Presentation::ToString() const {
  std::ostringstream oss;
  oss << "symbols:";
  for (const auto& n : names_) oss << " " << n;
  oss << "\n";
  for (const Equation& e : equations_) {
    oss << WordToString(e.lhs) << " = " << WordToString(e.rhs) << "\n";
  }
  return oss.str();
}

std::string Presentation::CheckInvariants() const {
  if (names_.size() < 2 || names_[0] != "0" || names_[1] != "A0") {
    return "distinguished symbols 0 / A0 missing";
  }
  for (const Equation& e : equations_) {
    if (e.lhs.empty() || e.rhs.empty()) {
      return "equation with an empty side (semigroups have no empty word)";
    }
    for (const Word* w : {&e.lhs, &e.rhs}) {
      for (int s : *w) {
        if (s < 0 || s >= num_symbols()) return "equation uses unknown symbol";
      }
    }
  }
  return "";
}

}  // namespace tdlib
