#include "semigroup/knuth_bendix.h"

#include <algorithm>
#include <sstream>

#include "util/timer.h"

namespace tdlib {

bool ShortlexLess(const Word& a, const Word& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return a < b;
}

bool RewriteSystem::AddEquation(Word a, Word b) {
  if (a == b) return false;
  if (ShortlexLess(a, b)) std::swap(a, b);
  // Skip exact duplicates.
  for (const RewriteRule& r : rules_) {
    if (r.lhs == a && r.rhs == b) return false;
  }
  rules_.push_back(RewriteRule{std::move(a), std::move(b)});
  return true;
}

Word RewriteSystem::NormalForm(const Word& w) const {
  Word current = w;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const RewriteRule& rule : rules_) {
      std::vector<int> occurrences = FindOccurrences(current, rule.lhs);
      if (!occurrences.empty()) {
        current = ReplaceAt(current, occurrences[0], rule.lhs, rule.rhs);
        changed = true;
        break;  // restart from the first rule (leftmost-innermost-ish)
      }
    }
  }
  return current;
}

std::string RewriteSystem::ToString(const Presentation& p) const {
  std::ostringstream oss;
  for (const RewriteRule& r : rules_) {
    oss << p.WordToString(r.lhs) << " -> " << p.WordToString(r.rhs) << "\n";
  }
  return oss.str();
}

namespace {

// Appends all critical pairs between rules r1 and r2 (overlaps of r1.lhs
// with r2.lhs) to *pairs. Two overlap shapes:
//   (a) suffix of r1.lhs = prefix of r2.lhs (proper overlap),
//   (b) r2.lhs occurs inside r1.lhs (containment).
void CriticalPairs(const RewriteRule& r1, const RewriteRule& r2,
                   std::vector<std::pair<Word, Word>>* pairs) {
  const Word& l1 = r1.lhs;
  const Word& l2 = r2.lhs;
  // (a) proper overlaps: l1 = x u, l2 = u y with u non-empty, x or y
  // non-empty. Superposition word: x u y.
  for (std::size_t overlap = 1;
       overlap < l1.size() && overlap <= l2.size(); ++overlap) {
    bool match = true;
    for (std::size_t i = 0; i < overlap; ++i) {
      if (l1[l1.size() - overlap + i] != l2[i]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    // Superposition: l1 followed by l2's tail.
    Word super(l1.begin(), l1.end());
    super.insert(super.end(), l2.begin() + overlap, l2.end());
    // Reduce via r1 (at offset 0) and via r2 (at offset |l1| - overlap).
    Word via1 = ReplaceAt(super, 0, l1, r1.rhs);
    Word via2 = ReplaceAt(super, static_cast<int>(l1.size() - overlap), l2,
                          r2.rhs);
    pairs->emplace_back(std::move(via1), std::move(via2));
  }
  // (b) containment: l2 inside l1 (strictly, to avoid the trivial overlap
  // when the rules are identical words).
  if (l2.size() < l1.size()) {
    for (int offset : FindOccurrences(l1, l2)) {
      Word via1 = r1.rhs;
      Word via2 = ReplaceAt(l1, offset, l2, r2.rhs);
      pairs->emplace_back(via1, std::move(via2));
    }
  }
}

}  // namespace

CompletionResult Complete(const Presentation& p,
                          const CompletionConfig& config) {
  CompletionResult result;
  Deadline deadline(config.deadline_seconds);
  for (const Equation& eq : p.equations()) {
    result.system.AddEquation(eq.lhs, eq.rhs);
  }

  // Naive completion: repeatedly examine all rule pairs; join each critical
  // pair by normal forms; if a pair does not join, orient it as a new rule
  // and start over. Terminates when no critical pair is unjoinable.
  bool saturated = false;
  while (!saturated) {
    saturated = true;
    const auto& rules = result.system.rules();
    for (std::size_t i = 0; i < rules.size() && saturated; ++i) {
      for (std::size_t j = 0; j < rules.size() && saturated; ++j) {
        if (deadline.Expired() ||
            (config.max_rules > 0 &&
             static_cast<int>(rules.size()) > config.max_rules)) {
          result.status = CompletionStatus::kLimit;
          return result;
        }
        std::vector<std::pair<Word, Word>> pairs;
        CriticalPairs(rules[i], rules[j], &pairs);
        for (auto& [u, v] : pairs) {
          ++result.critical_pairs_examined;
          Word nu = result.system.NormalForm(u);
          Word nv = result.system.NormalForm(v);
          if (nu == nv) continue;
          if (static_cast<int>(std::max(nu.size(), nv.size())) >
              config.max_word_length) {
            result.status = CompletionStatus::kLimit;
            return result;
          }
          result.system.AddEquation(std::move(nu), std::move(nv));
          saturated = false;  // rule set changed: rescan
          break;
        }
      }
    }
  }
  result.status = CompletionStatus::kConfluent;
  return result;
}

bool DecideA0IsZeroByCompletion(const Presentation& p, bool* equal,
                                const CompletionConfig& config) {
  CompletionResult completion = Complete(p, config);
  if (completion.status != CompletionStatus::kConfluent) return false;
  *equal = completion.system.SameNormalForm(Word{p.a0()}, Word{p.zero()});
  return true;
}

}  // namespace tdlib
