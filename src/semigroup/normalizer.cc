#include "semigroup/normalizer.h"

#include <algorithm>
#include <map>

#include "util/union_find.h"

namespace tdlib {
namespace {

// Applies a symbol substitution to a word.
Word Substitute(const Word& w, const std::vector<int>& subst) {
  Word out;
  out.reserve(w.size());
  for (int s : w) out.push_back(subst[s]);
  return out;
}

}  // namespace

NormalizationResult NormalizeTo21(const Presentation& input) {
  NormalizationResult result;

  // ---- Phase 1: resolve (1,1) alias equations by substitution. -------------
  UnionFind uf(input.num_symbols());
  std::vector<Equation> work = input.equations();
  bool changed = true;
  while (changed) {
    changed = false;
    // Representative = smallest id in class, so the distinguished symbols
    // (0 has id 0, A0 has id 1) always survive aliasing.
    std::vector<int> subst(input.num_symbols());
    std::vector<int> smallest(input.num_symbols(), -1);
    for (int s = 0; s < input.num_symbols(); ++s) {
      int root = uf.Find(s);
      if (smallest[root] < 0) smallest[root] = s;
      subst[s] = smallest[root];
    }
    std::vector<Equation> next;
    for (Equation e : work) {
      e.lhs = Substitute(e.lhs, subst);
      e.rhs = Substitute(e.rhs, subst);
      if (e.lhs == e.rhs) continue;  // trivially satisfied
      if (e.lhs.size() == 1 && e.rhs.size() == 1) {
        uf.Union(e.lhs[0], e.rhs[0]);
        changed = true;
        continue;
      }
      next.push_back(std::move(e));
    }
    work = std::move(next);
  }
  bool a0_aliased_to_zero = false;
  {
    std::vector<int> subst(input.num_symbols());
    std::vector<int> smallest(input.num_symbols(), -1);
    for (int s = 0; s < input.num_symbols(); ++s) {
      int root = uf.Find(s);
      if (smallest[root] < 0) smallest[root] = s;
      subst[s] = smallest[root];
    }
    for (int s = 0; s < input.num_symbols(); ++s) {
      if (subst[s] != s) result.aliases.emplace_back(s, subst[s]);
    }
    for (Equation& e : work) {
      e.lhs = Substitute(e.lhs, subst);
      e.rhs = Substitute(e.rhs, subst);
    }
    // Aliasing A0 into 0's class would silently drop the fact the Main
    // Lemma's goal asks about. Re-encode "A0 = 0" in (2,1) form below.
    a0_aliased_to_zero = subst[1] == 0;
  }

  // ---- Phase 2: name subwords until every equation is (2,1). ---------------
  Presentation& out = result.normalized;
  for (int s = 0; s < input.num_symbols(); ++s) {
    out.AddSymbol(input.SymbolName(s));  // ids are preserved
  }
  // Memoize pair -> naming symbol so repeated subwords share one name (the
  // paper introduces E for AB once, not per occurrence).
  std::map<std::pair<int, int>, int> pair_symbol;
  int fresh_counter = 0;
  auto name_pair = [&](int a, int b) {
    auto it = pair_symbol.find({a, b});
    if (it != pair_symbol.end()) return it->second;
    std::string name;
    do {
      name = "_W" + std::to_string(fresh_counter++);
    } while (out.SymbolId(name) >= 0);
    int id = out.AddSymbol(name);
    pair_symbol[{a, b}] = id;
    out.AddEquation(Word{a, b}, Word{id});
    result.introduced.emplace_back(id, Word{a, b});
    return id;
  };
  // Compresses a word's leading pair until the target length is reached.
  auto compress_to = [&](Word w, std::size_t target) {
    while (w.size() > target) {
      int named = name_pair(w[0], w[1]);
      Word shorter;
      shorter.push_back(named);
      shorter.insert(shorter.end(), w.begin() + 2, w.end());
      w = std::move(shorter);
    }
    return w;
  };

  for (Equation e : work) {
    if (e.lhs.size() < e.rhs.size()) std::swap(e.lhs, e.rhs);
    // Here |lhs| >= 2 (aliases were eliminated in phase 1) and |rhs| >= 1.
    e.rhs = compress_to(std::move(e.rhs), 1);
    e.lhs = compress_to(std::move(e.lhs), 2);
    out.AddEquation(std::move(e.lhs), std::move(e.rhs));
  }

  // ---- Phase 3: restore a dropped A0 = 0, then absorption. -----------------
  if (a0_aliased_to_zero) {
    // "A0 0 = A0" plus the absorption equation "A0 0 = 0" make A0 = 0
    // derivable again: A0 <- A0 0 -> 0.
    out.AddEquation(Word{out.a0(), out.zero()}, Word{out.a0()});
  }
  out.AddAbsorptionEquations();
  return result;
}

}  // namespace tdlib
