// Bounded construction of the quotient semigroup S*/~.
//
// The paper's part (A) proof pivot: if no derivation sequence u_0 = A0, ...,
// u_m = 0 exists, "let ~ be the equivalence relation on strings induced by
// such replacements; then the quotient semigroup S*/~ would provide a
// counterexample to phi." S* is infinite, so tdlib materializes the quotient
// restricted to words of bounded length: all words of length <= L, with the
// congruence closure of single-replacement steps that stay within length L.
// This bounded object is used as ground truth for the word-problem search
// (two words are provably equal iff they share a class at some bound) and in
// property tests.
#ifndef TDLIB_SEMIGROUP_QUOTIENT_H_
#define TDLIB_SEMIGROUP_QUOTIENT_H_

#include <unordered_map>
#include <vector>

#include "semigroup/presentation.h"
#include "util/hash.h"

namespace tdlib {

/// All words of length <= max_length, partitioned by derivability within
/// the bound. Classes under-approximate true semigroup equality (growing
/// max_length is monotone: classes only merge).
class BoundedQuotient {
 public:
  BoundedQuotient(const Presentation& p, int max_length);

  /// Number of words enumerated.
  std::size_t num_words() const { return words_.size(); }

  /// Number of equivalence classes among them.
  std::size_t num_classes() const { return num_classes_; }

  /// True iff `u` and `v` were merged within the bound. Words longer than
  /// the bound return false.
  bool Equivalent(const Word& u, const Word& v) const;

  /// Dense class id of `w`, or -1 when |w| exceeds the bound.
  int ClassOf(const Word& w) const;

  int max_length() const { return max_length_; }

 private:
  int max_length_;
  std::vector<Word> words_;
  std::unordered_map<Word, int, VectorHash> index_;
  std::vector<int> class_ids_;
  std::size_t num_classes_ = 0;
};

}  // namespace tdlib

#endif  // TDLIB_SEMIGROUP_QUOTIENT_H_
