#include "semigroup/model_search.h"

#include <algorithm>
#include <functional>

#include "util/timer.h"

namespace tdlib {
namespace {

// Enumerates all assignments symbol -> element with assignment[0] pinned to
// `zero`, calling `visit` for each; visit returns false to stop. Returns
// false iff stopped early.
bool ForEachAssignment(int num_symbols, int num_elements, int zero,
                       const std::function<bool(const std::vector<int>&)>& visit) {
  std::vector<int> assignment(num_symbols, 0);
  assignment[0] = zero;
  std::function<bool(int)> rec = [&](int sym) -> bool {
    if (sym == num_symbols) return visit(assignment);
    for (int e = 0; e < num_elements; ++e) {
      assignment[sym] = e;
      if (!rec(sym + 1)) return false;
    }
    return true;
  };
  return rec(1);
}

// Checks one candidate table against the presentation; fills in *result on
// success.
bool TryTable(const Presentation& p, const MultiplicationTable& table,
              ModelSearchResult* result, const Deadline& deadline) {
  // Structural filters first (cheap relative to assignment enumeration).
  std::optional<int> zero = table.ZeroElement();
  if (!zero.has_value() || *zero != 0) return false;
  if (!table.IsAssociative()) return false;
  if (table.IdentityElement().has_value()) return false;
  if (!table.SatisfiesCancellationI(0)) return false;
  if (!table.SatisfiesCancellationII(0)) return false;
  ++result->tables_checked;

  bool found = false;
  ForEachAssignment(
      p.num_symbols(), table.size(), 0, [&](const std::vector<int>& a) {
        ++result->assignments_checked;
        if (deadline.Expired()) return false;
        if (a[p.a0()] == 0) return true;  // need A0 != 0
        if (!table.SatisfiesPresentation(p, a)) return true;
        result->witness = SemigroupWitness{table, a};
        found = true;
        return false;
      });
  return found;
}

}  // namespace

std::string SemigroupWitness::Verify(const Presentation& p) const {
  if (!table.IsAssociative()) return "table is not associative";
  std::optional<int> zero = table.ZeroElement();
  if (!zero.has_value()) return "table has no zero element";
  if (table.IdentityElement().has_value()) return "table has an identity";
  if (!table.SatisfiesCancellationI(*zero)) return "cancellation (i) fails";
  if (!table.SatisfiesCancellationII(*zero)) return "cancellation (ii) fails";
  if (static_cast<int>(assignment.size()) != p.num_symbols()) {
    return "assignment arity mismatch";
  }
  if (assignment[p.zero()] != *zero) return "symbol 0 not mapped to the zero";
  if (assignment[p.a0()] == *zero) return "A0 mapped to zero (not a refuter)";
  for (const Equation& eq : p.equations()) {
    if (!table.SatisfiesEquation(eq, assignment)) {
      return "equation fails: " + p.WordToString(eq.lhs) + " = " +
             p.WordToString(eq.rhs);
    }
  }
  return "";
}

ModelSearchResult FindRefutingSemigroup(const Presentation& p,
                                        const ModelSearchConfig& config) {
  ModelSearchResult result;
  Deadline deadline(config.deadline_seconds);

  if (config.use_seeds) {
    for (int n = 2; n <= std::max(2, config.max_size); ++n) {
      if (TryTable(p, MultiplicationTable::Null(n), &result, deadline)) {
        result.status = ModelSearchStatus::kFound;
        return result;
      }
      if (deadline.Expired()) {
        result.status = ModelSearchStatus::kLimit;
        return result;
      }
    }
  }

  // Brute force: tables with row/column 0 pinned to the zero element.
  for (int n = 2; n <= config.max_size; ++n) {
    const int free_cells = (n - 1) * (n - 1);
    std::vector<int> cells(free_cells, 0);
    bool exhausted = false;
    while (!exhausted) {
      if (deadline.Expired()) {
        result.status = ModelSearchStatus::kLimit;
        return result;
      }
      MultiplicationTable table(n);
      int k = 0;
      for (int a = 1; a < n; ++a) {
        for (int b = 1; b < n; ++b) table.SetProduct(a, b, cells[k++]);
      }
      if (TryTable(p, table, &result, deadline)) {
        result.status = ModelSearchStatus::kFound;
        return result;
      }
      int pos = 0;
      while (pos < free_cells) {
        if (++cells[pos] < n) break;
        cells[pos] = 0;
        ++pos;
      }
      if (pos == free_cells) exhausted = true;
    }
  }
  result.status = ModelSearchStatus::kExhausted;
  return result;
}

}  // namespace tdlib
