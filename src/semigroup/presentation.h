// Semigroup presentations in the style of the Main Lemma.
//
// "Let S = {A0, A1, ..., Ap} be an alphabet, where Ap is the symbol 0, and
//  let E be a set of equations {x1 = y1, ..., xn = yn} ... Included in E are
//  the equations needed to make 0 a zero of the semigroup."
//
// A Presentation owns an alphabet with the two distinguished symbols `0`
// (the zero) and `A0` (the letter whose vanishing is the question) and a
// list of word equations. The question attached to a presentation is always
// the Main Lemma's: does A0 = 0 hold in every S-generated semigroup
// satisfying E?
#ifndef TDLIB_SEMIGROUP_PRESENTATION_H_
#define TDLIB_SEMIGROUP_PRESENTATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "semigroup/word.h"
#include "util/status.h"

namespace tdlib {

/// One equation between non-empty words.
struct Equation {
  Word lhs;
  Word rhs;

  friend bool operator==(const Equation& a, const Equation& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
};

/// An alphabet + equations. Symbol id 0 is always the distinguished zero
/// symbol "0"; symbol id 1 is always "A0".
class Presentation {
 public:
  /// Creates a presentation containing only the distinguished symbols.
  Presentation();

  /// Adds (or finds) a symbol by name; "0" and "A0" are pre-interned.
  int AddSymbol(std::string_view name);

  /// Returns the symbol id for `name`, or -1.
  int SymbolId(std::string_view name) const;

  int zero() const { return 0; }
  int a0() const { return 1; }

  int num_symbols() const { return static_cast<int>(names_.size()); }
  const std::string& SymbolName(int id) const { return names_[id]; }

  /// Appends an equation (words over existing symbol ids; both non-empty).
  void AddEquation(Word lhs, Word rhs);

  /// Parses "A B = C" style text (symbols are whitespace-separated names;
  /// unknown names are interned). Returns false on malformed text.
  bool AddEquationFromText(std::string_view text);

  const std::vector<Equation>& equations() const { return equations_; }

  /// Appends the zero-absorption equations the Main Lemma requires among
  /// the antecedents: for every symbol A (including 0 itself),
  /// A·0 = 0 and 0·A = 0. Idempotent.
  void AddAbsorptionEquations();

  /// True iff the absorption equations for every current symbol are present.
  bool HasAbsorptionEquations() const;

  /// True iff every equation has |lhs| = 2 and |rhs| = 1 (the normal form
  /// the paper imposes before building dependencies).
  bool IsNormalized() const;

  /// Renders a word like "A B C".
  std::string WordToString(const Word& w) const;

  /// Multi-line rendering of the presentation.
  std::string ToString() const;

  /// "" or the first structural problem (empty word, bad symbol id, ...).
  std::string CheckInvariants() const;

 private:
  std::vector<std::string> names_;
  std::vector<Equation> equations_;
};

}  // namespace tdlib

#endif  // TDLIB_SEMIGROUP_PRESENTATION_H_
