// The word problem: bounded search for equational derivations.
//
// Two words are equal in every S-generated semigroup satisfying E iff one
// rewrites to the other by a finite sequence of single-occurrence
// replacements x_i <-> y_i (the paper: "a sequence of m+1 strings u_0, ...,
// u_m where u_{i+1} results from u_i by replacement of a single occurrence
// of some x_i by y_i or vice versa" — otherwise the quotient S*/~ is a
// counterexample). Derivability is r.e. but undecidable (Post 1947), so the
// search is breadth-first with explicit bounds; a found derivation is a
// certificate, and the part (A) driver replays it through the chase.
#ifndef TDLIB_SEMIGROUP_REWRITE_H_
#define TDLIB_SEMIGROUP_REWRITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "semigroup/presentation.h"

namespace tdlib {

/// Search bounds.
struct WordProblemConfig {
  /// Intermediate words longer than this are pruned. Completeness within
  /// the bound only; raise it to search deeper.
  int max_word_length = 16;

  /// Maximum number of distinct words explored (0 = unlimited).
  std::uint64_t max_states = 1000000;

  /// Wall clock (<= 0 = none).
  double deadline_seconds = 0;
};

enum class WordProblemStatus {
  kEqual,      ///< derivation found (certificate in `derivation`)
  kExhausted,  ///< no derivation within max_word_length exists
  kLimit,      ///< state/time budget hit
};

struct WordProblemResult {
  WordProblemStatus status = WordProblemStatus::kLimit;

  /// When kEqual: the full rewriting sequence u_0 = from, ..., u_m = to.
  std::vector<Word> derivation;

  std::uint64_t states_explored = 0;

  std::string ToString(const Presentation& p) const;
};

/// Searches for a derivation `from` ->* `to` under `p`'s equations (applied
/// in both directions).
WordProblemResult ProveEqual(const Presentation& p, const Word& from,
                             const Word& to,
                             const WordProblemConfig& config = {});

/// Convenience: the Main Lemma's question, A0 = 0.
WordProblemResult ProveA0IsZero(const Presentation& p,
                                const WordProblemConfig& config = {});

}  // namespace tdlib

#endif  // TDLIB_SEMIGROUP_REWRITE_H_
