#include "semigroup/word.h"

#include <cassert>

namespace tdlib {

std::vector<int> FindOccurrences(const Word& w, const Word& pattern) {
  std::vector<int> offsets;
  if (pattern.empty() || pattern.size() > w.size()) return offsets;
  for (std::size_t i = 0; i + pattern.size() <= w.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < pattern.size(); ++j) {
      if (w[i + j] != pattern[j]) {
        match = false;
        break;
      }
    }
    if (match) offsets.push_back(static_cast<int>(i));
  }
  return offsets;
}

Word ReplaceAt(const Word& w, int offset, const Word& pattern,
               const Word& replacement) {
  assert(offset >= 0 &&
         offset + pattern.size() <= w.size());
  Word out;
  out.reserve(w.size() - pattern.size() + replacement.size());
  out.insert(out.end(), w.begin(), w.begin() + offset);
  out.insert(out.end(), replacement.begin(), replacement.end());
  out.insert(out.end(), w.begin() + offset + pattern.size(), w.end());
  return out;
}

}  // namespace tdlib
