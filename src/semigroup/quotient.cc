#include "semigroup/quotient.h"

#include <functional>

#include "util/union_find.h"

namespace tdlib {

BoundedQuotient::BoundedQuotient(const Presentation& p, int max_length)
    : max_length_(max_length) {
  // Enumerate all non-empty words of length <= max_length, by increasing
  // length so word/class ids are stable across growing bounds.
  Word current;
  for (int len = 1; len <= max_length; ++len) {
    std::function<void(int)> fixed = [&](int remaining) {
      if (remaining == 0) {
        index_.emplace(current, static_cast<int>(words_.size()));
        words_.push_back(current);
        return;
      }
      for (int s = 0; s < p.num_symbols(); ++s) {
        current.push_back(s);
        fixed(remaining - 1);
        current.pop_back();
      }
    };
    fixed(len);
  }

  UnionFind uf(words_.size());
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const Word& w = words_[i];
    for (const Equation& eq : p.equations()) {
      for (int dir = 0; dir < 2; ++dir) {
        const Word& pat = dir == 0 ? eq.lhs : eq.rhs;
        const Word& rep = dir == 0 ? eq.rhs : eq.lhs;
        if (pat.size() > w.size()) continue;
        if (w.size() - pat.size() + rep.size() >
            static_cast<std::size_t>(max_length)) {
          continue;
        }
        for (int offset : FindOccurrences(w, pat)) {
          Word next = ReplaceAt(w, offset, pat, rep);
          auto it = index_.find(next);
          if (it != index_.end()) uf.Union(static_cast<int>(i), it->second);
        }
      }
    }
  }
  class_ids_ = uf.DenseClassIds();
  num_classes_ = uf.num_sets();
}

bool BoundedQuotient::Equivalent(const Word& u, const Word& v) const {
  int cu = ClassOf(u);
  int cv = ClassOf(v);
  return cu >= 0 && cu == cv;
}

int BoundedQuotient::ClassOf(const Word& w) const {
  auto it = index_.find(w);
  if (it == index_.end()) return -1;
  return class_ids_[it->second];
}

}  // namespace tdlib
