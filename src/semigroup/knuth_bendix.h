// Knuth-Bendix completion for semigroup presentations.
//
// The breadth-first search in rewrite.h semi-decides the word problem but
// never decides a negative instance. Completion is the complementary tool:
// orient the equations into length-reducing (shortlex) rewrite rules and
// saturate critical pairs; if the process terminates, the resulting system
// is confluent and the word problem becomes DECIDABLE for that presentation
// — two words are equal iff their normal forms coincide. The Main Lemma
// guarantees completion cannot always succeed (otherwise the word problem —
// and by this paper, TD inference — would be decidable), so the procedure
// carries explicit budgets.
#ifndef TDLIB_SEMIGROUP_KNUTH_BENDIX_H_
#define TDLIB_SEMIGROUP_KNUTH_BENDIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "semigroup/presentation.h"

namespace tdlib {

/// An oriented rewrite rule lhs -> rhs with lhs > rhs in shortlex order.
struct RewriteRule {
  Word lhs;
  Word rhs;
};

/// True iff `a` precedes `b` in shortlex order (shorter first, then
/// lexicographic by symbol id).
bool ShortlexLess(const Word& a, const Word& b);

/// A set of shortlex-oriented rules with normal-form computation.
class RewriteSystem {
 public:
  /// Adds an equation as a rule (larger side becomes lhs). Equations whose
  /// sides are identical are dropped. Returns false if dropped.
  bool AddEquation(Word a, Word b);

  const std::vector<RewriteRule>& rules() const { return rules_; }

  /// Rewrites `w` to its normal form (leftmost-innermost; terminates
  /// because every rule is shortlex-decreasing).
  Word NormalForm(const Word& w) const;

  /// True iff the two words have the same normal form. A sound equality
  /// test always; COMPLETE exactly when the system is confluent.
  bool SameNormalForm(const Word& a, const Word& b) const {
    return NormalForm(a) == NormalForm(b);
  }

  std::string ToString(const Presentation& p) const;

 private:
  std::vector<RewriteRule> rules_;
};

struct CompletionConfig {
  /// Abort when the rule set exceeds this size (0 = unlimited).
  int max_rules = 256;

  /// Critical pairs whose sides exceed this length are not pursued.
  int max_word_length = 32;

  double deadline_seconds = 0;
};

enum class CompletionStatus {
  kConfluent,  ///< all critical pairs joinable: word problem decided
  kLimit,      ///< a budget tripped; the system is sound but maybe incomplete
};

struct CompletionResult {
  CompletionStatus status = CompletionStatus::kLimit;
  RewriteSystem system;
  std::uint64_t critical_pairs_examined = 0;
};

/// Runs Knuth-Bendix completion on `p`'s equations.
CompletionResult Complete(const Presentation& p,
                          const CompletionConfig& config = {});

/// Convenience: decides A0 = 0 when completion succeeds. Returns
/// kYes/kNo via `equal` with true return; false return = inconclusive.
bool DecideA0IsZeroByCompletion(const Presentation& p, bool* equal,
                                const CompletionConfig& config = {});

}  // namespace tdlib

#endif  // TDLIB_SEMIGROUP_KNUTH_BENDIX_H_
