#include "engine/service.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace tdlib {
namespace {

// Clamps a per-phase solver deadline to `budget`.
double ClampDeadline(double phase_deadline, double budget) {
  if (budget <= 0) return phase_deadline;
  if (phase_deadline <= 0) return budget;
  return std::min(phase_deadline, budget);
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

void ClampConfigToBudget(DualSolverConfig* config, double remaining_seconds) {
  // Already-started jobs get at least a token budget so they terminate with
  // a result instead of hanging on a zero deadline.
  if (remaining_seconds < 1e-3) remaining_seconds = 1e-3;
  const int rounds = config->rounds > 0 ? config->rounds : 1;
  const double per_phase = remaining_seconds / (2.0 * rounds);
  config->base_chase.deadline_seconds =
      ClampDeadline(config->base_chase.deadline_seconds, per_phase);
  config->base_counterexample.deadline_seconds =
      ClampDeadline(config->base_counterexample.deadline_seconds, per_phase);
}

namespace engine_internal {
namespace {

// Runs one submission on the worker thread that dequeued it. This is the
// single execution path for every service job (and, by construction, for
// everything the BatchSolver wrapper runs).
//
// `core` is a raw pointer on purpose: tasks only run inside the pool's
// lifetime, which is inside the core's — capturing a shared_ptr here would
// let a worker thread become ServiceCore's last owner and join the pool
// from inside itself.
void ExecuteOnWorker(ServiceCore* core, const std::shared_ptr<JobState>& s,
                     std::uint64_t generation) {
  JobResult r;
  r.name = s->job.name;
  DualSolverConfig config;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    // A queued Cancel() claimed (or already completed) this run's
    // termination and fires its callback itself; and a task enqueued for an
    // earlier generation is an orphan (its run was cancelled while queued,
    // then the job was resumed — only the resume's own task may execute, or
    // two workers would race on the shared session).
    if (s->done || s->claimed || s->run_generation != generation) return;
    s->started = true;
    config = s->config;
  }
  const double elapsed = s->submit_timer.ElapsedSeconds();
  if (s->cancel.load(std::memory_order_relaxed)) {
    // Cancelled while queued: terminal without running.
    r.status = JobStatus::kCancelled;
  } else if ((s->skip_when != nullptr &&
              s->skip_when->load(std::memory_order_relaxed)) ||
             (s->deadline_seconds > 0 && elapsed >= s->deadline_seconds)) {
    r.status = JobStatus::kSkipped;
  } else {
    config.cancel = &s->cancel;
    config.base_chase.pool =
        core->options.chase_parallelism ? &core->pool : nullptr;
    if (s->deadline_seconds > 0) {
      ClampConfigToBudget(&config, s->deadline_seconds - elapsed);
    }
    // The session persists across runs of this state: a later
    // ResumeWithBudget continues this run's chase from its checkpoint.
    r = RunJob(s->job, config, &s->session);
    if (s->cancel.load(std::memory_order_relaxed) &&
        r.verdict == DualVerdict::kUnknown) {
      // A solve the cancel flag actually cut short reports kUnknown
      // (SolveImplication stops between phases); rewrite that to the
      // honest kCancelled, keeping the partial statistics. A run that
      // reached a REAL verdict before the flag was observed publishes it —
      // cancellation is a request, not a rollback of finished work.
      r.status = JobStatus::kCancelled;
    }
  }

  // The streaming callback runs BEFORE the terminal state is published:
  // once any Wait()/Poll() observes the result, its on_complete has already
  // finished. That ordering is what lets a caller stream per-job output and
  // still collect afterwards without synchronizing against stray callbacks.
  // (Corollary: the callback must not Wait() on its own handle.)
  if (s->on_complete) s->on_complete(r);
  {
    std::lock_guard<std::mutex> lock(s->mu);
    s->result = r;
    s->done = true;
  }
  s->cv.notify_all();
}

}  // namespace

ServiceCore::ServiceCore(const ServiceOptions& opts)
    : options(opts), pool(ResolveThreads(opts.num_threads)) {}

bool ServiceCore::Enqueue(const std::shared_ptr<JobState>& state,
                          int priority) {
  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    generation = state->run_generation;
  }
  return pool.Submit(
      [this, state, generation] { ExecuteOnWorker(this, state, generation); },
      priority);
}

}  // namespace engine_internal

SolverService::SolverService(ServiceOptions options)
    : core_(std::make_shared<engine_internal::ServiceCore>(options)) {}

SolverService::~SolverService() {
  // Every submitted job must reach a terminal state before the pool joins;
  // handles outliving the service then always see done == true eventually.
  core_->pool.WaitIdle();
}

JobHandle SolverService::Submit(Job job, SubmitOptions options) {
  const int priority = options.priority.value_or(job.priority);
  auto state = std::make_shared<engine_internal::JobState>(std::move(job));
  state->priority = priority;
  state->deadline_seconds = options.deadline_seconds;
  state->skip_when = options.skip_when;
  state->on_complete = std::move(options.on_complete);
  state->core = core_;
  state->submit_timer.Reset();
  if (!core_->Enqueue(state, priority)) {
    // Pool shutting down (service mid-destruction): terminal immediately.
    // The exactly-once-per-run callback contract holds on this path too —
    // streaming consumers count one callback per submission.
    JobResult skipped;
    skipped.name = state->job.name;
    skipped.status = JobStatus::kSkipped;
    if (state->on_complete) state->on_complete(skipped);
    std::lock_guard<std::mutex> lock(state->mu);
    state->result = skipped;
    state->done = true;
  }
  return JobHandle(std::move(state));
}

void SolverService::WaitIdle() { core_->pool.WaitIdle(); }

}  // namespace tdlib
