#include "engine/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "cache/canonical.h"
#include "cache/result_cache.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/trace_span.h"

namespace tdlib {
namespace {

// Clamps a per-phase solver deadline to `budget`.
double ClampDeadline(double phase_deadline, double budget) {
  if (budget <= 0) return phase_deadline;
  if (phase_deadline <= 0) return budget;
  return std::min(phase_deadline, budget);
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// Service-level observability. The outcome counters are bumped ONLY inside
// PublishTerminal (the single terminal-publication path), so
// completed + skipped + cancelled always equals the number of terminal
// runs — the accounting invariant tests/metrics_test.cc checks.
struct ServiceMetrics {
  Counter* submitted;
  Counter* completed;
  Counter* skipped;
  Counter* cancelled;
  Counter* resumes;
  Counter* shed;
  Gauge* inflight;
  Histogram* queue_wait_seconds;
  Histogram* job_seconds;
};

ServiceMetrics& GetServiceMetrics() {
  static ServiceMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    auto* sm = new ServiceMetrics();
    sm->submitted = r.GetCounter("engine.jobs_submitted");
    sm->completed = r.GetCounter("engine.jobs_completed");
    sm->skipped = r.GetCounter("engine.jobs_skipped");
    sm->cancelled = r.GetCounter("engine.jobs_cancelled");
    sm->resumes = r.GetCounter("engine.job_resumes");
    sm->shed = r.GetCounter("engine.jobs_shed");
    sm->inflight = r.GetGauge("engine.jobs_inflight");
    sm->queue_wait_seconds =
        r.GetHistogram("engine.queue_wait_seconds", LatencyBuckets());
    sm->job_seconds = r.GetHistogram("engine.job_seconds", LatencyBuckets());
    return sm;
  }();
  return *m;
}

// Monotone trace-id source: every submission gets its own id, so spans from
// concurrent jobs untangle in the trace viewer.
std::uint64_t NextTraceId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void ClampConfigToBudget(DualSolverConfig* config, double remaining_seconds) {
  // Already-started jobs get at least a token budget so they terminate with
  // a result instead of hanging on a zero deadline.
  if (remaining_seconds < 1e-3) remaining_seconds = 1e-3;
  const int rounds = config->rounds > 0 ? config->rounds : 1;
  const double per_phase = remaining_seconds / (2.0 * rounds);
  config->base_chase.deadline_seconds =
      ClampDeadline(config->base_chase.deadline_seconds, per_phase);
  config->base_counterexample.deadline_seconds =
      ClampDeadline(config->base_counterexample.deadline_seconds, per_phase);
}

namespace engine_internal {
namespace {

// Runs one submission on the worker thread that dequeued it. This is the
// single execution path for every service job (and, by construction, for
// everything the BatchSolver wrapper runs).
//
// `core` is a raw pointer on purpose: tasks only run inside the pool's
// lifetime, which is inside the core's — capturing a shared_ptr here would
// let a worker thread become ServiceCore's last owner and join the pool
// from inside itself.
void ExecuteOnWorker(ServiceCore* core, const std::shared_ptr<JobState>& s,
                     std::uint64_t generation) {
  JobResult r;
  r.name = s->job.name;
  DualSolverConfig config;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    // A queued Cancel() claimed (or already completed) this run's
    // termination and fires its callback itself; and a task enqueued for an
    // earlier generation is an orphan (its run was cancelled while queued,
    // then the job was resumed — only the resume's own task may execute, or
    // two workers would race on the shared session).
    if (s->done || s->claimed || s->run_generation != generation) return;
    s->started = true;
    config = s->config;
  }
  GetServiceMetrics().inflight->Add(1);  // balanced in PublishTerminal
  const double elapsed = s->submit_timer.ElapsedSeconds();
  r.queue_seconds = elapsed;
  GetServiceMetrics().queue_wait_seconds->Observe(elapsed);
  // The queue wait straddles threads, so it cannot be an RAII span; record
  // it as a pre-timed event under this job's id.
  RecordTraceEvent("job.queue", s->trace_id, s->submit_ns,
                   StopWatch::Now() - s->submit_ns);
  // Scope every span the solver stack opens below under this job.
  TraceJobScope job_scope(s->trace_id);
  if (s->cancel.load(std::memory_order_relaxed) ||
      (FaultInjectionEnabled() && ShouldInject(FaultSite::kCancelQueue))) {
    // Cancelled while queued (or a fault-injected queue-boundary cancel):
    // terminal without running.
    r.status = JobStatus::kCancelled;
  } else if ((s->skip_when != nullptr &&
              s->skip_when->load(std::memory_order_relaxed)) ||
             (s->deadline_seconds > 0 && elapsed >= s->deadline_seconds)) {
    r.status = JobStatus::kSkipped;
  } else {
    config.cancel = &s->cancel;
    config.base_chase.pool =
        core->options.chase_parallelism ? &core->pool : nullptr;
    if (s->deadline_seconds > 0) {
      ClampConfigToBudget(&config, s->deadline_seconds - elapsed);
    }
    TraceSpan run_span("job.run");
    // The session persists across runs of this state: a later
    // ResumeWithBudget continues this run's chase from its checkpoint.
    r = RunJob(s->job, config, &s->session);
    if (s->cancel.load(std::memory_order_relaxed) &&
        r.verdict == DualVerdict::kUnknown) {
      // A solve the cancel flag actually cut short reports kUnknown
      // (SolveImplication stops between phases); rewrite that to the
      // honest kCancelled, keeping the partial statistics. A run that
      // reached a REAL verdict before the flag was observed publishes it —
      // cancellation is a request, not a rollback of finished work.
      r.status = JobStatus::kCancelled;
    }
  }
  // Provenance stamp: kMiss on cache-filling runs (the dedup runner's copy
  // is rewritten per waiter at fan-out anyway), kNone on uncached jobs.
  r.cache_source = s->cache_source;

  PublishTerminal(s, r);
}

// Delivers a dedup runner's terminal result to every submission attached to
// it: unpublish the runner from the in-flight table (the cache was already
// filled by the caller, so late isomorphic submissions hit it), close the
// waiter list, then publish a per-waiter copy — renamed, provenance-stamped
// — through PublishTerminal, which accounts each logical submission exactly
// once. A waiter whose run is already terminal (it cancelled) or no longer
// generation 0 (it cancelled AND resumed; the resumed run owns the state
// now) is skipped: its termination belongs to someone else.
void FanOutToWaiters(const std::shared_ptr<JobState>& runner,
                     const JobResult& result) {
  if (std::shared_ptr<ServiceCore> core = runner->core.lock()) {
    std::lock_guard<std::mutex> lock(core->inflight_mu);
    auto it = core->inflight.find(runner->fingerprint);
    if (it != core->inflight.end() && it->second == runner) {
      core->inflight.erase(it);
    }
  }
  std::vector<std::shared_ptr<JobState>> waiters;
  {
    std::lock_guard<std::mutex> lock(runner->mu);
    runner->waiters_closed = true;
    waiters = std::move(runner->waiters);
    runner->waiters.clear();
  }
  for (const std::shared_ptr<JobState>& waiter : waiters) {
    {
      std::lock_guard<std::mutex> lock(waiter->mu);
      waiter->coalesce_runner.reset();  // break the ref cycle either way
      if (waiter->done || waiter->claimed || waiter->run_generation != 0) {
        continue;
      }
      waiter->claimed = true;  // fence concurrent Cancels out of this run
    }
    JobResult renamed = result;
    renamed.name = waiter->job.name;
    renamed.cache_source = waiter->cache_source;
    PublishTerminal(waiter, renamed);
  }
}

}  // namespace

void PublishTerminal(const std::shared_ptr<JobState>& state,
                     const JobResult& result) {
  // The streaming callback runs BEFORE the terminal state is published:
  // once any Wait()/Poll() observes the result, its on_complete has already
  // finished. That ordering is what lets a caller stream per-job output and
  // still collect afterwards without synchronizing against stray callbacks.
  // (Corollary: the callback must not Wait() on its own handle.)
  if (state->on_complete) state->on_complete(result);

  // Cache fill, BEFORE the terminal state becomes observable below: a
  // caller that Wait()s and immediately resubmits an isomorphic job must
  // hit — publishing done first would let that resubmission race the
  // insert and re-solve. The same ordering also precedes the in-flight
  // table cleanup (fan-out), so once a runner leaves the table a late
  // isomorphic submission finds the verdict in the cache. Only completed
  // runs fill (a cancelled/skipped run proves nothing about the problem),
  // and only runs that were fingerprinted at submission do.
  if (state->cache != nullptr && state->fingerprint.valid &&
      result.status == JobStatus::kCompleted) {
    state->cache->Insert(state->fingerprint,
                         CachedVerdictFromResult(result, state->trace_id));
  }

  bool was_started;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->result = result;
    state->done = true;
    was_started = state->started;
  }
  state->cv.notify_all();

  // Outcome accounting, exactly once per terminal run: every path that
  // makes a run terminal funnels through this function, so the per-status
  // counters partition the terminal runs (kSkipped and kCancelled included)
  // and can never double-count one. An internal dedup runner is NOT a
  // logical submission — its waiters each publish through here and carry
  // the counts — so it skips the outcome partition and the latency
  // histogram; the in-flight gauge stays symmetric (the worker counted the
  // runner up when it picked it up).
  const double elapsed = state->submit_timer.ElapsedSeconds();
  ServiceMetrics& m = GetServiceMetrics();
  if (!state->internal_runner) {
    switch (result.status) {
      case JobStatus::kCompleted: m.completed->Add(1); break;
      case JobStatus::kSkipped: m.skipped->Add(1); break;
      case JobStatus::kCancelled: m.cancelled->Add(1); break;
    }
    m.job_seconds->Observe(elapsed);
  }
  // Only runs a worker actually picked up were counted in-flight; a queued
  // cancel or a pool-rejected submission never was.
  if (was_started) m.inflight->Add(-1);

  if (state->slow_log_seconds > 0 && elapsed >= state->slow_log_seconds) {
    std::ostringstream oss;
    oss << "slow job " << result.name << ": " << elapsed
        << "s status=" << result.VerdictName()
        << " queue=" << result.queue_seconds
        << "s match=" << result.match_seconds
        << "s fire=" << result.fire_seconds
        << "s checkpoint=" << result.checkpoint_seconds
        << "s passes=" << result.chase_passes
        << " steps=" << result.chase_steps
        << " rounds=" << result.rounds_used;
    if (state->slow_log_sink) {
      state->slow_log_sink(oss.str());
    } else {
      std::fprintf(stderr, "%s\n", oss.str().c_str());
    }
  }

  // Dedup runner: deliver the verdict to every attached submission. Depth-
  // one recursion into PublishTerminal (waiters are never runners).
  if (state->internal_runner) FanOutToWaiters(state, result);
}

void DetachWaiter(const std::shared_ptr<JobState>& runner,
                  const std::shared_ptr<JobState>& waiter) {
  {
    std::lock_guard<std::mutex> lock(runner->mu);
    auto& waiters = runner->waiters;
    waiters.erase(std::remove(waiters.begin(), waiters.end(), waiter),
                  waiters.end());
    if (!waiters.empty() || runner->waiters_closed) return;
  }
  // Last waiter gone: the run has no audience, stop it. The check and the
  // cancel cannot be one critical section of runner->mu alone — an
  // isomorphic submission could attach between them (the runner is still in
  // the in-flight table) and would then receive a kCancelled it never asked
  // for. So first unpublish the runner from the table under inflight_mu
  // (after which no new waiter can find it), then re-check emptiness under
  // both locks and only then cancel. Lock order inflight_mu -> mu matches
  // the attach path.
  std::shared_ptr<ServiceCore> core = runner->core.lock();
  JobResult cancelled;
  bool publish = false;
  {
    std::unique_lock<std::mutex> table_lock;
    if (core != nullptr) {
      table_lock = std::unique_lock<std::mutex>(core->inflight_mu);
    }
    std::lock_guard<std::mutex> lock(runner->mu);
    if (!runner->waiters.empty() || runner->waiters_closed) return;
    if (core != nullptr) {
      auto it = core->inflight.find(runner->fingerprint);
      if (it != core->inflight.end() && it->second == runner) {
        core->inflight.erase(it);
      }
    }
    if (runner->done || runner->claimed) return;
    // Mirrors JobHandle::Cancel: a running chase observes the flag on the
    // solver stack's cancel cadence; a still-queued runner terminates right
    // here (claimed fences its worker task out).
    runner->cancel.store(true, std::memory_order_relaxed);
    if (!runner->started) {
      runner->claimed = true;
      publish = true;
      cancelled.name = runner->job.name;
      cancelled.status = JobStatus::kCancelled;
    }
  }
  if (publish) PublishTerminal(runner, cancelled);
}

ServiceCore::ServiceCore(const ServiceOptions& opts)
    : options(opts), pool(ResolveThreads(opts.num_threads)) {}

bool ServiceCore::Enqueue(const std::shared_ptr<JobState>& state,
                          int priority) {
  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    generation = state->run_generation;
  }
  return pool.Submit(
      [this, state, generation] { ExecuteOnWorker(this, state, generation); },
      priority);
}

}  // namespace engine_internal

SolverService::SolverService(ServiceOptions options)
    : core_(std::make_shared<engine_internal::ServiceCore>(options)) {}

SolverService::~SolverService() {
  // Every submitted job must reach a terminal state before the pool joins;
  // handles outliving the service then always see done == true eventually.
  core_->pool.WaitIdle();
}

namespace {

std::shared_ptr<engine_internal::JobState> MakeJobState(
    const std::shared_ptr<engine_internal::ServiceCore>& core, Job job,
    SubmitOptions* options, int priority) {
  auto state = std::make_shared<engine_internal::JobState>(std::move(job));
  state->priority = priority;
  state->deadline_seconds = options->deadline_seconds;
  state->skip_when = options->skip_when;
  state->on_complete = std::move(options->on_complete);
  state->core = core;
  state->trace_id = NextTraceId();
  state->slow_log_seconds = core->options.slow_log_seconds;
  state->slow_log_sink = core->options.slow_log_sink;
  state->submit_timer.Reset();
  state->submit_ns = StopWatch::Now();
  GetServiceMetrics().submitted->Add(1);
  return state;
}

// Load shedding: the job never runs, but its handle still terminates (as
// kSkipped) and its callback still fires exactly once — a shed submission
// is observationally a skip, just with its own counter so operators can
// tell overload apart from skip_when gates.
void ShedAsSkipped(const std::shared_ptr<engine_internal::JobState>& state) {
  GetServiceMetrics().shed->Add(1);
  JobResult shed;
  shed.name = state->job.name;
  shed.status = JobStatus::kSkipped;
  engine_internal::PublishTerminal(state, shed);
}

// Publishes `status` as `state`'s terminal result on the submitting thread
// (the cache paths' analogue of a queued cancel: terminal without a worker).
void PublishImmediate(const std::shared_ptr<engine_internal::JobState>& state,
                      JobStatus status) {
  JobResult result;
  result.name = state->job.name;
  result.status = status;
  engine_internal::PublishTerminal(state, result);
}

// Consults the result cache for `state`'s submission. Returns true iff the
// submission was fully handled here — served from cache (terminal before
// Submit returns, like a queued cancel) or attached to an in-flight
// isomorphic run (terminal at that run's fan-out). Returns false when the
// caller must enqueue the state itself; in the dedup-off miss case the
// state then carries fingerprint+cache so its completion fills the cache.
//
// Gate semantics on cache paths: skip_when is read HERE, at submit time —
// the cache-served analogue of the worker's pickup-time read — and never
// again (a coalesced waiter whose gate rises mid-flight still completes;
// gates say "don't START work", and no work is started for it).
bool TryServeFromCache(
    const std::shared_ptr<engine_internal::ServiceCore>& core,
    const std::shared_ptr<engine_internal::JobState>& state) {
  const std::shared_ptr<ResultCache>& cache = core->options.result_cache;
  if (cache == nullptr) return false;
  // A wall-clock deadline makes the outcome machine-load-dependent: not
  // cacheable, not safe to coalesce (waiters may hold different deadlines).
  if (state->deadline_seconds > 0) return false;
  const CacheFingerprint fp = FingerprintProblem(
      state->job.dependencies, state->job.goal, state->config);
  if (!fp.valid) return false;  // config itself uncacheable
  if (state->skip_when != nullptr &&
      state->skip_when->load(std::memory_order_relaxed)) {
    PublishImmediate(state, JobStatus::kSkipped);
    return true;
  }
  CachedVerdict verdict;
  if (cache->Lookup(fp, &verdict)) {
    engine_internal::PublishTerminal(
        state, CachedVerdictToResult(verdict, state->job.name));
    return true;
  }
  if (!core->options.cache_inflight_dedup) {
    // Miss, no dedup: the submission runs itself and fills the cache.
    state->fingerprint = fp;
    state->cache = cache;
    state->cache_source = CacheSource::kMiss;
    return false;
  }
  // Miss with dedup: attach to the in-flight runner for this fingerprint,
  // or create one. Attach happens under inflight_mu -> runner->mu: while a
  // runner is findable in the table its waiter list is still open (fan-out
  // and DetachWaiter both unpublish from the table BEFORE closing), so an
  // attach that finds a runner always succeeds.
  std::shared_ptr<engine_internal::JobState> runner;
  {
    std::lock_guard<std::mutex> table_lock(core->inflight_mu);
    auto it = core->inflight.find(fp);
    if (it != core->inflight.end()) {
      runner = it->second;
      std::lock_guard<std::mutex> lock(runner->mu);
      state->cache_source = CacheSource::kCoalesced;
      state->coalesce_runner = runner;
      runner->waiters.push_back(state);
      cache->CountCoalesced();
      return true;
    }
    // Fresh miss under backpressure is still a fresh chase: shed it like
    // any other enqueue (the caller's capacity check handles the state).
    if (core->AtCapacity()) return false;
    runner = std::make_shared<engine_internal::JobState>(state->job);
    runner->internal_runner = true;
    runner->priority = state->priority;
    runner->core = core;
    runner->trace_id = NextTraceId();
    runner->slow_log_seconds = core->options.slow_log_seconds;
    runner->slow_log_sink = core->options.slow_log_sink;
    runner->submit_timer.Reset();
    runner->submit_ns = StopWatch::Now();
    runner->fingerprint = fp;
    runner->cache = cache;
    runner->cache_source = CacheSource::kMiss;
    // The creating submission is the first waiter (provenance kMiss: its
    // submission is the one that caused a chase). Safe without runner->mu —
    // the runner is not visible to anyone until the table insert below.
    state->cache_source = CacheSource::kMiss;
    state->coalesce_runner = runner;
    runner->waiters.push_back(state);
    core->inflight[fp] = runner;
  }
  if (!core->Enqueue(runner, runner->priority)) {
    // Pool shutting down: the runner terminates as kSkipped and its fan-out
    // delivers the skip to the waiter — same observable contract as
    // EnqueueOrSkip gives an uncached submission.
    JobResult skipped;
    skipped.name = runner->job.name;
    skipped.status = JobStatus::kSkipped;
    engine_internal::PublishTerminal(runner, skipped);
  }
  return true;
}

void EnqueueOrSkip(const std::shared_ptr<engine_internal::ServiceCore>& core,
                   const std::shared_ptr<engine_internal::JobState>& state,
                   int priority) {
  if (!core->Enqueue(state, priority)) {
    // Pool shutting down (service mid-destruction): terminal immediately.
    // The exactly-once-per-run callback contract holds on this path too —
    // streaming consumers count one callback per submission — and the skip
    // is accounted through the same single publication path as every other
    // outcome.
    JobResult skipped;
    skipped.name = state->job.name;
    skipped.status = JobStatus::kSkipped;
    engine_internal::PublishTerminal(state, skipped);
  }
}

}  // namespace

JobHandle SolverService::Submit(Job job, SubmitOptions options) {
  const int priority = options.priority.value_or(job.priority);
  auto state = MakeJobState(core_, std::move(job), &options, priority);
  // Cache first, capacity second: a hit or an in-flight attach consumes no
  // queue slot, so it is served even when admission control is shedding
  // (the cache is exactly what keeps an overloaded service responsive).
  if (TryServeFromCache(core_, state)) return JobHandle(std::move(state));
  if (core_->AtCapacity()) {
    ShedAsSkipped(state);
  } else {
    EnqueueOrSkip(core_, state, priority);
  }
  return JobHandle(std::move(state));
}

bool SolverService::TrySubmit(Job job, SubmitOptions options,
                              JobHandle* handle) {
  if (core_->AtCapacity()) return false;
  const int priority = options.priority.value_or(job.priority);
  auto state = MakeJobState(core_, std::move(job), &options, priority);
  if (!TryServeFromCache(core_, state)) {
    EnqueueOrSkip(core_, state, priority);
  }
  *handle = JobHandle(std::move(state));
  return true;
}

JobHandle SolverService::SubmitWithRetry(Job job, SubmitOptions options,
                                         const RetryOptions& retry) {
  const int attempts = std::max(1, retry.max_attempts);
  const int priority = options.priority.value_or(job.priority);
  double backoff = std::max(0.0, retry.initial_backoff_seconds);
  for (int attempt = 1; core_->AtCapacity(); ++attempt) {
    if (attempt >= attempts) {
      // Every attempt found the queue full: give up visibly rather than
      // block the caller forever against a saturated service.
      auto state = MakeJobState(core_, std::move(job), &options, priority);
      ShedAsSkipped(state);
      return JobHandle(std::move(state));
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    backoff *= std::max(1.0, retry.multiplier);
  }
  auto state = MakeJobState(core_, std::move(job), &options, priority);
  if (!TryServeFromCache(core_, state)) {
    EnqueueOrSkip(core_, state, priority);
  }
  return JobHandle(std::move(state));
}

void SolverService::WaitIdle() { core_->pool.WaitIdle(); }

}  // namespace tdlib
