#include "engine/job_handle.h"

#include <utility>

#include "engine/service.h"
#include "util/metrics.h"

namespace tdlib {

namespace {
const std::string kEmptyName;
}  // namespace

const std::string& JobHandle::name() const {
  return state_ != nullptr ? state_->job.name : kEmptyName;
}

JobResult JobHandle::Wait() const {
  if (state_ == nullptr) return JobResult{};
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->result;
}

std::optional<JobResult> JobHandle::Poll() const {
  if (state_ == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(state_->mu);
  if (!state_->done) return std::nullopt;
  return state_->result;
}

bool JobHandle::Cancel() const {
  if (state_ == nullptr) return false;
  JobResult cancelled;
  std::shared_ptr<engine_internal::JobState> runner;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->done) return false;   // finished/skipped: harmless no-op
    if (state_->claimed) return true; // another Cancel is completing this run
    // The store is what a running solver observes (HomSearchOptions'
    // amortized cadence). A race where the job completes between the done
    // check and this store is benign: the flag is only read again by a
    // ResumeWithBudget run, which clears it first.
    state_->cancel.store(true, std::memory_order_relaxed);
    if (state_->started) return true;  // running: cooperative stop, soon
    // Still queued (or attached to a dedup runner — a waiter never runs on
    // a worker, so it always takes this path): terminal right here, not
    // when a worker finally gets to it — a cancelled submission must not
    // wait behind unrelated work. `claimed` fences the worker (or the
    // runner's fan-out) out while we complete the run outside the lock.
    state_->claimed = true;
    runner = std::move(state_->coalesce_runner);
    state_->coalesce_runner.reset();
    cancelled.name = state_->job.name;
    cancelled.status = JobStatus::kCancelled;
  }
  // The shared publication path fires the callback exactly once per run,
  // BEFORE the terminal state is observable (the same ordering the worker
  // gives every other run), and accounts this run's outcome exactly once.
  // It runs on the cancelling thread, the one exception to the on-a-worker
  // rule (documented in SubmitOptions).
  engine_internal::PublishTerminal(state_, cancelled);
  // Coalesced submission: leave the shared run, and stop it if this was its
  // last audience — the ISSUE-level contract "one chase, N completions,
  // cancel only when the last waiter cancels".
  if (runner != nullptr) engine_internal::DetachWaiter(runner, state_);
  return true;
}

bool JobHandle::ResumeWithBudget(const DualSolverConfig& config) const {
  if (state_ == nullptr) return false;
  std::shared_ptr<engine_internal::ServiceCore> core = state_->core.lock();
  if (core == nullptr) return false;  // service is gone
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (!state_->done) return false;  // still queued or running
    state_->config = config;
    // A resumed job starts with a clean cancel flag and a fresh deadline
    // epoch (deadline_seconds now counts from the resume). Both resets
    // happen BEFORE done flips, inside the lock: a Cancel() that observes
    // done == false targets the resumed run and must never be erased.
    state_->cancel.store(false, std::memory_order_relaxed);
    state_->submit_timer.Reset();
    state_->submit_ns = StopWatch::Now();  // the queue wait restarts too
    state_->done = false;
    state_->started = false;  // the resumed run is queued again
    state_->claimed = false;
    // Orphan any task still queued for a previous run (a queued Cancel
    // leaves one behind): only the task enqueued below may execute. A
    // pending dedup fan-out is orphaned the same way (it only claims
    // generation-0 waiters).
    ++state_->run_generation;
    // The resumed run must neither fill nor be served from the cache: its
    // config no longer matches what was fingerprinted at submission, and a
    // stale fingerprint would poison the cache with the new run's counters.
    state_->fingerprint = CacheFingerprint{};
    state_->cache.reset();
    state_->coalesce_runner.reset();
    state_->cache_source = CacheSource::kNone;
  }
  static Counter* resumes =
      MetricsRegistry::Global().GetCounter("engine.job_resumes");
  resumes->Add(1);
  if (!core->Enqueue(state_, state_->priority)) {
    // Pool already shutting down: restore terminal state (the previous
    // result stands) and notify, so a Wait() that raced in while done was
    // briefly false is not stranded.
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->done = true;
    }
    state_->cv.notify_all();
    return false;
  }
  return true;
}

}  // namespace tdlib
