#include "engine/job.h"

#include <sstream>

#include "util/timer.h"

namespace tdlib {

std::string_view DualVerdictName(DualVerdict verdict) {
  switch (verdict) {
    case DualVerdict::kImplied: return "IMPLIED";
    case DualVerdict::kRefutedFinite: return "REFUTED-FINITE";
    case DualVerdict::kRefutedByFixpoint: return "REFUTED-FIXPOINT";
    case DualVerdict::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

std::string_view CacheSourceName(CacheSource source) {
  switch (source) {
    case CacheSource::kNone: return "none";
    case CacheSource::kMiss: return "miss";
    case CacheSource::kHit: return "hit";
    case CacheSource::kCoalesced: return "coalesced";
  }
  return "none";
}

bool IsRefutation(const JobResult& result) {
  return result.status == JobStatus::kCompleted &&
         (result.verdict == DualVerdict::kRefutedFinite ||
          result.verdict == DualVerdict::kRefutedByFixpoint);
}

std::string_view JobResult::VerdictName() const {
  if (status == JobStatus::kSkipped) return "SKIPPED";
  if (status == JobStatus::kCancelled) return "CANCELLED";
  return DualVerdictName(verdict);
}

std::string JobResult::ToString() const {
  std::ostringstream oss;
  oss << name << ": " << VerdictName() << " rounds=" << rounds_used
      << " steps=" << chase_steps << " cands=" << candidates_checked << " ("
      << wall_seconds << "s)";
  return oss.str();
}

std::string JobResult::DeterministicSummary() const {
  std::ostringstream oss;
  oss << name << '|' << VerdictName() << '|' << rounds_used << '|'
      << chase_steps << '|' << chase_passes << '|' << hom_nodes << '|'
      << candidates_checked;
  return oss.str();
}

std::vector<std::string> JobResult::CsvHeader() {
  return {"job",          "status",        "verdict",
          "rounds_used",  "chase_steps",   "chase_passes",
          "hom_nodes",    "match_tasks",   "carried_passes",
          "candidates",   "wall_seconds",  "queue_seconds",
          "match_seconds", "fire_seconds", "checkpoint_seconds",
          "cache"};
}

namespace {

std::string_view JobStatusName(JobStatus status) {
  switch (status) {
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kSkipped: return "skipped";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

}  // namespace

std::vector<std::string> JobResult::CsvRow() const {
  return {name,
          std::string(JobStatusName(status)),
          std::string(DualVerdictName(verdict)),
          std::to_string(rounds_used),
          std::to_string(chase_steps),
          std::to_string(chase_passes),
          std::to_string(hom_nodes),
          std::to_string(match_tasks),
          std::to_string(carried_passes),
          std::to_string(candidates_checked),
          std::to_string(wall_seconds),
          std::to_string(queue_seconds),
          std::to_string(match_seconds),
          std::to_string(fire_seconds),
          std::to_string(checkpoint_seconds),
          std::string(CacheSourceName(cache_source))};
}

JobResult RunJob(const Job& job) { return RunJob(job, job.config); }

JobResult RunJob(const Job& job, const DualSolverConfig& config) {
  return RunJob(job, config, /*session=*/nullptr);
}

JobResult RunJob(const Job& job, const DualSolverConfig& config,
                 ChaseSession* session) {
  JobResult result;
  result.name = job.name;
  Timer timer;
  DualResult dual = SolveImplication(job.dependencies, job.goal, config,
                                     session);
  result.wall_seconds = timer.ElapsedSeconds();
  result.status = JobStatus::kCompleted;
  if (dual.verdict == DualVerdict::kUnknown &&
      dual.implication.chase.status == ChaseStatus::kCancelled) {
    // The chase observed a cancel (the job-level flag or an injected
    // phase-boundary cancel) and the solver stopped without a verdict:
    // report the honest kCancelled instead of a kCompleted/kUnknown. A run
    // that reached a real verdict before the cancel keeps it — cancellation
    // is a request, not a rollback of finished work.
    result.status = JobStatus::kCancelled;
  }
  result.verdict = dual.verdict;
  result.rounds_used = dual.rounds_used;
  result.chase_steps = dual.implication.chase.steps;
  result.chase_passes = dual.implication.chase.passes;
  result.hom_nodes = dual.implication.chase.hom_nodes;
  result.match_tasks = dual.implication.chase.match_tasks;
  result.carried_passes = dual.implication.chase.carried_passes;
  result.candidates_checked = dual.counterexample.candidates_checked;
  result.match_seconds = dual.implication.chase.match_seconds;
  result.fire_seconds = dual.implication.chase.fire_seconds;
  result.checkpoint_seconds = dual.implication.chase.checkpoint_seconds;
  return result;
}

}  // namespace tdlib
