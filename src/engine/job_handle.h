// JobHandle: the caller's end of one submitted implication question.
//
// SolverService::Submit returns a handle instead of blocking; the handle is
// a cheap shared reference to the job's state, so it can be copied, stored,
// waited on from several threads, and outlive the service itself. Four
// capabilities define the surface:
//
//   * Wait()   — block until the job is terminal and return its JobResult.
//   * Poll()   — non-blocking peek: the result if terminal, nullopt if not.
//   * Cancel() — cooperative cancellation. The request is routed through the
//                solver stack's atomic cancel flag (HomSearchOptions), which
//                every homomorphism search observes on an amortized ~512-
//                node cadence, every match stream per match, the chase per
//                fire and the enumerator per candidate — so even a pumping
//                (non-terminating) chase stops within one cadence interval
//                and the job reports JobStatus::kCancelled. Cancelling a
//                queued job makes it terminal without running; cancelling a
//                finished or skipped job is a harmless no-op.
//   * ResumeWithBudget() — re-arm a terminal job with bigger budgets. The
//                job's ChaseSession (the pumped instance + checkpoint of the
//                last budget-stopped chase) is kept across runs, so the new
//                run CONTINUES the previous chase instead of re-deriving it;
//                the final JobResult is byte-identical to running the bigger
//                budget from scratch, minus the re-derivation time.
//
// Because TD implication is undecidable (the paper's main result), every
// question is an open-ended, budgeted computation; this handle is the API
// shape of that fact: submit, observe, cancel, escalate.
#ifndef TDLIB_ENGINE_JOB_HANDLE_H_
#define TDLIB_ENGINE_JOB_HANDLE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cache/fingerprint.h"
#include "engine/job.h"
#include "util/timer.h"

namespace tdlib {

class SolverService;
class ResultCache;

namespace engine_internal {

struct ServiceCore;

/// Shared state of one submission. Owned jointly by the service (until the
/// job is terminal) and by every JobHandle copy. All mutable fields are
/// guarded by `mu` except the lock-free control flags.
struct JobState {
  // Job has no default constructor (a Dependency is never empty), so the
  // state is born around its job.
  explicit JobState(Job j) : job(std::move(j)), config(job.config) {}

  // Immutable after Submit.
  Job job;                      ///< owned copy: the service outlives callers
  int priority = 0;             ///< effective (override or Job::priority);
                                ///  reused by ResumeWithBudget re-enqueues
  double deadline_seconds = 0;  ///< per-submission budget, from submit time
  const std::atomic<bool>* skip_when = nullptr;  ///< admission gate
  std::weak_ptr<ServiceCore> core;  ///< for ResumeWithBudget re-enqueue
  std::uint64_t trace_id = 0;       ///< service-assigned id for trace spans
  std::int64_t submit_ns = 0;       ///< StopWatch tick at Submit/resume (the
                                    ///  "job.queue" trace event's left edge)
  double slow_log_seconds = 0;      ///< ServiceOptions copy: 0 = disabled
  std::function<void(const std::string&)> slow_log_sink;  ///< null = stderr

  // Lock-free control.
  std::atomic<bool> cancel{false};  ///< cooperative cancel, solver-observed

  // Guarded by mu.
  mutable std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool started = false;  ///< a worker picked this run up (false while queued)
  bool claimed = false;  ///< a queued Cancel() owns this run's termination
  std::uint64_t run_generation = 0;  ///< bumped by every ResumeWithBudget;
                                     ///  a pool task only executes the run
                                     ///  it was enqueued for, so a task
                                     ///  orphaned by a queued Cancel can
                                     ///  never race a later resume's task
  JobResult result;
  DualSolverConfig config;          ///< budgets for the current/next run
  ChaseSession session;             ///< resumable chase of THIS (D, D0)
  std::function<void(const JobResult&)> on_complete;
  Timer submit_timer;               ///< deadline epoch; reset on resume

  // Result-cache plumbing (see cache/result_cache.h and the dedup model in
  // engine/service.cc). `fingerprint`/`cache` are set before the state is
  // shared and only on runs that should FILL the cache (the dedup runner,
  // or the submission itself when dedup is off); ResumeWithBudget clears
  // them — a resumed run's config differs from what was fingerprinted.
  CacheFingerprint fingerprint;        ///< valid only on cache-filling runs
  std::shared_ptr<ResultCache> cache;  ///< fill target at publication
  bool internal_runner = false;  ///< dedup runner: service-owned, never
                                 ///  handed to callers; skips per-submission
                                 ///  accounting (its waiters carry it)
  CacheSource cache_source = CacheSource::kNone;  ///< stamped into results

  // Guarded by mu. On a runner: the submissions awaiting its verdict
  // (closed exactly once, at publication). On a waiter: the runner it is
  // attached to (cleared at fan-out / cancel, breaking the ref cycle).
  std::vector<std::shared_ptr<JobState>> waiters;
  bool waiters_closed = false;
  std::shared_ptr<JobState> coalesce_runner;
};

/// The single terminal-publication path for every run of every job: fires
/// the streaming callback, stores the result, flips done, notifies waiters,
/// and accounts the outcome (per-status counter, submit-to-terminal
/// latency, in-flight gauge, slow log) EXACTLY once. Worker completions,
/// queued-job cancellations and pool-rejected submissions all route here —
/// which is what makes double-counting an outcome structurally impossible.
/// Caller contract: this run's termination is already claimed (the caller
/// is the worker that set `started`, the Cancel that set `claimed`, or the
/// Submit whose Enqueue failed), so no other thread can publish it.
void PublishTerminal(const std::shared_ptr<JobState>& state,
                     const JobResult& result);

/// Removes a cancelled waiter from its dedup runner and, when it was the
/// LAST waiter, cancels the runner itself (after unpublishing it from the
/// in-flight table so new isomorphic submissions start a fresh run instead
/// of attaching to a dying one). Called by JobHandle::Cancel after the
/// waiter's own kCancelled publication. Defined in service.cc.
void DetachWaiter(const std::shared_ptr<JobState>& runner,
                  const std::shared_ptr<JobState>& waiter);

}  // namespace engine_internal

/// See the file comment. Default-constructed handles are empty (valid() is
/// false); every other handle comes from SolverService::Submit.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// The submitted job's name ("" for an empty handle).
  const std::string& name() const;

  /// Blocks until the job reaches a terminal state and returns the result.
  /// Safe to call repeatedly and from several threads.
  JobResult Wait() const;

  /// Returns the result if the job is terminal, std::nullopt while it is
  /// queued or running. Never blocks.
  std::optional<JobResult> Poll() const;

  /// Requests cooperative cancellation. Returns true iff the request was
  /// registered while the job was still queued or running; the job then
  /// becomes terminal promptly, normally with JobStatus::kCancelled (a job
  /// that was in the last instants of finishing may still publish its
  /// completed result — cancellation is a request, not a rollback). False
  /// if the job was already terminal: nothing changes (harmless no-op).
  bool Cancel() const;

  /// Re-arms a TERMINAL job with new budgets and re-enqueues it on its
  /// service; Wait()/Poll() then track the new run. The retained
  /// ChaseSession makes the new run continue the previous chase when its
  /// last stop was resumable (step/tuple budget), and start afresh
  /// otherwise — either way the result equals a from-scratch run under
  /// `config`. Returns false (and changes nothing) if the job is still
  /// queued/running or the service is gone. Not safe to race with another
  /// Resume on the same handle; Wait/Poll/Cancel may race freely.
  bool ResumeWithBudget(const DualSolverConfig& config) const;

 private:
  friend class SolverService;
  explicit JobHandle(std::shared_ptr<engine_internal::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<engine_internal::JobState> state_;
};

}  // namespace tdlib

#endif  // TDLIB_ENGINE_JOB_HANDLE_H_
