// Workload generators: job batches from three scenario families.
//
//   reduction-sweep — presentations swept through the Gurevich–Lewis
//                     reduction. The family interleaves the three regimes
//                     of the Main Theorem (derivable word problem, finitely
//                     refutable, and the Fagin-style gap) at growing
//                     alphabet sizes, so a batch exercises both halves of
//                     the dual solver at a spread of instance sizes.
//   random          — seeded random TDs over a small schema (util/rng.h);
//                     deterministic in (seed, index), so re-running a seed
//                     reproduces the batch exactly.
//   files           — parsed .td dependency programs (core/parser); per
//                     file, the last dependency is the goal D0 and all
//                     earlier ones form D (the td_tool convention).
//
// All generators are pure: the returned jobs own their data and carry the
// WorkloadOptions solver budgets, so they can be run by any engine mode.
#ifndef TDLIB_ENGINE_WORKLOAD_H_
#define TDLIB_ENGINE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/job.h"
#include "util/status.h"

namespace tdlib {

/// Default per-job budgets for generated workloads: 2 escalation rounds on
/// a 2000-step base chase. Generated families always contain gap-regime
/// instances whose chase side pumps forever, so the library default
/// (3 rounds on 100000 steps) would spend nearly all batch time proving
/// kUnknown harder; callers wanting deep searches raise the budgets
/// explicitly (tdbatch --chase-steps/--rounds).
DualSolverConfig DefaultWorkloadSolverConfig();

/// Knobs shared by every generator.
struct WorkloadOptions {
  int size = 12;            ///< number of jobs to generate
  std::uint64_t seed = 1;   ///< random family only
  DualSolverConfig solver = DefaultWorkloadSolverConfig();
};

/// Jobs derived from presentations via GurevichLewisReduction. Job i cycles
/// through the implied / refuted / gap regimes while the presentation grows
/// with i, and carries priority = size - i (front of the sweep first).
std::vector<Job> ReductionSweepWorkload(const WorkloadOptions& options);

/// Random-TD jobs: job i asks whether 3 random TDs imply a 4th, all drawn
/// from Rng(seed ^ mix(i)). Deterministic per (seed, i).
std::vector<Job> RandomTdWorkload(const WorkloadOptions& options);

/// One job per .td file (see the files family above). Fails on unreadable
/// or malformed input, or a program with fewer than two dependencies.
Result<std::vector<Job>> FileWorkload(const std::vector<std::string>& paths,
                                      const WorkloadOptions& options);

/// Dispatch by family name: "reduction-sweep" or "random".
Result<std::vector<Job>> MakeWorkload(std::string_view family,
                                      const WorkloadOptions& options);

/// The names MakeWorkload accepts.
std::vector<std::string> WorkloadFamilies();

}  // namespace tdlib

#endif  // TDLIB_ENGINE_WORKLOAD_H_
