// SolverService: the engine's long-lived, asynchronous public surface.
//
// TD implication is undecidable, so a production engine can never promise a
// one-shot answer; the honest API shape is a service that accepts questions
// as they arrive and hands back observable, cancellable, resumable handles:
//
//   SolverService service(options);            // options.num_threads = 8
//   JobHandle h = service.Submit(job, submit); // submit.deadline_seconds = 2
//   ...
//   JobResult r = h.Wait();                  // or h.Poll(), h.Cancel()
//   if (r.verdict == DualVerdict::kUnknown)  // budgets ran out — escalate
//     h.ResumeWithBudget(bigger), r = h.Wait();
//
// Submissions carry their own deadline, priority and completion callback —
// the per-batch-only controls of the old blocking BatchSolver::Run are now
// per question. BatchSolver still exists as a thin compatibility wrapper
// over this service (engine/batch_solver.h), so the collect-everything
// batch mode and its byte-identical DeterministicSummary are preserved by
// construction.
//
// Execution model: one fixed-width ThreadPool serves job-level parallelism
// and (via ChaseConfig::pool) chase-level match fan-out, exactly as the
// batch engine did — nested ParallelFor cannot deadlock and the pool never
// oversubscribes. Jobs run on workers; Submit never blocks on solver work.
//
// Lifetime: the destructor waits for every submitted job to reach a
// terminal state (queued jobs still run). Handles are shared state and
// stay valid after the service is gone; only ResumeWithBudget then fails.
#ifndef TDLIB_ENGINE_SERVICE_H_
#define TDLIB_ENGINE_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "cache/fingerprint.h"
#include "engine/job_handle.h"
#include "engine/thread_pool.h"

namespace tdlib {

class ResultCache;

/// Service-wide knobs (fixed at construction).
struct ServiceOptions {
  /// Worker count; 0 = std::thread::hardware_concurrency().
  int num_threads = 0;

  /// Lend the pool to each job's chase as ChaseConfig::pool (see
  /// BatchOptions::chase_parallelism — same mechanism, same byte-identity).
  bool chase_parallelism = true;

  /// Slow log: a job whose submit-to-terminal wall time reaches this many
  /// seconds emits a one-line phase breakdown (queue/match/fire/checkpoint)
  /// when it terminates. <= 0 disables. Purely observational — it changes
  /// nothing about scheduling or results.
  double slow_log_seconds = 0;

  /// Where slow-log lines go; null = stderr. Must be thread-safe (it runs
  /// on whichever thread publishes the terminal state).
  std::function<void(const std::string&)> slow_log_sink;

  /// Backpressure: when > 0, Submit sheds a job (terminal kSkipped, counted
  /// in engine.jobs_shed) instead of enqueuing while the pool's queue
  /// already holds this many tasks, and TrySubmit declines it. 0 = accept
  /// everything (the historical behavior). Shedding at admission keeps an
  /// overloaded service's queue latency bounded — a caller that must not
  /// lose work uses TrySubmit/SubmitWithRetry and holds the job itself.
  std::size_t max_queue_depth = 0;

  /// Canonical-form result cache (cache/result_cache.h); null = off. The
  /// service consults it BEFORE enqueuing: a submission whose (D, D0,
  /// budgets) canonicalize to a cached verdict terminates instantly with a
  /// byte-identical result (CacheSource::kHit). Shared, so one cache can
  /// back several services and outlive all of them (tdbatch's warm-start
  /// file loads into it before the service exists). Submissions carrying a
  /// wall-clock deadline bypass the cache — their results are not a
  /// deterministic function of the job (cache/canonical.h).
  std::shared_ptr<ResultCache> result_cache;

  /// In-flight dedup (requires result_cache): a submission isomorphic to a
  /// RUNNING job attaches to that run instead of starting its own chase —
  /// one solve, N completions (CacheSource::kCoalesced), and the shared run
  /// is cancelled only when its last waiter cancels. Off = every miss runs
  /// itself (still filling the cache at completion).
  bool cache_inflight_dedup = true;
};

/// Per-submission controls — what used to be batch-global.
struct SubmitOptions {
  /// Wall-clock budget in seconds, measured from Submit (<= 0 = none). A
  /// job whose deadline passed before it started is kSkipped; a started job
  /// has the remaining time split across its 2*rounds solver phases, so
  /// even a pumping job stays inside the budget.
  double deadline_seconds = 0;

  /// Scheduling priority (higher runs earlier under contention); overrides
  /// Job::priority when set.
  std::optional<int> priority;

  /// Streaming callback: invoked exactly once PER RUN, on the worker
  /// thread, the moment this job reaches a terminal state — i.e. callbacks
  /// across jobs arrive in COMPLETION order, not submission order, and a
  /// ResumeWithBudget re-fires the callback when the resumed run finishes.
  /// (One exception to "on the worker thread": a job cancelled while still
  /// queued terminates — and fires its callback — on the cancelling
  /// thread.) It runs BEFORE the
  /// terminal state becomes observable, so a Wait() that returns implies
  /// this job's callback already finished (no stray-callback races when
  /// collecting after a streamed batch). Consequently it must not Wait() on
  /// its own handle, and its Poll() still reads nullopt — the result is the
  /// argument. Keep it cheap and thread-safe; it runs on the pool's
  /// critical path.
  std::function<void(const JobResult&)> on_complete;

  /// Admission gate: read once when a worker picks the job up; true means
  /// the job is kSkipped without running. This is how a family of related
  /// submissions implements early stop ("any refutation cancels the rest"):
  /// point every submission at one shared flag and raise it from an
  /// on_complete callback. The flag must outlive the job.
  const std::atomic<bool>* skip_when = nullptr;
};

/// Retry policy for SubmitWithRetry: attempts are spaced by an exponential
/// backoff (initial_backoff_seconds, then *multiplier each time). The waits
/// happen on the CALLING thread — this is the client-side answer to
/// admission shedding, for callers that prefer latency over load loss.
struct RetryOptions {
  int max_attempts = 3;
  double initial_backoff_seconds = 0.001;
  double multiplier = 2.0;
};

namespace engine_internal {

/// The shared guts: the pool plus the options. JobStates hold a weak_ptr so
/// ResumeWithBudget can re-enqueue while the service lives and fail cleanly
/// after it is gone.
struct ServiceCore : std::enable_shared_from_this<ServiceCore> {
  explicit ServiceCore(const ServiceOptions& options);

  /// Schedules `state` on the pool at `priority`. Returns false (leaving
  /// the state untouched) iff the pool is shutting down.
  bool Enqueue(const std::shared_ptr<JobState>& state, int priority);

  /// True when admission control should decline new work (max_queue_depth
  /// set and the pool's queue already at it). Racy by design — see
  /// ServiceOptions::max_queue_depth.
  bool AtCapacity() const {
    return options.max_queue_depth > 0 &&
           pool.QueueDepth() >= options.max_queue_depth;
  }

  ServiceOptions options;
  ThreadPool pool;

  /// In-flight dedup table: fingerprint -> the internal runner solving it.
  /// Entries are registered at miss time and erased by the runner's
  /// publication (or by DetachWaiter when the last waiter cancels). Lock
  /// order: inflight_mu before any JobState::mu, never the reverse.
  std::mutex inflight_mu;
  std::unordered_map<CacheFingerprint, std::shared_ptr<JobState>,
                     CacheFingerprintHash>
      inflight;
};

}  // namespace engine_internal

/// See the file comment.
class SolverService {
 public:
  explicit SolverService(ServiceOptions options = {});

  /// Blocks until every submitted job is terminal, then joins the workers.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueues one implication question. Never blocks on solver work. The
  /// job is copied into the handle's shared state, so the caller's Job may
  /// die immediately.
  JobHandle Submit(Job job, SubmitOptions options = {});

  /// Admission-checked submission: returns false — publishing NOTHING, so
  /// the caller still owns the job and may retry — when the queue is at
  /// ServiceOptions::max_queue_depth. On success behaves exactly like
  /// Submit and stores the handle through `handle` (which must be non-null).
  /// The depth check and the enqueue are not atomic; the bound is a target,
  /// not an exact invariant, which is fine for load shedding.
  bool TrySubmit(Job job, SubmitOptions options, JobHandle* handle);

  /// TrySubmit in a backoff loop: sleeps between attempts per `retry`, and
  /// if every attempt finds the queue full, gives up by publishing the job
  /// as kSkipped (counted both as shed and skipped) so the returned handle
  /// always terminates — no caller-visible difference from a skip_when skip.
  JobHandle SubmitWithRetry(Job job, SubmitOptions options,
                            const RetryOptions& retry);

  /// Blocks until every job submitted so far is terminal. The service keeps
  /// accepting submissions afterwards.
  void WaitIdle();

  /// Pool width actually in use.
  int num_threads() const { return core_->pool.num_threads(); }

 private:
  std::shared_ptr<engine_internal::ServiceCore> core_;
};

/// Splits `remaining_seconds` of wall clock across the 2*rounds phases of a
/// dual-solver run and clamps config's per-phase deadlines accordingly.
/// SolveImplication grants each phase its deadline afresh every round and
/// never rechecks the clock between rounds, so handing every phase the full
/// remaining time would overshoot by up to 2*rounds; the split keeps the
/// whole job inside the budget (under-feeding the cheap early rounds).
/// Shared by the service workers and the RunSerial reference mode so both
/// express identical deadline semantics.
void ClampConfigToBudget(DualSolverConfig* config, double remaining_seconds);

}  // namespace tdlib

#endif  // TDLIB_ENGINE_SERVICE_H_
