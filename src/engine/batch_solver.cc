#include "engine/batch_solver.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "engine/thread_pool.h"
#include "util/csv_writer.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace tdlib {
namespace {

// Clamps a per-phase solver deadline to `budget`.
double ClampDeadline(double phase_deadline, double budget) {
  if (budget <= 0) return phase_deadline;
  if (phase_deadline <= 0) return budget;
  return std::min(phase_deadline, budget);
}

// Executes one job under batch semantics. `deadline` is the global batch
// deadline (shared), `cancelled` the batch cancel flag, `pool` the batch's
// own thread pool (null = keep the job's chases serial).
//
// Lending the pool to the chase cannot deadlock even though this function
// itself runs on a pool worker: the chase fans out through ParallelFor,
// whose caller claims tasks from the same cursor as the helpers it submits
// and therefore never blocks on queued work (util/parallel.h).
//
// SolveImplication grants base_chase/base_counterexample their deadline
// afresh in EVERY escalation round and never rechecks the wall clock
// between rounds, so handing each phase the full remaining batch time
// would let one job overshoot the global deadline by up to 2*rounds. The
// remaining time is therefore split across all 2*rounds phases, which
// keeps the whole job inside the batch budget (at the price of
// under-feeding early rounds, which is fine: early rounds are the cheap
// ones by construction).
JobResult ExecuteJob(const Job& job, TaskExecutor* pool,
                     const Deadline& deadline, const Timer& batch_timer,
                     double deadline_seconds,
                     const std::atomic<bool>& cancelled) {
  if (cancelled.load(std::memory_order_relaxed) || deadline.Expired()) {
    JobResult skipped;
    skipped.name = job.name;
    skipped.status = JobStatus::kSkipped;
    return skipped;
  }
  if (pool == nullptr && deadline_seconds <= 0) return RunJob(job);
  // Override only the config (a small value struct); copying the whole Job
  // — dependency set, tableaux, goal — per execution would put allocation
  // churn on the batch throughput path.
  DualSolverConfig config = job.config;
  config.base_chase.pool = pool;
  if (deadline_seconds > 0) {
    double remaining = deadline_seconds - batch_timer.ElapsedSeconds();
    if (remaining < 1e-3) remaining = 1e-3;  // already started: tiny budget
    const int rounds = config.rounds > 0 ? config.rounds : 1;
    const double per_phase = remaining / (2.0 * rounds);
    config.base_chase.deadline_seconds =
        ClampDeadline(config.base_chase.deadline_seconds, per_phase);
    config.base_counterexample.deadline_seconds =
        ClampDeadline(config.base_counterexample.deadline_seconds, per_phase);
  }
  return RunJob(job, config);
}

bool IsRefutation(const JobResult& r) {
  return r.status == JobStatus::kCompleted &&
         (r.verdict == DualVerdict::kRefutedFinite ||
          r.verdict == DualVerdict::kRefutedByFixpoint);
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void Summarize(BatchSummary* summary) {
  summary->completed = 0;
  summary->skipped = 0;
  for (const JobResult& r : summary->results) {
    if (r.status == JobStatus::kCompleted) {
      ++summary->completed;
    } else {
      ++summary->skipped;
    }
  }
}

}  // namespace

double BatchSummary::Throughput() const {
  if (wall_seconds <= 0) return 0;
  return completed / wall_seconds;
}

std::string BatchSummary::ToTable() const {
  TablePrinter table({"job", "verdict", "rounds", "steps", "passes",
                      "hom_nodes", "candidates", "seconds"});
  for (const JobResult& r : results) {
    table.AddRowValues(r.name, std::string(r.VerdictName()), r.rounds_used,
                       r.chase_steps, r.chase_passes, r.hom_nodes,
                       r.candidates_checked, r.wall_seconds);
  }
  std::ostringstream oss;
  oss << table.ToString();
  oss << completed << " completed, " << skipped << " skipped on "
      << num_threads << " thread(s) in " << wall_seconds << "s ("
      << Throughput() << " jobs/s)\n";
  return oss.str();
}

void BatchSummary::WriteCsv(std::ostream& os) const {
  CsvWriter csv(os, JobResult::CsvHeader());
  for (const JobResult& r : results) csv.WriteRow(r.CsvRow());
}

std::string BatchSummary::DeterministicSummary() const {
  std::vector<std::string> lines;
  lines.reserve(results.size());
  for (const JobResult& r : results) lines.push_back(r.DeterministicSummary());
  return Join(lines, "\n");
}

BatchSolver::BatchSolver(BatchOptions options) : options_(options) {}

BatchSummary BatchSolver::Run(const std::vector<Job>& jobs) {
  cancel_.store(false, std::memory_order_relaxed);

  BatchSummary summary;
  summary.num_threads = ResolveThreads(options_.num_threads);
  summary.results.resize(jobs.size());

  Timer batch_timer;
  Deadline deadline(options_.deadline_seconds);
  const bool early_stop = options_.stop_on_first_refutation;

  {
    ThreadPool pool(summary.num_threads);
    // One pool, two levels: job tasks at their own priorities, chase match
    // tasks (submitted from inside jobs) at high priority. Null when the
    // ablation asks for serial chases.
    TaskExecutor* chase_pool = options_.chase_parallelism ? &pool : nullptr;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const Job& job = jobs[i];
      JobResult* slot = &summary.results[i];
      pool.Submit(
          [this, &job, slot, chase_pool, &deadline, &batch_timer, early_stop] {
            *slot = ExecuteJob(job, chase_pool, deadline, batch_timer,
                               options_.deadline_seconds, cancel_);
            if (early_stop && IsRefutation(*slot)) Cancel();
          },
          job.priority);
    }
    // Drain via WaitIdle, not Shutdown: Shutdown flips the pool to
    // rejecting submissions immediately, which would refuse every nested
    // chase match task for the entire batch. WaitIdle keeps the pool open
    // while jobs (and their nested tasks) run, then the scope-exit
    // destructor joins the workers.
    pool.WaitIdle();
  }

  summary.wall_seconds = batch_timer.ElapsedSeconds();
  Summarize(&summary);
  return summary;
}

BatchSummary RunSerial(const std::vector<Job>& jobs,
                       const BatchOptions& options) {
  BatchSummary summary;
  summary.num_threads = 1;
  summary.results.reserve(jobs.size());

  Timer batch_timer;
  Deadline deadline(options.deadline_seconds);
  std::atomic<bool> cancelled{false};

  for (const Job& job : jobs) {
    // The reference mode is serial at every level: no job pool, no chase
    // pool. Pooled runs must reproduce its results byte for byte.
    JobResult r = ExecuteJob(job, /*pool=*/nullptr, deadline, batch_timer,
                             options.deadline_seconds, cancelled);
    if (options.stop_on_first_refutation && IsRefutation(r)) {
      cancelled.store(true, std::memory_order_relaxed);
    }
    summary.results.push_back(std::move(r));
  }

  summary.wall_seconds = batch_timer.ElapsedSeconds();
  Summarize(&summary);
  return summary;
}

}  // namespace tdlib
