#include "engine/batch_solver.h"

#include <algorithm>
#include <sstream>

#include "engine/service.h"
#include "util/csv_writer.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace tdlib {
namespace {

void Summarize(BatchSummary* summary) {
  summary->completed = 0;
  summary->skipped = 0;
  summary->cancelled = 0;
  for (const JobResult& r : summary->results) {
    switch (r.status) {
      case JobStatus::kCompleted: ++summary->completed; break;
      case JobStatus::kCancelled: ++summary->cancelled; break;
      case JobStatus::kSkipped: ++summary->skipped; break;
    }
  }
}

}  // namespace

double BatchSummary::Throughput() const {
  if (wall_seconds <= 0) return 0;
  return completed / wall_seconds;
}

std::string BatchSummary::ToTable() const {
  TablePrinter table({"job", "verdict", "rounds", "steps", "passes",
                      "hom_nodes", "match_tasks", "carried", "candidates",
                      "seconds", "match_s", "fire_s", "cache"});
  for (const JobResult& r : results) {
    table.AddRowValues(r.name, std::string(r.VerdictName()), r.rounds_used,
                       r.chase_steps, r.chase_passes, r.hom_nodes,
                       r.match_tasks, r.carried_passes, r.candidates_checked,
                       r.wall_seconds, r.match_seconds, r.fire_seconds,
                       std::string(CacheSourceName(r.cache_source)));
  }
  std::ostringstream oss;
  oss << table.ToString();
  oss << completed << " completed, " << skipped << " skipped, " << cancelled
      << " cancelled on " << num_threads << " thread(s) in " << wall_seconds
      << "s (" << Throughput() << " jobs/s)\n";
  return oss.str();
}

void BatchSummary::WriteCsv(std::ostream& os) const {
  CsvWriter csv(os, JobResult::CsvHeader());
  for (const JobResult& r : results) csv.WriteRow(r.CsvRow());
}

std::string BatchSummary::DeterministicSummary() const {
  std::vector<std::string> lines;
  lines.reserve(results.size());
  for (const JobResult& r : results) lines.push_back(r.DeterministicSummary());
  return Join(lines, "\n");
}

BatchSolver::BatchSolver(BatchOptions options) : options_(options) {}

BatchSummary BatchSolver::Run(const std::vector<Job>& jobs) {
  cancel_.store(false, std::memory_order_relaxed);

  BatchSummary summary;
  summary.results.reserve(jobs.size());

  Timer batch_timer;
  const bool early_stop = options_.stop_on_first_refutation;

  {
    // The batch is a straight projection onto the service: the global
    // deadline becomes every submission's deadline (they are all submitted
    // at batch start, so the epochs coincide), the batch cancel flag
    // becomes every submission's admission gate, and early stop is an
    // on_complete callback that closes the gate. The service lends its
    // pool to each job's chase exactly as the old batch loop did.
    ServiceOptions service_options;
    service_options.num_threads = options_.num_threads;
    service_options.chase_parallelism = options_.chase_parallelism;
    SolverService service(service_options);
    summary.num_threads = service.num_threads();

    // Submit copies each job once into its handle's shared state — the
    // price of handles that may outlive the caller's vector. That is one
    // copy per job per Run (not per execution), on the submission path
    // before any solving; the per-execution path still copies only the
    // small config struct (ExecuteOnWorker).
    std::vector<JobHandle> handles;
    handles.reserve(jobs.size());
    for (const Job& job : jobs) {
      SubmitOptions submit;
      submit.deadline_seconds = options_.deadline_seconds;
      submit.skip_when = &cancel_;
      if (early_stop) {
        submit.on_complete = [this](const JobResult& r) {
          if (IsRefutation(r)) Cancel();
        };
      }
      handles.push_back(service.Submit(job, submit));
    }
    // Collect in submission order regardless of completion order.
    for (const JobHandle& handle : handles) {
      summary.results.push_back(handle.Wait());
    }
  }

  summary.wall_seconds = batch_timer.ElapsedSeconds();
  Summarize(&summary);
  return summary;
}

BatchSummary RunSerial(const std::vector<Job>& jobs,
                       const BatchOptions& options) {
  BatchSummary summary;
  summary.num_threads = 1;
  summary.results.reserve(jobs.size());

  Timer batch_timer;
  Deadline deadline(options.deadline_seconds);
  bool cancelled = false;

  for (const Job& job : jobs) {
    // The reference mode is serial at every level: no job pool, no chase
    // pool. Pooled runs must reproduce its results byte for byte. The
    // deadline arithmetic is the service's own (ClampConfigToBudget), so
    // both modes express identical budget semantics.
    JobResult r;
    if (cancelled || deadline.Expired()) {
      r.name = job.name;
      r.status = JobStatus::kSkipped;
    } else if (options.deadline_seconds <= 0) {
      r = RunJob(job);
    } else {
      DualSolverConfig config = job.config;
      ClampConfigToBudget(
          &config, options.deadline_seconds - batch_timer.ElapsedSeconds());
      r = RunJob(job, config);
    }
    if (options.stop_on_first_refutation && IsRefutation(r)) cancelled = true;
    summary.results.push_back(std::move(r));
  }

  summary.wall_seconds = batch_timer.ElapsedSeconds();
  Summarize(&summary);
  return summary;
}

}  // namespace tdlib
