#include "engine/thread_pool.h"

#include <utility>

#include "util/metrics.h"
#include "util/timer.h"

namespace tdlib {

namespace {

// Pool-level observability: how long tasks sit queued, how long they run,
// and how deep the queue is. All writes are gated (Observe/Add no-op when
// metrics are off) and happen on the control path around a task, never
// inside one — the pool cannot perturb what its tasks compute.
struct PoolMetrics {
  Histogram* queue_wait_seconds;
  Histogram* task_seconds;
  Counter* tasks_run;
  Gauge* queue_depth;
};

PoolMetrics& GetPoolMetrics() {
  static PoolMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    auto* pm = new PoolMetrics();
    pm->queue_wait_seconds =
        r.GetHistogram("pool.queue_wait_seconds", LatencyBuckets());
    pm->task_seconds = r.GetHistogram("pool.task_seconds", LatencyBuckets());
    pm->tasks_run = r.GetCounter("pool.tasks_run");
    pm->queue_depth = r.GetGauge("pool.queue_depth");
    return pm;
  }();
  return *m;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  num_threads_ = num_threads;
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task, int priority) {
  // Clock read outside the lock, and only when someone will look at it.
  const std::int64_t enqueue_ns = MetricsEnabled() ? StopWatch::Now() : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    queue_.push(Entry{priority, next_seq_++, enqueue_ns, std::move(task)});
    GetPoolMetrics().queue_depth->Set(
        static_cast<std::int64_t>(queue_.size()));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    to_join.swap(workers_);  // the first caller claims join ownership
  }
  work_cv_.notify_all();
  for (std::thread& w : to_join) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return queue_.empty() && active_workers_ == 0; });
}

std::size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    std::int64_t enqueue_ns = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      // priority_queue::top() is const; the closure is moved out via
      // const_cast, which is safe because the entry is popped immediately.
      task = std::move(const_cast<Entry&>(queue_.top()).task);
      enqueue_ns = queue_.top().enqueue_ns;
      queue_.pop();
      ++active_workers_;
      GetPoolMetrics().queue_depth->Set(
          static_cast<std::int64_t>(queue_.size()));
    }
    if (MetricsEnabled()) {
      PoolMetrics& m = GetPoolMetrics();
      if (enqueue_ns != 0) {
        m.queue_wait_seconds->Observe(
            static_cast<double>(StopWatch::Now() - enqueue_ns) * 1e-9);
      }
      m.tasks_run->Add(1);
      StopWatch run_watch;
      task();
      m.task_seconds->Observe(run_watch.ElapsedSeconds());
    } else {
      task();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
      if (queue_.empty() && active_workers_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace tdlib
