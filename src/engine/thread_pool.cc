#include "engine/thread_pool.h"

#include <utility>

namespace tdlib {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  num_threads_ = num_threads;
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task, int priority) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    queue_.push(Entry{priority, next_seq_++, std::move(task)});
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    to_join.swap(workers_);  // the first caller claims join ownership
  }
  work_cv_.notify_all();
  for (std::thread& w : to_join) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return queue_.empty() && active_workers_ == 0; });
}

std::size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      // priority_queue::top() is const; the closure is moved out via
      // const_cast, which is safe because the entry is popped immediately.
      task = std::move(const_cast<Entry&>(queue_.top()).task);
      queue_.pop();
      ++active_workers_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
      if (queue_.empty() && active_workers_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace tdlib
