// The batch solver: many implication questions, all cores, one deadline.
//
// This is now a thin compatibility wrapper over the asynchronous
// SolverService (engine/service.h): Run submits every job with the batch's
// deadline as its per-submission deadline, the batch cancel flag as its
// admission gate, and (under stop_on_first_refutation) an on_complete
// callback that closes the gate — then waits for the handles in submission
// order. Batch semantics are therefore preserved by construction, including
// byte-identical DeterministicSummary output; callers who need streaming,
// per-job cancellation or resumable budgets use the service directly.
//
// Three controls matter in production:
//
//   * num_threads     — pool width; 0 means hardware concurrency.
//   * deadline        — a global wall-clock budget. A job that starts
//                       before the deadline has the remaining time divided
//                       across its 2*rounds solver phases (so even a
//                       pumping job stays inside the batch budget); a job
//                       that would start after it is kSkipped.
//   * early stop      — stop_on_first_refutation cancels the rest of the
//                       batch as soon as one job refutes its implication
//                       (useful when a batch encodes "does ANY instance of
//                       this family fail?").
//
// Reentrancy contract (audited for this subsystem): the solver stack below
// SolveImplication — chase, homomorphism search, finite-model enumeration,
// the reduction, parsing — keeps all mutable state in per-call locals and
// per-Instance members; there are no file-scope mutable statics, caches or
// thread_locals in src/. Concurrent jobs are therefore safe as long as each
// Job owns its data (Job is a value type, so it does). Shared *const*
// structures (SchemaPtr, a DependencySet referenced by many jobs) are fine.
//
// Determinism: with no deadline and no early stop, every deterministic
// JobResult field is independent of thread count and scheduling;
// BatchSummary::DeterministicSummary() of a pool run is byte-identical to a
// serial run of the same jobs.
#ifndef TDLIB_ENGINE_BATCH_SOLVER_H_
#define TDLIB_ENGINE_BATCH_SOLVER_H_

#include <atomic>
#include <ostream>
#include <string>
#include <vector>

#include "engine/job.h"

namespace tdlib {

/// Batch-level knobs.
struct BatchOptions {
  /// Worker count; 0 = std::thread::hardware_concurrency().
  int num_threads = 0;

  /// Global wall-clock budget in seconds for the whole batch (<= 0 = none).
  double deadline_seconds = 0;

  /// Cancel outstanding jobs once any job returns kRefutedFinite or
  /// kRefutedByFixpoint.
  bool stop_on_first_refutation = false;

  /// Lend the batch pool to each job's chase as ChaseConfig::pool, so the
  /// chase's per-pass match tasks can fan out on idle workers. One pool
  /// serves both levels — the worker count is fixed, so nesting can never
  /// oversubscribe the machine; it only changes who drains the queue.
  /// Chase tasks are submitted at high priority (they gate a running job's
  /// critical path) and only when the queue is shallower than the pool
  /// (util/parallel.h's work-count heuristic): with more queued jobs than
  /// workers, job-level parallelism already saturates the pool and the
  /// chase stays serial per job. Results are byte-identical either way;
  /// this knob exists for ablations (tdbatch --serial-chase).
  bool chase_parallelism = true;
};

/// Everything a batch run produced.
struct BatchSummary {
  std::vector<JobResult> results;  ///< submission order, one per job
  double wall_seconds = 0;         ///< whole-batch wall time
  int num_threads = 1;             ///< pool width actually used
  int completed = 0;
  int skipped = 0;
  int cancelled = 0;  ///< kCancelled runs, counted apart from skips so the
                      ///  totals line and outcome metrics agree

  /// Jobs completed per second of batch wall time.
  double Throughput() const;

  /// Aligned per-job table plus a totals line (tdbatch output).
  std::string ToTable() const;

  /// RFC-4180 CSV, one row per job, JobResult::CsvHeader() schema.
  void WriteCsv(std::ostream& os) const;

  /// Newline-joined JobResult::DeterministicSummary() in submission order;
  /// byte-identical across thread counts when the batch ran without a
  /// deadline or early stop.
  std::string DeterministicSummary() const;
};

/// Runs batches. A solver object may run several batches in sequence; each
/// Run builds a fresh SolverService (and with it a fresh pool) so
/// thread-count changes take effect per call.
class BatchSolver {
 public:
  explicit BatchSolver(BatchOptions options = {});

  /// Blocks until every job completed or was skipped. Thread-compatible:
  /// call Run from one thread at a time (Cancel may race freely).
  BatchSummary Run(const std::vector<Job>& jobs);

  /// Asynchronously requests that jobs not yet started be skipped. Safe to
  /// call from any thread, including from inside a running job. Resets at
  /// the start of every Run.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }

  const BatchOptions& options() const { return options_; }

 private:
  BatchOptions options_;
  std::atomic<bool> cancel_{false};
};

/// Reference implementation: runs the jobs on the calling thread, in order,
/// honouring the same deadline and early-stop semantics as BatchSolver::Run.
/// Exists so tests and benches can diff batch output against a serial run.
BatchSummary RunSerial(const std::vector<Job>& jobs,
                       const BatchOptions& options = {});

}  // namespace tdlib

#endif  // TDLIB_ENGINE_BATCH_SOLVER_H_
