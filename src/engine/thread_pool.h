// A fixed-size worker pool with a priority work queue.
//
// The engine layer runs many independent (D, D0) dual-solver jobs at once;
// the pool is deliberately minimal: a lock-guarded queue, a fixed set of
// workers started in the constructor, and a graceful drain-then-join
// shutdown. Tasks are plain std::function<void()> thunks — all solver
// plumbing (budgets, deadlines, cancellation) lives in batch_solver.
//
// Thread-safety: Submit and Shutdown may be called from any thread.
// Tasks must not call Submit on the pool that runs them after Shutdown has
// begun (submissions after Shutdown are rejected and return false).
#ifndef TDLIB_ENGINE_THREAD_POOL_H_
#define TDLIB_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/executor.h"

namespace tdlib {

/// Fixed-size thread pool. Workers start immediately; the destructor (or an
/// explicit Shutdown) drains the queue and joins every worker.
///
/// Implements util/TaskExecutor so lower layers (the chase's parallel match
/// phase) can borrow the pool through ChaseConfig::pool without the layering
/// inversion of including engine headers.
class ThreadPool : public TaskExecutor {
 public:
  /// Starts `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);

  /// Drains and joins (equivalent to Shutdown()).
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Higher `priority` runs first; ties run in submission
  /// order (the queue is stable). Returns false iff the pool is shutting
  /// down, in which case the task is dropped.
  bool Submit(std::function<void()> task, int priority = 0) override;

  /// Stops accepting tasks, runs everything already queued, and joins all
  /// workers. Idempotent; safe to call concurrently with Submit. The first
  /// caller performs the join; do not destroy the pool while another thread
  /// is inside Shutdown.
  void Shutdown();

  /// Blocks until the queue is empty and every worker is idle. The pool
  /// keeps accepting tasks afterwards (unlike Shutdown).
  void WaitIdle();

  int num_threads() const override { return num_threads_; }

  /// Tasks currently queued (not yet picked up by a worker).
  std::size_t QueueDepth() const override;

 private:
  struct Entry {
    int priority;
    std::uint64_t seq;  ///< submission counter; breaks ties FIFO
    std::int64_t enqueue_ns;  ///< StopWatch tick at Submit when metrics are
                              ///  on, 0 when off (no clock read then)
    std::function<void()> task;
  };
  struct EntryOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;  // earlier submission wins within a priority
    }
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: work or shutdown
  std::condition_variable idle_cv_;   ///< signals WaitIdle: all quiet
  std::priority_queue<Entry, std::vector<Entry>, EntryOrder> queue_;
  std::uint64_t next_seq_ = 0;
  int active_workers_ = 0;  ///< workers currently running a task
  bool shutting_down_ = false;
  int num_threads_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace tdlib

#endif  // TDLIB_ENGINE_THREAD_POOL_H_
