// Jobs: one (D, D0) implication question plus its solver budgets.
//
// A Job is a value: it owns its dependency set, its goal, and its
// DualSolverConfig, so distinct jobs share no mutable state and any number
// of them may be solved concurrently (the chase / model-search stack keeps
// all state per call — see the reentrancy note in batch_solver.h).
//
// JobResult is the structured outcome the batch layer collects: verdict,
// escalation rounds, chase and model-search statistics, and wall time.
// Every field except wall_seconds is a deterministic function of the job,
// which is what makes batch-vs-serial equivalence checkable bit-for-bit
// (JobResult::DeterministicSummary).
#ifndef TDLIB_ENGINE_JOB_H_
#define TDLIB_ENGINE_JOB_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "chase/dual_solver.h"
#include "core/dependency.h"

namespace tdlib {

/// One implication question for the engine.
///
/// Aggregate-initialize: Job{name, deps, goal, config, priority}.
struct Job {
  std::string name;          ///< stable identifier (workload-assigned)
  DependencySet dependencies;  ///< the premise set D
  Dependency goal;           ///< the candidate consequence D0
  DualSolverConfig config;   ///< per-job budgets (rounds, chase, model search)
  int priority = 0;          ///< higher runs earlier under contention
};

/// How a job left the engine.
enum class JobStatus {
  kCompleted,  ///< the dual solver ran to a verdict (possibly kUnknown)
  kSkipped,    ///< never started: deadline passed or an admission gate closed
  kCancelled,  ///< JobHandle::Cancel() stopped it (queued or mid-run)
};

/// How the result cache participated in producing a result. Provenance
/// only — a cache-served verdict is byte-identical to a fresh solve, so
/// this is excluded from DeterministicSummary (it is NOT deterministic:
/// it depends on what ran before).
enum class CacheSource {
  kNone,       ///< cache disabled / not consulted (deadline, resume, ...)
  kMiss,       ///< consulted, absent: this submission ran the solver
  kHit,        ///< served instantly from a cached verdict
  kCoalesced,  ///< attached to an in-flight isomorphic run (in-flight dedup)
};

/// "none", "miss", "hit", "coalesced".
std::string_view CacheSourceName(CacheSource source);

/// Structured outcome of one job.
struct JobResult {
  std::string name;
  JobStatus status = JobStatus::kSkipped;
  DualVerdict verdict = DualVerdict::kUnknown;
  int rounds_used = 0;

  // Chase-side statistics (last attempt).
  std::uint64_t chase_steps = 0;
  std::uint64_t chase_passes = 0;
  std::uint64_t hom_nodes = 0;
  std::uint64_t match_tasks = 0;     ///< match-phase tasks (parallel units)
  std::uint64_t carried_passes = 0;  ///< passes with burst-cap carried steps

  // Model-search-side statistics (last attempt).
  std::uint64_t candidates_checked = 0;

  double wall_seconds = 0;  ///< nondeterministic; excluded from comparisons

  /// Cache provenance (engine/service fills it; plain RunJob leaves kNone).
  /// History-dependent, so excluded from DeterministicSummary like the
  /// wall-clock fields; surfaced in CsvRow and BatchSummary::ToTable.
  CacheSource cache_source = CacheSource::kNone;

  // Wall-clock phase breakdown (nondeterministic, excluded from
  // DeterministicSummary like wall_seconds; carried into CsvRow/ToTable and
  // the service's slow log). queue_seconds is filled by the service worker
  // at pickup; the chase phases come from ChaseResult's breakdown.
  double queue_seconds = 0;       ///< Submit → worker pickup
  double match_seconds = 0;       ///< chase matching phases
  double fire_seconds = 0;        ///< chase firing phases
  double checkpoint_seconds = 0;  ///< chase checkpoint captures

  /// "IMPLIED", "REFUTED-FINITE", "REFUTED-FIXPOINT", "UNKNOWN", "SKIPPED",
  /// "CANCELLED".
  std::string_view VerdictName() const;

  /// One-line human-readable rendering (includes wall time).
  std::string ToString() const;

  /// Rendering of every deterministic field, for batch-vs-serial
  /// equivalence checks. Two runs of the same job must produce identical
  /// strings regardless of thread count or machine load. The format is a
  /// cross-version contract (resume-vs-rerun parity is checked against it);
  /// new statistics go in CsvRow/ToTable, not here.
  std::string DeterministicSummary() const;

  /// CSV schema used by tdbatch and the benches.
  static std::vector<std::string> CsvHeader();
  std::vector<std::string> CsvRow() const;
};

/// Runs the dual solver on one job, synchronously, on the calling thread.
/// This is the single execution path shared by serial and batch modes.
JobResult RunJob(const Job& job);

/// Same, but with the solver config overridden (batch-clamped deadlines,
/// the lent chase pool). Copying the small config instead of the whole Job
/// — dependency set, tableaux, goal — keeps per-job overhead off the
/// batch throughput path.
JobResult RunJob(const Job& job, const DualSolverConfig& config);

/// Same, threading a persistent ChaseSession so a budget-exhausted job can
/// later be continued (JobHandle::ResumeWithBudget) instead of re-run. The
/// session must belong to THIS job — it encodes the chase of this (D, D0).
JobResult RunJob(const Job& job, const DualSolverConfig& config,
                 ChaseSession* session);

/// Human-readable name of a DualVerdict ("IMPLIED", ...).
std::string_view DualVerdictName(DualVerdict verdict);

/// True iff the job ran and refuted its implication (finitely or by chase
/// fixpoint) — the predicate behind stop_on_first_refutation and the CLI's
/// --stop-on-refutation, kept in one place so they cannot diverge.
bool IsRefutation(const JobResult& result);

}  // namespace tdlib

#endif  // TDLIB_ENGINE_JOB_H_
