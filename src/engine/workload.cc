#include "engine/workload.h"

#include <fstream>
#include <sstream>

#include "core/generators.h"
#include "core/parser.h"
#include "reduction/reduction.h"
#include "semigroup/normalizer.h"
#include "util/rng.h"
#include "util/strings.h"

namespace tdlib {
namespace {

// Pads `p` with `extra` idempotent letters P1, P2, ... . Padding enlarges
// the reduction (4 gadgets and 2 attributes per equation/symbol) without
// changing the A0 = 0 question, so the sweep scales instance size while
// each regime keeps its known verdict.
void AddPadding(Presentation* p, int extra) {
  for (int j = 1; j <= extra; ++j) {
    std::string name = "P" + std::to_string(j);
    p->AddSymbol(name);
    p->AddEquationFromText(name + " " + name + " = " + name);
  }
}

Job ReductionJob(std::string name, const Presentation& p,
                 const DualSolverConfig& solver, int priority) {
  NormalizationResult norm = NormalizeTo21(p);
  GurevichLewisReduction red =
      std::move(GurevichLewisReduction::Create(norm.normalized)).value();
  return Job{std::move(name), red.dependencies(), red.goal(), solver,
             priority};
}

}  // namespace

DualSolverConfig DefaultWorkloadSolverConfig() {
  DualSolverConfig config;
  config.rounds = 2;
  config.base_chase.max_steps = 2000;
  return config;
}

std::vector<Job> ReductionSweepWorkload(const WorkloadOptions& options) {
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(options.size));
  for (int i = 0; i < options.size; ++i) {
    const int regime = i % 3;
    const int pad = i / 3;  // grows along the sweep
    Presentation p;
    std::string name;
    switch (regime) {
      case 0:
        // Derivable word problem: A0 = A0 A0 = 0, so part (A) applies and
        // the chase side halts with kImplied.
        name = "implied/pad" + std::to_string(pad);
        p.AddEquationFromText("A0 A0 = A0");
        p.AddEquationFromText("A0 A0 = 0");
        break;
      case 1:
        // A0 unconstrained: a finite cancellative model separates A0 from
        // 0, so part (B) applies and a finite database refutes D0.
        name = "refuted/pad" + std::to_string(pad);
        p.AddSymbol("B");
        p.AddEquationFromText("B B = B");
        break;
      default:
        // The Fagin-style gap instance: "A A0 = A0" is neither derivable
        // nor refutable inside the Main Lemma's semigroup class, so the
        // chase side pumps; the database-level enumerator still finds a
        // small counterexample.
        name = "gap/pad" + std::to_string(pad);
        p.AddSymbol("A");
        p.AddEquationFromText("A A0 = A0");
        break;
    }
    AddPadding(&p, pad);
    p.AddAbsorptionEquations();
    jobs.push_back(
        ReductionJob(std::move(name), p, options.solver, options.size - i));
  }
  return jobs;
}

std::vector<Job> RandomTdWorkload(const WorkloadOptions& options) {
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(options.size));
  for (int i = 0; i < options.size; ++i) {
    // SplitMix-style index mixing keeps per-job streams independent.
    Rng rng(options.seed ^
            (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1)));
    SchemaPtr schema = MakeSchema({"A", "B", "C"});
    TdGeneratorOptions gen;
    gen.arity = 3;
    gen.body_rows = 2;
    gen.head_rows = 1;
    DependencySet d;
    for (int k = 0; k < 3; ++k) {
      gen.force_full = (k % 2 == 0);  // mix full and embedded premises
      d.Add(RandomDependency(&rng, gen, schema),
            "rnd" + std::to_string(i) + "_" + std::to_string(k));
    }
    // Trivial goals (head maps into body) hold in every database and make
    // the job a no-op; redraw a few times to keep the family interesting.
    gen.force_full = false;
    Dependency goal = RandomDependency(&rng, gen, schema);
    for (int redraw = 0; goal.IsTrivial() && redraw < 64; ++redraw) {
      goal = RandomDependency(&rng, gen, schema);
    }
    jobs.push_back(Job{"random/" + std::to_string(i), std::move(d),
                       std::move(goal), options.solver, 0});
  }
  return jobs;
}

Result<std::vector<Job>> FileWorkload(const std::vector<std::string>& paths,
                                      const WorkloadOptions& options) {
  std::vector<Job> jobs;
  jobs.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      return Result<std::vector<Job>>::Error(ErrorCode::kNotFound,
                                             "cannot read " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    SchemaPtr schema;
    Result<DependencySet> parsed =
        ParseDependencyProgram(buffer.str(), &schema);
    if (!parsed.ok()) {
      return Result<std::vector<Job>>::Error(ErrorCode::kParseError,
                                             path + ": " + parsed.error());
    }
    DependencySet program = std::move(parsed).value();
    if (program.items.size() < 2) {
      return Result<std::vector<Job>>::Error(
          ErrorCode::kParseError,
          path + ": need at least two dependencies (premises, then goal)");
    }
    Dependency goal = std::move(program.items.back());
    program.items.pop_back();
    if (!program.names.empty()) program.names.pop_back();
    jobs.push_back(
        Job{path, std::move(program), std::move(goal), options.solver, 0});
  }
  return jobs;
}

Result<std::vector<Job>> MakeWorkload(std::string_view family,
                                      const WorkloadOptions& options) {
  if (family == "reduction-sweep") return ReductionSweepWorkload(options);
  if (family == "random") return RandomTdWorkload(options);
  return Result<std::vector<Job>>::Error(
      ErrorCode::kInvalidArgument,
      "unknown workload family '" + std::string(family) + "' (expected " +
      Join(WorkloadFamilies(), " | ") + ")");
}

std::vector<std::string> WorkloadFamilies() {
  return {"reduction-sweep", "random"};
}

}  // namespace tdlib
