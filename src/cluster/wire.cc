#include "cluster/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "fuzz/fuzz.h"
#include "util/fault.h"
#include "util/hash.h"

namespace tdlib {
namespace {

constexpr char kMagic[4] = {'T', 'D', 'F', '1'};

template <typename T>
Result<T> Corrupt(const std::string& what) {
  return Result<T>::Error(ErrorCode::kCorrupt, "cluster frame: " + what);
}

bool KnownFrameType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
         type <= static_cast<std::uint8_t>(FrameType::kShutdown);
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::uint64_t PayloadHash(std::string_view payload) {
  return HashBytes128(payload.data(), payload.size()).lo;
}

// Validates the fixed-size header. On success fills type/length/hash.
Result<bool> CheckHeader(const char* h, FrameType* type, std::uint32_t* length,
                         std::uint64_t* hash) {
  if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt<bool>("bad magic");
  }
  const std::uint8_t raw_type = static_cast<std::uint8_t>(h[4]);
  if (!KnownFrameType(raw_type)) {
    return Corrupt<bool>("unknown frame type " + std::to_string(raw_type));
  }
  if (h[5] != 0 || h[6] != 0 || h[7] != 0) {
    return Corrupt<bool>("nonzero reserved bytes");
  }
  const std::uint32_t len = GetU32(h + 8);
  if (len > kMaxFramePayload) {
    return Corrupt<bool>("payload length " + std::to_string(len) +
                         " exceeds cap");
  }
  *type = static_cast<FrameType>(raw_type);
  *length = len;
  *hash = GetU64(h + 12);
  return true;
}

// ---- untrusted text-payload scanning ---------------------------------------

// A strict cursor over payload text: every Read* reports failure instead of
// setting stream state, so the decoders can return typed kCorrupt errors
// with field names. All counts are bounds-checked against the remaining
// buffer before any allocation.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view text) : text_(text) {}

  bool ReadToken(std::string* out) {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !IsSpace(text_[pos_])) ++pos_;
    if (pos_ == start) return false;
    out->assign(text_.substr(start, pos_ - start));
    return true;
  }

  bool ExpectToken(std::string_view want) {
    std::string tok;
    return ReadToken(&tok) && tok == want;
  }

  bool ReadU64(std::uint64_t* out) {
    std::string tok;
    if (!ReadToken(&tok) || tok.empty()) return false;
    std::uint64_t v = 0;
    for (char c : tok) {
      if (c < '0' || c > '9') return false;
      if (v > (std::numeric_limits<std::uint64_t>::max() - 9) / 10) {
        return false;
      }
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *out = v;
    return true;
  }

  bool ReadInt(int* out) {
    std::string tok;
    if (!ReadToken(&tok)) return false;
    bool negative = false;
    std::size_t i = 0;
    if (tok[0] == '-') {
      negative = true;
      i = 1;
    }
    if (i >= tok.size()) return false;
    long long v = 0;
    for (; i < tok.size(); ++i) {
      if (tok[i] < '0' || tok[i] > '9') return false;
      v = v * 10 + (tok[i] - '0');
      if (v > std::numeric_limits<int>::max()) return false;
    }
    *out = static_cast<int>(negative ? -v : v);
    return true;
  }

  bool ReadDouble(double* out) {
    std::string tok;
    if (!ReadToken(&tok)) return false;
    std::istringstream iss(tok);
    iss >> *out;
    return !iss.fail() && iss.eof();
  }

  bool ReadBool(bool* out) {
    std::uint64_t v;
    if (!ReadU64(&v) || v > 1) return false;
    *out = v == 1;
    return true;
  }

  /// Rest of the current line, leading spaces stripped; consumes the '\n'.
  bool ReadLineRemainder(std::string* out) {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string_view::npos) return false;
    out->assign(text_.substr(pos_, nl - pos_));
    pos_ = nl + 1;
    return true;
  }

  /// Reads an exact byte block: the cursor must be at the '\n' ending the
  /// count line; the block is the following `n` bytes verbatim.
  bool ReadBlock(std::uint64_t n, std::string* out) {
    if (pos_ < text_.size() && text_[pos_] == '\r') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] != '\n') return false;
    ++pos_;
    if (n > text_.size() - pos_) return false;
    out->assign(text_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    return true;
  }

 private:
  static bool IsSpace(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }
  void SkipSpace() {
    while (pos_ < text_.size() && IsSpace(text_[pos_])) ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void EncodeConfig(const DualSolverConfig& config, std::ostream& os) {
  const ChaseConfig& chase = config.base_chase;
  const CounterexampleConfig& cex = config.base_counterexample;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "config " << config.rounds << ' ' << (config.resume_chase ? 1 : 0)
     << ' ' << chase.max_steps << ' ' << chase.max_tuples << ' '
     << chase.deadline_seconds << ' ' << chase.hom_max_nodes << ' '
     << (chase.record_trace ? 1 : 0) << ' ' << (chase.eager_goal_check ? 1 : 0)
     << ' ' << (chase.use_delta ? 1 : 0) << ' ' << chase.max_fires_per_pass
     << ' ' << (chase.auto_burst ? 1 : 0) << ' ' << chase.match_slice_ids
     << ' ' << (chase.use_intersection ? 1 : 0) << ' '
     << (chase.use_simd ? 1 : 0) << ' ' << cex.max_tuples << ' '
     << cex.max_candidates << ' ' << cex.deadline_seconds << '\n';
}

bool DecodeConfig(PayloadReader* in, DualSolverConfig* config) {
  ChaseConfig& chase = config->base_chase;
  CounterexampleConfig& cex = config->base_counterexample;
  return in->ExpectToken("config") && in->ReadInt(&config->rounds) &&
         in->ReadBool(&config->resume_chase) && in->ReadU64(&chase.max_steps) &&
         in->ReadU64(&chase.max_tuples) &&
         in->ReadDouble(&chase.deadline_seconds) &&
         in->ReadU64(&chase.hom_max_nodes) &&
         in->ReadBool(&chase.record_trace) &&
         in->ReadBool(&chase.eager_goal_check) &&
         in->ReadBool(&chase.use_delta) &&
         in->ReadU64(&chase.max_fires_per_pass) &&
         in->ReadBool(&chase.auto_burst) &&
         in->ReadU64(&chase.match_slice_ids) &&
         in->ReadBool(&chase.use_intersection) &&
         in->ReadBool(&chase.use_simd) && in->ReadInt(&cex.max_tuples) &&
         in->ReadU64(&cex.max_candidates) &&
         in->ReadDouble(&cex.deadline_seconds);
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(type));
  out.append(3, '\0');
  PutU32(&out, static_cast<std::uint32_t>(payload.size()));
  PutU64(&out, PayloadHash(payload));
  out.append(payload);
  return out;
}

Result<Frame> DecodeFrame(std::string_view bytes, std::size_t* consumed) {
  if (bytes.size() < kFrameHeaderSize) {
    return Corrupt<Frame>("truncated header (" + std::to_string(bytes.size()) +
                          " of " + std::to_string(kFrameHeaderSize) +
                          " bytes)");
  }
  FrameType type;
  std::uint32_t length;
  std::uint64_t hash;
  Result<bool> header = CheckHeader(bytes.data(), &type, &length, &hash);
  if (!header.ok()) {
    return Result<Frame>::Error(header.code(), header.error());
  }
  if (bytes.size() - kFrameHeaderSize < length) {
    return Corrupt<Frame>("truncated payload");
  }
  Frame frame;
  frame.type = type;
  frame.payload.assign(bytes.substr(kFrameHeaderSize, length));
  if (PayloadHash(frame.payload) != hash) {
    return Corrupt<Frame>("payload hash mismatch");
  }
  if (consumed != nullptr) *consumed = kFrameHeaderSize + length;
  return frame;
}

std::string EncodeJobPayload(const WireJob& wire_job) {
  std::ostringstream oss;
  oss << "tdjob 1\n";
  oss << "id " << wire_job.job_id << " probe " << wire_job.probe_steps << '\n';
  oss << "priority " << wire_job.job.priority << '\n';
  oss << "name " << wire_job.job.name << '\n';
  EncodeConfig(wire_job.job.config, oss);
  // The dependency program travels in the replayable tdfuzz repro format
  // (schema line + td lines, last td = goal), renamed to grammar-safe
  // variable names when necessary — a pure isomorphism that leaves every
  // deterministic result field byte-identical (cache/canonical.h).
  const std::string program =
      FormatReproProgram(wire_job.job, FuzzOptions{}, "cluster");
  oss << "program " << program.size() << '\n' << program;
  oss << "session " << wire_job.session_text.size() << '\n'
      << wire_job.session_text;
  return oss.str();
}

Result<WireJob> DecodeJobPayload(std::string_view payload) {
  PayloadReader in(payload);
  std::uint64_t version = 0;
  if (!in.ExpectToken("tdjob") || !in.ReadU64(&version)) {
    return Corrupt<WireJob>("job payload: bad tag");
  }
  if (version != 1) {
    return Corrupt<WireJob>("job payload: unsupported version " +
                            std::to_string(version));
  }
  std::uint64_t job_id = 0;
  std::uint64_t probe_steps = 0;
  std::string session_text;
  int priority = 0;
  std::string name;
  if (!in.ExpectToken("id") || !in.ReadU64(&job_id) ||
      !in.ExpectToken("probe") || !in.ReadU64(&probe_steps)) {
    return Corrupt<WireJob>("job payload: bad id line");
  }
  if (!in.ExpectToken("priority") || !in.ReadInt(&priority)) {
    return Corrupt<WireJob>("job payload: bad priority line");
  }
  if (!in.ExpectToken("name") || !in.ReadLineRemainder(&name)) {
    return Corrupt<WireJob>("job payload: bad name line");
  }
  DualSolverConfig config;
  if (!DecodeConfig(&in, &config)) {
    return Corrupt<WireJob>("job payload: bad config line");
  }
  std::uint64_t program_size = 0;
  std::string program;
  if (!in.ExpectToken("program") || !in.ReadU64(&program_size) ||
      !in.ReadBlock(program_size, &program)) {
    return Corrupt<WireJob>("job payload: bad program block");
  }
  std::uint64_t session_size = 0;
  if (!in.ExpectToken("session") || !in.ReadU64(&session_size) ||
      !in.ReadBlock(session_size, &session_text)) {
    return Corrupt<WireJob>("job payload: bad session block");
  }
  Result<Job> parsed = ParseReproProgram(program);
  if (!parsed.ok()) {
    return Corrupt<WireJob>("job payload: " + parsed.error());
  }
  WireJob wire_job(std::move(parsed).value());
  wire_job.job_id = job_id;
  wire_job.probe_steps = probe_steps;
  wire_job.session_text = std::move(session_text);
  wire_job.job.name = std::move(name);
  wire_job.job.priority = priority;
  wire_job.job.config = config;
  return wire_job;
}

std::string EncodeResultPayload(const WireResult& wire_result) {
  const JobResult& r = wire_result.result;
  std::ostringstream oss;
  oss.precision(std::numeric_limits<double>::max_digits10);
  oss << "tdres 1\n";
  oss << "id " << wire_result.job_id << " parked "
      << (wire_result.parked ? 1 : 0) << '\n';
  oss << "name " << r.name << '\n';
  oss << "outcome " << static_cast<int>(r.status) << ' '
      << static_cast<int>(r.verdict) << ' ' << r.rounds_used << ' '
      << static_cast<int>(r.cache_source) << '\n';
  oss << "counters " << r.chase_steps << ' ' << r.chase_passes << ' '
      << r.hom_nodes << ' ' << r.match_tasks << ' ' << r.carried_passes << ' '
      << r.candidates_checked << '\n';
  oss << "wall " << r.wall_seconds << ' ' << r.queue_seconds << ' '
      << r.match_seconds << ' ' << r.fire_seconds << ' '
      << r.checkpoint_seconds << '\n';
  oss << "session " << wire_result.session_text.size() << '\n'
      << wire_result.session_text;
  return oss.str();
}

Result<WireResult> DecodeResultPayload(std::string_view payload) {
  PayloadReader in(payload);
  std::uint64_t version = 0;
  if (!in.ExpectToken("tdres") || !in.ReadU64(&version)) {
    return Corrupt<WireResult>("result payload: bad tag");
  }
  if (version != 1) {
    return Corrupt<WireResult>("result payload: unsupported version " +
                               std::to_string(version));
  }
  WireResult wire_result;
  JobResult& r = wire_result.result;
  if (!in.ExpectToken("id") || !in.ReadU64(&wire_result.job_id) ||
      !in.ExpectToken("parked") || !in.ReadBool(&wire_result.parked)) {
    return Corrupt<WireResult>("result payload: bad id line");
  }
  if (!in.ExpectToken("name") || !in.ReadLineRemainder(&r.name)) {
    return Corrupt<WireResult>("result payload: bad name line");
  }
  int status = 0, verdict = 0, cache_source = 0;
  if (!in.ExpectToken("outcome") || !in.ReadInt(&status) ||
      !in.ReadInt(&verdict) || !in.ReadInt(&r.rounds_used) ||
      !in.ReadInt(&cache_source) || status < 0 ||
      status > static_cast<int>(JobStatus::kCancelled) || verdict < 0 ||
      verdict > static_cast<int>(DualVerdict::kUnknown) || cache_source < 0 ||
      cache_source > static_cast<int>(CacheSource::kCoalesced)) {
    return Corrupt<WireResult>("result payload: bad outcome line");
  }
  r.status = static_cast<JobStatus>(status);
  r.verdict = static_cast<DualVerdict>(verdict);
  r.cache_source = static_cast<CacheSource>(cache_source);
  if (!in.ExpectToken("counters") || !in.ReadU64(&r.chase_steps) ||
      !in.ReadU64(&r.chase_passes) || !in.ReadU64(&r.hom_nodes) ||
      !in.ReadU64(&r.match_tasks) || !in.ReadU64(&r.carried_passes) ||
      !in.ReadU64(&r.candidates_checked)) {
    return Corrupt<WireResult>("result payload: bad counters line");
  }
  if (!in.ExpectToken("wall") || !in.ReadDouble(&r.wall_seconds) ||
      !in.ReadDouble(&r.queue_seconds) || !in.ReadDouble(&r.match_seconds) ||
      !in.ReadDouble(&r.fire_seconds) ||
      !in.ReadDouble(&r.checkpoint_seconds)) {
    return Corrupt<WireResult>("result payload: bad wall line");
  }
  std::uint64_t session_size = 0;
  if (!in.ExpectToken("session") || !in.ReadU64(&session_size) ||
      !in.ReadBlock(session_size, &wire_result.session_text)) {
    return Corrupt<WireResult>("result payload: bad session block");
  }
  return wire_result;
}

bool WriteFrameToFd(int fd, FrameType type, std::string payload) {
  std::string bytes = EncodeFrame(type, payload);
  if (FaultInjectionEnabled() && ShouldInject(FaultSite::kFrameCorrupt)) {
    // Damage AFTER framing, so the header hash vouches for the healthy
    // payload and the receiver must reject. The payload-content seed keeps
    // the damage deterministic per frame; forcing it odd selects the
    // bit-flip mode (a truncating flip could leave a clean EOF instead of
    // the corrupt frame this site promises).
    CorruptBytes(&bytes, PayloadHash(payload) | 1);
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    if (FaultInjectionEnabled() && ShouldInject(FaultSite::kSocketWrite)) {
      return false;
    }
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

// Reads exactly `len` bytes. Returns the byte count actually read (short on
// EOF/error, or when the cluster.socket-read fault cuts the stream).
std::size_t ReadExact(int fd, char* out, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    if (FaultInjectionEnabled() && ShouldInject(FaultSite::kSocketRead)) {
      return off;
    }
    const ssize_t n = ::recv(fd, out + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return off;
    }
    if (n == 0) return off;
    off += static_cast<std::size_t>(n);
  }
  return off;
}

}  // namespace

Result<Frame> ReadFrameFromFd(int fd) {
  char header[kFrameHeaderSize];
  const std::size_t got = ReadExact(fd, header, sizeof(header));
  if (got == 0) {
    return Result<Frame>::Error(ErrorCode::kUnavailable, "peer closed");
  }
  if (got < sizeof(header)) {
    return Corrupt<Frame>("truncated header mid-stream");
  }
  FrameType type;
  std::uint32_t length;
  std::uint64_t hash;
  Result<bool> checked = CheckHeader(header, &type, &length, &hash);
  if (!checked.ok()) {
    return Result<Frame>::Error(checked.code(), checked.error());
  }
  Frame frame;
  frame.type = type;
  frame.payload.resize(length);
  if (length > 0 &&
      ReadExact(fd, frame.payload.data(), length) != length) {
    return Corrupt<Frame>("truncated payload mid-stream");
  }
  if (PayloadHash(frame.payload) != hash) {
    return Corrupt<Frame>("payload hash mismatch");
  }
  return frame;
}

}  // namespace tdlib
