// Consistent-hash ring over worker slots.
//
// The router keys each job on its canonical-form fingerprint
// (cache/canonical.h), so isomorphic jobs land on the same worker and its
// result cache pays off across tenants. A plain `fingerprint % N` would
// reshuffle almost every key when a worker dies; the classic fix is a ring
// of virtual nodes — each worker owns kVirtualNodes pseudo-random points on
// a 64-bit circle, and a key maps to the first point at or after it. Losing
// a worker then only reassigns the keys that pointed at ITS points (about
// 1/N of the keyspace), which keeps the surviving workers' caches warm
// through a crash/restart cycle.
//
// Not thread-safe; the router's dispatcher thread owns the ring.
#ifndef TDLIB_CLUSTER_RING_H_
#define TDLIB_CLUSTER_RING_H_

#include <cstdint>
#include <vector>

namespace tdlib {

class HashRing {
 public:
  /// Points each member contributes. 64 keeps the per-member keyspace share
  /// within a few percent of uniform at single-digit member counts.
  static constexpr int kVirtualNodes = 64;

  /// Adds `member` (an opaque non-negative slot id). Adding an existing
  /// member is a no-op.
  void Add(int member);

  /// Removes `member`; unknown members are a no-op.
  void Remove(int member);

  /// Maps `key` to a member: the owner of the first ring point at or after
  /// `key`, wrapping around. Returns -1 when the ring is empty.
  int Pick(std::uint64_t key) const;

  bool Contains(int member) const;
  int size() const { return static_cast<int>(members_.size()); }
  bool empty() const { return members_.empty(); }

 private:
  struct Point {
    std::uint64_t position;
    int member;
    bool operator<(const Point& other) const {
      // Tie-break on member id so the ring order is deterministic even in
      // the (astronomically unlikely) event of a position collision.
      return position != other.position ? position < other.position
                                        : member < other.member;
    }
  };

  std::vector<Point> points_;   ///< sorted by position
  std::vector<int> members_;    ///< sorted member ids
};

}  // namespace tdlib

#endif  // TDLIB_CLUSTER_RING_H_
