// The cluster wire protocol: length-prefixed frames over local sockets.
//
// The router and its worker processes exchange self-delimiting frames:
//
//   bytes 0..3   magic "TDF1"
//   byte  4      frame type (FrameType)
//   bytes 5..7   reserved, must be zero
//   bytes 8..11  payload length, little-endian (capped at kMaxFramePayload)
//   bytes 12..19 payload content hash, little-endian (HashBytes128 low lane)
//   bytes 20..   payload
//
// Payloads are the library's existing portable-text formats: a job frame
// carries a core/parser dependency program plus an explicit solver-config
// line (the same fields cache/canonical.h fingerprints), and a parked chase
// travels as ChaseSession text (chase/implication.h) — nothing on the wire
// is a new serialization of solver state, so a checkpoint that migrates
// between processes resumes byte-for-byte by the PR-4 contract.
//
// Every decoder treats its input as untrusted: bad magic, an oversized
// length, a hash mismatch, a truncated stream or a malformed payload all
// yield typed ErrorCode::kCorrupt results — never UB or an unchecked
// allocation (tests/serialization_corrupt_test.cc sweeps this surface).
// The socket read/write/corrupt paths are wired into util/fault.h
// (cluster.socket-read, cluster.socket-write, cluster.frame-corrupt), so
// the fault plane can force every failure mode deterministically.
#ifndef TDLIB_CLUSTER_WIRE_H_
#define TDLIB_CLUSTER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "engine/job.h"
#include "util/status.h"

namespace tdlib {

/// Frame vocabulary. Router -> worker: kJob, kPing, kShutdown.
/// Worker -> router: kHello, kPong, kResult.
enum class FrameType : std::uint8_t {
  kHello = 1,   ///< worker is up: "tdhello" payload (pid, protocol version)
  kPing = 2,    ///< heartbeat probe (seq)
  kPong = 3,    ///< heartbeat answer (echoed seq)
  kJob = 4,     ///< one job assignment (job id, program, config, session)
  kResult = 5,  ///< terminal or parked outcome of an assigned job
  kShutdown = 6 ///< drain and exit cleanly
};

/// Largest payload a frame may declare. Parked sessions dominate frame
/// sizes; 64 MiB is far above any instance the solver budgets admit, and
/// low enough that a corrupted length field cannot provoke a huge
/// allocation.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

/// Header size in bytes (see the file comment for the layout).
inline constexpr std::size_t kFrameHeaderSize = 20;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

/// Renders header + payload. Pure; never fails.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Decodes one complete frame from `bytes`. On success *consumed is the
/// total frame size (header + payload). Truncated input, bad magic, an
/// unknown type, an over-cap length and a payload-hash mismatch are all
/// ErrorCode::kCorrupt.
Result<Frame> DecodeFrame(std::string_view bytes, std::size_t* consumed);

// ---- Payload codecs --------------------------------------------------------

/// A job assignment as it travels router -> worker.
struct WireJob {
  /// Job carries a builder-only Dependency, so a WireJob always starts
  /// from a complete Job value.
  explicit WireJob(Job j) : job(std::move(j)) {}

  std::uint64_t job_id = 0;

  /// When > 0 (and no session rides along): the worker runs a single-round
  /// probe with this chase-step budget first, and if the probe parks a
  /// resumable checkpoint it returns kParked instead of solving to the end
  /// — the router then migrates the checkpoint to a less-loaded worker.
  std::uint64_t probe_steps = 0;

  /// ChaseSession text of a previously parked chase ("" = start fresh).
  std::string session_text;

  Job job;
};

/// The worker's answer to a kJob frame.
struct WireResult {
  std::uint64_t job_id = 0;

  /// True: the run stopped at a resumable checkpoint under the probe budget
  /// and `session_text` carries it; `result` is then the PROBE result and
  /// must not be published (its counters describe the truncated run).
  bool parked = false;

  std::string session_text;
  JobResult result;
};

/// Renders/parses a WireJob payload (for a FrameType::kJob frame). The
/// dependency program section reuses the tdfuzz repro format — pure-renamed
/// to grammar-safe names when needed, which leaves every deterministic
/// result field unchanged (the renaming-invariance contract behind
/// cache/canonical.h).
std::string EncodeJobPayload(const WireJob& wire_job);
Result<WireJob> DecodeJobPayload(std::string_view payload);

/// Renders/parses a WireResult payload (for a FrameType::kResult frame).
std::string EncodeResultPayload(const WireResult& wire_result);
Result<WireResult> DecodeResultPayload(std::string_view payload);

// ---- Socket I/O ------------------------------------------------------------

/// Writes one frame to `fd`, retrying partial writes. Returns false on any
/// write error (the peer is gone — EPIPE is masked per-call, not with a
/// process-wide signal change) or when the cluster.socket-write fault site
/// fires. When cluster.frame-corrupt fires, the payload is damaged with
/// CorruptBytes before framing — the receiver must reject it as kCorrupt.
bool WriteFrameToFd(int fd, FrameType type, std::string payload);

/// Reads one complete frame from `fd`. EOF before the first header byte is
/// ErrorCode::kUnavailable (clean peer shutdown); EOF or an error anywhere
/// else — including a cluster.socket-read fault firing mid-read — is
/// kCorrupt, as is any header/payload validation failure.
Result<Frame> ReadFrameFromFd(int fd);

}  // namespace tdlib

#endif  // TDLIB_CLUSTER_WIRE_H_
