#include "cluster/ring.h"

#include <algorithm>

#include "util/hash.h"

namespace tdlib {
namespace {

std::uint64_t PointPosition(int member, int replica) {
  // Decorrelate (member, replica) pairs through one splitmix64 round; the
  // odd multiplier keeps distinct members' point sets disjoint in practice.
  return SplitMix64(static_cast<std::uint64_t>(member) * 1000003u +
                    static_cast<std::uint64_t>(replica));
}

}  // namespace

void HashRing::Add(int member) {
  if (Contains(member)) return;
  members_.insert(
      std::lower_bound(members_.begin(), members_.end(), member), member);
  for (int replica = 0; replica < kVirtualNodes; ++replica) {
    Point p{PointPosition(member, replica), member};
    points_.insert(std::lower_bound(points_.begin(), points_.end(), p), p);
  }
}

void HashRing::Remove(int member) {
  auto it = std::lower_bound(members_.begin(), members_.end(), member);
  if (it == members_.end() || *it != member) return;
  members_.erase(it);
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [member](const Point& p) {
                                 return p.member == member;
                               }),
                points_.end());
}

int HashRing::Pick(std::uint64_t key) const {
  if (points_.empty()) return -1;
  auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.position < k; });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->member;
}

bool HashRing::Contains(int member) const {
  return std::binary_search(members_.begin(), members_.end(), member);
}

}  // namespace tdlib
