#include "cluster/router.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/canonical.h"
#include "cluster/ring.h"
#include "cluster/wire.h"
#include "util/hash.h"
#include "util/metrics.h"

namespace tdlib {

std::string_view ClusterOutcomeName(ClusterOutcome outcome) {
  switch (outcome) {
    case ClusterOutcome::kCompleted: return "completed";
    case ClusterOutcome::kShedQueue: return "shed-queue";
    case ClusterOutcome::kShedQuota: return "shed-quota";
    case ClusterOutcome::kRetriesExhausted: return "retries-exhausted";
    case ClusterOutcome::kFallback: return "fallback";
  }
  return "?";
}

namespace cluster_internal {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// The terminal JobResult of a job that never ran (shed / retries spent):
/// the same shape SolverService publishes for an admission-gated job.
JobResult SkippedResult(const std::string& name) {
  JobResult r;
  r.name = name;
  r.status = JobStatus::kSkipped;
  r.verdict = DualVerdict::kUnknown;
  return r;
}

}  // namespace

struct ClusterJobState {
  explicit ClusterJobState(Job j) : job(std::move(j)) {}

  std::uint64_t id = 0;
  Job job;
  std::string tenant;
  std::uint64_t key = 0;  ///< ring position (canonical fingerprint low lane)
  Clock::time_point submitted_at;
  std::function<void(const ClusterResult&)> on_complete;
  bool admitted = false;  ///< passed admission (shed jobs never did)

  // Dispatcher-owned scheduling fields (never touched once done).
  std::string session_text;  ///< parked checkpoint awaiting its resume
  bool probed = false;       ///< a probe dispatch already happened
  bool migrated = false;
  int attempts = 0;          ///< dispatches to workers
  int crash_retries = 0;     ///< dispatches lost to worker deaths

  // Terminal state.
  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  ClusterResult final;
};

class RouterImpl {
 public:
  explicit RouterImpl(ClusterOptions options) : options_(std::move(options)) {
    if (options_.worker_command.empty()) {
      const char* env = std::getenv("TDLIB_TDWORKER");
      if (env != nullptr) options_.worker_command = env;
    }
    auto& reg = MetricsRegistry::Global();
    job_seconds_ = reg.GetHistogram("cluster.job_seconds", LatencyBuckets());
    queue_depth_gauge_ = reg.GetGauge("cluster.queue_depth");
    workers_healthy_gauge_ = reg.GetGauge("cluster.workers_healthy");

    slots_.resize(static_cast<std::size_t>(
        options_.num_workers < 0 ? 0 : options_.num_workers));
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      slots_[i].index = static_cast<int>(i);
      slots_[i].restart_at = Clock::now();  // spawn on the first tick
    }
    if (slots_.empty()) all_dead_ = true;

    fallback_thread_ = std::thread([this] { FallbackLoop(); });
    dispatcher_ = std::thread([this] { DispatcherLoop(); });
  }

  ~RouterImpl() {
    WaitIdle();
    PostEvent(Event{Event::kStop});
    dispatcher_.join();
    ShutdownWorkers();
    {
      std::lock_guard<std::mutex> lock(fallback_mu_);
      fallback_stop_ = true;
    }
    fallback_cv_.notify_all();
    fallback_thread_.join();
  }

  ClusterHandle Submit(Job job, ClusterSubmitOptions submit_options) {
    auto state = std::make_shared<ClusterJobState>(std::move(job));
    state->tenant = std::move(submit_options.tenant);
    state->on_complete = std::move(submit_options.on_complete);
    state->submitted_at = Clock::now();
    const CacheFingerprint fp = FingerprintProblem(
        state->job.dependencies, state->job.goal, state->job.config);
    state->key = fp.valid ? fp.lo
                          : HashBytes128(state->job.name.data(),
                                         state->job.name.size()).lo;

    stats_submitted_.fetch_add(1, std::memory_order_relaxed);
    Count("cluster.jobs_submitted");

    ClusterOutcome shed = ClusterOutcome::kCompleted;
    {
      std::lock_guard<std::mutex> lock(admission_mu_);
      state->id = next_id_++;
      if (options_.max_queue_depth > 0 &&
          outstanding_ >= options_.max_queue_depth) {
        shed = ClusterOutcome::kShedQueue;
      } else if (options_.tenant_quota > 0 &&
                 tenant_inflight_[state->tenant] >= options_.tenant_quota) {
        shed = ClusterOutcome::kShedQuota;
      } else {
        state->admitted = true;
        ++outstanding_;
        ++tenant_inflight_[state->tenant];
        queue_depth_gauge_->Add(1);
      }
    }
    if (!state->admitted) {
      FinishJob(state, SkippedResult(state->job.name), shed, -1);
      return ClusterHandle(state);
    }
    Event e{Event::kSubmit};
    e.state = state;
    PostEvent(std::move(e));
    return ClusterHandle(state);
  }

  void WaitIdle() {
    std::unique_lock<std::mutex> lock(admission_mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

  ClusterStats Stats() const {
    ClusterStats s;
    s.submitted = stats_submitted_.load(std::memory_order_relaxed);
    s.completed = stats_completed_.load(std::memory_order_relaxed);
    s.shed_queue = stats_shed_queue_.load(std::memory_order_relaxed);
    s.shed_quota = stats_shed_quota_.load(std::memory_order_relaxed);
    s.retries_exhausted =
        stats_retries_exhausted_.load(std::memory_order_relaxed);
    s.fallback = stats_fallback_.load(std::memory_order_relaxed);
    s.cache_hits = stats_cache_hits_.load(std::memory_order_relaxed);
    s.migrated = stats_migrated_.load(std::memory_order_relaxed);
    s.retries = stats_retries_.load(std::memory_order_relaxed);
    s.worker_crashes = stats_worker_crashes_.load(std::memory_order_relaxed);
    s.worker_restarts = stats_worker_restarts_.load(std::memory_order_relaxed);
    s.heartbeat_timeouts =
        stats_heartbeat_timeouts_.load(std::memory_order_relaxed);
    return s;
  }

  void KillWorker(int slot) {
    Event e{Event::kKill};
    e.slot = slot;
    PostEvent(std::move(e));
  }

 private:
  struct Event {
    enum Type { kSubmit, kHello, kPong, kResult, kGone, kKill, kStop };
    Type type;
    int slot = -1;
    std::uint64_t generation = 0;
    std::shared_ptr<ClusterJobState> state;  // kSubmit
    WireResult wire_result;                  // kResult
  };

  struct Slot {
    enum State { kDown, kStarting, kUp, kDead };
    int index = 0;
    State state = kDown;
    pid_t pid = -1;
    int fd = -1;
    std::uint64_t generation = 0;
    std::thread reader;
    int restarts = 0;
    double backoff = 0;
    Clock::time_point restart_at;
    Clock::time_point last_pong;
    Clock::time_point last_ping;
    std::uint64_t ping_seq = 0;
    bool kill_sent = false;  ///< heartbeat SIGKILL already delivered
    std::shared_ptr<ClusterJobState> busy;
    std::deque<std::shared_ptr<ClusterJobState>> queue;
  };

  static void Count(const char* name) {
    MetricsRegistry::Global().GetCounter(name)->Add(1);
  }

  void PostEvent(Event e) {
    {
      std::lock_guard<std::mutex> lock(event_mu_);
      events_.push_back(std::move(e));
    }
    event_cv_.notify_one();
  }

  // ---- the single publication path ----------------------------------------
  // Mirrors engine_internal::PublishTerminal: the completion callback runs
  // before the done flip, waiters wake after it, and the exactly-once
  // outcome accounting is guarded by the same done transition — a late
  // result racing a crash retry can only publish once.
  void FinishJob(const std::shared_ptr<ClusterJobState>& state,
                 JobResult result, ClusterOutcome outcome, int worker) {
    ClusterResult final;
    final.result = std::move(result);
    final.outcome = outcome;
    final.attempts = state->attempts;
    final.migrated = state->migrated;
    final.worker = worker;
    std::unique_lock<std::mutex> lock(state->mu);
    if (state->done) return;
    if (state->on_complete) state->on_complete(final);

    // All accounting happens BEFORE the done flip is observable: a caller
    // returning from Wait() must see its own job in Stats().
    const ClusterResult& published = final;
    switch (outcome) {
      case ClusterOutcome::kCompleted:
        stats_completed_.fetch_add(1, std::memory_order_relaxed);
        Count("cluster.jobs_completed");
        break;
      case ClusterOutcome::kShedQueue:
        stats_shed_queue_.fetch_add(1, std::memory_order_relaxed);
        Count("cluster.jobs_shed_queue");
        break;
      case ClusterOutcome::kShedQuota:
        stats_shed_quota_.fetch_add(1, std::memory_order_relaxed);
        Count("cluster.jobs_shed_quota");
        break;
      case ClusterOutcome::kRetriesExhausted:
        stats_retries_exhausted_.fetch_add(1, std::memory_order_relaxed);
        Count("cluster.jobs_retries_exhausted");
        break;
      case ClusterOutcome::kFallback:
        stats_fallback_.fetch_add(1, std::memory_order_relaxed);
        Count("cluster.jobs_fallback");
        break;
    }
    if (published.migrated) {
      stats_migrated_.fetch_add(1, std::memory_order_relaxed);
      Count("cluster.jobs_migrated");
    }
    if (published.result.cache_source == CacheSource::kHit) {
      stats_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      Count("cluster.cache_hits");
    }
    job_seconds_->Observe(Seconds(Clock::now() - state->submitted_at));

    if (state->admitted) {
      std::lock_guard<std::mutex> admission_lock(admission_mu_);
      --outstanding_;
      auto it = tenant_inflight_.find(state->tenant);
      if (it != tenant_inflight_.end() && it->second > 0) --it->second;
      queue_depth_gauge_->Add(-1);
      if (outstanding_ == 0) idle_cv_.notify_all();
    }

    state->final = std::move(final);
    state->done = true;
    lock.unlock();
    state->cv.notify_all();
  }

  // ---- dispatcher ----------------------------------------------------------

  void DispatcherLoop() {
    for (;;) {
      std::deque<Event> batch;
      {
        std::unique_lock<std::mutex> lock(event_mu_);
        event_cv_.wait_for(lock, std::chrono::milliseconds(20),
                           [this] { return !events_.empty(); });
        batch.swap(events_);
      }
      for (Event& e : batch) {
        switch (e.type) {
          case Event::kStop:
            return;
          case Event::kSubmit:
            Route(e.state);
            break;
          case Event::kHello:
            if (Current(e)) HandleHello(slots_[e.slot]);
            break;
          case Event::kPong:
            if (Current(e)) slots_[e.slot].last_pong = Clock::now();
            break;
          case Event::kResult:
            if (Current(e)) HandleResult(slots_[e.slot], e.wire_result);
            break;
          case Event::kGone:
            if (Current(e)) HandleWorkerDeath(slots_[e.slot]);
            break;
          case Event::kKill:
            if (e.slot >= 0 && e.slot < static_cast<int>(slots_.size()) &&
                slots_[e.slot].pid > 0) {
              ::kill(slots_[e.slot].pid, SIGKILL);
            }
            break;
        }
      }
      Tick();
    }
  }

  bool Current(const Event& e) const {
    return e.slot >= 0 && e.slot < static_cast<int>(slots_.size()) &&
           slots_[e.slot].generation == e.generation;
  }

  /// Timers: heartbeats, hang detection, restart backoff.
  void Tick() {
    const Clock::time_point now = Clock::now();
    for (Slot& slot : slots_) {
      if (slot.state == Slot::kUp || slot.state == Slot::kStarting) {
        if (!slot.kill_sent &&
            Seconds(now - slot.last_pong) >
                options_.heartbeat_timeout_seconds) {
          stats_heartbeat_timeouts_.fetch_add(1, std::memory_order_relaxed);
          Count("cluster.heartbeat_timeouts");
          slot.kill_sent = true;
          if (slot.pid > 0) ::kill(slot.pid, SIGKILL);
          // The reader observes EOF and posts kGone; recovery happens there.
        }
        if (slot.state == Slot::kUp && !slot.kill_sent &&
            Seconds(now - slot.last_ping) >
                options_.heartbeat_interval_seconds) {
          slot.last_ping = now;
          if (!WriteFrameToFd(slot.fd, FrameType::kPing,
                              std::to_string(++slot.ping_seq)) &&
              slot.pid > 0) {
            ::kill(slot.pid, SIGKILL);
          }
        }
      } else if (slot.state == Slot::kDown && now >= slot.restart_at) {
        SpawnWorker(slot);
      }
    }
  }

  void HandleHello(Slot& slot) {
    slot.state = Slot::kUp;
    slot.last_pong = Clock::now();
    slot.last_ping = slot.last_pong;
    ring_.Add(slot.index);
    workers_healthy_gauge_->Set(ring_.size());
    // Keys that fell into the global pending pool while no worker was up
    // can be placed now.
    std::deque<std::shared_ptr<ClusterJobState>> pending;
    pending.swap(pending_);
    for (auto& state : pending) Route(state);
    PumpSlot(slot);
  }

  void HandleResult(Slot& slot, WireResult& wire_result) {
    if (slot.busy == nullptr || slot.busy->id != wire_result.job_id) {
      return;  // stale answer from before a recovery; already handled
    }
    std::shared_ptr<ClusterJobState> state = std::move(slot.busy);
    slot.busy = nullptr;
    if (wire_result.parked) {
      // The probe stopped at a resumable checkpoint: migrate it. The probe
      // result itself is never published — its counters describe the
      // truncated run, not the full-budget run the caller asked for.
      state->session_text = std::move(wire_result.session_text);
      state->migrated = true;
      Count("cluster.jobs_parked");
      RouteMigration(state, slot.index);
    } else {
      FinishJob(state, std::move(wire_result.result),
                ClusterOutcome::kCompleted, slot.index);
    }
    PumpSlot(slot);
  }

  void HandleWorkerDeath(Slot& slot) {
    stats_worker_crashes_.fetch_add(1, std::memory_order_relaxed);
    Count("cluster.worker_crashes");
    ring_.Remove(slot.index);
    workers_healthy_gauge_->Set(ring_.size());
    if (slot.reader.joinable()) slot.reader.join();
    if (slot.fd >= 0) {
      ::close(slot.fd);
      slot.fd = -1;
    }
    if (slot.pid > 0) {
      ::kill(slot.pid, SIGKILL);  // idempotent; covers the hang path
      ::waitpid(slot.pid, nullptr, 0);
      slot.pid = -1;
    }
    slot.kill_sent = false;

    std::deque<std::shared_ptr<ClusterJobState>> orphans;
    orphans.swap(slot.queue);
    std::shared_ptr<ClusterJobState> lost = std::move(slot.busy);
    slot.busy = nullptr;

    if (slot.restarts >= options_.max_restarts) {
      slot.state = Slot::kDead;
      if (AllSlotsDead()) {
        all_dead_ = true;
        // Everything still queued anywhere degrades to the fallback.
        for (Slot& other : slots_) {
          orphans.insert(orphans.end(), other.queue.begin(),
                         other.queue.end());
          other.queue.clear();
        }
        orphans.insert(orphans.end(), pending_.begin(), pending_.end());
        pending_.clear();
      }
    } else {
      ++slot.restarts;
      slot.state = Slot::kDown;
      slot.backoff = slot.backoff <= 0
                         ? options_.restart_backoff_seconds
                         : std::min(slot.backoff * 2,
                                    options_.restart_backoff_cap_seconds);
      slot.restart_at =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(slot.backoff));
    }

    // The in-flight job was LOST mid-run: that is the retry-counted path.
    if (lost != nullptr) RecoverJob(lost);
    // Queued-but-undispatched jobs lost nothing; reroute them freely.
    for (auto& state : orphans) Route(state);
  }

  void RecoverJob(const std::shared_ptr<ClusterJobState>& state) {
    ++state->crash_retries;
    if (state->crash_retries > options_.max_retries) {
      FinishJob(state, SkippedResult(state->job.name),
                ClusterOutcome::kRetriesExhausted, -1);
      return;
    }
    stats_retries_.fetch_add(1, std::memory_order_relaxed);
    Count("cluster.jobs_retried");
    Route(state);
  }

  /// Places a job: parked sessions go to the least-loaded healthy worker,
  /// fresh jobs follow the ring, no-worker situations degrade to the
  /// global pending pool (workers restarting) or the fallback (all dead).
  void Route(const std::shared_ptr<ClusterJobState>& state) {
    if (all_dead_) {
      EnqueueFallback(state);
      return;
    }
    int target = -1;
    if (!state->session_text.empty()) {
      target = LeastLoadedUp(-1);
    } else {
      target = ring_.Pick(state->key);
    }
    if (target < 0) {
      pending_.push_back(state);  // a restart is pending; wait for a Hello
      return;
    }
    slots_[target].queue.push_back(state);
    PumpSlot(slots_[target]);
  }

  void RouteMigration(const std::shared_ptr<ClusterJobState>& state,
                      int origin) {
    const int target = LeastLoadedUp(origin);
    if (target < 0) {
      Route(state);  // origin died meanwhile, or it is the only worker
      return;
    }
    slots_[target].queue.push_back(state);
    PumpSlot(slots_[target]);
  }

  int LeastLoadedUp(int exclude) const {
    int best = -1;
    std::size_t best_load = 0;
    for (const Slot& slot : slots_) {
      if (slot.state != Slot::kUp || slot.index == exclude) continue;
      const std::size_t load =
          slot.queue.size() + (slot.busy != nullptr ? 1 : 0);
      if (best < 0 || load < best_load) {
        best = slot.index;
        best_load = load;
      }
    }
    if (best < 0 && exclude >= 0) return LeastLoadedUp(-1);
    return best;
  }

  void PumpSlot(Slot& slot) {
    while (slot.state == Slot::kUp && slot.busy == nullptr &&
           !slot.queue.empty()) {
      std::shared_ptr<ClusterJobState> state = std::move(slot.queue.front());
      slot.queue.pop_front();
      WireJob wire_job(state->job);
      wire_job.job_id = state->id;
      wire_job.session_text = state->session_text;
      if (options_.migration_probe_steps > 0 && !state->probed &&
          state->session_text.empty()) {
        wire_job.probe_steps = options_.migration_probe_steps;
      }
      state->probed = true;
      ++state->attempts;
      slot.busy = state;
      if (!WriteFrameToFd(slot.fd, FrameType::kJob,
                          EncodeJobPayload(wire_job))) {
        // The socket is dead under us; force the crash path (the reader
        // will post kGone and recovery will requeue slot.busy).
        if (slot.pid > 0) ::kill(slot.pid, SIGKILL);
        return;
      }
    }
  }

  bool AllSlotsDead() const {
    for (const Slot& slot : slots_) {
      if (slot.state != Slot::kDead) return false;
    }
    return true;
  }

  // ---- worker processes ----------------------------------------------------

  void SpawnWorker(Slot& slot) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      FailSpawn(slot);
      return;
    }
    // Parent ends must not leak into later children.
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);

    // argv is fully materialized BEFORE fork: only async-signal-safe calls
    // are allowed between fork and exec in a threaded process.
    std::vector<std::string> args;
    {
      std::istringstream iss(options_.worker_command);
      for (std::string tok; iss >> tok;) args.push_back(tok);
    }
    if (args.empty()) {
      ::close(fds[0]);
      ::close(fds[1]);
      FailSpawn(slot);
      return;
    }
    args.push_back("--fd=" + std::to_string(fds[1]));
    args.push_back("--threads=" + std::to_string(options_.worker_threads));
    args.push_back("--cache-bytes=" +
                   std::to_string(options_.worker_cache_bytes));
    if (options_.hang_after_jobs > 0) {
      args.push_back("--hang-after=" +
                     std::to_string(options_.hang_after_jobs));
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      FailSpawn(slot);
      return;
    }
    if (pid == 0) {
      ::close(fds[0]);
      ::execvp(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(fds[1]);

    if (slot.restarts > 0) {  // the initial spawn is not a "restart"
      stats_worker_restarts_.fetch_add(1, std::memory_order_relaxed);
      Count("cluster.worker_restarts");
    }
    slot.pid = pid;
    slot.fd = fds[0];
    slot.state = Slot::kStarting;
    slot.kill_sent = false;
    slot.last_pong = Clock::now();  // hello must arrive within the timeout
    ++slot.generation;
    const int index = slot.index;
    const int fd = slot.fd;
    const std::uint64_t generation = slot.generation;
    slot.reader = std::thread(
        [this, index, fd, generation] { ReaderLoop(index, fd, generation); });
  }

  /// A spawn that could not even start counts like an instant crash (same
  /// backoff, same bounded restarts), minus a job loss — nothing was busy.
  void FailSpawn(Slot& slot) {
    stats_worker_crashes_.fetch_add(1, std::memory_order_relaxed);
    Count("cluster.worker_crashes");
    if (slot.restarts >= options_.max_restarts) {
      slot.state = Slot::kDead;
      if (AllSlotsDead()) {
        all_dead_ = true;
        std::deque<std::shared_ptr<ClusterJobState>> orphans;
        for (Slot& other : slots_) {
          orphans.insert(orphans.end(), other.queue.begin(),
                         other.queue.end());
          other.queue.clear();
        }
        orphans.insert(orphans.end(), pending_.begin(), pending_.end());
        pending_.clear();
        for (auto& state : orphans) EnqueueFallback(state);
      }
      return;
    }
    ++slot.restarts;
    slot.state = Slot::kDown;
    slot.backoff = slot.backoff <= 0
                       ? options_.restart_backoff_seconds
                       : std::min(slot.backoff * 2,
                                  options_.restart_backoff_cap_seconds);
    slot.restart_at =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(slot.backoff));
  }

  void ReaderLoop(int slot_index, int fd, std::uint64_t generation) {
    for (;;) {
      Result<Frame> frame = ReadFrameFromFd(fd);
      if (!frame.ok()) {
        if (frame.code() == ErrorCode::kCorrupt) {
          Count("cluster.frames_corrupt");
        }
        Event e{Event::kGone};
        e.slot = slot_index;
        e.generation = generation;
        PostEvent(std::move(e));
        return;
      }
      switch (frame.value().type) {
        case FrameType::kHello: {
          Event e{Event::kHello};
          e.slot = slot_index;
          e.generation = generation;
          PostEvent(std::move(e));
          break;
        }
        case FrameType::kPong: {
          Event e{Event::kPong};
          e.slot = slot_index;
          e.generation = generation;
          PostEvent(std::move(e));
          break;
        }
        case FrameType::kResult: {
          Result<WireResult> wire_result =
              DecodeResultPayload(frame.value().payload);
          if (!wire_result.ok()) {
            // A worker speaking garbage is crashed by definition (the
            // crash-only pact, enforced from the router side).
            Count("cluster.frames_corrupt");
            Event e{Event::kGone};
            e.slot = slot_index;
            e.generation = generation;
            PostEvent(std::move(e));
            return;
          }
          Event e{Event::kResult};
          e.slot = slot_index;
          e.generation = generation;
          e.wire_result = std::move(wire_result).value();
          PostEvent(std::move(e));
          break;
        }
        default:
          break;  // router->worker vocabulary echoed back; ignore
      }
    }
  }

  void ShutdownWorkers() {
    // The dispatcher is stopped; slot state is ours now. Ask each live
    // worker to drain (WaitIdle already emptied the pipeline) and unblock
    // its reader by shutting the socket down in both directions.
    for (Slot& slot : slots_) {
      if (slot.fd >= 0) {
        WriteFrameToFd(slot.fd, FrameType::kShutdown, "");
        ::shutdown(slot.fd, SHUT_RDWR);
      }
    }
    for (Slot& slot : slots_) {
      if (slot.reader.joinable()) slot.reader.join();
      if (slot.fd >= 0) {
        ::close(slot.fd);
        slot.fd = -1;
      }
      if (slot.pid > 0) {
        // Grace period for the clean exit, then force.
        int status = 0;
        bool reaped = false;
        for (int i = 0; i < 200; ++i) {
          if (::waitpid(slot.pid, &status, WNOHANG) == slot.pid) {
            reaped = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (!reaped) {
          ::kill(slot.pid, SIGKILL);
          ::waitpid(slot.pid, &status, 0);
        }
        slot.pid = -1;
      }
    }
  }

  // ---- in-process fallback -------------------------------------------------

  void EnqueueFallback(const std::shared_ptr<ClusterJobState>& state) {
    if (!options_.fallback_when_down) {
      FinishJob(state, SkippedResult(state->job.name),
                ClusterOutcome::kRetriesExhausted, -1);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(fallback_mu_);
      fallback_queue_.push_back(state);
    }
    fallback_cv_.notify_one();
  }

  void FallbackLoop() {
    for (;;) {
      std::shared_ptr<ClusterJobState> state;
      {
        std::unique_lock<std::mutex> lock(fallback_mu_);
        fallback_cv_.wait(lock, [this] {
          return fallback_stop_ || !fallback_queue_.empty();
        });
        if (fallback_queue_.empty()) return;
        state = std::move(fallback_queue_.front());
        fallback_queue_.pop_front();
      }
      ++state->attempts;
      ChaseSession session;
      if (!state->session_text.empty()) {
        std::istringstream iss(state->session_text);
        Result<ChaseSession> restored = ChaseSession::Deserialize(
            state->job.goal.schema_ptr(), iss);
        if (restored.ok()) session = std::move(restored).value();
      }
      JobResult result = RunJob(state->job, state->job.config, &session);
      FinishJob(state, std::move(result), ClusterOutcome::kFallback, -1);
    }
  }

  // ---- members -------------------------------------------------------------

  ClusterOptions options_;

  // Admission (caller threads + FinishJob).
  std::mutex admission_mu_;
  std::condition_variable idle_cv_;
  std::uint64_t next_id_ = 1;
  std::size_t outstanding_ = 0;
  std::unordered_map<std::string, std::size_t> tenant_inflight_;

  // Event plane (reader threads -> dispatcher).
  std::mutex event_mu_;
  std::condition_variable event_cv_;
  std::deque<Event> events_;

  // Dispatcher-owned scheduling state.
  std::vector<Slot> slots_;
  HashRing ring_;
  std::deque<std::shared_ptr<ClusterJobState>> pending_;
  bool all_dead_ = false;
  std::thread dispatcher_;

  // Fallback plane.
  std::mutex fallback_mu_;
  std::condition_variable fallback_cv_;
  std::deque<std::shared_ptr<ClusterJobState>> fallback_queue_;
  bool fallback_stop_ = false;
  std::thread fallback_thread_;

  // Always-on stats (mirrored into cluster.* counters).
  std::atomic<std::int64_t> stats_submitted_{0};
  std::atomic<std::int64_t> stats_completed_{0};
  std::atomic<std::int64_t> stats_shed_queue_{0};
  std::atomic<std::int64_t> stats_shed_quota_{0};
  std::atomic<std::int64_t> stats_retries_exhausted_{0};
  std::atomic<std::int64_t> stats_fallback_{0};
  std::atomic<std::int64_t> stats_cache_hits_{0};
  std::atomic<std::int64_t> stats_migrated_{0};
  std::atomic<std::int64_t> stats_retries_{0};
  std::atomic<std::int64_t> stats_worker_crashes_{0};
  std::atomic<std::int64_t> stats_worker_restarts_{0};
  std::atomic<std::int64_t> stats_heartbeat_timeouts_{0};

  Histogram* job_seconds_ = nullptr;
  Gauge* queue_depth_gauge_ = nullptr;
  Gauge* workers_healthy_gauge_ = nullptr;

  friend class ::tdlib::ClusterRouter;
};

}  // namespace cluster_internal

const ClusterResult& ClusterHandle::Wait() const {
  cluster_internal::ClusterJobState& state = *state_;
  std::unique_lock<std::mutex> lock(state.mu);
  state.cv.wait(lock, [&state] { return state.done; });
  return state.final;
}

bool ClusterHandle::Done() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

ClusterRouter::ClusterRouter(ClusterOptions options)
    : impl_(std::make_unique<cluster_internal::RouterImpl>(
          std::move(options))) {}

ClusterRouter::~ClusterRouter() = default;

ClusterHandle ClusterRouter::Submit(Job job, ClusterSubmitOptions options) {
  return impl_->Submit(std::move(job), std::move(options));
}

void ClusterRouter::WaitIdle() { impl_->WaitIdle(); }

ClusterStats ClusterRouter::Stats() const { return impl_->Stats(); }

void ClusterRouter::KillWorker(int slot) { impl_->KillWorker(slot); }

}  // namespace tdlib
