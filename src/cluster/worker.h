// The cluster worker: one process, one solver, one socket to the router.
//
// A worker is deliberately crash-only: it trusts nothing it reads (every
// frame and payload decoder returns typed kCorrupt on damage) and answers
// corruption by EXITING — the router's supervision treats the vanished
// worker exactly like a crash, reschedules its in-flight job, and restarts
// the slot. There is no in-worker error recovery to get wrong.
//
// Execution preserves the engine's byte-identity contracts end to end:
//   * a kJob frame carrying a parked ChaseSession resumes it, and the
//     resumed result equals an uninterrupted run's bytes (PR-4 contract);
//   * a probe dispatch (WireJob::probe_steps > 0) runs one round under the
//     probe budget; if that parks a resumable checkpoint the worker returns
//     kParked and the ROUTER migrates the session — the probe's own result
//     is never published, because its counters describe the truncated run;
//   * a worker-side ResultCache serves repeat isomorphic jobs as kHit,
//     which consistent-hash affinity routing makes likely.
#ifndef TDLIB_CLUSTER_WORKER_H_
#define TDLIB_CLUSTER_WORKER_H_

#include <cstddef>

namespace tdlib {

struct WorkerOptions {
  /// Chase matching parallelism inside this worker (1 = serial; the
  /// byte-identity guarantee holds at any value).
  int threads = 1;

  /// Worker-side result cache budget.
  std::size_t cache_bytes = 16u << 20;

  /// Test hook (tdworker --hang-after=N): after completing N jobs the
  /// worker stops answering heartbeat pings while keeping its socket open —
  /// a wedged process, which the router must detect by pong timeout and
  /// SIGKILL. 0 = never hang.
  int hang_after_jobs = 0;
};

/// Runs the worker protocol loop on `fd` (the router end of a socketpair)
/// until shutdown. Returns the process exit code: 0 for a clean kShutdown /
/// peer-closed exit, 2 when the stream turned corrupt (the crash-only
/// path — the supervisor restarts us).
int RunWorkerLoop(int fd, const WorkerOptions& options);

}  // namespace tdlib

#endif  // TDLIB_CLUSTER_WORKER_H_
