#include "cluster/worker.h"

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "cache/canonical.h"
#include "cache/result_cache.h"
#include "cluster/wire.h"
#include "engine/thread_pool.h"

namespace tdlib {
namespace {

/// Serializes frame writes: the reader thread answers pings while the job
/// thread sends results. A failed write is fatal — a worker that silently
/// dropped a result frame would look healthy (pongs keep flowing) while
/// the router waits forever, so crash-only means die and let supervision
/// recover the job.
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}

  void Write(FrameType type, std::string payload) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!WriteFrameToFd(fd_, type, std::move(payload))) ::_exit(2);
  }

 private:
  int fd_;
  std::mutex mu_;
};

/// Solves one wire job. `cancel` is the worker's abort flag (raised when
/// the stream turns corrupt, so a crash-only exit is not delayed by a
/// long chase).
WireResult ExecuteJob(const WireJob& wire_job, TaskExecutor* pool,
                      ResultCache* cache, const std::atomic<bool>* cancel) {
  WireResult out;
  out.job_id = wire_job.job_id;
  const Job& job = wire_job.job;

  DualSolverConfig config = job.config;
  config.base_chase.pool = pool;
  config.cancel = cancel;
  config.base_chase.cancel = cancel;
  config.base_counterexample.cancel = cancel;

  // Fingerprint the FULL config: a cached verdict replays the full run's
  // deterministic bytes, never a probe's.
  const CacheFingerprint fingerprint =
      FingerprintProblem(job.dependencies, job.goal, config);
  CachedVerdict cached;
  if (fingerprint.valid && cache->Lookup(fingerprint, &cached)) {
    out.result = CachedVerdictToResult(cached, job.name);
    return out;
  }

  ChaseSession session;
  if (!wire_job.session_text.empty()) {
    std::istringstream iss(wire_job.session_text);
    Result<ChaseSession> restored =
        ChaseSession::Deserialize(job.goal.schema_ptr(), iss);
    // A corrupt migrated session is not fatal: running from scratch under
    // the full config produces the same bytes (resume is invisible); only
    // the probe's work is lost.
    if (restored.ok()) session = std::move(restored).value();
  }

  const std::uint64_t probe_steps = wire_job.probe_steps;
  const bool try_probe =
      probe_steps > 0 && !session.CanResume() &&
      config.base_chase.deadline_seconds <= 0 &&
      config.base_counterexample.deadline_seconds <= 0 &&
      (config.base_chase.max_steps == 0 ||
       probe_steps < config.base_chase.max_steps);
  if (try_probe) {
    DualSolverConfig probe_config = config;
    probe_config.rounds = 1;
    probe_config.base_chase.max_steps = probe_steps;
    JobResult probe_result = RunJob(job, probe_config, &session);
    if (probe_result.status == JobStatus::kCompleted &&
        probe_result.verdict == DualVerdict::kUnknown && session.CanResume()) {
      std::ostringstream oss;
      session.Serialize(oss);
      out.parked = true;
      out.session_text = oss.str();
      out.result = std::move(probe_result);  // informational only
      return out;
    }
    // Any other probe outcome is discarded and the full config runs from
    // scratch: a certificate reached under the probe budgets carries the
    // truncated run's counters (and the probe's early counterexample round
    // can even certify a different-but-sound verdict), so publishing it
    // would break byte-parity with the serial reference.
    session.Reset();
  }

  out.result = RunJob(job, config, &session);
  if (fingerprint.valid && out.result.status == JobStatus::kCompleted) {
    cache->Insert(fingerprint, CachedVerdictFromResult(out.result, 0));
    out.result.cache_source = CacheSource::kMiss;
  }
  return out;
}

}  // namespace

int RunWorkerLoop(int fd, const WorkerOptions& options) {
  std::unique_ptr<ThreadPool> pool;
  if (options.threads > 1) pool = std::make_unique<ThreadPool>(options.threads);
  ResultCache cache(CacheOptions{options.cache_bytes, /*shards=*/4});
  FrameWriter writer(fd);

  std::atomic<bool> abort{false};

  std::mutex mu;
  std::condition_variable cv;
  std::optional<WireJob> inbox;  // single outstanding job by protocol
  bool stop = false;
  bool busy = false;
  int jobs_done = 0;

  std::thread solver([&] {
    for (;;) {
      std::optional<WireJob> wire_job;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stop || inbox.has_value(); });
        if (!inbox.has_value()) return;
        wire_job.swap(inbox);
        busy = true;
      }
      WireResult result = ExecuteJob(*wire_job, pool.get(), &cache, &abort);
      // On the corrupt-stream abort path the chase was cancelled; that
      // result is an artifact of dying, not an answer — suppress it so the
      // router recovers the job through the crash path instead.
      if (!abort.load(std::memory_order_relaxed)) {
        writer.Write(FrameType::kResult, EncodeResultPayload(result));
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        busy = false;
        ++jobs_done;
      }
      cv.notify_all();
    }
  });

  writer.Write(FrameType::kHello,
               "tdhello " + std::to_string(::getpid()) + " 1");

  int exit_code = 0;
  for (;;) {
    Result<Frame> frame = ReadFrameFromFd(fd);
    if (!frame.ok()) {
      // Clean EOF = the router went away; anything else is a corrupt
      // stream and we take the crash-only exit.
      exit_code = frame.code() == ErrorCode::kUnavailable ? 0 : 2;
      break;
    }
    const FrameType type = frame.value().type;
    if (type == FrameType::kPing) {
      bool hang;
      {
        std::lock_guard<std::mutex> lock(mu);
        hang = options.hang_after_jobs > 0 &&
               jobs_done >= options.hang_after_jobs;
      }
      if (!hang) {
        writer.Write(FrameType::kPong, std::move(frame.value().payload));
      }
      continue;
    }
    if (type == FrameType::kJob) {
      Result<WireJob> wire_job = DecodeJobPayload(frame.value().payload);
      if (!wire_job.ok()) {
        exit_code = 2;
        break;
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        inbox = std::move(wire_job).value();
      }
      cv.notify_all();
      continue;
    }
    if (type == FrameType::kShutdown) break;
    // kHello/kPong/kResult are worker->router vocabulary; ignore echoes.
  }

  if (exit_code != 0) abort.store(true, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(mu);
    if (exit_code == 0) {
      // Drain: let an in-flight job finish and send its result.
      cv.wait(lock, [&] { return !busy && !inbox.has_value(); });
    }
    inbox.reset();
    stop = true;
  }
  cv.notify_all();
  solver.join();
  return exit_code;
}

}  // namespace tdlib
