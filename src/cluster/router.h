// The cluster router: sharded dispatch over supervised worker processes.
//
// Topology (examples/tdrouter is the CLI face of this):
//
//   Submit ──admission──▶ dispatcher ──ring──▶ worker 0  (tdworker process)
//                            │                 worker 1
//                            │                 ...
//                            └──▶ fallback solver (in-process, last resort)
//
// One dispatcher thread owns all scheduling state and processes an event
// queue fed by per-worker reader threads; there is no shared mutable
// scheduling state outside it. Jobs are keyed on the canonical-form
// fingerprint (cache/canonical.h), so isomorphic jobs consistently land on
// the same worker and its result cache serves repeats as kHit.
//
// Robustness model:
//   * crash    — a worker's socket closing (or a corrupt frame from it)
//                marks the slot down, requeues its in-flight job on a
//                healthy worker (bounded by max_retries, then shed as
//                kSkipped), and restarts the process under bounded
//                exponential backoff until max_restarts is spent;
//   * hang     — heartbeat pings every heartbeat_interval_seconds; a worker
//                silent past heartbeat_timeout_seconds is SIGKILLed and
//                takes the crash path;
//   * corrupt  — every frame and payload decoder rejects damage with typed
//                kCorrupt; the router treats a worker speaking garbage as
//                crashed (and a worker treats a garbled router the same
//                way: crash-only, both directions);
//   * overload — per-tenant quotas and a global queue bound shed excess
//                submissions immediately as kSkipped;
//   * migration— with migration_probe_steps set, a first dispatch runs a
//                bounded probe; a chase that is still running at the probe
//                budget parks its ChaseSession, which the router migrates
//                to the least-loaded worker and resumes — byte-identical
//                to an uninterrupted run by the PR-4 resume contract;
//   * all down — when every slot is permanently dead the router degrades
//                to an in-process fallback solver rather than failing
//                accepted jobs.
//
// Every terminal outcome — completed (hit or solved), shed, retries
// exhausted, fallback — flows through ONE publication path (FinishJob,
// mirroring engine_internal::PublishTerminal's ordering: completion
// callback, then the done flip, then exactly-once cluster.* counters), so
// outcome counters sum to submissions even across crash/retry races.
#ifndef TDLIB_CLUSTER_ROUTER_H_
#define TDLIB_CLUSTER_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "engine/job.h"

namespace tdlib {

namespace cluster_internal {
struct ClusterJobState;
class RouterImpl;
}  // namespace cluster_internal

struct ClusterOptions {
  /// Worker process count. 0 = no workers: every job takes the fallback
  /// path (useful as a serial reference inside one process tree).
  int num_workers = 2;

  /// Worker executable. "" = $TDLIB_TDWORKER. Spawned as
  /// `cmd --fd=N --threads=T --cache-bytes=B [--hang-after=K]`.
  std::string worker_command;

  int worker_threads = 1;
  std::size_t worker_cache_bytes = 16u << 20;

  /// Crash retries per job before it is shed as kSkipped (a dispatch lost
  /// to a worker death is re-dispatched this many times).
  int max_retries = 2;

  /// Process restarts per slot before the slot is abandoned for good.
  int max_restarts = 3;

  /// Exponential restart backoff: initial delay, doubling per consecutive
  /// restart, capped.
  double restart_backoff_seconds = 0.05;
  double restart_backoff_cap_seconds = 1.0;

  double heartbeat_interval_seconds = 0.25;
  double heartbeat_timeout_seconds = 2.0;

  /// When > 0: first dispatch of a job runs a probe with this chase-step
  /// budget; a still-running chase parks and migrates (see file comment).
  std::uint64_t migration_probe_steps = 0;

  /// Global bound on jobs admitted but not yet terminal. 0 = unbounded.
  std::size_t max_queue_depth = 1024;

  /// Per-tenant bound on in-flight jobs. 0 = unbounded.
  std::size_t tenant_quota = 0;

  /// Degrade to an in-process solver when all workers are permanently
  /// down (off: such jobs are shed as kSkipped once retries exhaust).
  bool fallback_when_down = true;

  /// Test hook forwarded to workers (WorkerOptions::hang_after_jobs).
  int hang_after_jobs = 0;
};

/// How a job left the router. kCompleted covers worker solves, worker
/// cache hits (JobResult::cache_source == kHit) and migrated resumes
/// (ClusterResult::migrated); the rest are degraded exits.
enum class ClusterOutcome {
  kCompleted,         ///< a worker produced the verdict
  kShedQueue,         ///< refused at admission: queue depth bound
  kShedQuota,         ///< refused at admission: tenant quota
  kRetriesExhausted,  ///< lost to crashes max_retries+1 times -> kSkipped
  kFallback,          ///< solved by the in-process fallback (workers down)
};

std::string_view ClusterOutcomeName(ClusterOutcome outcome);

struct ClusterResult {
  JobResult result;
  ClusterOutcome outcome = ClusterOutcome::kCompleted;
  int attempts = 0;      ///< dispatches (1 = first try succeeded)
  bool migrated = false; ///< a parked checkpoint moved between workers
  int worker = -1;       ///< slot that produced the result (-1: none)
};

struct ClusterSubmitOptions {
  std::string tenant = "default";
  /// Runs on the publishing thread BEFORE waiters wake (the PublishTerminal
  /// ordering). Must not re-enter the router.
  std::function<void(const ClusterResult&)> on_complete;
};

/// Waitable handle to one submitted job.
class ClusterHandle {
 public:
  ClusterHandle() = default;

  /// Blocks until the job is terminal and returns its result.
  const ClusterResult& Wait() const;

  /// Non-blocking: terminal yet?
  bool Done() const;

 private:
  friend class cluster_internal::RouterImpl;
  explicit ClusterHandle(
      std::shared_ptr<cluster_internal::ClusterJobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<cluster_internal::ClusterJobState> state_;
};

/// Always-on totals (plain atomics, readable without enabling metrics;
/// the same figures publish as cluster.* counters when metrics are on).
struct ClusterStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t shed_queue = 0;
  std::int64_t shed_quota = 0;
  std::int64_t retries_exhausted = 0;
  std::int64_t fallback = 0;
  std::int64_t cache_hits = 0;    ///< completed jobs served from worker caches
  std::int64_t migrated = 0;      ///< completed jobs that resumed a parked chase
  std::int64_t retries = 0;       ///< re-dispatches after a worker death
  std::int64_t worker_crashes = 0;
  std::int64_t worker_restarts = 0;
  std::int64_t heartbeat_timeouts = 0;
};

class ClusterRouter {
 public:
  explicit ClusterRouter(ClusterOptions options);

  /// Drains in-flight jobs, shuts workers down and reaps them.
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Admits or sheds `job`. Shedding (quota/queue) is decided and published
  /// synchronously; the returned handle is then already Done. Never blocks
  /// on solver work.
  ClusterHandle Submit(Job job, ClusterSubmitOptions options = {});

  /// Blocks until every admitted job is terminal.
  void WaitIdle();

  ClusterStats Stats() const;

  /// Test hook: SIGKILL the process currently occupying `slot` (no-op when
  /// the slot is empty). The crash is then handled like any other.
  void KillWorker(int slot);

 private:
  std::unique_ptr<cluster_internal::RouterImpl> impl_;
};

}  // namespace tdlib

#endif  // TDLIB_CLUSTER_ROUTER_H_
