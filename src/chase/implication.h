// Chase-based implication testing (the inference problem itself).
//
// "Given a finite set D of dependencies and a single dependency D0, to
//  determine whether D0 is true in every database in which each member of D
//  is true."  — the problem this paper proves undecidable.
//
// The chase gives a *semi-decision* procedure for the unrestricted version:
// freeze D0's antecedents into an instance, chase with D, and watch for a
// match of D0's conclusion. If the chase reaches a fixpoint without one, the
// terminal instance is a (finite!) universal model witnessing
// non-implication — in both the unrestricted and the finite sense. Because
// the problem is undecidable, the third verdict kUnknown is unavoidable.
#ifndef TDLIB_CHASE_IMPLICATION_H_
#define TDLIB_CHASE_IMPLICATION_H_

#include <optional>
#include <string>

#include "chase/chase.h"
#include "core/dependency.h"

namespace tdlib {

/// Three-valued implication verdict.
enum class Implication {
  kImplied,     ///< D ⊨ D0 over all (finite and infinite) databases
  kNotImplied,  ///< a counterexample database exists (finite, in fact)
  kUnknown,     ///< resource limits hit before either certificate appeared
};

/// Result of an implication test.
struct ImplicationResult {
  Implication verdict = Implication::kUnknown;

  /// The chase outcome underlying the verdict.
  ChaseResult chase;

  /// When kNotImplied: the terminal chase instance (a universal model of D
  /// containing D0's frozen body but no conclusion match).
  std::optional<Instance> counterexample;

  std::string ToString() const;
};

/// Tests D ⊨ D0 by chasing D0's frozen body with D.
///
/// kImplied and kNotImplied are certificates; kUnknown means the budget in
/// `config` ran out (raise it and retry, or accept undecidability).
ImplicationResult ChaseImplies(const DependencySet& d, const Dependency& d0,
                               const ChaseConfig& config = {});

/// Returns a goal predicate that is true when `d0`'s conclusion is matched
/// in an instance whose first values per attribute are the frozen body
/// variables of `d0` (i.e. the instance began as d0.body().Freeze()).
/// Exposed for callers that drive RunChase directly (the part (A) tracer).
ChaseGoal ConclusionGoal(const Dependency& d0,
                         HomSearchOptions options = {});

}  // namespace tdlib

#endif  // TDLIB_CHASE_IMPLICATION_H_
