// Chase-based implication testing (the inference problem itself).
//
// "Given a finite set D of dependencies and a single dependency D0, to
//  determine whether D0 is true in every database in which each member of D
//  is true."  — the problem this paper proves undecidable.
//
// The chase gives a *semi-decision* procedure for the unrestricted version:
// freeze D0's antecedents into an instance, chase with D, and watch for a
// match of D0's conclusion. If the chase reaches a fixpoint without one, the
// terminal instance is a (finite!) universal model witnessing
// non-implication — in both the unrestricted and the finite sense. Because
// the problem is undecidable, the third verdict kUnknown is unavoidable.
#ifndef TDLIB_CHASE_IMPLICATION_H_
#define TDLIB_CHASE_IMPLICATION_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "chase/chase.h"
#include "core/dependency.h"

namespace tdlib {

/// Persistent chase state for one (D, D0) question: the evolving chase
/// instance plus the checkpoint of the last budget-stopped run. Threading a
/// session through ChaseImplies lets successive calls — the dual solver's
/// escalation rounds, or JobHandle::ResumeWithBudget much later — CONTINUE
/// the previous chase instead of re-deriving everything from the frozen
/// body. Resuming is observably invisible: a resumed run produces the exact
/// ChaseResult (status, counters, trace) and instance an uninterrupted run
/// under the final budgets would have, because checkpoints are only taken at
/// deterministic stops and carry cumulative counters.
///
/// A session is only meaningful for a fixed (D, D0) and config shape;
/// ChaseImplies falls back to a fresh run (and resets the session) whenever
/// the stored checkpoint is absent, non-resumable, or shape-mismatched.
struct ChaseSession {
  std::optional<Instance> instance;
  ChaseCheckpoint checkpoint;

  /// Identity of the (D, D0) question this session belongs to (a hash of
  /// the printed dependencies; 0 = not yet bound). ChaseImplies stamps it
  /// on every run and refuses to resume a session whose fingerprint does
  /// not match the question at hand — otherwise a deserialized session for
  /// a DIFFERENT question with a compatible shape would resume silently
  /// and yield a confidently wrong verdict.
  std::uint64_t question_fingerprint = 0;

  /// True iff the session holds a chase that stopped resumably.
  bool CanResume() const { return instance.has_value() && checkpoint.valid; }

  void Reset() {
    instance.reset();
    checkpoint.Reset();
    question_fingerprint = 0;
  }

  /// Text round trip (Instance::Serialize + ChaseCheckpoint::Serialize), so
  /// a budget-stopped chase can be parked outside the process and picked up
  /// again. Deserialize treats the stream as untrusted (checkpoints arrive
  /// from disk): malformed input yields ErrorCode::kCorrupt with the
  /// failing layer's message; the caller supplies the schema (it owns the
  /// dependency set).
  void Serialize(std::ostream& os) const;
  static Result<ChaseSession> Deserialize(const SchemaPtr& schema,
                                          std::istream& is);
};

/// Three-valued implication verdict.
enum class Implication {
  kImplied,     ///< D ⊨ D0 over all (finite and infinite) databases
  kNotImplied,  ///< a counterexample database exists (finite, in fact)
  kUnknown,     ///< resource limits hit before either certificate appeared
};

/// Result of an implication test.
struct ImplicationResult {
  Implication verdict = Implication::kUnknown;

  /// The chase outcome underlying the verdict.
  ChaseResult chase;

  /// When kNotImplied: the terminal chase instance (a universal model of D
  /// containing D0's frozen body but no conclusion match).
  std::optional<Instance> counterexample;

  std::string ToString() const;
};

/// Tests D ⊨ D0 by chasing D0's frozen body with D.
///
/// kImplied and kNotImplied are certificates; kUnknown means the budget in
/// `config` ran out (raise it and retry, or accept undecidability).
ImplicationResult ChaseImplies(const DependencySet& d, const Dependency& d0,
                               const ChaseConfig& config = {});

/// Session-threading variant. With a non-null `session`:
///
///   * if the session holds a checkpoint resumable under `config`, the
///     chase continues from it — no re-freezing, no re-derivation;
///   * otherwise the session is reset and a fresh chase starts from
///     d0.body().Freeze();
///   * on return, the session holds the new state when the run stopped
///     resumably (kUnknown verdicts with a kStepLimit/kTupleLimit chase),
///     and is reset on certificates (kImplied / kNotImplied — the instance
///     moves into ImplicationResult::counterexample for the latter).
///
/// session == nullptr degrades to the plain overload.
ImplicationResult ChaseImplies(const DependencySet& d, const Dependency& d0,
                               const ChaseConfig& config,
                               ChaseSession* session);

/// The identity hash ChaseSession::question_fingerprint stores: a digest of
/// the printed forms of every dependency in `d` plus `d0`. Exposed for
/// callers that park sessions externally and want to label them.
std::uint64_t QuestionFingerprint(const DependencySet& d,
                                  const Dependency& d0);

/// Returns a goal predicate that is true when `d0`'s conclusion is matched
/// in an instance whose first values per attribute are the frozen body
/// variables of `d0` (i.e. the instance began as d0.body().Freeze()).
/// Exposed for callers that drive RunChase directly (the part (A) tracer).
ChaseGoal ConclusionGoal(const Dependency& d0,
                         HomSearchOptions options = {});

}  // namespace tdlib

#endif  // TDLIB_CHASE_IMPLICATION_H_
