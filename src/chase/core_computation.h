// Cores: minimal universal models.
//
// A terminal chase instance certifies non-implication, but it is usually not
// minimal — labeled nulls can often be folded onto other values by an
// endomorphism that fixes the original (non-null) values. The image of such
// a retraction is a smaller instance with the same homomorphism type; the
// least fixpoint of this process is the *core*, the canonical minimal
// counterexample. (Core minimization is the standard companion of tableau
// techniques in the TD literature — cf. Fagin, Maier, Ullman & Yannakakis,
// "Tools for Template Dependencies", cited by the paper.)
#ifndef TDLIB_CHASE_CORE_COMPUTATION_H_
#define TDLIB_CHASE_CORE_COMPUTATION_H_

#include <cstdint>

#include "logic/homomorphism.h"
#include "logic/instance.h"

namespace tdlib {

struct CoreConfig {
  /// Budget for each retraction search (0 = unlimited).
  std::uint64_t hom_max_nodes = 0;

  /// Upper bound on folding rounds (0 = until fixpoint).
  int max_rounds = 0;
};

struct CoreResult {
  Instance core;

  /// Number of retraction rounds applied.
  int rounds = 0;

  /// Tuples removed relative to the input.
  int tuples_removed = 0;

  /// True if a budget stopped minimization early (result is still a valid
  /// retract, just possibly not the core).
  bool hit_budget = false;

  explicit CoreResult(Instance c) : core(std::move(c)) {}
};

/// Computes the core of `instance` treating labeled nulls as foldable
/// variables and every other value as a rigid constant. The result is
/// homomorphically equivalent to the input (each maps into the other), so
/// it satisfies exactly the same template dependencies in the roles where
/// universal models are used.
CoreResult ComputeCore(const Instance& instance, const CoreConfig& config = {});

/// True iff each instance maps homomorphically into the other, fixing
/// non-null values (used to validate ComputeCore and by tests).
bool HomomorphicallyEquivalent(const Instance& a, const Instance& b,
                               const HomSearchOptions& options = {});

}  // namespace tdlib

#endif  // TDLIB_CHASE_CORE_COMPUTATION_H_
