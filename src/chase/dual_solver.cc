#include "chase/dual_solver.h"

#include <sstream>

#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace_span.h"

namespace tdlib {

namespace {

// Stable registry handles for the solver's escalation loop. Pure sinks,
// published per round — never read back, so metrics on/off cannot perturb
// the escalation schedule.
struct SolverMetrics {
  Counter* rounds;
  Counter* escalations;
  Histogram* chase_seconds;
  Histogram* cex_seconds;
};

SolverMetrics& GetSolverMetrics() {
  static SolverMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    auto* sm = new SolverMetrics();
    sm->rounds = r.GetCounter("solver.rounds");
    sm->escalations = r.GetCounter("solver.escalations");
    sm->chase_seconds =
        r.GetHistogram("solver.chase_seconds", LatencyBuckets());
    sm->cex_seconds = r.GetHistogram("solver.cex_seconds", LatencyBuckets());
    return sm;
  }();
  return *m;
}

}  // namespace

DualResult SolveImplication(const DependencySet& d, const Dependency& d0,
                            const DualSolverConfig& config) {
  return SolveImplication(d, d0, config, /*session=*/nullptr);
}

DualResult SolveImplication(const DependencySet& d, const Dependency& d0,
                            const DualSolverConfig& config,
                            ChaseSession* session) {
  DualResult result;
  // The chase side threads one session through every round: round k's
  // kStepLimit checkpoint is round k+1's starting point (resume_chase), so
  // escalation re-derives nothing. A caller-owned session extends the same
  // continuation across SolveImplication calls (ResumeWithBudget).
  ChaseSession local;
  ChaseSession* chase_session = session != nullptr ? session : &local;
  if (!config.resume_chase) chase_session->Reset();
  auto cancelled = [&config] {
    return config.cancel != nullptr &&
           config.cancel->load(std::memory_order_relaxed);
  };
  for (int round = 0; round < config.rounds; ++round) {
    result.rounds_used = round + 1;
    TraceSpan round_span("solver.round");
    if (MetricsEnabled()) {
      SolverMetrics& m = GetSolverMetrics();
      m.rounds->Add(1);
      if (round > 0) m.escalations->Add(1);
    }

    ChaseConfig chase = config.base_chase;
    chase.cancel = config.cancel;
    std::uint64_t scale = 1ULL << round;
    if (chase.max_steps > 0) chase.max_steps *= scale;
    if (chase.max_tuples > 0) chase.max_tuples *= scale;
    {
      TraceSpan chase_span("solver.chase");
      StopWatch chase_watch;
      result.implication = ChaseImplies(
          d, d0, chase, config.resume_chase ? chase_session : nullptr);
      if (MetricsEnabled()) {
        GetSolverMetrics().chase_seconds->Observe(
            chase_watch.ElapsedSeconds());
      }
    }
    if (result.implication.verdict == Implication::kImplied) {
      result.verdict = DualVerdict::kImplied;
      return result;
    }
    if (result.implication.verdict == Implication::kNotImplied) {
      // Chase fixpoint: its terminal instance is itself a finite
      // counterexample, so both semantics are refuted at once.
      result.verdict = DualVerdict::kRefutedByFixpoint;
      return result;
    }
    if (cancelled() ||
        result.implication.chase.status == ChaseStatus::kCancelled) {
      result.verdict = DualVerdict::kUnknown;
      return result;
    }

    CounterexampleConfig cex = config.base_counterexample;
    cex.max_tuples += round;
    cex.cancel = config.cancel;
    {
      TraceSpan cex_span("solver.cex");
      StopWatch cex_watch;
      result.counterexample = FindFiniteCounterexample(d, d0, cex);
      if (MetricsEnabled()) {
        GetSolverMetrics().cex_seconds->Observe(cex_watch.ElapsedSeconds());
      }
    }
    if (result.counterexample.status == CounterexampleStatus::kFound) {
      result.verdict = DualVerdict::kRefutedFinite;
      return result;
    }
    if (cancelled()) {
      result.verdict = DualVerdict::kUnknown;
      return result;
    }
  }
  result.verdict = DualVerdict::kUnknown;
  return result;
}

std::string DualResult::ToString() const {
  std::ostringstream oss;
  switch (verdict) {
    case DualVerdict::kImplied: oss << "IMPLIED"; break;
    case DualVerdict::kRefutedFinite: oss << "REFUTED-FINITE"; break;
    case DualVerdict::kRefutedByFixpoint: oss << "REFUTED-FIXPOINT"; break;
    case DualVerdict::kUnknown: oss << "UNKNOWN"; break;
  }
  oss << " in " << rounds_used << " round(s)";
  return oss.str();
}

}  // namespace tdlib
