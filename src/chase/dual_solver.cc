#include "chase/dual_solver.h"

#include <sstream>

namespace tdlib {

DualResult SolveImplication(const DependencySet& d, const Dependency& d0,
                            const DualSolverConfig& config) {
  return SolveImplication(d, d0, config, /*session=*/nullptr);
}

DualResult SolveImplication(const DependencySet& d, const Dependency& d0,
                            const DualSolverConfig& config,
                            ChaseSession* session) {
  DualResult result;
  // The chase side threads one session through every round: round k's
  // kStepLimit checkpoint is round k+1's starting point (resume_chase), so
  // escalation re-derives nothing. A caller-owned session extends the same
  // continuation across SolveImplication calls (ResumeWithBudget).
  ChaseSession local;
  ChaseSession* chase_session = session != nullptr ? session : &local;
  if (!config.resume_chase) chase_session->Reset();
  auto cancelled = [&config] {
    return config.cancel != nullptr &&
           config.cancel->load(std::memory_order_relaxed);
  };
  for (int round = 0; round < config.rounds; ++round) {
    result.rounds_used = round + 1;

    ChaseConfig chase = config.base_chase;
    chase.cancel = config.cancel;
    std::uint64_t scale = 1ULL << round;
    if (chase.max_steps > 0) chase.max_steps *= scale;
    if (chase.max_tuples > 0) chase.max_tuples *= scale;
    result.implication = ChaseImplies(
        d, d0, chase, config.resume_chase ? chase_session : nullptr);
    if (result.implication.verdict == Implication::kImplied) {
      result.verdict = DualVerdict::kImplied;
      return result;
    }
    if (result.implication.verdict == Implication::kNotImplied) {
      // Chase fixpoint: its terminal instance is itself a finite
      // counterexample, so both semantics are refuted at once.
      result.verdict = DualVerdict::kRefutedByFixpoint;
      return result;
    }
    if (cancelled() ||
        result.implication.chase.status == ChaseStatus::kCancelled) {
      result.verdict = DualVerdict::kUnknown;
      return result;
    }

    CounterexampleConfig cex = config.base_counterexample;
    cex.max_tuples += round;
    cex.cancel = config.cancel;
    result.counterexample = FindFiniteCounterexample(d, d0, cex);
    if (result.counterexample.status == CounterexampleStatus::kFound) {
      result.verdict = DualVerdict::kRefutedFinite;
      return result;
    }
    if (cancelled()) {
      result.verdict = DualVerdict::kUnknown;
      return result;
    }
  }
  result.verdict = DualVerdict::kUnknown;
  return result;
}

std::string DualResult::ToString() const {
  std::ostringstream oss;
  switch (verdict) {
    case DualVerdict::kImplied: oss << "IMPLIED"; break;
    case DualVerdict::kRefutedFinite: oss << "REFUTED-FINITE"; break;
    case DualVerdict::kRefutedByFixpoint: oss << "REFUTED-FIXPOINT"; break;
    case DualVerdict::kUnknown: oss << "UNKNOWN"; break;
  }
  oss << " in " << rounds_used << " round(s)";
  return oss.str();
}

}  // namespace tdlib
