// Finite counterexample search: the other half of the inference problem.
//
// The paper distinguishes the *true database interpretation* (R finite) from
// the unrestricted one, and its Main Theorem makes the pair
//   { (D, D0) : D0 holds in every database satisfying D }
//   { (D, D0) : D0 fails in some FINITE database satisfying D }
// effectively inseparable. Enumerating finite databases and model-checking
// them semi-decides membership in the second set; this module is that
// enumerator.
//
// Enumeration is complete up to isomorphism: a database over the typed
// schema is determined (up to renaming of domain values) by the pattern of
// value agreements inside each column, i.e. by one set partition of the
// tuple indices per attribute. Candidates are therefore tuples of restricted
// growth strings, enumerated by increasing tuple count.
#ifndef TDLIB_CHASE_COUNTEREXAMPLE_H_
#define TDLIB_CHASE_COUNTEREXAMPLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/dependency.h"
#include "logic/instance.h"

namespace tdlib {

/// Limits for the enumeration.
struct CounterexampleConfig {
  /// Largest database (tuple count) to try.
  int max_tuples = 3;

  /// Abort after checking this many candidate databases (0 = unlimited).
  std::uint64_t max_candidates = 0;

  /// Wall-clock budget in seconds (<= 0 = none).
  double deadline_seconds = 0;

  /// Optional cooperative cancel flag, checked once per candidate database
  /// (each candidate is small — at most max_tuples rows — so the per-check
  /// model tests bound the cancel latency). A trip reports kLimit; the
  /// engine's service layer, which owns the flag, rewrites the job status
  /// to kCancelled. Null disables; must outlive the search.
  const std::atomic<bool>* cancel = nullptr;
};

/// Outcome of a search.
enum class CounterexampleStatus {
  kFound,      ///< witness holds: satisfies every member of D, violates D0
  kExhausted,  ///< no counterexample with at most max_tuples tuples exists
  kLimit,      ///< candidate/time budget hit first
};

struct CounterexampleResult {
  CounterexampleStatus status = CounterexampleStatus::kLimit;
  std::optional<Instance> witness;
  std::uint64_t candidates_checked = 0;

  std::string ToString() const;
};

/// Searches for a finite database satisfying all of `d` and violating `d0`.
CounterexampleResult FindFiniteCounterexample(const DependencySet& d,
                                              const Dependency& d0,
                                              const CounterexampleConfig& config = {});

/// Enumerates all set partitions of {0..n-1} as restricted growth strings
/// (rgs[0] = 0; rgs[i] <= 1 + max(rgs[0..i-1])). `visit` returns false to
/// stop. Exposed for tests and the EXP-GAP bench. Returns false iff stopped.
bool ForEachSetPartition(int n,
                         const std::function<bool(const std::vector<int>&)>& visit);

}  // namespace tdlib

#endif  // TDLIB_CHASE_COUNTEREXAMPLE_H_
