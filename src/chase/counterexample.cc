#include "chase/counterexample.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "core/satisfaction.h"
#include "util/timer.h"

namespace tdlib {
namespace {

// Builds the instance whose column-agreement patterns are given by one
// restricted growth string per attribute. Returns nullopt when two rows
// coincide on every attribute (that candidate is isomorphic to a smaller
// one, already enumerated).
std::optional<Instance> BuildCandidate(
    const SchemaPtr& schema, int num_tuples,
    const std::vector<std::vector<int>>& partitions) {
  Instance instance(schema);
  instance.Reserve(static_cast<std::size_t>(num_tuples),
                   static_cast<std::size_t>(num_tuples));
  for (int attr = 0; attr < schema->arity(); ++attr) {
    int blocks = *std::max_element(partitions[attr].begin(),
                                   partitions[attr].end()) + 1;
    for (int b = 0; b < blocks; ++b) instance.AddValue(attr);
  }
  for (int i = 0; i < num_tuples; ++i) {
    Tuple t(schema->arity());
    for (int attr = 0; attr < schema->arity(); ++attr) {
      t[attr] = partitions[attr][i];
    }
    if (!instance.AddTuple(t)) return std::nullopt;  // duplicate row
  }
  return instance;
}

}  // namespace

bool ForEachSetPartition(
    int n, const std::function<bool(const std::vector<int>&)>& visit) {
  std::vector<int> rgs(n, 0);
  // Standard restricted-growth-string enumeration.
  std::function<bool(int, int)> rec = [&](int i, int max_used) -> bool {
    if (i == n) return visit(rgs);
    for (int v = 0; v <= max_used + 1 && v < n; ++v) {
      rgs[i] = v;
      if (!rec(i + 1, std::max(max_used, v))) return false;
    }
    return true;
  };
  if (n == 0) return visit(rgs);
  rgs[0] = 0;
  return rec(1, 0);
}

CounterexampleResult FindFiniteCounterexample(
    const DependencySet& d, const Dependency& d0,
    const CounterexampleConfig& config) {
  CounterexampleResult result;
  Deadline deadline(config.deadline_seconds);
  const SchemaPtr& schema = d0.schema_ptr();
  const int arity = schema->arity();

  for (int n = 1; n <= config.max_tuples; ++n) {
    // Pre-list partitions of [n] once; the candidate space is the
    // arity-fold product, walked with an odometer.
    std::vector<std::vector<int>> partitions;
    ForEachSetPartition(n, [&](const std::vector<int>& p) {
      partitions.push_back(p);
      return true;
    });
    const std::size_t per_attr = partitions.size();
    std::vector<std::size_t> odometer(arity, 0);
    bool exhausted_level = false;
    while (!exhausted_level) {
      if (deadline.Expired() ||
          (config.cancel != nullptr &&
           config.cancel->load(std::memory_order_relaxed)) ||
          (config.max_candidates > 0 &&
           result.candidates_checked >= config.max_candidates)) {
        result.status = CounterexampleStatus::kLimit;
        return result;
      }
      std::vector<std::vector<int>> chosen(arity);
      for (int attr = 0; attr < arity; ++attr) {
        chosen[attr] = partitions[odometer[attr]];
      }
      std::optional<Instance> candidate = BuildCandidate(schema, n, chosen);
      if (candidate.has_value()) {
        ++result.candidates_checked;
        // Cheap test first: D0 must be violated.
        if (CheckSatisfaction(d0, *candidate).verdict ==
            Satisfaction::kViolated) {
          bool all_hold = true;
          for (const Dependency& dep : d.items) {
            if (CheckSatisfaction(dep, *candidate).verdict !=
                Satisfaction::kSatisfied) {
              all_hold = false;
              break;
            }
          }
          if (all_hold) {
            result.status = CounterexampleStatus::kFound;
            result.witness = std::move(candidate);
            return result;
          }
        }
      }
      // Advance the odometer.
      int pos = 0;
      while (pos < arity) {
        if (++odometer[pos] < per_attr) break;
        odometer[pos] = 0;
        ++pos;
      }
      if (pos == arity) exhausted_level = true;
    }
  }
  result.status = CounterexampleStatus::kExhausted;
  return result;
}

std::string CounterexampleResult::ToString() const {
  std::ostringstream oss;
  switch (status) {
    case CounterexampleStatus::kFound: oss << "FOUND"; break;
    case CounterexampleStatus::kExhausted: oss << "EXHAUSTED"; break;
    case CounterexampleStatus::kLimit: oss << "LIMIT"; break;
  }
  oss << " after " << candidates_checked << " candidates";
  return oss.str();
}

}  // namespace tdlib
