#include "chase/trace.h"

#include <sstream>

namespace tdlib {

std::string FormatChaseStep(const ChaseStep& step, const DependencySet& deps,
                            const Instance& instance) {
  std::ostringstream oss;
  const Dependency& dep = deps.items[step.dependency_index];
  oss << "fire ";
  if (static_cast<std::size_t>(step.dependency_index) < deps.names.size() &&
      !deps.names[step.dependency_index].empty()) {
    oss << deps.names[step.dependency_index];
  } else {
    oss << "dep#" << step.dependency_index;
  }
  oss << " under {";
  bool first = true;
  for (int attr = 0; attr < dep.schema().arity(); ++attr) {
    for (int v = 0; v < dep.body().NumVars(attr); ++v) {
      if (!dep.IsUniversal(attr, v)) continue;
      int value = step.body_match.Get(attr, v);
      if (value < 0) continue;
      if (!first) oss << ", ";
      first = false;
      oss << dep.body().VarName(attr, v) << "->"
          << instance.ValueName(attr, value);
    }
  }
  oss << "} => ";
  if (step.new_tuples.empty()) {
    oss << "(already witnessed)";
  } else {
    for (std::size_t i = 0; i < step.new_tuples.size(); ++i) {
      if (i > 0) oss << ", ";
      oss << "tuple " << step.new_tuples[i];
    }
  }
  return oss.str();
}

std::string FormatChaseTrace(const ChaseResult& result,
                             const DependencySet& deps,
                             const Instance& instance) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    oss << i + 1 << ". " << FormatChaseStep(result.trace[i], deps, instance)
        << "\n";
  }
  return oss.str();
}

}  // namespace tdlib
