#include "chase/core_computation.h"

#include <unordered_set>

#include "logic/tableau.h"
#include "util/hash.h"

namespace tdlib {
namespace {

// Views an instance as a tableau: one variable per domain value, one row per
// tuple. Combined with a valuation pinning the non-null values to
// themselves, homomorphism search over this tableau enumerates exactly the
// constant-fixing endomorphisms.
Tableau AsTableau(const Instance& instance) {
  Tableau t(instance.schema_ptr());
  for (int attr = 0; attr < instance.schema().arity(); ++attr) {
    t.EnsureVariables(attr, instance.DomainSize(attr));
  }
  for (const Tuple& tuple : instance.tuples()) t.AddRow(tuple);
  return t;
}

Valuation PinConstants(const Instance& source, const Tableau& tableau) {
  Valuation v = Valuation::For(tableau);
  for (int attr = 0; attr < source.schema().arity(); ++attr) {
    for (int value = 0; value < source.DomainSize(attr); ++value) {
      if (!source.IsLabeledNull(attr, value)) v.Set(attr, value, value);
    }
  }
  return v;
}

// Builds the sub-instance induced by a tuple-id set, preserving domains.
Instance SubInstance(const Instance& instance,
                     const std::unordered_set<Tuple, VectorHash>& keep) {
  Instance out(instance.schema_ptr());
  for (int attr = 0; attr < instance.schema().arity(); ++attr) {
    for (int value = 0; value < instance.DomainSize(attr); ++value) {
      out.AddValue(attr, instance.ValueName(attr, value),
                   instance.IsLabeledNull(attr, value));
    }
  }
  for (const Tuple& t : instance.tuples()) {
    if (keep.count(t) > 0) out.AddTuple(t);
  }
  return out;
}

}  // namespace

CoreResult ComputeCore(const Instance& instance, const CoreConfig& config) {
  CoreResult result(instance);
  HomSearchOptions options;
  options.max_nodes = config.hom_max_nodes;

  while (config.max_rounds == 0 || result.rounds < config.max_rounds) {
    const Instance& current = result.core;
    Tableau tableau = AsTableau(current);
    HomomorphismSearch search(tableau, current, options);
    search.SetInitial(PinConstants(current, tableau));

    std::unordered_set<Tuple, VectorHash> image;
    bool found_proper = false;
    HomSearchStatus status = search.ForEach([&](const Valuation& h) {
      image.clear();
      for (const Tuple& t : current.tuples()) {
        Tuple mapped(t.size());
        for (int attr = 0; attr < current.schema().arity(); ++attr) {
          mapped[attr] = h.Get(attr, t[attr]);
        }
        image.insert(std::move(mapped));
      }
      if (image.size() < current.NumTuples()) {
        found_proper = true;
        return false;  // retract through this endomorphism
      }
      return true;
    });
    if (status == HomSearchStatus::kBudget) {
      result.hit_budget = true;
      return result;
    }
    if (!found_proper) return result;  // fixpoint: this is the core

    int before = static_cast<int>(result.core.NumTuples());
    result.core = SubInstance(current, image);
    result.tuples_removed += before - static_cast<int>(result.core.NumTuples());
    ++result.rounds;
  }
  result.hit_budget = true;  // round limit
  return result;
}

bool HomomorphicallyEquivalent(const Instance& a, const Instance& b,
                               const HomSearchOptions& options) {
  auto maps = [&](const Instance& from, const Instance& to) {
    Tableau tableau = AsTableau(from);
    HomomorphismSearch search(tableau, to, options);
    search.SetInitial(PinConstants(from, tableau));
    return search.FindAny(nullptr) == HomSearchStatus::kFound;
  };
  return maps(a, b) && maps(b, a);
}

}  // namespace tdlib
