#include "chase/core_computation.h"

#include <algorithm>
#include <vector>

#include "logic/tableau.h"

namespace tdlib {
namespace {

// Views an instance as a tableau: one variable per domain value, one row per
// tuple. Combined with a valuation pinning the non-null values to
// themselves, homomorphism search over this tableau enumerates exactly the
// constant-fixing endomorphisms.
Tableau AsTableau(const Instance& instance) {
  Tableau t(instance.schema_ptr());
  for (int attr = 0; attr < instance.schema().arity(); ++attr) {
    t.EnsureVariables(attr, instance.DomainSize(attr));
  }
  for (std::size_t i = 0; i < instance.NumTuples(); ++i) {
    TupleRef tuple = instance.tuple(static_cast<int>(i));
    Row row(static_cast<std::size_t>(tuple.arity()));
    for (int attr = 0; attr < tuple.arity(); ++attr) row[attr] = tuple[attr];
    t.AddRow(std::move(row));
  }
  return t;
}

Valuation PinConstants(const Instance& source, const Tableau& tableau) {
  Valuation v = Valuation::For(tableau);
  for (int attr = 0; attr < source.schema().arity(); ++attr) {
    for (int value = 0; value < source.DomainSize(attr); ++value) {
      if (!source.IsLabeledNull(attr, value)) v.Set(attr, value, value);
    }
  }
  return v;
}

// Builds the sub-instance induced by a tuple-id keep set, preserving domains.
Instance SubInstance(const Instance& instance, const std::vector<bool>& keep) {
  Instance out(instance.schema_ptr());
  int max_domain = 0;
  for (int attr = 0; attr < instance.schema().arity(); ++attr) {
    max_domain = std::max(max_domain, instance.DomainSize(attr));
  }
  out.Reserve(instance.NumTuples(), static_cast<std::size_t>(max_domain));
  for (int attr = 0; attr < instance.schema().arity(); ++attr) {
    for (int value = 0; value < instance.DomainSize(attr); ++value) {
      out.AddValue(attr, instance.ValueName(attr, value),
                   instance.IsLabeledNull(attr, value));
    }
  }
  for (std::size_t id = 0; id < instance.NumTuples(); ++id) {
    if (keep[id]) out.AddTuple(instance.tuple(static_cast<int>(id)));
  }
  return out;
}

}  // namespace

CoreResult ComputeCore(const Instance& instance, const CoreConfig& config) {
  CoreResult result(instance);
  HomSearchOptions options;
  options.max_nodes = config.hom_max_nodes;

  while (config.max_rounds == 0 || result.rounds < config.max_rounds) {
    const Instance& current = result.core;
    Tableau tableau = AsTableau(current);
    HomomorphismSearch search(tableau, current, options);
    search.SetInitial(PinConstants(current, tableau));

    // The endomorphism image as tuple ids: every mapped tuple is a tuple of
    // `current` (h maps rows of current into current), so FindTuple >= 0.
    std::vector<bool> in_image;
    bool found_proper = false;
    Tuple mapped(current.schema().arity());
    HomSearchStatus status = search.ForEach([&](const Valuation& h) {
      in_image.assign(current.NumTuples(), false);
      std::size_t image_size = 0;
      for (std::size_t i = 0; i < current.NumTuples(); ++i) {
        TupleRef t = current.tuple(static_cast<int>(i));
        for (int attr = 0; attr < current.schema().arity(); ++attr) {
          mapped[attr] = h.Get(attr, t[attr]);
        }
        int id = current.FindTuple(mapped);
        if (id >= 0 && !in_image[id]) {
          in_image[id] = true;
          ++image_size;
        }
      }
      if (image_size < current.NumTuples()) {
        found_proper = true;
        return false;  // retract through this endomorphism
      }
      return true;
    });
    if (status == HomSearchStatus::kBudget) {
      result.hit_budget = true;
      return result;
    }
    if (!found_proper) return result;  // fixpoint: this is the core

    int before = static_cast<int>(result.core.NumTuples());
    result.core = SubInstance(current, in_image);
    result.tuples_removed += before - static_cast<int>(result.core.NumTuples());
    ++result.rounds;
  }
  result.hit_budget = true;  // round limit
  return result;
}

bool HomomorphicallyEquivalent(const Instance& a, const Instance& b,
                               const HomSearchOptions& options) {
  auto maps = [&](const Instance& from, const Instance& to) {
    Tableau tableau = AsTableau(from);
    HomomorphismSearch search(tableau, to, options);
    search.SetInitial(PinConstants(from, tableau));
    return search.FindAny(nullptr) == HomSearchStatus::kFound;
  };
  return maps(a, b) && maps(b, a);
}

}  // namespace tdlib
