#include "chase/equivalence.h"

namespace tdlib {

ThreeValued FromImplication(Implication verdict) {
  switch (verdict) {
    case Implication::kImplied: return ThreeValued::kYes;
    case Implication::kNotImplied: return ThreeValued::kNo;
    case Implication::kUnknown: return ThreeValued::kUnknown;
  }
  return ThreeValued::kUnknown;
}

int FirstUnimplied(const DependencySet& d, const DependencySet& e,
                   const ChaseConfig& config) {
  bool unknown = false;
  for (std::size_t i = 0; i < e.items.size(); ++i) {
    ImplicationResult r = ChaseImplies(d, e.items[i], config);
    if (r.verdict == Implication::kNotImplied) return static_cast<int>(i);
    if (r.verdict == Implication::kUnknown) unknown = true;
  }
  return unknown ? -2 : -1;
}

ThreeValued ImpliesAll(const DependencySet& d, const DependencySet& e,
                       const ChaseConfig& config) {
  int first = FirstUnimplied(d, e, config);
  if (first >= 0) return ThreeValued::kNo;
  return first == -1 ? ThreeValued::kYes : ThreeValued::kUnknown;
}

ThreeValued SetsEquivalent(const DependencySet& d, const DependencySet& e,
                           const ChaseConfig& config) {
  ThreeValued forward = ImpliesAll(d, e, config);
  if (forward == ThreeValued::kNo) return ThreeValued::kNo;
  ThreeValued backward = ImpliesAll(e, d, config);
  if (backward == ThreeValued::kNo) return ThreeValued::kNo;
  if (forward == ThreeValued::kYes && backward == ThreeValued::kYes) {
    return ThreeValued::kYes;
  }
  return ThreeValued::kUnknown;
}

namespace {

DependencySet WithoutMember(const DependencySet& d, int index) {
  DependencySet rest;
  for (std::size_t i = 0; i < d.items.size(); ++i) {
    if (static_cast<int>(i) == index) continue;
    rest.Add(d.items[i], i < d.names.size() ? d.names[i] : "");
  }
  return rest;
}

}  // namespace

ThreeValued MemberRedundant(const DependencySet& d, int index,
                            const ChaseConfig& config) {
  DependencySet rest = WithoutMember(d, index);
  return FromImplication(ChaseImplies(rest, d.items[index], config).verdict);
}

ThreeValued SetRedundant(const DependencySet& d, const ChaseConfig& config) {
  bool unknown = false;
  for (std::size_t i = 0; i < d.items.size(); ++i) {
    ThreeValued r = MemberRedundant(d, static_cast<int>(i), config);
    if (r == ThreeValued::kYes) return ThreeValued::kYes;
    if (r == ThreeValued::kUnknown) unknown = true;
  }
  return unknown ? ThreeValued::kUnknown : ThreeValued::kNo;
}

MinimizationResult MinimizeSet(const DependencySet& d,
                               const ChaseConfig& config) {
  MinimizationResult result;
  result.minimized = d;
  // Scan left to right against the *current* (shrinking) set so that the
  // result never removes two members that only imply each other.
  int i = 0;
  while (i < static_cast<int>(result.minimized.items.size())) {
    ThreeValued r = MemberRedundant(result.minimized, i, config);
    if (r == ThreeValued::kYes) {
      // Recover the original index for reporting: count survivors.
      int removed_count = static_cast<int>(result.removed.size());
      // Original index = current index + number of removals at or before it.
      // Track by name-independent arithmetic: removals so far that had
      // original index <= current original position shift it.
      int original = i;
      for (int r_idx : result.removed) {
        if (r_idx <= original) ++original;
      }
      (void)removed_count;
      result.removed.push_back(original);
      result.minimized = WithoutMember(result.minimized, i);
      // Do not advance: the next member slid into slot i.
    } else {
      if (r == ThreeValued::kUnknown) result.hit_budget = true;
      ++i;
    }
  }
  return result;
}

}  // namespace tdlib
