#include "chase/full_td.h"

#include <cassert>

#include "chase/implication.h"

namespace tdlib {

bool AllFull(const DependencySet& d, const Dependency& d0) {
  if (!d0.IsFull()) return false;
  for (const Dependency& dep : d.items) {
    if (!dep.IsFull()) return false;
  }
  return true;
}

std::uint64_t FullChaseTupleBound(const Dependency& d0) {
  std::uint64_t bound = 1;
  for (int attr = 0; attr < d0.schema().arity(); ++attr) {
    std::uint64_t vars = static_cast<std::uint64_t>(d0.body().NumVars(attr));
    if (vars == 0) vars = 1;
    // Saturate rather than overflow on wide schemas.
    if (bound > (1ULL << 62) / (vars + 1)) return ~0ULL;
    bound *= vars;
  }
  return bound;
}

bool DecideFullTdImplication(const DependencySet& d, const Dependency& d0,
                             std::string* error, ChaseResult* stats) {
  if (!AllFull(d, d0)) {
    if (error != nullptr) {
      *error = "DecideFullTdImplication requires full dependencies";
    }
    return false;
  }
  if (error != nullptr) error->clear();
  // Full chase terminates on its own; disable step/tuple limits.
  ChaseConfig config;
  config.max_steps = 0;
  config.max_tuples = 0;
  config.deadline_seconds = 0;
  ImplicationResult result = ChaseImplies(d, d0, config);
  if (stats != nullptr) *stats = result.chase;
  assert(result.verdict != Implication::kUnknown);
  return result.verdict == Implication::kImplied;
}

}  // namespace tdlib
