#include "chase/chase.h"

#include <sstream>

#include "util/timer.h"

namespace tdlib {
namespace {

// Returns true if `h` (a body match for dep) extends to dep's head in
// `instance`; accumulates search nodes into *nodes.
bool HeadWitnessed(const Dependency& dep, const Instance& instance,
                   const Valuation& h, const HomSearchOptions& options,
                   std::uint64_t* nodes, bool* budget_hit) {
  HomomorphismSearch head_search(dep.head(), instance, options);
  Valuation initial = Valuation::For(dep.head());
  for (int attr = 0; attr < dep.schema().arity(); ++attr) {
    for (int v = 0; v < dep.head().NumVars(attr); ++v) {
      if (dep.IsUniversal(attr, v)) initial.Set(attr, v, h.Get(attr, v));
    }
  }
  head_search.SetInitial(initial);
  HomSearchStatus status = head_search.FindAny(nullptr);
  *nodes += head_search.nodes_explored();
  if (status == HomSearchStatus::kBudget) *budget_hit = true;
  return status == HomSearchStatus::kFound;
}

// Inserts dep's head rows under `h`, inventing labeled nulls for existential
// variables. Returns ids of newly inserted tuples.
std::vector<int> FireStep(const Dependency& dep, Instance* instance,
                          const Valuation& h) {
  // One fresh null per distinct existential variable that appears in the
  // head (shared across head rows, as EID semantics requires).
  Valuation extended = h;
  for (const Row& row : dep.head().rows()) {
    for (int attr = 0; attr < dep.schema().arity(); ++attr) {
      int var = row[attr];
      if (!extended.Bound(attr, var)) {
        int fresh = instance->AddValue(attr, "", /*labeled_null=*/true);
        extended.Set(attr, var, fresh);
      }
    }
  }
  std::vector<int> new_ids;
  for (const Row& row : dep.head().rows()) {
    Tuple t(dep.schema().arity());
    for (int attr = 0; attr < dep.schema().arity(); ++attr) {
      t[attr] = extended.Get(attr, row[attr]);
    }
    std::size_t before = instance->NumTuples();
    if (instance->AddTuple(t)) {
      new_ids.push_back(static_cast<int>(before));
    }
  }
  return new_ids;
}

}  // namespace

bool HasApplicableStep(const Dependency& dep, const Instance& instance,
                       const HomSearchOptions& options) {
  bool applicable = false;
  bool budget_hit = false;
  std::uint64_t nodes = 0;
  HomomorphismSearch body_search(dep.body(), instance, options);
  body_search.ForEach([&](const Valuation& h) {
    if (!HeadWitnessed(dep, instance, h, options, &nodes, &budget_hit)) {
      applicable = true;
      return false;
    }
    return true;
  });
  return applicable;
}

ChaseResult RunChase(Instance* instance, const DependencySet& deps,
                     const ChaseConfig& config, const ChaseGoal& goal) {
  ChaseResult result;
  Deadline deadline(config.deadline_seconds);
  HomSearchOptions hom_options = config.HomOptions();
  bool budget_hit = false;

  if (goal && goal(*instance)) {
    result.status = ChaseStatus::kGoal;
    return result;
  }

  // One pass over a pumped instance can enumerate an enormous stream of
  // body matches (each with a head-witness sub-search), so waiting for the
  // end of a dependency's enumeration to look at the clock lets a deadline
  // overshoot by seconds. Check it inside the match stream too, amortized
  // over kDeadlineCheckInterval matches to keep clock reads off the
  // per-match fast path.
  constexpr std::uint64_t kDeadlineCheckInterval = 256;
  std::uint64_t matches_seen = 0;
  bool timed_out = false;

  while (true) {
    ++result.passes;
    // Collect applicable steps against the pass-start instance. The
    // valuations stay valid as tuples are only ever added.
    std::vector<std::pair<int, Valuation>> pending;
    for (std::size_t di = 0; di < deps.items.size(); ++di) {
      const Dependency& dep = deps.items[di];
      HomomorphismSearch body_search(dep.body(), *instance, hom_options);
      HomSearchStatus status = body_search.ForEach([&](const Valuation& h) {
        if (!HeadWitnessed(dep, *instance, h, hom_options, &result.hom_nodes,
                           &budget_hit)) {
          pending.emplace_back(static_cast<int>(di), h);
        }
        if (budget_hit) return false;
        if (++matches_seen % kDeadlineCheckInterval == 0 &&
            deadline.Expired()) {
          timed_out = true;
          return false;
        }
        return true;
      });
      result.hom_nodes += body_search.nodes_explored();
      if (status == HomSearchStatus::kBudget) budget_hit = true;
      if (budget_hit) {
        result.status = ChaseStatus::kHomBudget;
        return result;
      }
      if (timed_out || deadline.Expired()) {
        result.status = ChaseStatus::kTimeout;
        return result;
      }
    }

    if (pending.empty()) {
      result.status = ChaseStatus::kFixpoint;
      return result;
    }

    for (auto& [di, h] : pending) {
      const Dependency& dep = deps.items[di];
      // An earlier fire in this pass may have witnessed this head already.
      if (HeadWitnessed(dep, *instance, h, hom_options, &result.hom_nodes,
                        &budget_hit)) {
        continue;
      }
      if (budget_hit) {
        result.status = ChaseStatus::kHomBudget;
        return result;
      }
      std::vector<int> new_ids = FireStep(dep, instance, h);
      ++result.steps;
      if (config.record_trace) {
        result.trace.push_back(ChaseStep{di, h, std::move(new_ids)});
      }
      if (config.eager_goal_check && goal && goal(*instance)) {
        result.status = ChaseStatus::kGoal;
        return result;
      }
      if (config.max_steps > 0 && result.steps >= config.max_steps) {
        result.status = ChaseStatus::kStepLimit;
        return result;
      }
      if (config.max_tuples > 0 && instance->NumTuples() >= config.max_tuples) {
        result.status = ChaseStatus::kTupleLimit;
        return result;
      }
      if (deadline.Expired()) {
        result.status = ChaseStatus::kTimeout;
        return result;
      }
    }

    if (!config.eager_goal_check && goal && goal(*instance)) {
      result.status = ChaseStatus::kGoal;
      return result;
    }
  }
}

std::string_view ChaseStatusName(ChaseStatus status) {
  switch (status) {
    case ChaseStatus::kFixpoint: return "fixpoint";
    case ChaseStatus::kGoal: return "goal";
    case ChaseStatus::kStepLimit: return "step-limit";
    case ChaseStatus::kTupleLimit: return "tuple-limit";
    case ChaseStatus::kTimeout: return "timeout";
    case ChaseStatus::kHomBudget: return "hom-budget";
  }
  return "?";
}

std::string ChaseResult::ToString() const {
  std::ostringstream oss;
  oss << "chase: " << ChaseStatusName(status) << " after " << steps
      << " steps in " << passes << " passes (" << hom_nodes << " hom nodes)";
  return oss.str();
}

}  // namespace tdlib
