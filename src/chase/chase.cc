#include "chase/chase.h"

#include <algorithm>
#include <sstream>

#include "core/satisfaction.h"
#include "util/timer.h"

namespace tdlib {
namespace {

// Returns true if `h` (a body match for dep) extends to dep's head in
// `instance`; accumulates search nodes into *nodes. Head-witness searches
// always run against the full instance — the delta restriction applies only
// to body enumeration.
bool HeadWitnessed(const Dependency& dep, const Instance& instance,
                   const Valuation& h, const HomSearchOptions& options,
                   std::uint64_t* nodes, bool* budget_hit) {
  HomomorphismSearch head_search(dep.head(), instance, options);
  head_search.SetInitial(HeadSeedValuation(dep, h));
  HomSearchStatus status = head_search.FindAny(nullptr);
  *nodes += head_search.nodes_explored();
  if (status == HomSearchStatus::kBudget) *budget_hit = true;
  return status == HomSearchStatus::kFound;
}

// Inserts dep's head rows under `h`, inventing labeled nulls for existential
// variables. Returns ids of newly inserted tuples.
std::vector<int> FireStep(const Dependency& dep, Instance* instance,
                          const Valuation& h) {
  // One fresh null per distinct existential variable that appears in the
  // head (shared across head rows, as EID semantics requires).
  Valuation extended = h;
  for (const Row& row : dep.head().rows()) {
    for (int attr = 0; attr < dep.schema().arity(); ++attr) {
      int var = row[attr];
      if (!extended.Bound(attr, var)) {
        int fresh = instance->AddValue(attr, "", /*labeled_null=*/true);
        extended.Set(attr, var, fresh);
      }
    }
  }
  std::vector<int> new_ids;
  for (const Row& row : dep.head().rows()) {
    Tuple t(dep.schema().arity());
    for (int attr = 0; attr < dep.schema().arity(); ++attr) {
      t[attr] = extended.Get(attr, row[attr]);
    }
    std::size_t before = instance->NumTuples();
    if (instance->AddTuple(t)) {
      new_ids.push_back(static_cast<int>(before));
    }
  }
  return new_ids;
}

// One collected applicable step. `row_ids` is the body image — the tuple id
// each body row maps to under `match`, in tableau row order. It is the
// canonical sort key that makes the fire order independent of how matches
// were enumerated (full scan or semi-naive partition), which is what keeps
// naive and delta runs byte-identical.
struct PendingStep {
  int dep_index;
  Valuation match;
  std::vector<int> row_ids;
};

}  // namespace

bool HasApplicableStep(const Dependency& dep, const Instance& instance,
                       const HomSearchOptions& options) {
  bool applicable = false;
  bool budget_hit = false;
  std::uint64_t nodes = 0;
  HomomorphismSearch body_search(dep.body(), instance, options);
  body_search.ForEach([&](const Valuation& h) {
    if (!HeadWitnessed(dep, instance, h, options, &nodes, &budget_hit)) {
      applicable = true;
      return false;
    }
    return true;
  });
  return applicable;
}

ChaseResult RunChase(Instance* instance, const DependencySet& deps,
                     const ChaseConfig& config, const ChaseGoal& goal) {
  ChaseResult result;
  Deadline deadline(config.deadline_seconds);
  HomSearchOptions hom_options = config.HomOptions();
  // Every search below — body enumeration and head sub-searches alike —
  // shares the run's deadline, so even one huge homomorphism search is cut
  // off close to the wall-clock budget.
  hom_options.deadline = &deadline;
  bool budget_hit = false;

  // When the deadline and the node budget trip together, the wall clock is
  // the binding constraint; report it.
  auto limit_status = [&] {
    return deadline.Expired() ? ChaseStatus::kTimeout : ChaseStatus::kHomBudget;
  };

  if (goal && goal(*instance)) {
    result.status = ChaseStatus::kGoal;
    return result;
  }

  // One pass over a pumped instance can enumerate an enormous stream of
  // body matches (each with a head-witness sub-search), so waiting for the
  // end of a dependency's enumeration to look at the clock lets a deadline
  // overshoot by seconds. Check it inside the match stream too, amortized
  // over kDeadlineCheckInterval matches to keep clock reads off the
  // per-match fast path.
  constexpr std::uint64_t kDeadlineCheckInterval = 256;
  std::uint64_t matches_seen = 0;
  bool timed_out = false;

  // Tuples with id >= delta_begin are "new" since the previous matching
  // phase. 0 on the first pass, so pass 1 matches the whole seed instance
  // in either mode.
  std::size_t delta_begin = 0;

  // Steps collected but not fired under max_fires_per_pass (delta mode
  // only; the naive full re-match re-discovers them instead). Every entry
  // touches a tuple that is old by now, so the delta enumeration below
  // would never see it again.
  std::vector<PendingStep> carried;

  while (true) {
    ++result.passes;
    std::size_t pass_start = instance->NumTuples();
    // Collect applicable steps against the pass-start instance. The
    // valuations stay valid as tuples are only ever added.
    std::vector<PendingStep> pending;
    // Re-filter the carry-overs first: a fire since they were collected may
    // have witnessed them (the naive scan drops those the same way).
    for (PendingStep& step : carried) {
      const Dependency& dep = deps.items[step.dep_index];
      if (!HeadWitnessed(dep, *instance, step.match, hom_options,
                         &result.hom_nodes, &budget_hit)) {
        pending.push_back(std::move(step));
      }
      if (budget_hit) {
        result.status = limit_status();
        return result;
      }
      if (++matches_seen % kDeadlineCheckInterval == 0 && deadline.Expired()) {
        result.status = ChaseStatus::kTimeout;
        return result;
      }
    }
    carried.clear();
    for (std::size_t di = 0; di < deps.items.size(); ++di) {
      const Dependency& dep = deps.items[di];
      // `search` is the enumeration currently driving the callback; its
      // row_tuples() is the match's body image, already computed by the
      // backtracker — no per-row FindTuple on the hot path.
      HomomorphismSearch* search = nullptr;
      auto collect = [&](const Valuation& h) {
        if (!HeadWitnessed(dep, *instance, h, hom_options, &result.hom_nodes,
                           &budget_hit)) {
          pending.push_back(
              PendingStep{static_cast<int>(di), h, search->row_tuples()});
        }
        if (budget_hit) return false;
        if (++matches_seen % kDeadlineCheckInterval == 0 &&
            deadline.Expired()) {
          timed_out = true;
          return false;
        }
        return true;
      };
      const std::size_t num_tuples = instance->NumTuples();
      const bool nothing_new = config.use_delta && delta_begin >= num_tuples;
      // The partition pays one restricted search per body row; when the
      // delta is most of the instance (a pumping pass), those members cost
      // more together than the full scan they replace. Use the partition
      // only while the delta is the minority — the canonical fire order
      // keeps results identical whichever matcher ran.
      const bool partition = config.use_delta && !nothing_new &&
                             delta_begin > 0 &&
                             (num_tuples - delta_begin) * 2 <= num_tuples;
      if (nothing_new) {
        // Every match was enumerated in an earlier pass and is witnessed.
      } else if (!partition) {
        HomSearchOptions body_options = hom_options;
        if (config.use_delta && delta_begin > 0) {
          // Majority delta: one pruned scan ("any row hits the delta") —
          // never more nodes than naive, and the all-old matches' head
          // checks are still skipped.
          body_options.delta_begin = static_cast<int>(delta_begin);
          body_options.delta_seed_row = -1;
        }
        HomomorphismSearch body_search(dep.body(), *instance, body_options);
        search = &body_search;
        if (body_search.ForEach(collect) == HomSearchStatus::kBudget) {
          budget_hit = true;
        }
        result.hom_nodes += body_search.nodes_explored();
      } else {
        // Union of the semi-naive partition: seed row s in the delta, rows
        // before s in the old region, rows after s unrestricted. Every
        // delta-touching match is enumerated exactly once; all-old matches
        // — already enumerated (and fired or witnessed) in the pass that
        // saw their newest tuple — are skipped entirely.
        for (int s = 0; s < dep.body().num_rows(); ++s) {
          HomSearchOptions body_options = hom_options;
          body_options.delta_begin = static_cast<int>(delta_begin);
          body_options.delta_seed_row = s;
          HomomorphismSearch body_search(dep.body(), *instance, body_options);
          search = &body_search;
          if (body_search.ForEach(collect) == HomSearchStatus::kBudget) {
            budget_hit = true;
          }
          result.hom_nodes += body_search.nodes_explored();
          if (budget_hit || timed_out) break;
        }
      }
      if (timed_out) {
        result.status = ChaseStatus::kTimeout;
        return result;
      }
      if (budget_hit) {
        result.status = limit_status();
        return result;
      }
      if (deadline.Expired()) {
        result.status = ChaseStatus::kTimeout;
        return result;
      }
    }
    // Every dependency has now been matched against the first `pass_start`
    // tuples; the next pass only needs to see what the fires below add.
    delta_begin = pass_start;

    if (pending.empty()) {
      result.status = ChaseStatus::kFixpoint;
      return result;
    }

    // Fire in canonical (dependency, body image) order. Decoupling the fire
    // order from enumeration order is what makes the result — including the
    // ids of invented nulls — a function of the *set* of applicable steps,
    // identical across matching strategies.
    std::sort(pending.begin(), pending.end(),
              [](const PendingStep& a, const PendingStep& b) {
                if (a.dep_index != b.dep_index) {
                  return a.dep_index < b.dep_index;
                }
                return a.row_ids < b.row_ids;
              });

    std::uint64_t fired_this_pass = 0;
    for (std::size_t pi = 0; pi < pending.size(); ++pi) {
      if (config.max_fires_per_pass > 0 &&
          fired_this_pass >= config.max_fires_per_pass) {
        // Burst cap: the rest of the pending set waits for the next pass.
        // The naive full re-match will re-discover it; the delta matcher
        // would not (every entry is old by then), so stash it.
        if (config.use_delta) {
          carried.assign(std::make_move_iterator(pending.begin() + pi),
                         std::make_move_iterator(pending.end()));
        }
        break;
      }
      PendingStep& step = pending[pi];
      const Dependency& dep = deps.items[step.dep_index];
      // An earlier fire in this pass may have witnessed this head already.
      if (HeadWitnessed(dep, *instance, step.match, hom_options,
                        &result.hom_nodes, &budget_hit)) {
        continue;
      }
      if (budget_hit) {
        result.status = limit_status();
        return result;
      }
      std::vector<int> new_ids = FireStep(dep, instance, step.match);
      ++result.steps;
      ++fired_this_pass;
      if (config.record_trace) {
        result.trace.push_back(
            ChaseStep{step.dep_index, step.match, std::move(new_ids)});
      }
      if (config.eager_goal_check && goal && goal(*instance)) {
        result.status = ChaseStatus::kGoal;
        return result;
      }
      if (config.max_steps > 0 && result.steps >= config.max_steps) {
        result.status = ChaseStatus::kStepLimit;
        return result;
      }
      if (config.max_tuples > 0 && instance->NumTuples() >= config.max_tuples) {
        result.status = ChaseStatus::kTupleLimit;
        return result;
      }
      if (deadline.Expired()) {
        result.status = ChaseStatus::kTimeout;
        return result;
      }
    }

    if (!config.eager_goal_check && goal && goal(*instance)) {
      result.status = ChaseStatus::kGoal;
      return result;
    }
  }
}

std::string_view ChaseStatusName(ChaseStatus status) {
  switch (status) {
    case ChaseStatus::kFixpoint: return "fixpoint";
    case ChaseStatus::kGoal: return "goal";
    case ChaseStatus::kStepLimit: return "step-limit";
    case ChaseStatus::kTupleLimit: return "tuple-limit";
    case ChaseStatus::kTimeout: return "timeout";
    case ChaseStatus::kHomBudget: return "hom-budget";
  }
  return "?";
}

std::string ChaseResult::ToString() const {
  std::ostringstream oss;
  oss << "chase: " << ChaseStatusName(status) << " after " << steps
      << " steps in " << passes << " passes (" << hom_nodes << " hom nodes)";
  return oss.str();
}

}  // namespace tdlib
