#include "chase/chase.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <utility>

#include "core/satisfaction.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace tdlib {
namespace {

// Match tasks run ahead of queued job-level work when the pool is shared
// with engine/BatchSolver: a pass cannot finish until its slowest member
// search does, so letting members jump the queue shortens the pass's
// critical path without adding threads.
constexpr int kMatchTaskPriority = 1 << 20;

// One pass over a pumped instance can enumerate an enormous stream of body
// matches (each with a head-witness sub-search), so waiting for the end of
// a search to look at the clock lets a deadline overshoot by seconds. The
// check runs inside the match stream too, amortized over this many matches
// to keep clock reads off the per-match fast path.
constexpr std::uint64_t kDeadlineCheckInterval = 256;

// Returns true if `h` (a body match for dep) extends to dep's head in
// `instance`; merges the head search's counters into *stats. Head-witness
// searches always run against the full instance — the delta restriction
// applies only to body enumeration. Thread-compatible: HeadSeedValuation
// builds a fresh valuation per call (core/satisfaction.cc), so concurrent
// match tasks seed head searches without any shared scratch.
bool HeadWitnessed(const Dependency& dep, const Instance& instance,
                   const Valuation& h, const HomSearchOptions& options,
                   HomSearchStats* stats) {
  HomomorphismSearch head_search(dep.head(), instance, options);
  head_search.SetInitial(HeadSeedValuation(dep, h));
  HomSearchStatus status = head_search.FindAny(nullptr);
  stats->MergeFrom(head_search.stats());
  return status == HomSearchStatus::kFound;
}

// Inserts dep's head rows under `h`, inventing labeled nulls for existential
// variables. Returns ids of newly inserted tuples.
std::vector<int> FireStep(const Dependency& dep, Instance* instance,
                          const Valuation& h) {
  // One fresh null per distinct existential variable that appears in the
  // head (shared across head rows, as EID semantics requires).
  Valuation extended = h;
  for (const Row& row : dep.head().rows()) {
    for (int attr = 0; attr < dep.schema().arity(); ++attr) {
      int var = row[attr];
      if (!extended.Bound(attr, var)) {
        int fresh = instance->AddValue(attr, "", /*labeled_null=*/true);
        extended.Set(attr, var, fresh);
      }
    }
  }
  std::vector<int> new_ids;
  for (const Row& row : dep.head().rows()) {
    Tuple t(dep.schema().arity());
    for (int attr = 0; attr < dep.schema().arity(); ++attr) {
      t[attr] = extended.Get(attr, row[attr]);
    }
    std::size_t before = instance->NumTuples();
    if (instance->AddTuple(t)) {
      new_ids.push_back(static_cast<int>(before));
    }
  }
  return new_ids;
}

// One collected applicable step. `row_ids` is the body image — the tuple id
// each body row maps to under `match`, in tableau row order. It is the
// canonical sort key that makes the fire order independent of how matches
// were enumerated (full scan, semi-naive partition, any interleaving of
// concurrent tasks), which is what keeps naive/delta and serial/pooled runs
// byte-identical.
struct PendingStep {
  int dep_index;
  Valuation match;
  std::vector<int> row_ids;
};

// One unit of a pass's matching phase: the re-check of one carried step, or
// one body search (a full/any-row scan, or one member (dependency,
// seed row) of the semi-naive partition). Tasks are enumerated in a fixed
// order, only read the instance, and write nothing but their own
// MatchOutput slot — which is exactly what lets them run on pool workers.
struct MatchTask {
  enum class Kind { kCarried, kSearch };
  Kind kind;
  int dep_index = -1;             // kSearch
  std::size_t carried_index = 0;  // kCarried
  // Body-search delta window, pre-resolved at task-list build time:
  // delta_begin < 0 = unrestricted scan, seed_row < 0 = any-row scan,
  // otherwise one partition member.
  int delta_begin = -1;
  int delta_seed_row = -1;
};

// Per-task buffer: the steps this task found applicable plus its search
// counters. Stats are summed across tasks after the join — HomSearchStats
// is search-local, never shared between live searches.
struct MatchOutput {
  std::vector<PendingStep> pending;
  HomSearchStats stats;
};

// Executes one match task against the read-only `instance`. `base_options`
// carries the run's node budget, deadline and (in pooled mode) the shared
// cancel flag. Carried steps are moved out of *carried when still unfired
// and unwitnessed; distinct tasks touch distinct carried slots.
void RunMatchTask(const MatchTask& task, const DependencySet& deps,
                  const Instance& instance,
                  const HomSearchOptions& base_options,
                  std::vector<PendingStep>* carried, MatchOutput* out) {
  if (task.kind == MatchTask::Kind::kCarried) {
    // A fire since this step was collected may have witnessed it (the naive
    // full scan drops those the same way).
    PendingStep& step = (*carried)[task.carried_index];
    const Dependency& dep = deps.items[step.dep_index];
    if (!HeadWitnessed(dep, instance, step.match, base_options, &out->stats)) {
      out->pending.push_back(std::move(step));
    }
    // One clock read per re-check, unamortized: unlike a body-match stream,
    // every re-check constructs and runs a head search, which dwarfs the
    // read. Without this, a bounded-burst pass with a huge carried backlog
    // of sub-512-node head searches (too small for Backtrack's own cadence)
    // would overshoot the deadline by the entire backlog.
    if (!out->stats.budget_hit && base_options.deadline != nullptr &&
        base_options.deadline->Expired()) {
      out->stats.budget_hit = true;
      out->stats.deadline_hit = true;
    }
    return;
  }

  const Dependency& dep = deps.items[task.dep_index];
  HomSearchOptions body_options = base_options;
  body_options.delta_begin = task.delta_begin;
  body_options.delta_seed_row = task.delta_seed_row;
  HomomorphismSearch body_search(dep.body(), instance, body_options);
  // body_search.row_tuples() is the match's body image, already computed by
  // the backtracker — no per-row FindTuple on the hot path.
  std::uint64_t matches_seen = 0;
  auto collect = [&](const Valuation& h) {
    if (!HeadWitnessed(dep, instance, h, base_options, &out->stats)) {
      out->pending.push_back(
          PendingStep{task.dep_index, h, body_search.row_tuples()});
    }
    if (out->stats.budget_hit) return false;
    if (++matches_seen % kDeadlineCheckInterval == 0 &&
        base_options.deadline != nullptr && base_options.deadline->Expired()) {
      out->stats.budget_hit = true;
      out->stats.deadline_hit = true;
      return false;
    }
    // A sibling's budget trip must stop this task even when its searches
    // are all smaller than Backtrack's own cancel cadence (512 nodes); one
    // relaxed load per match is noise next to the head search above.
    if (base_options.cancel != nullptr &&
        base_options.cancel->load(std::memory_order_relaxed)) {
      out->stats.budget_hit = true;
      return false;
    }
    return true;
  };
  body_search.ForEach(collect);
  out->stats.MergeFrom(body_search.stats());
  // End-of-task deadline read, mirroring the kCarried branch: a pass of
  // many small member searches — each under Backtrack's 512-node and the
  // stream's 256-match cadences — must still observe the wall clock at
  // least once per task, or a serial matching phase could overshoot a
  // clamped milliseconds-scale deadline by the whole task list.
  if (!out->stats.budget_hit && base_options.deadline != nullptr &&
      base_options.deadline->Expired()) {
    out->stats.budget_hit = true;
    out->stats.deadline_hit = true;
  }
}

// Builds the pass's task list in the canonical task order: carried
// re-checks first (in carry order), then per-dependency body searches (in
// dependency order, partition members in seed-row order). The list is a
// pure function of (config, delta_begin, carried size, instance size), so
// serial and pooled runs execute the same searches.
std::vector<MatchTask> BuildMatchTasks(const DependencySet& deps,
                                       const ChaseConfig& config,
                                       std::size_t delta_begin,
                                       std::size_t num_tuples,
                                       std::size_t num_carried) {
  std::vector<MatchTask> tasks;
  for (std::size_t ci = 0; ci < num_carried; ++ci) {
    MatchTask t;
    t.kind = MatchTask::Kind::kCarried;
    t.carried_index = ci;
    tasks.push_back(t);
  }
  const bool nothing_new = config.use_delta && delta_begin >= num_tuples;
  if (nothing_new) {
    // Every match was enumerated in an earlier pass and is witnessed.
    return tasks;
  }
  // The partition pays one restricted search per body row; when the delta
  // is most of the instance (a pumping pass), those members cost more
  // together than the full scan they replace. Use the partition only while
  // the delta is the minority — the canonical fire order keeps results
  // identical whichever matcher ran.
  const bool partition = config.use_delta && delta_begin > 0 &&
                         (num_tuples - delta_begin) * 2 <= num_tuples;
  for (std::size_t di = 0; di < deps.items.size(); ++di) {
    MatchTask t;
    t.kind = MatchTask::Kind::kSearch;
    t.dep_index = static_cast<int>(di);
    if (partition) {
      // Union of the semi-naive partition: seed row s in the delta, rows
      // before s in the old region, rows after s unrestricted. Every
      // delta-touching match is enumerated exactly once; all-old matches —
      // already enumerated (and fired or witnessed) in the pass that saw
      // their newest tuple — are skipped entirely.
      t.delta_begin = static_cast<int>(delta_begin);
      for (int s = 0; s < deps.items[di].body().num_rows(); ++s) {
        t.delta_seed_row = s;
        tasks.push_back(t);
      }
    } else if (config.use_delta && delta_begin > 0) {
      // Majority delta: one pruned scan ("any row hits the delta") — never
      // more nodes than naive, and the all-old matches' head checks are
      // still skipped.
      t.delta_begin = static_cast<int>(delta_begin);
      t.delta_seed_row = -1;
      tasks.push_back(t);
    } else {
      // Naive mode or the first pass: one unrestricted scan.
      tasks.push_back(t);
    }
  }
  return tasks;
}

}  // namespace

bool HasApplicableStep(const Dependency& dep, const Instance& instance,
                       const HomSearchOptions& options) {
  bool applicable = false;
  HomSearchStats stats;
  HomomorphismSearch body_search(dep.body(), instance, options);
  body_search.ForEach([&](const Valuation& h) {
    if (!HeadWitnessed(dep, instance, h, options, &stats)) {
      applicable = true;
      return false;
    }
    return true;
  });
  return applicable;
}

ChaseResult RunChase(Instance* instance, const DependencySet& deps,
                     const ChaseConfig& config, const ChaseGoal& goal) {
  ChaseResult result;
  Deadline deadline(config.deadline_seconds);
  HomSearchOptions hom_options = config.HomOptions();
  // Every search below — body enumeration and head sub-searches alike —
  // shares the run's deadline, so even one huge homomorphism search is cut
  // off close to the wall-clock budget.
  hom_options.deadline = &deadline;

  // When the deadline and the node budget trip together, the wall clock is
  // the binding constraint; report it.
  auto limit_status = [&] {
    return deadline.Expired() ? ChaseStatus::kTimeout : ChaseStatus::kHomBudget;
  };

  if (goal && goal(*instance)) {
    result.status = ChaseStatus::kGoal;
    return result;
  }

  // Tuples with id >= delta_begin are "new" since the previous matching
  // phase. 0 on the first pass, so pass 1 matches the whole seed instance
  // in either mode.
  std::size_t delta_begin = 0;

  // Steps collected but not fired under max_fires_per_pass (delta mode
  // only; the naive full re-match re-discovers them instead). Every entry
  // touches a tuple that is old by now, so the delta enumeration below
  // would never see it again.
  std::vector<PendingStep> carried;

  while (true) {
    ++result.passes;
    std::size_t pass_start = instance->NumTuples();

    // ---- Matching phase: read-only over the pass-start instance ----------
    //
    // The task list, and hence the set of searches, is identical in serial
    // and pooled mode; only where each search runs differs. The collected
    // valuations stay valid as tuples are only ever added.
    std::vector<MatchTask> tasks =
        BuildMatchTasks(deps, config, delta_begin, pass_start, carried.size());
    std::vector<MatchOutput> outputs(tasks.size());
    result.match_tasks += tasks.size();

    if (config.pool != nullptr && tasks.size() > 1) {
      // Fan out. Tasks write only their own output slot; a budget/deadline
      // trip in any task raises the shared cancel flag so sibling searches
      // wind down instead of completing doomed work.
      std::atomic<bool> cancel{false};
      HomSearchOptions task_options = hom_options;
      task_options.cancel = &cancel;
      ParallelFor(
          config.pool, tasks.size(),
          [&](std::size_t i) {
            // The pass is already doomed once any sibling tripped; skipping
            // outright (like the serial early break below) only changes
            // budget-tripped runs, which are outside the parity guarantee.
            if (cancel.load(std::memory_order_relaxed)) return;
            RunMatchTask(tasks[i], deps, *instance, task_options, &carried,
                         &outputs[i]);
            if (outputs[i].stats.budget_hit) {
              cancel.store(true, std::memory_order_relaxed);
            }
          },
          kMatchTaskPriority);
    } else {
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        RunMatchTask(tasks[i], deps, *instance, hom_options, &carried,
                     &outputs[i]);
        if (outputs[i].stats.budget_hit) break;  // remaining work is doomed
      }
    }
    carried.clear();

    // Aggregate per-task stats — the explicit sum-after-join that keeps
    // HomSearchStats search-local (no shared counters between live
    // searches).
    HomSearchStats match_stats;
    for (const MatchOutput& out : outputs) match_stats.MergeFrom(out.stats);
    result.hom_nodes += match_stats.nodes;
    if (match_stats.budget_hit) {
      result.status =
          match_stats.deadline_hit ? ChaseStatus::kTimeout : limit_status();
      return result;
    }
    if (deadline.Expired()) {
      result.status = ChaseStatus::kTimeout;
      return result;
    }

    // Every dependency has now been matched against the first `pass_start`
    // tuples; the next pass only needs to see what the fires below add.
    delta_begin = pass_start;

    // Merge the per-task buffers. Task order is canonical, but the sort
    // below is what actually fixes the fire order: entries with equal
    // (dep_index, row_ids) are fully identical (the body image determines
    // the valuation), so the merge order cannot leak into the result.
    std::size_t total_pending = 0;
    for (const MatchOutput& out : outputs) total_pending += out.pending.size();
    std::vector<PendingStep> pending;
    pending.reserve(total_pending);
    for (MatchOutput& out : outputs) {
      for (PendingStep& step : out.pending) {
        pending.push_back(std::move(step));
      }
    }

    if (pending.empty()) {
      result.status = ChaseStatus::kFixpoint;
      return result;
    }

    // Fire in canonical (dependency, body image) order. Decoupling the fire
    // order from enumeration order is what makes the result — including the
    // ids of invented nulls — a function of the *set* of applicable steps,
    // identical across matching strategies and thread counts.
    std::sort(pending.begin(), pending.end(),
              [](const PendingStep& a, const PendingStep& b) {
                if (a.dep_index != b.dep_index) {
                  return a.dep_index < b.dep_index;
                }
                return a.row_ids < b.row_ids;
              });

    // ---- Firing phase: serial, on the calling thread ---------------------
    HomSearchStats fire_stats;
    std::uint64_t fired_this_pass = 0;
    for (std::size_t pi = 0; pi < pending.size(); ++pi) {
      if (config.max_fires_per_pass > 0 &&
          fired_this_pass >= config.max_fires_per_pass) {
        // Burst cap: the rest of the pending set waits for the next pass.
        // The naive full re-match will re-discover it; the delta matcher
        // would not (every entry is old by then), so stash it.
        if (config.use_delta) {
          carried.assign(std::make_move_iterator(pending.begin() + pi),
                         std::make_move_iterator(pending.end()));
        }
        break;
      }
      PendingStep& step = pending[pi];
      const Dependency& dep = deps.items[step.dep_index];
      // An earlier fire in this pass may have witnessed this head already.
      bool witnessed = HeadWitnessed(dep, *instance, step.match, hom_options,
                                     &fire_stats);
      if (fire_stats.budget_hit) {
        result.hom_nodes += fire_stats.nodes;
        result.status = limit_status();
        return result;
      }
      if (witnessed) continue;
      std::vector<int> new_ids = FireStep(dep, instance, step.match);
      ++result.steps;
      ++fired_this_pass;
      if (config.record_trace) {
        result.trace.push_back(
            ChaseStep{step.dep_index, step.match, std::move(new_ids)});
      }
      if (config.eager_goal_check && goal && goal(*instance)) {
        result.hom_nodes += fire_stats.nodes;
        result.status = ChaseStatus::kGoal;
        return result;
      }
      if (config.max_steps > 0 && result.steps >= config.max_steps) {
        result.hom_nodes += fire_stats.nodes;
        result.status = ChaseStatus::kStepLimit;
        return result;
      }
      if (config.max_tuples > 0 && instance->NumTuples() >= config.max_tuples) {
        result.hom_nodes += fire_stats.nodes;
        result.status = ChaseStatus::kTupleLimit;
        return result;
      }
      if (deadline.Expired()) {
        result.hom_nodes += fire_stats.nodes;
        result.status = ChaseStatus::kTimeout;
        return result;
      }
    }
    result.hom_nodes += fire_stats.nodes;

    if (!config.eager_goal_check && goal && goal(*instance)) {
      result.status = ChaseStatus::kGoal;
      return result;
    }
  }
}

std::string_view ChaseStatusName(ChaseStatus status) {
  switch (status) {
    case ChaseStatus::kFixpoint: return "fixpoint";
    case ChaseStatus::kGoal: return "goal";
    case ChaseStatus::kStepLimit: return "step-limit";
    case ChaseStatus::kTupleLimit: return "tuple-limit";
    case ChaseStatus::kTimeout: return "timeout";
    case ChaseStatus::kHomBudget: return "hom-budget";
  }
  return "?";
}

std::string ChaseResult::ToString() const {
  std::ostringstream oss;
  oss << "chase: " << ChaseStatusName(status) << " after " << steps
      << " steps in " << passes << " passes (" << hom_nodes << " hom nodes)";
  return oss.str();
}

}  // namespace tdlib
