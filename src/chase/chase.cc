#include "chase/chase.h"

#include <algorithm>
#include <atomic>
#include <istream>
#include <new>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/satisfaction.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "util/trace_span.h"

namespace tdlib {
namespace {

// Registry handles resolved once per process (stable pointers), so the
// publication sites below pay a function-local-static load, not a map
// lookup. Everything here is a pure sink: published after a phase's
// deterministic work is done, never read back — that, plus the
// MetricsEnabled() gate inside each Add/Observe, is what keeps metrics
// on/off byte-identical (tests/metrics_test.cc).
struct ChaseMetrics {
  Counter* passes;
  Counter* steps;
  Counter* hom_nodes;
  Counter* hom_candidates;
  Counter* intersections;
  Counter* intersect_skips;
  Counter* match_tasks;
  Counter* checkpoints;
  Histogram* match_seconds;
  Histogram* fire_seconds;
  Histogram* checkpoint_seconds;
};

ChaseMetrics& GetChaseMetrics() {
  static ChaseMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    auto* cm = new ChaseMetrics();
    cm->passes = r.GetCounter("chase.passes");
    cm->steps = r.GetCounter("chase.steps");
    cm->hom_nodes = r.GetCounter("chase.hom_nodes");
    cm->hom_candidates = r.GetCounter("chase.hom_candidates");
    cm->intersections = r.GetCounter("chase.intersections");
    cm->intersect_skips = r.GetCounter("chase.intersect_skips");
    cm->match_tasks = r.GetCounter("chase.match_tasks");
    cm->checkpoints = r.GetCounter("chase.checkpoints_taken");
    cm->match_seconds = r.GetHistogram("chase.match_seconds",
                                       LatencyBuckets());
    cm->fire_seconds = r.GetHistogram("chase.fire_seconds", LatencyBuckets());
    cm->checkpoint_seconds =
        r.GetHistogram("chase.checkpoint_seconds", LatencyBuckets());
    return cm;
  }();
  return *m;
}

// Match tasks run ahead of queued job-level work when the pool is shared
// with engine/BatchSolver: a pass cannot finish until its slowest member
// search does, so letting members jump the queue shortens the pass's
// critical path without adding threads.
constexpr int kMatchTaskPriority = 1 << 20;

// One pass over a pumped instance can enumerate an enormous stream of body
// matches (each with a head-witness sub-search), so waiting for the end of
// a search to look at the clock lets a deadline overshoot by seconds. The
// check runs inside the match stream too, amortized over this many matches
// to keep clock reads off the per-match fast path.
constexpr std::uint64_t kDeadlineCheckInterval = 256;

// auto_burst's cap for flat-growth passes when max_fires_per_pass is 0: the
// burst size where the reduction-sweep ablation showed delta matching
// paying most (ROADMAP "burst tuning").
constexpr std::uint64_t kAutoBurstCap = 64;

// Budget-informed Reserve is only worth it when the budget is genuinely
// tight; pre-sizing for the default million-tuple ceiling would allocate
// hundreds of megabytes for chases that stop at a fixpoint of fifty.
constexpr std::uint64_t kReserveLimit = 1 << 16;

// Pre-sizes the instance's arena, dedup table, CSR slabs and domain vectors
// for the run's known tuple ceiling, so a budget-bounded chase grows each
// structure O(log n) times instead of rehashing/reallocating its way up.
void ReserveForBudget(Instance* instance, const DependencySet& deps,
                      const ChaseConfig& config) {
  std::uint64_t bound = config.max_tuples;
  std::size_t max_head_rows = 0;
  for (const Dependency& dep : deps.items) {
    max_head_rows = std::max(max_head_rows,
                             static_cast<std::size_t>(dep.head().num_rows()));
  }
  if (config.max_steps > 0 && max_head_rows > 0) {
    std::uint64_t step_bound =
        instance->NumTuples() + config.max_steps * max_head_rows;
    bound = bound == 0 ? step_bound : std::min(bound, step_bound);
  }
  if (bound <= instance->NumTuples() || bound > kReserveLimit) return;
  std::size_t max_domain = 0;
  for (int attr = 0; attr < instance->schema().arity(); ++attr) {
    max_domain = std::max(max_domain,
                          static_cast<std::size_t>(instance->DomainSize(attr)));
  }
  // Every fired step invents at most one labeled null per attribute per new
  // tuple, so the domain ceiling is current + new tuples.
  instance->Reserve(static_cast<std::size_t>(bound),
                    max_domain + static_cast<std::size_t>(
                                     bound - instance->NumTuples()));
}

// Head-witness checks go through core/satisfaction.h's reusable
// HeadChecker (search object + seed template built once per dependency
// stream). Head-witness searches always run against the full instance —
// the delta restriction applies only to body enumeration.

// Inserts dep's head rows under `h`, inventing labeled nulls for existential
// variables. Returns ids of newly inserted tuples.
std::vector<int> FireStep(const Dependency& dep, Instance* instance,
                          const Valuation& h) {
  // One fresh null per distinct existential variable that appears in the
  // head (shared across head rows, as EID semantics requires).
  Valuation extended = h;
  for (const Row& row : dep.head().rows()) {
    for (int attr = 0; attr < dep.schema().arity(); ++attr) {
      int var = row[attr];
      if (!extended.Bound(attr, var)) {
        int fresh = instance->AddValue(attr, "", /*labeled_null=*/true);
        extended.Set(attr, var, fresh);
      }
    }
  }
  std::vector<int> new_ids;
  for (const Row& row : dep.head().rows()) {
    Tuple t(dep.schema().arity());
    for (int attr = 0; attr < dep.schema().arity(); ++attr) {
      t[attr] = extended.Get(attr, row[attr]);
    }
    std::size_t before = instance->NumTuples();
    if (instance->AddTuple(t)) {
      new_ids.push_back(static_cast<int>(before));
    }
  }
  return new_ids;
}

// One collected applicable step. `row_ids` is the body image — the tuple id
// each body row maps to under `match`, in tableau row order. It is the
// canonical sort key that makes the fire order independent of how matches
// were enumerated (full scan, semi-naive partition, any interleaving of
// concurrent tasks), which is what keeps naive/delta and serial/pooled runs
// byte-identical. Public (chase.h) because ChaseCheckpoint persists these.
using PendingStep = PendingChaseStep;

// Carried re-checks are batched: one task re-checks a contiguous chunk of
// the (canonically ordered) carried list. A gap-regime chase can carry a
// six-figure backlog, and a task per step would rebuild a head searcher —
// a dozen allocations — for a two-node search; a chunk amortizes one
// searcher per dependency run while still producing enough tasks to feed
// every worker.
constexpr std::size_t kCarriedChunk = 64;

// One unit of a pass's matching phase: the re-check of one chunk of carried
// steps, or one body search (a full/any-row scan, or one member
// (dependency, seed row) of the semi-naive partition). Tasks are enumerated
// in a fixed order, only read the instance, and write nothing but their own
// MatchOutput slot — which is exactly what lets them run on pool workers.
struct MatchTask {
  enum class Kind { kCarried, kSearch };
  Kind kind;
  int dep_index = -1;             // kSearch
  std::size_t carried_begin = 0;  // kCarried: chunk [begin, end)
  std::size_t carried_end = 0;
  // Body-search delta window, pre-resolved at task-list build time:
  // delta_begin < 0 = unrestricted scan, seed_row < 0 = any-row scan,
  // otherwise one partition member — possibly narrowed to the seed-row
  // slice [slice_begin, slice_end) when the member was split into
  // sub-tasks (slice_begin < 0 = the whole delta).
  int delta_begin = -1;
  int delta_seed_row = -1;
  int slice_begin = -1;
  int slice_end = -1;
};

// Per-task buffer: the steps this task found applicable plus its search
// counters. Stats are summed across tasks after the join — HomSearchStats
// is search-local, never shared between live searches.
struct MatchOutput {
  std::vector<PendingStep> pending;
  HomSearchStats stats;
};

// Executes one match task against the read-only `instance`. `base_options`
// carries the run's node budget, deadline and (in pooled mode) the shared
// cancel flag. Carried steps are moved out of *carried when still unfired
// and unwitnessed; distinct tasks touch distinct carried slots.
void RunMatchTask(const MatchTask& task, const DependencySet& deps,
                  const Instance& instance,
                  const HomSearchOptions& base_options,
                  std::vector<PendingStep>* carried, MatchOutput* out) {
  if (task.kind == MatchTask::Kind::kCarried) {
    // Re-check the chunk in carry order (which is canonical order, so the
    // kept steps land in *out already sorted). The carried list is grouped
    // by dependency, so one head checker serves each run of same-dep steps.
    std::optional<HeadChecker> head;
    int head_dep = -1;
    for (std::size_t ci = task.carried_begin; ci < task.carried_end; ++ci) {
      PendingStep& step = (*carried)[ci];
      const Dependency& dep = deps.items[step.dep_index];
      if (head_dep != step.dep_index) {
        head.emplace(dep, instance, base_options);
        head_dep = step.dep_index;
      }
      // A fire since this step was collected may have witnessed it (the
      // naive full scan drops those the same way).
      if (!head->Witnessed(step.match, &out->stats)) {
        out->pending.push_back(std::move(step));
      }
      if (out->stats.budget_hit) return;
      // One clock read per re-check, unamortized: every re-check runs a
      // head search too small for Backtrack's own 512-node cadence, and a
      // bounded-burst pass with a huge carried backlog would otherwise
      // overshoot the deadline by the entire backlog.
      if (base_options.deadline != nullptr &&
          base_options.deadline->Expired()) {
        out->stats.budget_hit = true;
        out->stats.deadline_hit = true;
        return;
      }
    }
    return;
  }

  const Dependency& dep = deps.items[task.dep_index];
  HomSearchOptions body_options = base_options;
  body_options.delta_begin = task.delta_begin;
  body_options.delta_seed_row = task.delta_seed_row;
  body_options.delta_seed_begin = task.slice_begin;
  body_options.delta_seed_end = task.slice_end;
  HomomorphismSearch body_search(dep.body(), instance, body_options);
  // One reusable head checker for the whole body-match stream: this task
  // runs a head search per enumerated match, and rebuilding the search
  // object each time would put a dozen allocations on the hot path.
  HeadChecker head(dep, instance, base_options);
  // body_search.row_tuples() is the match's body image, already computed by
  // the backtracker — no per-row FindTuple on the hot path.
  std::uint64_t matches_seen = 0;
  auto collect = [&](const Valuation& h) {
    if (!head.Witnessed(h, &out->stats)) {
      out->pending.push_back(
          PendingStep{task.dep_index, h, body_search.row_tuples()});
    }
    if (out->stats.budget_hit) return false;
    if (++matches_seen % kDeadlineCheckInterval == 0 &&
        base_options.deadline != nullptr && base_options.deadline->Expired()) {
      out->stats.budget_hit = true;
      out->stats.deadline_hit = true;
      return false;
    }
    // A sibling's budget trip must stop this task even when its searches
    // are all smaller than Backtrack's own cancel cadence (512 nodes); one
    // relaxed load per match is noise next to the head search above.
    if (base_options.cancel != nullptr &&
        base_options.cancel->load(std::memory_order_relaxed)) {
      out->stats.budget_hit = true;
      return false;
    }
    // The job-level cancel flag rides the same per-match cadence, so a
    // cancelled job stops promptly even when each individual search is
    // smaller than Backtrack's own check interval.
    if (base_options.job_cancel != nullptr &&
        base_options.job_cancel->load(std::memory_order_relaxed)) {
      out->stats.budget_hit = true;
      out->stats.cancel_hit = true;
      return false;
    }
    return true;
  };
  body_search.ForEach(collect);
  out->stats.MergeFrom(body_search.stats());
  // End-of-task deadline read, mirroring the kCarried branch: a pass of
  // many small member searches — each under Backtrack's 512-node and the
  // stream's 256-match cadences — must still observe the wall clock at
  // least once per task, or a serial matching phase could overshoot a
  // clamped milliseconds-scale deadline by the whole task list.
  if (!out->stats.budget_hit && base_options.deadline != nullptr &&
      base_options.deadline->Expired()) {
    out->stats.budget_hit = true;
    out->stats.deadline_hit = true;
  }
}

// Builds the pass's task list in the canonical task order: carried
// re-checks first (in carry order), then per-dependency body searches (in
// dependency order, partition members in seed-row order). The list is a
// pure function of (config, delta_begin, carried size, instance size), so
// serial and pooled runs execute the same searches.
std::vector<MatchTask> BuildMatchTasks(const DependencySet& deps,
                                       const ChaseConfig& config,
                                       std::size_t delta_begin,
                                       std::size_t num_tuples,
                                       std::size_t num_carried) {
  std::vector<MatchTask> tasks;
  for (std::size_t ci = 0; ci < num_carried; ci += kCarriedChunk) {
    MatchTask t;
    t.kind = MatchTask::Kind::kCarried;
    t.carried_begin = ci;
    t.carried_end = std::min(ci + kCarriedChunk, num_carried);
    tasks.push_back(t);
  }
  const bool nothing_new = config.use_delta && delta_begin >= num_tuples;
  if (nothing_new) {
    // Every match was enumerated in an earlier pass and is witnessed.
    return tasks;
  }
  // The partition pays one restricted search per body row; when the delta
  // is most of the instance (a pumping pass), those members cost more
  // together than the full scan they replace. Use the partition only while
  // the delta is the minority — the canonical fire order keeps results
  // identical whichever matcher ran.
  const bool partition = config.use_delta && delta_begin > 0 &&
                         (num_tuples - delta_begin) * 2 <= num_tuples;
  for (std::size_t di = 0; di < deps.items.size(); ++di) {
    MatchTask t;
    t.kind = MatchTask::Kind::kSearch;
    t.dep_index = static_cast<int>(di);
    if (partition) {
      // Union of the semi-naive partition: seed row s in the delta, rows
      // before s in the old region, rows after s unrestricted. Every
      // delta-touching match is enumerated exactly once; all-old matches —
      // already enumerated (and fired or witnessed) in the pass that saw
      // their newest tuple — are skipped entirely.
      t.delta_begin = static_cast<int>(delta_begin);
      // Work stealing for few-member passes: a big delta is further cut
      // into equal id slices of the seed row's window, so even a
      // 1-dependency pass produces enough sub-tasks to feed every worker.
      // The slicing depends only on (config, delta) — never on the pool —
      // so serial and pooled runs execute the same searches.
      const std::uint64_t delta_size =
          static_cast<std::uint64_t>(num_tuples - delta_begin);
      const bool sliced = config.match_slice_ids > 0 &&
                          delta_size > config.match_slice_ids;
      for (int s = 0; s < deps.items[di].body().num_rows(); ++s) {
        t.delta_seed_row = s;
        if (!sliced) {
          tasks.push_back(t);
          continue;
        }
        for (std::size_t lo = delta_begin; lo < num_tuples;
             lo += config.match_slice_ids) {
          MatchTask slice = t;
          slice.slice_begin = static_cast<int>(lo);
          slice.slice_end = static_cast<int>(
              std::min<std::size_t>(lo + config.match_slice_ids, num_tuples));
          tasks.push_back(slice);
        }
      }
    } else if (config.use_delta && delta_begin > 0) {
      // Majority delta: one pruned scan ("any row hits the delta") — never
      // more nodes than naive, and the all-old matches' head checks are
      // still skipped.
      t.delta_begin = static_cast<int>(delta_begin);
      t.delta_seed_row = -1;
      tasks.push_back(t);
    } else {
      // Naive mode or the first pass: one unrestricted scan.
      tasks.push_back(t);
    }
  }
  return tasks;
}

}  // namespace

bool HasApplicableStep(const Dependency& dep, const Instance& instance,
                       const HomSearchOptions& options) {
  bool applicable = false;
  HomSearchStats stats;
  HomomorphismSearch body_search(dep.body(), instance, options);
  HeadChecker head(dep, instance, options);
  body_search.ForEach([&](const Valuation& h) {
    if (!head.Witnessed(h, &stats)) {
      applicable = true;
      return false;
    }
    return true;
  });
  return applicable;
}

ChaseResult RunChase(Instance* instance, const DependencySet& deps,
                     const ChaseConfig& config, const ChaseGoal& goal) {
  return RunChase(instance, deps, config, goal, /*checkpoint=*/nullptr);
}

ChaseResult RunChase(Instance* instance, const DependencySet& deps,
                     const ChaseConfig& config, const ChaseGoal& goal,
                     ChaseCheckpoint* checkpoint) {
  ChaseResult result;
  Deadline deadline(config.deadline_seconds);
  HomSearchOptions hom_options = config.HomOptions();
  // Every search below — body enumeration and head sub-searches alike —
  // shares the run's deadline, so even one huge homomorphism search is cut
  // off close to the wall-clock budget.
  hom_options.deadline = &deadline;
  // The engine's cancel flag reaches every search the same way.
  hom_options.job_cancel = config.cancel;

  // When several limits trip together: a cancel request outranks everything
  // (the caller asked for it), then the wall clock, then the node budget.
  auto limit_status = [&](const HomSearchStats& stats) {
    if (stats.cancel_hit) return ChaseStatus::kCancelled;
    if (stats.deadline_hit || deadline.Expired()) return ChaseStatus::kTimeout;
    return ChaseStatus::kHomBudget;
  };
  auto cancelled = [&] {
    return config.cancel != nullptr &&
           config.cancel->load(std::memory_order_relaxed);
  };
  // Each phase boundary has its own injection site, so tests can land a
  // cancel (or an allocation failure) on exactly one boundary and assert
  // the job still publishes exactly one terminal outcome. All checks are
  // behind the FaultInjectionEnabled() relaxed-load gate.
  auto injected = [](FaultSite site) {
    return FaultInjectionEnabled() && ShouldInject(site);
  };

  // Tuples with id >= delta_begin are "new" since the previous matching
  // phase. 0 on the first pass, so pass 1 matches the whole seed instance
  // in either mode.
  std::size_t delta_begin = 0;

  // Steps collected but not fired under max_fires_per_pass (delta mode
  // only; the naive full re-match re-discovers them instead). Every entry
  // touches a tuple that is old by now, so the delta enumeration below
  // would never see it again.
  std::vector<PendingStep> carried;

  // The firing phase below runs over these; hoisted out of the loop so a
  // checkpoint resume can re-enter the phase mid-pass. pass_fire_cap is the
  // CURRENT pass's effective burst cap — config.max_fires_per_pass unless
  // auto_burst retunes it at each matching phase (and a resume restores the
  // interrupted pass's value from the checkpoint).
  std::vector<PendingStep> pending;
  std::uint64_t fired_this_pass = 0;
  std::uint64_t pass_fire_cap = config.max_fires_per_pass;
  bool resuming = false;

  // Budgeted runs know their tuple ceiling up front; growing to it in one
  // Reserve beats rehash/realloc churn on every doubling. Harmless on
  // resume (Reserve is idempotent) and skipped for loose budgets.
  ReserveForBudget(instance, deps, config);

  if (checkpoint != nullptr && checkpoint->valid) {
    // A cancel landing exactly at resume entry terminates the run WITHOUT
    // consuming the checkpoint: the parked state stays valid for the next
    // attempt, so an ill-timed cancel costs nothing but this run.
    if (cancelled() || injected(FaultSite::kCancelResume)) {
      result.status = ChaseStatus::kCancelled;
      return result;
    }
    // Continue the interrupted firing phase: the caller restored (or kept)
    // the instance the checkpoint was taken against and verified
    // ResumableWith. Counters continue, so the eventual ChaseResult is the
    // one an uninterrupted run would have produced.
    delta_begin = checkpoint->delta_begin;
    fired_this_pass = checkpoint->fired_this_pass;
    pass_fire_cap = checkpoint->fire_cap_this_pass;
    pending = std::move(checkpoint->pending);
    result.steps = checkpoint->steps;
    result.passes = checkpoint->passes;
    result.hom_nodes = checkpoint->hom_nodes;
    result.hom_candidates = checkpoint->hom_candidates;
    result.match_tasks = checkpoint->match_tasks;
    result.carried_passes = checkpoint->carried_passes;
    result.trace = std::move(checkpoint->trace);
    checkpoint->Reset();  // consumed; refilled only on a resumable stop
    resuming = true;
    // No initial goal check: the uninterrupted run checked the goal after
    // the last fire (eager mode) and found it false, or defers to the pass
    // end (lazy mode) — the resumed loop reproduces both.
  } else {
    if (checkpoint != nullptr) checkpoint->Reset();
    if (goal && goal(*instance)) {
      result.status = ChaseStatus::kGoal;
      return result;
    }
  }

  // Captures the resumable state right before a kStepLimit / kTupleLimit
  // return: the not-yet-fired tail of the pending list plus the cumulative
  // counters (result already includes the firing phase's hom nodes by the
  // time this runs).
  auto take_checkpoint = [&](std::size_t next_index) {
    if (checkpoint == nullptr) return;
    // A cancel racing the capture wins: the run is already stopping, and
    // honoring the cancel means reporting kCancelled with no checkpoint
    // (the caller asked the job to die, not to pause). The budget status
    // the caller just set is overwritten before it becomes observable.
    if (cancelled() || injected(FaultSite::kCancelCheckpoint)) {
      result.status = ChaseStatus::kCancelled;
      return;
    }
    TraceSpan span("chase.checkpoint");
    StopWatch watch;
    ScopedTimer accumulate(&result.checkpoint_seconds);
    checkpoint->Reset();
    checkpoint->valid = true;
    checkpoint->delta_begin = delta_begin;
    checkpoint->fired_this_pass = fired_this_pass;
    checkpoint->fire_cap_this_pass = pass_fire_cap;
    checkpoint->pending.assign(
        std::make_move_iterator(pending.begin() +
                                static_cast<std::ptrdiff_t>(next_index)),
        std::make_move_iterator(pending.end()));
    checkpoint->steps = result.steps;
    checkpoint->passes = result.passes;
    checkpoint->hom_nodes = result.hom_nodes;
    checkpoint->hom_candidates = result.hom_candidates;
    checkpoint->match_tasks = result.match_tasks;
    checkpoint->carried_passes = result.carried_passes;
    checkpoint->trace = result.trace;
    checkpoint->CaptureShape(config);
    if (MetricsEnabled()) {
      ChaseMetrics& m = GetChaseMetrics();
      m.checkpoints->Add(1);
      m.checkpoint_seconds->Observe(watch.ElapsedSeconds());
    }
  };

  while (true) {
    if (resuming) {
      // Skip the matching phase once: `pending` already holds the
      // interrupted pass's unfired steps in canonical order.
      resuming = false;
    } else {
      ++result.passes;
      if (!carried.empty()) ++result.carried_passes;
      // Phase observation only: the span/watch read the clock (when armed)
      // and publish when the phase ends; nothing below consults them.
      TraceSpan match_span("chase.match");
      StopWatch match_watch;
      std::size_t pass_start = instance->NumTuples();
      if (cancelled() || injected(FaultSite::kCancelMatch)) {
        result.status = ChaseStatus::kCancelled;
        return result;
      }

      // ---- Matching phase: read-only over the pass-start instance --------
      //
      // The task list, and hence the set of searches, is identical in serial
      // and pooled mode; only where each search runs differs. The collected
      // valuations stay valid as tuples are only ever added.
      std::vector<MatchTask> tasks = BuildMatchTasks(deps, config, delta_begin,
                                                     pass_start,
                                                     carried.size());
      std::vector<MatchOutput> outputs(tasks.size());
      result.match_tasks += tasks.size();

      if (config.pool != nullptr && tasks.size() > 1) {
        // Fan out. Tasks write only their own output slot; a budget/deadline
        // trip in any task raises the shared cancel flag so sibling searches
        // wind down instead of completing doomed work.
        std::atomic<bool> cancel{false};
        HomSearchOptions task_options = hom_options;
        task_options.cancel = &cancel;
        ParallelFor(
            config.pool, tasks.size(),
            [&](std::size_t i) {
              // The pass is already doomed once any sibling tripped; skipping
              // outright (like the serial early break below) only changes
              // budget-tripped runs, which are outside the parity guarantee.
              if (cancel.load(std::memory_order_relaxed)) return;
              RunMatchTask(tasks[i], deps, *instance, task_options, &carried,
                           &outputs[i]);
              if (outputs[i].stats.budget_hit) {
                cancel.store(true, std::memory_order_relaxed);
              }
            },
            kMatchTaskPriority);
      } else {
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          RunMatchTask(tasks[i], deps, *instance, hom_options, &carried,
                       &outputs[i]);
          if (outputs[i].stats.budget_hit) break;  // remaining work is doomed
        }
      }
      carried.clear();

      // Aggregate per-task stats — the explicit sum-after-join that keeps
      // HomSearchStats search-local (no shared counters between live
      // searches).
      HomSearchStats match_stats;
      for (const MatchOutput& out : outputs) match_stats.MergeFrom(out.stats);
      result.hom_nodes += match_stats.nodes;
      result.hom_candidates += match_stats.candidates;
      // Publish the phase: one timing read + a handful of gated counter
      // adds, after the deterministic work is complete. Sits before the
      // budget-trip returns so every matching phase — including a tripped
      // one — is accounted exactly once.
      const double match_elapsed = match_watch.ElapsedSeconds();
      result.match_seconds += match_elapsed;
      if (MetricsEnabled()) {
        ChaseMetrics& m = GetChaseMetrics();
        m.passes->Add(1);
        m.match_tasks->Add(static_cast<std::int64_t>(tasks.size()));
        m.hom_nodes->Add(static_cast<std::int64_t>(match_stats.nodes));
        m.hom_candidates->Add(
            static_cast<std::int64_t>(match_stats.candidates));
        m.intersections->Add(
            static_cast<std::int64_t>(match_stats.intersections));
        m.intersect_skips->Add(
            static_cast<std::int64_t>(match_stats.intersect_skips));
        m.match_seconds->Observe(match_elapsed);
      }
      if (match_stats.budget_hit) {
        result.status = limit_status(match_stats);
        return result;
      }
      if (deadline.Expired()) {
        result.status = ChaseStatus::kTimeout;
        return result;
      }

      // Burst auto-tune: decide this pass's fire cap from the growth the
      // previous pass produced, while delta_begin still marks it. A
      // majority-delta pass is geometric pumping — nearly every pending
      // step is genuinely new, so capping would only grow the carried
      // backlog — and runs uncapped; flat growth gets the bounded-burst
      // regime. Pure function of (delta, instance size): deterministic at
      // any thread count, and the checkpoint records the chosen cap.
      pass_fire_cap = config.max_fires_per_pass;
      if (config.auto_burst) {
        const std::size_t growth = pass_start - delta_begin;
        const bool pumping = growth * 2 >= pass_start;
        pass_fire_cap = pumping ? 0
                                : (config.max_fires_per_pass > 0
                                       ? config.max_fires_per_pass
                                       : kAutoBurstCap);
      }

      // Every dependency has now been matched against the first `pass_start`
      // tuples; the next pass only needs to see what the fires below add.
      delta_begin = pass_start;

      // Merge the per-task buffers. Task order is canonical, but the
      // sort+merge below is what actually fixes the fire order: entries
      // with equal (dep_index, row_ids) are fully identical (the body image
      // determines the valuation), so the merge order cannot leak into the
      // result.
      std::size_t total_pending = 0;
      std::size_t carried_prefix = 0;
      for (std::size_t i = 0; i < outputs.size(); ++i) {
        total_pending += outputs[i].pending.size();
        if (tasks[i].kind == MatchTask::Kind::kCarried) {
          carried_prefix += outputs[i].pending.size();
        }
      }
      pending.clear();
      pending.reserve(total_pending);
      for (MatchOutput& out : outputs) {
        for (PendingStep& step : out.pending) {
          pending.push_back(std::move(step));
        }
      }

      if (pending.empty()) {
        result.status = ChaseStatus::kFixpoint;
        return result;
      }

      // Fire in canonical (dependency, body image) order. Decoupling the
      // fire order from enumeration order is what makes the result —
      // including the ids of invented nulls — a function of the *set* of
      // applicable steps, identical across matching strategies and thread
      // counts. The carried re-checks (a prefix of the task list) kept
      // their steps in canonical order already, so only the freshly
      // enumerated tail needs the O(n log n) sort; a gap-regime pass with a
      // six-figure carried backlog and a handful of new matches pays one
      // linear merge instead of re-sorting the whole backlog.
      // FaultSite::kFireOrderFlip is the harness's deliberate bug: it
      // reverses the body-image ordering for this pass's sort, exactly the
      // kind of one-comparison mistake the differential fuzzer exists to
      // catch (flipped fire order changes labeled-null invention order,
      // which diverges the instance bytes). Evaluated once per pass — a
      // strict weak ordering must not change mid-sort.
      const bool flip_order = injected(FaultSite::kFireOrderFlip);
      auto canonical = [flip_order](const PendingStep& a,
                                    const PendingStep& b) {
        if (a.dep_index != b.dep_index) {
          return a.dep_index < b.dep_index;
        }
        return flip_order ? b.row_ids < a.row_ids : a.row_ids < b.row_ids;
      };
      if (flip_order) {
        // The carried prefix was stored under the true ordering; a full
        // re-sort keeps inplace_merge's sorted-halves precondition out of
        // the picture while the injected comparator is live.
        std::sort(pending.begin(), pending.end(), canonical);
      } else {
        std::sort(pending.begin() +
                      static_cast<std::ptrdiff_t>(carried_prefix),
                  pending.end(), canonical);
        std::inplace_merge(pending.begin(),
                           pending.begin() +
                               static_cast<std::ptrdiff_t>(carried_prefix),
                           pending.end(), canonical);
      }
      fired_this_pass = 0;
    }

    // ---- Firing phase: serial, on the calling thread ---------------------
    HomSearchStats fire_stats;
    TraceSpan fire_span("chase.fire");
    StopWatch fire_watch;
    const std::uint64_t steps_at_fire_start = result.steps;
    // Every early exit below must fold the firing phase's search counters
    // (and, riding the same guarantee, its wall time and metrics) into the
    // result exactly once; one flush helper keeps the next exit branch from
    // forgetting a counter. Called exactly once per firing-phase exit.
    auto flush_fire_stats = [&] {
      result.hom_nodes += fire_stats.nodes;
      result.hom_candidates += fire_stats.candidates;
      const double fire_elapsed = fire_watch.ElapsedSeconds();
      result.fire_seconds += fire_elapsed;
      if (MetricsEnabled()) {
        ChaseMetrics& m = GetChaseMetrics();
        m.steps->Add(
            static_cast<std::int64_t>(result.steps - steps_at_fire_start));
        m.hom_nodes->Add(static_cast<std::int64_t>(fire_stats.nodes));
        m.hom_candidates->Add(
            static_cast<std::int64_t>(fire_stats.candidates));
        m.intersections->Add(
            static_cast<std::int64_t>(fire_stats.intersections));
        m.intersect_skips->Add(
            static_cast<std::int64_t>(fire_stats.intersect_skips));
        m.fire_seconds->Observe(fire_elapsed);
      }
    };
    // Pending is sorted by dependency, so one head checker serves each run
    // of same-dependency steps; it reads the instance through a reference
    // and therefore sees every tuple the intervening fires insert.
    std::optional<HeadChecker> fire_head;
    int fire_head_dep = -1;
    for (std::size_t pi = 0; pi < pending.size(); ++pi) {
      if (pass_fire_cap > 0 && fired_this_pass >= pass_fire_cap) {
        // Burst cap: the rest of the pending set waits for the next pass.
        // The naive full re-match will re-discover it; the delta matcher
        // would not (every entry is old by then), so stash it.
        if (config.use_delta) {
          carried.assign(std::make_move_iterator(pending.begin() + pi),
                         std::make_move_iterator(pending.end()));
        }
        break;
      }
      if (cancelled() || injected(FaultSite::kCancelFire)) {
        // Between-fire cancel check: a cancelled job must not keep firing a
        // huge pending burst to the end of the pass. No checkpoint — the
        // caller asked the job to die, not to pause deterministically.
        flush_fire_stats();
        result.status = ChaseStatus::kCancelled;
        return result;
      }
      // Graceful degradation for allocation failure: the between-fire
      // boundary is the one place the instance is in a well-defined state
      // with the remaining work in hand, so an injected (or caught, below)
      // allocation failure parks a checkpoint whose resume replays the
      // uninterrupted run byte for byte — the step at `pi` has not been
      // touched yet, so none of its search work is double-counted.
      if (injected(FaultSite::kChaseAlloc)) {
        flush_fire_stats();
        result.status = ChaseStatus::kResourceExhausted;
        take_checkpoint(pi);
        return result;
      }
      PendingStep& step = pending[pi];
      const Dependency& dep = deps.items[step.dep_index];
      if (fire_head_dep != step.dep_index) {
        fire_head.emplace(dep, *instance, hom_options);
        fire_head_dep = step.dep_index;
      }
      // An earlier fire in this pass may have witnessed this head already.
      bool witnessed = false;
      std::vector<int> new_ids;
      try {
        witnessed = fire_head->Witnessed(step.match, &fire_stats);
        if (!fire_stats.budget_hit && !witnessed) {
          new_ids = FireStep(dep, instance, step.match);
        }
      } catch (const std::bad_alloc&) {
        // Real allocation failure: park instead of crashing. Best-effort —
        // a throw mid-FireStep can leave part of the head inserted, so the
        // resume completes the derivation soundly (AddTuple dedups, the
        // chase is monotone) but without the injected path's byte-identity
        // promise.
        flush_fire_stats();
        result.status = ChaseStatus::kResourceExhausted;
        take_checkpoint(pi);
        return result;
      }
      if (fire_stats.budget_hit) {
        flush_fire_stats();
        result.status = limit_status(fire_stats);
        return result;
      }
      if (witnessed) continue;
      ++result.steps;
      ++fired_this_pass;
      if (config.record_trace) {
        result.trace.push_back(
            ChaseStep{step.dep_index, step.match, std::move(new_ids)});
      }
      if (config.eager_goal_check && goal && goal(*instance)) {
        flush_fire_stats();
        result.status = ChaseStatus::kGoal;
        return result;
      }
      if (config.max_steps > 0 && result.steps >= config.max_steps) {
        flush_fire_stats();
        result.status = ChaseStatus::kStepLimit;
        take_checkpoint(pi + 1);
        return result;
      }
      if (config.max_tuples > 0 && instance->NumTuples() >= config.max_tuples) {
        flush_fire_stats();
        result.status = ChaseStatus::kTupleLimit;
        take_checkpoint(pi + 1);
        return result;
      }
      if (deadline.Expired()) {
        flush_fire_stats();
        result.status = ChaseStatus::kTimeout;
        return result;
      }
    }
    flush_fire_stats();

    if (!config.eager_goal_check && goal && goal(*instance)) {
      result.status = ChaseStatus::kGoal;
      return result;
    }
  }
}

std::string_view ChaseStatusName(ChaseStatus status) {
  switch (status) {
    case ChaseStatus::kFixpoint: return "fixpoint";
    case ChaseStatus::kGoal: return "goal";
    case ChaseStatus::kStepLimit: return "step-limit";
    case ChaseStatus::kTupleLimit: return "tuple-limit";
    case ChaseStatus::kTimeout: return "timeout";
    case ChaseStatus::kHomBudget: return "hom-budget";
    case ChaseStatus::kCancelled: return "cancelled";
    case ChaseStatus::kResourceExhausted: return "resource-exhausted";
  }
  return "?";
}

bool ChaseCheckpoint::BudgetsExceedProgress(const ChaseConfig& config,
                                            const Instance& instance) const {
  if (config.max_steps > 0 && steps >= config.max_steps) return false;
  if (config.max_tuples > 0 && instance.NumTuples() >= config.max_tuples) {
    return false;
  }
  return true;
}

bool ChaseCheckpoint::CompatibleWith(const ChaseConfig& config,
                                     const Instance& instance,
                                     const DependencySet& deps) const {
  if (!valid) return false;
  // A different shape would evolve differently from here on; the resumed
  // run would no longer replay an uninterrupted one.
  if (use_delta != config.use_delta ||
      max_fires_per_pass != config.max_fires_per_pass ||
      auto_burst != config.auto_burst ||
      match_slice_ids != config.match_slice_ids ||
      use_intersection != config.use_intersection ||
      record_trace != config.record_trace ||
      eager_goal_check != config.eager_goal_check ||
      hom_max_nodes != config.hom_max_nodes) {
    return false;
  }
  // Semantic validation against this (deps, instance): checkpoints may come
  // from disk, and RunChase (and trace consumers like FormatChaseStep)
  // index deps/tuples/valuations unchecked — so a corrupt file must die
  // here, cleanly.
  const std::size_t num_tuples = instance.NumTuples();
  if (delta_begin > num_tuples) return false;
  // The valuation must be shaped exactly like its dependency's variable
  // space (FireStep and the head-witness search index it by (attr, var))
  // and bind only existing domain values.
  auto valid_match = [&](int dep_index, const Valuation& match) {
    if (dep_index < 0 || dep_index >= static_cast<int>(deps.items.size())) {
      return false;
    }
    const Valuation reference = Valuation::For(deps.items[dep_index].body());
    if (match.values.size() != reference.values.size()) return false;
    for (std::size_t attr = 0; attr < reference.values.size(); ++attr) {
      if (match.values[attr].size() != reference.values[attr].size()) {
        return false;
      }
      for (int v : match.values[attr]) {
        if (v < -1 || v >= instance.DomainSize(static_cast<int>(attr))) {
          return false;
        }
      }
    }
    return true;
  };
  auto valid_ids = [num_tuples](const std::vector<int>& ids) {
    for (int id : ids) {
      if (id < 0 || id >= static_cast<int>(num_tuples)) return false;
    }
    return true;
  };
  for (const PendingChaseStep& step : pending) {
    if (!valid_match(step.dep_index, step.match) ||
        !valid_ids(step.row_ids)) {
      return false;
    }
  }
  for (const ChaseStep& step : trace) {
    if (!valid_match(step.dependency_index, step.body_match) ||
        !valid_ids(step.new_tuples)) {
      return false;
    }
  }
  return true;
}

void ChaseCheckpoint::CaptureShape(const ChaseConfig& config) {
  use_delta = config.use_delta;
  max_fires_per_pass = config.max_fires_per_pass;
  auto_burst = config.auto_burst;
  match_slice_ids = config.match_slice_ids;
  use_intersection = config.use_intersection;
  record_trace = config.record_trace;
  eager_goal_check = config.eager_goal_check;
  hom_max_nodes = config.hom_max_nodes;
}

namespace {

// Checkpoint text format helpers: everything is whitespace-separated
// integers behind a magic tag, so the format is portable and diffable.
// (Domain-value names live in Instance::Serialize, not here — a checkpoint
// holds only variable/tuple ids.)
void WriteIntVec(std::ostream& os, const std::vector<int>& v) {
  os << v.size();
  for (int x : v) os << ' ' << x;
  os << '\n';
}

// Untrusted-count discipline: a corrupt header can declare any element
// count, so deserializers never pre-size from it — they append one
// stream-checked element at a time (a lying count then fails at end of
// input instead of throwing length_error / OOMing on resize).
bool ReadIntVec(std::istream& is, std::vector<int>* v) {
  std::size_t n;
  if (!(is >> n)) return false;
  v->clear();
  for (std::size_t i = 0; i < n; ++i) {
    int x;
    if (!(is >> x)) return false;
    v->push_back(x);
  }
  return true;
}

void WriteValuation(std::ostream& os, const Valuation& v) {
  os << v.values.size() << '\n';
  for (const std::vector<int>& column : v.values) WriteIntVec(os, column);
}

bool ReadValuation(std::istream& is, Valuation* v) {
  std::size_t attrs;
  if (!(is >> attrs)) return false;
  v->values.clear();
  for (std::size_t a = 0; a < attrs; ++a) {
    std::vector<int> column;
    if (!ReadIntVec(is, &column)) return false;
    v->values.push_back(std::move(column));
  }
  return true;
}

// Bumped from tdckpt1 when the format gained fire_cap_this_pass,
// hom_candidates and the match-strategy shape fields (auto_burst,
// match_slice_ids, use_intersection); tdckpt1 files are rejected rather
// than resumed under the wrong shape.
constexpr char kCheckpointMagic[] = "tdckpt2";

}  // namespace

void ChaseCheckpoint::Serialize(std::ostream& os) const {
  os << kCheckpointMagic << ' ' << (valid ? 1 : 0) << '\n';
  if (!valid) return;
  os << delta_begin << ' ' << fired_this_pass << ' ' << fire_cap_this_pass
     << '\n';
  os << steps << ' ' << passes << ' ' << hom_nodes << ' ' << hom_candidates
     << ' ' << match_tasks << ' ' << carried_passes << '\n';
  os << (use_delta ? 1 : 0) << ' ' << max_fires_per_pass << ' '
     << (auto_burst ? 1 : 0) << ' ' << match_slice_ids << ' '
     << (use_intersection ? 1 : 0) << ' ' << (record_trace ? 1 : 0) << ' '
     << (eager_goal_check ? 1 : 0) << ' ' << hom_max_nodes << '\n';
  os << pending.size() << '\n';
  for (const PendingChaseStep& step : pending) {
    os << step.dep_index << '\n';
    WriteValuation(os, step.match);
    WriteIntVec(os, step.row_ids);
  }
  os << trace.size() << '\n';
  for (const ChaseStep& step : trace) {
    os << step.dependency_index << '\n';
    WriteValuation(os, step.body_match);
    WriteIntVec(os, step.new_tuples);
  }
}

Result<ChaseCheckpoint> ChaseCheckpoint::Deserialize(std::istream& is) {
  using R = Result<ChaseCheckpoint>;
  auto corrupt = [](const char* what) {
    return R::Error(ErrorCode::kCorrupt,
                    std::string("checkpoint: ") + what);
  };
  std::string magic;
  int valid_flag;
  if (!(is >> magic >> valid_flag)) return corrupt("truncated header");
  if (magic != kCheckpointMagic) return corrupt("bad magic");
  if (valid_flag != 0 && valid_flag != 1) return corrupt("bad valid flag");
  ChaseCheckpoint ckpt;
  if (valid_flag == 0) return ckpt;  // an empty (non-resumable) checkpoint
  ckpt.valid = true;
  int use_delta_flag, auto_burst_flag, intersect_flag, record_trace_flag,
      eager_flag;
  std::size_t num_pending, num_trace;
  if (!(is >> ckpt.delta_begin >> ckpt.fired_this_pass >>
        ckpt.fire_cap_this_pass >> ckpt.steps >> ckpt.passes >>
        ckpt.hom_nodes >> ckpt.hom_candidates >> ckpt.match_tasks >>
        ckpt.carried_passes >> use_delta_flag >> ckpt.max_fires_per_pass >>
        auto_burst_flag >> ckpt.match_slice_ids >> intersect_flag >>
        record_trace_flag >> eager_flag >> ckpt.hom_max_nodes >>
        num_pending)) {
    return corrupt("truncated counters/shape block");
  }
  ckpt.use_delta = use_delta_flag != 0;
  ckpt.auto_burst = auto_burst_flag != 0;
  ckpt.use_intersection = intersect_flag != 0;
  ckpt.record_trace = record_trace_flag != 0;
  ckpt.eager_goal_check = eager_flag != 0;
  // Same untrusted-count discipline as ReadIntVec: append, never resize.
  for (std::size_t i = 0; i < num_pending; ++i) {
    PendingChaseStep step;
    if (!(is >> step.dep_index) || !ReadValuation(is, &step.match) ||
        !ReadIntVec(is, &step.row_ids)) {
      return corrupt("truncated pending step");
    }
    ckpt.pending.push_back(std::move(step));
  }
  if (!(is >> num_trace)) return corrupt("missing trace count");
  for (std::size_t i = 0; i < num_trace; ++i) {
    ChaseStep step;
    if (!(is >> step.dependency_index) ||
        !ReadValuation(is, &step.body_match) ||
        !ReadIntVec(is, &step.new_tuples)) {
      return corrupt("truncated trace step");
    }
    ckpt.trace.push_back(std::move(step));
  }
  // Dependency/tuple/value id ranges are validated later by CompatibleWith
  // against the (deps, instance) the checkpoint is used with; here the
  // contract is only "no UB, no unchecked allocation, typed error".
  return ckpt;
}

std::string ChaseResult::ToString() const {
  std::ostringstream oss;
  oss << "chase: " << ChaseStatusName(status) << " after " << steps
      << " steps in " << passes << " passes (" << hom_nodes << " hom nodes)";
  return oss.str();
}

}  // namespace tdlib
