// The dual solver: effective inseparability made operational.
//
// The Main Theorem exhibits two disjoint r.e. sets of (D, D0) pairs —
// "implied everywhere" and "refuted by some finite database" — that no
// recursive set separates. Each side has its own semi-decision procedure:
// the chase (for implication) and finite-model enumeration (for finite
// refutation). The dual solver interleaves the two with growing budgets.
//
// On instances produced by the paper's reduction from the word problem, one
// of the two sides halts whenever the underlying word-problem instance lies
// in one of the Main Lemma's promise sets. Instances in the gap — D0 holds
// in all finite databases but fails in an infinite one, the phenomenon of
// Fagin et al. (1981) recalled in the introduction — are exactly where both
// sides run forever; with budgets, that surfaces as kUnknown.
#ifndef TDLIB_CHASE_DUAL_SOLVER_H_
#define TDLIB_CHASE_DUAL_SOLVER_H_

#include <atomic>
#include <string>

#include "chase/counterexample.h"
#include "chase/implication.h"

namespace tdlib {

/// Budgets for the interleaved procedure.
struct DualSolverConfig {
  /// Number of escalation rounds. Round k multiplies the base budgets by
  /// 2^k (chase steps) and adds k to the counterexample tuple bound.
  int rounds = 3;

  ChaseConfig base_chase;                  ///< chase budgets for round 0
  CounterexampleConfig base_counterexample;  ///< model-search budgets for round 0

  /// Escalation rounds resume the previous round's chase from its
  /// checkpoint instead of re-running it from scratch (round k re-derives
  /// nothing: it continues from the step-limit stop of round k-1). This is
  /// observably invisible — verdicts, counters and traces equal the
  /// re-running implementation's, because a resumed chase replays an
  /// uninterrupted run byte for byte — but on pumping instances it saves
  /// roughly half the total chase work across a geometric budget schedule.
  /// Off = the historical re-run-from-scratch behavior (ablation baseline).
  /// One caveat: under a binding wall-clock deadline, resume lets a round
  /// get FURTHER than a from-scratch re-run would have in the same time;
  /// deadline-bound runs are nondeterministic in either mode.
  bool resume_chase = true;

  /// Optional cooperative cancel flag (JobHandle::Cancel routes here).
  /// Observed between phases and, through ChaseConfig/CounterexampleConfig,
  /// inside them; a cancelled solve stops promptly and reports kUnknown.
  /// Null disables; must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
};

/// What the dual solver concluded.
enum class DualVerdict {
  kImplied,             ///< the chase reached D0's conclusion
  kRefutedFinite,       ///< a finite database satisfies D, violates D0
  kRefutedByFixpoint,   ///< chase fixpoint: the (finite) universal model refutes
  kUnknown,             ///< all rounds exhausted
};

struct DualResult {
  DualVerdict verdict = DualVerdict::kUnknown;
  int rounds_used = 0;
  ImplicationResult implication;       ///< last chase attempt
  CounterexampleResult counterexample; ///< last model-search attempt

  std::string ToString() const;
};

/// Runs chase and finite-model search in alternation with escalating
/// budgets until either side produces a certificate.
DualResult SolveImplication(const DependencySet& d, const Dependency& d0,
                            const DualSolverConfig& config = {});

/// Session-threading variant: the chase side runs through `session`
/// (chase/implication.h), so a kUnknown exit leaves the pumped instance and
/// its checkpoint behind and a LATER call — JobHandle::ResumeWithBudget with
/// bigger budgets — continues where this one stopped instead of starting
/// over. The escalation rounds inside one call always resume each other
/// (config.resume_chase); the session extends that across calls.
/// session == nullptr degrades to the plain overload.
DualResult SolveImplication(const DependencySet& d, const Dependency& d0,
                            const DualSolverConfig& config,
                            ChaseSession* session);

}  // namespace tdlib

#endif  // TDLIB_CHASE_DUAL_SOLVER_H_
