// The dual solver: effective inseparability made operational.
//
// The Main Theorem exhibits two disjoint r.e. sets of (D, D0) pairs —
// "implied everywhere" and "refuted by some finite database" — that no
// recursive set separates. Each side has its own semi-decision procedure:
// the chase (for implication) and finite-model enumeration (for finite
// refutation). The dual solver interleaves the two with growing budgets.
//
// On instances produced by the paper's reduction from the word problem, one
// of the two sides halts whenever the underlying word-problem instance lies
// in one of the Main Lemma's promise sets. Instances in the gap — D0 holds
// in all finite databases but fails in an infinite one, the phenomenon of
// Fagin et al. (1981) recalled in the introduction — are exactly where both
// sides run forever; with budgets, that surfaces as kUnknown.
#ifndef TDLIB_CHASE_DUAL_SOLVER_H_
#define TDLIB_CHASE_DUAL_SOLVER_H_

#include <string>

#include "chase/counterexample.h"
#include "chase/implication.h"

namespace tdlib {

/// Budgets for the interleaved procedure.
struct DualSolverConfig {
  /// Number of escalation rounds. Round k multiplies the base budgets by
  /// 2^k (chase steps) and adds k to the counterexample tuple bound.
  int rounds = 3;

  ChaseConfig base_chase;                  ///< chase budgets for round 0
  CounterexampleConfig base_counterexample;  ///< model-search budgets for round 0
};

/// What the dual solver concluded.
enum class DualVerdict {
  kImplied,             ///< the chase reached D0's conclusion
  kRefutedFinite,       ///< a finite database satisfies D, violates D0
  kRefutedByFixpoint,   ///< chase fixpoint: the (finite) universal model refutes
  kUnknown,             ///< all rounds exhausted
};

struct DualResult {
  DualVerdict verdict = DualVerdict::kUnknown;
  int rounds_used = 0;
  ImplicationResult implication;       ///< last chase attempt
  CounterexampleResult counterexample; ///< last model-search attempt

  std::string ToString() const;
};

/// Runs chase and finite-model search in alternation with escalating
/// budgets until either side produces a certificate.
DualResult SolveImplication(const DependencySet& d, const Dependency& d0,
                            const DualSolverConfig& config = {});

}  // namespace tdlib

#endif  // TDLIB_CHASE_DUAL_SOLVER_H_
