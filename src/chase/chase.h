// The chase: the canonical fixpoint procedure for implicational dependencies.
//
// A chase step takes a dependency body => head and a homomorphism h of the
// body into the current instance such that h does not extend to the head; it
// then inserts the head rows under h, inventing a fresh labeled null for
// every existential variable. The chase repeats until no step applies
// (fixpoint), a goal is reached, or a resource limit trips.
//
// This is the engine behind direction (A) of the paper's Reduction Theorem:
// the paper's induction "check by induction on j = 0..m that [a bridge for
// u_j exists]" is, operationally, a chase derivation, and tdlib executes it.
// Because TD inference is undecidable (the paper's main result!), the chase
// need not terminate; all entry points take explicit budgets.
#ifndef TDLIB_CHASE_CHASE_H_
#define TDLIB_CHASE_CHASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/dependency.h"
#include "logic/homomorphism.h"
#include "logic/instance.h"
#include "util/executor.h"
#include "util/status.h"

namespace tdlib {

/// Resource limits and knobs for a chase run.
struct ChaseConfig {
  /// Stop after this many chase steps (tuple-inserting fires). 0 = no limit.
  std::uint64_t max_steps = 100000;

  /// Stop once the instance holds this many tuples. 0 = no limit.
  std::uint64_t max_tuples = 1000000;

  /// Wall-clock budget in seconds. <= 0 = no limit.
  double deadline_seconds = 0;

  /// Budget for each homomorphism search (0 = unlimited).
  std::uint64_t hom_max_nodes = 0;

  /// Record a ChaseStep entry per fire (needed by the part (A) tracer).
  bool record_trace = false;

  /// Check the goal after every fire (true) or only after every pass.
  bool eager_goal_check = true;

  /// Delta-driven (semi-naive) matching: each pass re-matches a dependency
  /// body only against valuations that touch at least one tuple inserted
  /// since the previous pass, plus the carried-over steps earlier passes
  /// collected but did not fire. Produces byte-identical instances, traces
  /// and statuses to the naive mode while doing asymptotically less
  /// re-matching per pass. Off = naive re-matching of the whole instance
  /// every pass (the ablation baseline).
  bool use_delta = true;

  /// Fire at most this many steps per pass (0 = all applicable steps).
  /// Bounding the burst keeps per-pass latency and instance growth smooth —
  /// an unbounded pass can fire tens of thousands of steps on a pumping
  /// instance — and it is the regime where delta matching pays most: with
  /// small per-pass deltas, naive full re-matching dominates the run.
  /// Unfired steps are carried to the next pass (delta mode) or re-found by
  /// the full re-match (naive mode); both modes stay byte-identical.
  std::uint64_t max_fires_per_pass = 0;

  /// Auto-tune the per-pass burst from the observed growth rate: a pass
  /// whose delta is the majority of the instance (geometric pumping — most
  /// matches are genuinely new, capping only adds carried re-check work)
  /// runs uncapped; a flat-growth pass is capped at max_fires_per_pass (or
  /// 64 when that is 0), the regime where bounded bursts keep latency
  /// smooth and delta matching pays most. The per-pass cap is a pure
  /// function of (delta size, instance size), so runs stay deterministic
  /// and checkpoints record the interrupted pass's cap. Off by default;
  /// tdbatch enables it (--no-auto-burst ablates).
  bool auto_burst = false;

  /// Work stealing for few-member passes: split each semi-naive partition
  /// member's seed-row delta range into sub-tasks of this many tuple ids
  /// (0 = never split). A pass over one wide dependency produces only
  /// |body rows| partition members — fewer than the pool on a big delta —
  /// so slicing is what lets even 1-dependency chases use all cores. The
  /// slicing is a pure function of (config, delta), NOT of the pool width,
  /// so hom_nodes/match_tasks — and with them every instance, trace and
  /// status — stay byte-identical at any thread count, serial included.
  std::uint64_t match_slice_ids = 4096;

  /// Intersect all bound-position posting lists when picking a row's
  /// candidates (HomSearchOptions::use_intersection). Node-for-node
  /// identical searches; only candidate filtering work and wall time move.
  /// Off = the single-list ablation baseline.
  bool use_intersection = true;

  /// Block-at-a-time candidate evaluation with the util/simd.h kernels
  /// (HomSearchOptions::use_simd). Unlike use_intersection this is NOT
  /// checkpoint shape: it leaves every counter — hom_nodes AND
  /// hom_candidates — and every output byte identical, so a checkpoint
  /// taken with it on resumes with it off (and vice versa) without a
  /// format bump. Off = the scalar ablation baseline (tdbatch --no-simd).
  bool use_simd = true;

  /// Optional thread pool for the matching phase. Each pass's match tasks —
  /// carried-step re-checks plus one body search per dependency (or per
  /// semi-naive partition member (dependency, seed row)) — are independent
  /// read-only searches over the pass-start instance; with a pool they fan
  /// out across workers, collect pending steps into per-task buffers, and
  /// merge in the canonical (dependency, body-image) order, so the fired
  /// steps — and therefore instances, traces and statuses — are
  /// byte-identical to a serial run at ANY thread count. Null (the default)
  /// is the serial fallback used by --naive-chase and single-thread
  /// ablations. Firing, tracing and goal checks always stay on the calling
  /// thread; the instance is never mutated while match tasks run. The
  /// byte-identity guarantee is scoped exactly like use_delta's: a binding
  /// hom_max_nodes or deadline_seconds can stop serial and pooled runs at
  /// different points (a budget trip in one task cancels its siblings
  /// through a shared atomic flag, so hom_nodes and statuses may then
  /// diverge).
  TaskExecutor* pool = nullptr;

  /// Optional cooperative cancel flag (the engine's JobHandle::Cancel routes
  /// here). Observed inside every homomorphism search on the amortized
  /// ~512-node cadence (HomSearchOptions::job_cancel), once per enumerated
  /// body match, and between fires — so even a pumping chase stops within
  /// one cadence interval of the flag being raised. A trip reports
  /// ChaseStatus::kCancelled and never produces a resumable checkpoint
  /// (searches were cut mid-stream). Null disables; must outlive the run.
  const std::atomic<bool>* cancel = nullptr;

  HomSearchOptions HomOptions() const {
    HomSearchOptions o;
    o.max_nodes = hom_max_nodes;
    o.use_intersection = use_intersection;
    o.use_simd = use_simd;
    return o;
  }
};

/// Why the chase stopped.
enum class ChaseStatus {
  kFixpoint,    ///< no dependency is applicable: the result is a universal model
  kGoal,        ///< the caller-supplied goal predicate became true
  kStepLimit,   ///< max_steps exhausted
  kTupleLimit,  ///< max_tuples exhausted
  kTimeout,     ///< deadline exceeded
  kHomBudget,   ///< a homomorphism search ran out of nodes (result unreliable)
  kCancelled,   ///< ChaseConfig::cancel was raised mid-run
  kResourceExhausted,  ///< an allocation failed between fires; the run parked
                       ///  a resumable checkpoint instead of aborting, so a
                       ///  later (or less memory-pressured) call continues it
};

/// One fired chase step (recorded when ChaseConfig::record_trace is set).
struct ChaseStep {
  int dependency_index;          ///< which dependency fired
  Valuation body_match;          ///< the triggering body homomorphism
  std::vector<int> new_tuples;   ///< ids of inserted tuples
};

/// Outcome of a chase run.
struct ChaseResult {
  ChaseStatus status = ChaseStatus::kFixpoint;
  std::uint64_t steps = 0;          ///< fires
  std::uint64_t passes = 0;         ///< full scans over the dependency set
  std::uint64_t hom_nodes = 0;      ///< total homomorphism search nodes
  std::uint64_t hom_candidates = 0; ///< candidate tuples tried across all
                                    ///  searches (what intersection prunes;
                                    ///  unlike hom_nodes it is NOT invariant
                                    ///  across use_intersection modes)
  std::uint64_t match_tasks = 0;    ///< match-phase tasks (parallel units)
  std::uint64_t carried_passes = 0; ///< passes entered with carried pending
                                    ///  steps (burst-cap backlog re-checks)
  std::vector<ChaseStep> trace;     ///< populated when record_trace

  // Wall-clock phase breakdown (seconds). Measurement-only: excluded from
  // every determinism comparison, absent from the checkpoint format (a
  // resumed run restarts them at zero — they describe THIS run's wall time,
  // not the logical derivation), and never read back by the chase itself.
  double match_seconds = 0;       ///< matching phases (enumeration + merge)
  double fire_seconds = 0;        ///< firing phases (witness re-check + fire)
  double checkpoint_seconds = 0;  ///< checkpoint capture on budget stops

  std::string ToString() const;
};

/// One collected-but-not-yet-fired chase step: the dependency, the body
/// match, and the body image (the tuple id each body row maps to, in tableau
/// row order — the canonical fire-order sort key). This is the unit the
/// burst cap carries between passes and the unit a ChaseCheckpoint persists.
struct PendingChaseStep {
  int dep_index;
  Valuation match;
  std::vector<int> row_ids;
};

/// The complete resumable state of a budget-stopped chase, minus the
/// instance itself (the caller owns that; ChaseSession in chase/implication.h
/// bundles the two, and Instance::Serialize persists the tuple arena).
///
/// A checkpoint is taken exactly when a run stops DETERMINISTICALLY inside
/// the firing phase — kStepLimit or kTupleLimit, the two budgets the dual
/// solver's escalation rounds raise. Those stops happen between fires, with
/// the instance in a well-defined state and the remaining pending steps in
/// hand, so a resumed run replays the continuation of an uninterrupted run
/// byte for byte: same tuples, same invented nulls, same trace, same
/// cumulative counters. Nondeterministic stops (kTimeout, kHomBudget,
/// kCancelled) cut homomorphism searches mid-stream and leave no checkpoint
/// (valid stays false); resuming after one falls back to a fresh run.
///
/// Counters are cumulative: a resumed ChaseResult continues them, so its
/// totals equal an uninterrupted run's — which is what keeps the dual
/// solver's escalation-resume invisible in DeterministicSummary.
struct ChaseCheckpoint {
  bool valid = false;

  // ---- Resume point (inside the firing phase of pass `passes`) ----------
  std::size_t delta_begin = 0;      ///< frontier: ids >= this are the delta
  std::uint64_t fired_this_pass = 0;  ///< burst-cap progress within the pass
  std::uint64_t fire_cap_this_pass = 0;  ///< the interrupted pass's effective
                                         ///  burst cap (auto_burst decides it
                                         ///  per pass; 0 = uncapped)
  std::vector<PendingChaseStep> pending;  ///< still-unfired steps, canonical
                                          ///  (dep, body-image) order

  // ---- Cumulative counters (ChaseResult so far) -------------------------
  std::uint64_t steps = 0;
  std::uint64_t passes = 0;
  std::uint64_t hom_nodes = 0;
  std::uint64_t hom_candidates = 0;
  std::uint64_t match_tasks = 0;
  std::uint64_t carried_passes = 0;
  std::vector<ChaseStep> trace;     ///< populated when record_trace

  // ---- Config shape the checkpoint was taken under ----------------------
  // Resuming under a different shape would diverge from an uninterrupted
  // run; ResumableWith refuses and the caller starts fresh instead. The
  // match-strategy knobs are shape too: auto_burst moves pass boundaries
  // (like max_fires_per_pass), and match_slice_ids / use_intersection —
  // though invisible in the chase's output bytes — change the cumulative
  // counters, which a resumed run must reproduce exactly.
  bool use_delta = true;
  std::uint64_t max_fires_per_pass = 0;
  bool auto_burst = false;
  std::uint64_t match_slice_ids = 0;
  bool use_intersection = true;
  bool record_trace = false;
  bool eager_goal_check = true;
  std::uint64_t hom_max_nodes = 0;

  /// True iff this checkpoint belongs with (config-shape, instance, deps):
  /// it is valid, the config shape matches, and — because checkpoints may
  /// arrive from disk — every pending and trace entry's dependency index,
  /// tuple ids and valuation are in range for the given dependency set and
  /// instance (a corrupt file fails here, not as an out-of-bounds access
  /// inside RunChase or a trace consumer). Budgets are NOT considered: a
  /// compatible checkpoint whose progress exceeds the current budgets is
  /// worth keeping for a later, bigger-budget round.
  bool CompatibleWith(const ChaseConfig& config, const Instance& instance,
                      const DependencySet& deps) const;

  /// True iff `config`'s step/tuple budgets exceed the recorded progress —
  /// resuming under budgets at or below it would stop after at most one
  /// fire instead of replaying an uninterrupted run.
  bool BudgetsExceedProgress(const ChaseConfig& config,
                             const Instance& instance) const;

  /// CompatibleWith && BudgetsExceedProgress: safe to hand to RunChase.
  bool ResumableWith(const ChaseConfig& config, const Instance& instance,
                     const DependencySet& deps) const {
    return CompatibleWith(config, instance, deps) &&
           BudgetsExceedProgress(config, instance);
  }

  /// Remembers `config`'s shape fields (called when the checkpoint is taken).
  void CaptureShape(const ChaseConfig& config);

  void Reset() { *this = ChaseCheckpoint(); }

  /// Text round-trip (whitespace-separated; Valuations and traces included).
  /// Deserialize treats the stream as untrusted: every count and flag is
  /// bounds-checked and malformed input yields ErrorCode::kCorrupt with a
  /// field-level message — never UB, a crash, or an unchecked allocation.
  void Serialize(std::ostream& os) const;
  static Result<ChaseCheckpoint> Deserialize(std::istream& is);
};

/// A goal predicate evaluated against the evolving instance; the chase stops
/// with kGoal when it returns true. May be empty.
using ChaseGoal = std::function<bool(const Instance&)>;

/// Runs the (standard/restricted) chase of `instance` with `deps` in place.
///
/// The pass strategy is breadth-first and fair: each pass enumerates all
/// applicable (dependency, body-match) pairs against the pass-start instance,
/// re-verifies applicability immediately before firing (an earlier fire in
/// the same pass may have satisfied the head), then fires. Fixpoint is a
/// pass with zero fires.
///
/// Applicable steps collected in a pass are fired in canonical
/// (dependency index, body image) order — the body image being the tuple
/// ids the body rows map to — so the fire order is a function of the *set*
/// of applicable steps, not of how the matcher enumerated them.
///
/// With ChaseConfig::use_delta (the default), pass k only enumerates body
/// matches touching a tuple inserted during pass k-1 (the semi-naive
/// partition: seed row in the delta, earlier rows old, later rows free).
/// This is sound and complete for the pass discipline above: a match wholly
/// inside the pass-(k-1) instance was already enumerated then, and was
/// either fired (its head rows are now present) or skipped as witnessed —
/// both leave it head-witnessed forever, since tuples are only ever added.
/// Identical pending sets + canonical fire order make the fired steps — and
/// hence tuple ids, labeled nulls, traces and the terminal instance —
/// byte-identical to the naive mode. The guarantee is scoped to runs where
/// no per-search node budget or deadline trips: the two modes split the
/// matching work into different searches, so a binding hom_max_nodes or
/// deadline_seconds can stop them at different points (statuses may then
/// differ, e.g. kHomBudget in one mode only).
///
/// With ChaseConfig::pool set, the match tasks of each pass run
/// concurrently on the pool while the instance is read-only; the canonical
/// merge makes the result byte-identical to the serial run at any thread
/// count (same budget-trip caveat as above). Firing is always serial.
ChaseResult RunChase(Instance* instance, const DependencySet& deps,
                     const ChaseConfig& config, const ChaseGoal& goal = {});

/// Resumable variant. `checkpoint` is in/out:
///
///   * On entry, if checkpoint->valid, the run CONTINUES from it instead of
///     starting a first pass — `instance` must be the very instance (or a
///     restored copy) the checkpoint was taken against, and the caller must
///     have verified checkpoint->ResumableWith(config, *instance, deps). The
///     checkpoint is consumed (valid flips false).
///   * On exit, if the run stopped at kStepLimit or kTupleLimit, the
///     checkpoint is refilled (valid = true) so a later call — possibly in
///     another process, via Instance/ChaseCheckpoint serialization — can
///     continue. Any other stop leaves it invalid.
///
/// Interrupted-vs-uninterrupted byte-identity: for any budgets B1 < B2,
/// running to B1, checkpointing, and resuming to B2 yields the same
/// ChaseResult (status, counters, trace) and the same instance as one
/// uninterrupted run to B2. tests/checkpoint_test.cc enforces this across
/// workload families, including through a serialize/deserialize round trip.
ChaseResult RunChase(Instance* instance, const DependencySet& deps,
                     const ChaseConfig& config, const ChaseGoal& goal,
                     ChaseCheckpoint* checkpoint);

/// Returns true iff `dep` has a body match in `instance` that does not
/// extend to its head (i.e. a chase step is applicable). Exposed for tests
/// and the termination analyzer.
bool HasApplicableStep(const Dependency& dep, const Instance& instance,
                       const HomSearchOptions& options = {});

/// Human-readable name of a status.
std::string_view ChaseStatusName(ChaseStatus status);

}  // namespace tdlib

#endif  // TDLIB_CHASE_CHASE_H_
