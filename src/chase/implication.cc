#include "chase/implication.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/metrics.h"

namespace tdlib {

namespace {

// Session-continuation accounting: how often an escalation round continued
// a checkpoint, started over, or ran beside a parked session. Control-path
// counters (once per ChaseImplies), internally gated on MetricsEnabled.
struct SessionMetrics {
  Counter* resumes;
  Counter* fresh_starts;
  Counter* parked;
};

SessionMetrics& ImplicationMetrics() {
  static SessionMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    auto* sm = new SessionMetrics();
    sm->resumes = r.GetCounter("chase.session_resumes");
    sm->fresh_starts = r.GetCounter("chase.session_fresh_starts");
    sm->parked = r.GetCounter("chase.session_parked_rounds");
    return sm;
  }();
  return *m;
}

}  // namespace

std::uint64_t QuestionFingerprint(const DependencySet& d,
                                  const Dependency& d0) {
  // FNV-1a over the structural content — arity, then every body/head row's
  // variable ids with separators. No pretty-printing, no allocation: this
  // runs once per session-threaded ChaseImplies call (i.e. per escalation
  // round), so it must stay linear in the rows and cheap. Stable across
  // processes, and sensitive to any change in the dependencies or the goal
  // at the id level — which is exactly the granularity the chase sees.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
  };
  auto mix_tableau = [&](const Tableau& t, int arity) {
    mix(0xabcdefULL);  // tableau separator
    for (const Row& row : t.rows()) {
      mix(0x123456ULL);  // row separator
      for (int attr = 0; attr < arity; ++attr) {
        mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(row[attr])));
      }
    }
  };
  auto mix_dependency = [&](const Dependency& dep) {
    const int arity = dep.schema().arity();
    mix(static_cast<std::uint64_t>(arity));
    mix_tableau(dep.body(), arity);
    mix_tableau(dep.head(), arity);
  };
  for (const Dependency& dep : d.items) mix_dependency(dep);
  mix(0xfedcbaULL);  // goal separator
  mix_dependency(d0);
  return h;
}

void ChaseSession::Serialize(std::ostream& os) const {
  os << "tdsess1 " << question_fingerprint << ' '
     << (instance.has_value() ? 1 : 0) << '\n';
  if (instance.has_value()) instance->Serialize(os);
  checkpoint.Serialize(os);
}

Result<ChaseSession> ChaseSession::Deserialize(const SchemaPtr& schema,
                                               std::istream& is) {
  using R = Result<ChaseSession>;
  std::string magic;
  std::uint64_t fingerprint;
  int has_instance;
  if (!(is >> magic >> fingerprint >> has_instance)) {
    return R::Error(ErrorCode::kCorrupt, "session: truncated header");
  }
  if (magic != "tdsess1") {
    return R::Error(ErrorCode::kCorrupt, "session: bad magic");
  }
  if (has_instance != 0 && has_instance != 1) {
    return R::Error(ErrorCode::kCorrupt, "session: bad instance flag");
  }
  ChaseSession session;
  session.question_fingerprint = fingerprint;
  if (has_instance != 0) {
    Result<Instance> instance = Instance::Deserialize(schema, is);
    if (!instance.ok()) {
      return R::Error(instance.code(), "session: " + instance.error());
    }
    session.instance = std::move(instance).value();
  }
  Result<ChaseCheckpoint> ckpt = ChaseCheckpoint::Deserialize(is);
  if (!ckpt.ok()) return R::Error(ckpt.code(), "session: " + ckpt.error());
  session.checkpoint = std::move(ckpt).value();
  return session;
}

ChaseGoal ConclusionGoal(const Dependency& d0, HomSearchOptions options) {
  return [&d0, options](const Instance& instance) {
    // The frozen body assigned value id v to universal variable (attr, v);
    // those ids are stable because the chase only appends values.
    HomomorphismSearch search(d0.head(), instance, options);
    Valuation initial = Valuation::For(d0.head());
    for (int attr = 0; attr < d0.schema().arity(); ++attr) {
      for (int v = 0; v < d0.head().NumVars(attr); ++v) {
        if (d0.IsUniversal(attr, v)) initial.Set(attr, v, v);
      }
    }
    search.SetInitial(initial);
    return search.FindAny(nullptr) == HomSearchStatus::kFound;
  };
}

ImplicationResult ChaseImplies(const DependencySet& d, const Dependency& d0,
                               const ChaseConfig& config) {
  return ChaseImplies(d, d0, config, /*session=*/nullptr);
}

ImplicationResult ChaseImplies(const DependencySet& d, const Dependency& d0,
                               const ChaseConfig& config,
                               ChaseSession* session) {
  ImplicationResult result;
  ChaseSession local;
  ChaseSession* s = session != nullptr ? session : &local;
  // A session checkpoint whose recorded progress already exceeds this
  // call's budgets is kept PARKED: this round chases a fresh throwaway
  // instance, and a later round (or resume) with bigger budgets continues
  // the parked state — destroying it here would silently re-derive
  // everything ResumeWithBudget promised to keep.
  bool parked = false;
  if (session == nullptr) {
    // Sessionless: no resume to consider, so skip the fingerprint (a full
    // structural hash of the dependency set — waste on every legacy call).
    s->instance.emplace(d0.body().Freeze());
  } else {
    const std::uint64_t fingerprint = QuestionFingerprint(d, d0);
    const bool compatible =
        s->question_fingerprint == fingerprint && s->CanResume() &&
        s->checkpoint.CompatibleWith(config, *s->instance, d);
    if (compatible &&
        !s->checkpoint.BudgetsExceedProgress(config, *s->instance)) {
      parked = true;
      ImplicationMetrics().parked->Add(1);
    } else if (compatible) {
      // The session checkpoint will actually be consumed by RunChase below.
      ImplicationMetrics().resumes->Add(1);
    } else {
      // Fresh start: freeze D0's antecedents and chase from scratch. A
      // stale, shape-mismatched, or other-question checkpoint must not
      // survive into RunChase.
      s->Reset();
      s->instance.emplace(d0.body().Freeze());
      s->question_fingerprint = fingerprint;
      ImplicationMetrics().fresh_starts->Add(1);
    }
  }
  if (parked) {
    local.instance.emplace(d0.body().Freeze());
    s = &local;  // this round runs beside the parked session, not over it
  }
  ChaseGoal goal = ConclusionGoal(d0, config.HomOptions());
  // Sessionless (and parked-round) callers get no checkpoint plumbing at
  // all — taking one copies the whole trace and pending tail at every
  // budget stop, pure waste when the state dies at return.
  result.chase = RunChase(&*s->instance, d, config, goal,
                          session != nullptr && !parked ? &s->checkpoint
                                                        : nullptr);
  switch (result.chase.status) {
    case ChaseStatus::kGoal:
      result.verdict = Implication::kImplied;
      // Certificate reached: nothing left to resume — clear the caller's
      // session even if this round ran beside it.
      if (session != nullptr) session->Reset();
      s->Reset();
      break;
    case ChaseStatus::kFixpoint:
      result.verdict = Implication::kNotImplied;
      result.counterexample = std::move(*s->instance);
      if (session != nullptr) session->Reset();
      s->Reset();
      break;
    default:
      result.verdict = Implication::kUnknown;
      // kStepLimit/kTupleLimit left a valid checkpoint in the session; any
      // other stop left it invalid, and the next call starts fresh. A
      // parked session is untouched and waits for a bigger budget.
      break;
  }
  return result;
}

std::string ImplicationResult::ToString() const {
  std::ostringstream oss;
  switch (verdict) {
    case Implication::kImplied: oss << "IMPLIED"; break;
    case Implication::kNotImplied: oss << "NOT-IMPLIED"; break;
    case Implication::kUnknown: oss << "UNKNOWN"; break;
  }
  oss << " (" << chase.ToString() << ")";
  return oss.str();
}

}  // namespace tdlib
