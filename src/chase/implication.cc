#include "chase/implication.h"

#include <sstream>

namespace tdlib {

ChaseGoal ConclusionGoal(const Dependency& d0, HomSearchOptions options) {
  return [&d0, options](const Instance& instance) {
    // The frozen body assigned value id v to universal variable (attr, v);
    // those ids are stable because the chase only appends values.
    HomomorphismSearch search(d0.head(), instance, options);
    Valuation initial = Valuation::For(d0.head());
    for (int attr = 0; attr < d0.schema().arity(); ++attr) {
      for (int v = 0; v < d0.head().NumVars(attr); ++v) {
        if (d0.IsUniversal(attr, v)) initial.Set(attr, v, v);
      }
    }
    search.SetInitial(initial);
    return search.FindAny(nullptr) == HomSearchStatus::kFound;
  };
}

ImplicationResult ChaseImplies(const DependencySet& d, const Dependency& d0,
                               const ChaseConfig& config) {
  ImplicationResult result;
  Instance instance = d0.body().Freeze();
  ChaseGoal goal = ConclusionGoal(d0, config.HomOptions());
  result.chase = RunChase(&instance, d, config, goal);
  switch (result.chase.status) {
    case ChaseStatus::kGoal:
      result.verdict = Implication::kImplied;
      break;
    case ChaseStatus::kFixpoint:
      result.verdict = Implication::kNotImplied;
      result.counterexample = std::move(instance);
      break;
    default:
      result.verdict = Implication::kUnknown;
      break;
  }
  return result;
}

std::string ImplicationResult::ToString() const {
  std::ostringstream oss;
  switch (verdict) {
    case Implication::kImplied: oss << "IMPLIED"; break;
    case Implication::kNotImplied: oss << "NOT-IMPLIED"; break;
    case Implication::kUnknown: oss << "UNKNOWN"; break;
  }
  oss << " (" << chase.ToString() << ")";
  return oss.str();
}

}  // namespace tdlib
