// Decision procedure for FULL template dependencies.
//
// The undecidability frontier runs between full and embedded dependencies:
// for full TDs ("a*, b*, ..., c* all appear among the antecedents") the
// chase invents no new values, so it adds at most (values per column)^arity
// tuples and always terminates — implication of a full TD by full TDs is
// decidable. Sadri & Ullman (1980) gave a complete axiomatization for this
// class; the terminating chase below is the standard equivalent decision
// procedure, and serves as the library's decidable baseline (EXP-AX).
#ifndef TDLIB_CHASE_FULL_TD_H_
#define TDLIB_CHASE_FULL_TD_H_

#include <string>

#include "chase/chase.h"
#include "core/dependency.h"

namespace tdlib {

/// Returns true iff every dependency in `d` and `d0` itself is full.
bool AllFull(const DependencySet& d, const Dependency& d0);

/// Decides D ⊨ D0 for full dependencies. Always terminates; the boolean is
/// a definitive answer. Precondition: AllFull(d, d0) (checked; violations
/// are reported through `error`, and the return value is then meaningless).
bool DecideFullTdImplication(const DependencySet& d, const Dependency& d0,
                             std::string* error = nullptr,
                             ChaseResult* stats = nullptr);

/// Upper bound on the number of tuples a full-TD chase of `d0`'s frozen
/// body can reach (product over attributes of body-variable counts). Used
/// by tests to confirm termination happens within the guaranteed budget.
std::uint64_t FullChaseTupleBound(const Dependency& d0);

}  // namespace tdlib

#endif  // TDLIB_CHASE_FULL_TD_H_
