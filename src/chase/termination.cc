#include "chase/termination.h"

#include <sstream>

#include "util/union_find.h"

namespace tdlib {

PositionGraph BuildPositionGraph(const DependencySet& deps) {
  PositionGraph graph;
  if (deps.items.empty()) return graph;
  graph.num_positions = deps.items[0].schema().arity();
  graph.edges.resize(graph.num_positions);

  for (const Dependency& dep : deps.items) {
    const int arity = dep.schema().arity();
    // Head positions carrying an existential variable (per dependency).
    std::vector<bool> head_has_existential(arity, false);
    // head_positions_of[attr][var] = true if universal var occurs in head.
    std::vector<std::vector<bool>> var_in_head(arity);
    for (int attr = 0; attr < arity; ++attr) {
      var_in_head[attr].assign(dep.head().NumVars(attr), false);
    }
    for (const Row& row : dep.head().rows()) {
      for (int attr = 0; attr < arity; ++attr) {
        if (dep.IsUniversal(attr, row[attr])) {
          var_in_head[attr][row[attr]] = true;
        } else {
          head_has_existential[attr] = true;
        }
      }
    }
    // In the single-relation typed setting a variable at body position
    // `attr` can only reappear in the head at the same position, so regular
    // edges are attr -> attr; special edges go to every position holding an
    // existential variable, from every body position whose variable is
    // propagated to the head.
    for (const Row& row : dep.body().rows()) {
      for (int attr = 0; attr < arity; ++attr) {
        int var = row[attr];
        if (var_in_head[attr][var]) {
          graph.edges[attr].emplace_back(attr, /*special=*/false);
          for (int q = 0; q < arity; ++q) {
            if (head_has_existential[q]) {
              graph.edges[attr].emplace_back(q, /*special=*/true);
            }
          }
        }
      }
    }
  }
  return graph;
}

bool HasSpecialCycle(const PositionGraph& graph) {
  // A special edge p => q lies on a cycle iff q reaches p. Compute pairwise
  // reachability (positions are few; O(V * E) suffices).
  const int n = graph.num_positions;
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (int start = 0; start < n; ++start) {
    std::vector<int> stack{start};
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (const auto& [v, special] : graph.edges[u]) {
        if (!reach[start][v]) {
          reach[start][v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  for (int p = 0; p < n; ++p) {
    for (const auto& [q, special] : graph.edges[p]) {
      if (special && (q == p || reach[q][p])) return true;
    }
  }
  return false;
}

bool IsWeaklyAcyclic(const DependencySet& deps) {
  return !HasSpecialCycle(BuildPositionGraph(deps));
}

std::string PositionGraph::ToString(const Schema& schema) const {
  std::ostringstream oss;
  for (int p = 0; p < num_positions; ++p) {
    for (const auto& [q, special] : edges[p]) {
      oss << schema.name(p) << (special ? " => " : " -> ") << schema.name(q)
          << "\n";
    }
  }
  return oss.str();
}

}  // namespace tdlib
