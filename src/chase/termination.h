// Chase-termination analysis: weak acyclicity.
//
// Implication of TDs is undecidable (this paper), so no analysis can decide
// chase termination in general — but *sufficient* conditions exist. The
// classic one is weak acyclicity (Fagin, Kolaitis, Miller & Popa): build a
// graph over relation positions; a body variable occurring at position p
// contributes (a) a regular edge p -> q for every head occurrence of the
// same variable at q, and (b) a special edge p => q' for every position q'
// holding an existential head variable in a head atom of that dependency.
// The set is weakly acyclic iff no cycle passes through a special edge, and
// then every chase sequence terminates in polynomially many steps.
//
// In tdlib's single-relation setting positions are simply attributes. A
// satisfying check: the Gurevich-Lewis reduction's dependency set is NOT
// weakly acyclic (its D2/D3 gadgets pump fresh midpoints through E'), which
// is exactly as it must be — a weakly acyclic reduction would contradict the
// paper's theorem.
#ifndef TDLIB_CHASE_TERMINATION_H_
#define TDLIB_CHASE_TERMINATION_H_

#include <string>
#include <vector>

#include "core/dependency.h"

namespace tdlib {

/// The position dependency graph of a dependency set.
struct PositionGraph {
  int num_positions = 0;
  /// adjacency[p] lists (q, special?) edges.
  std::vector<std::vector<std::pair<int, bool>>> edges;

  std::string ToString(const Schema& schema) const;
};

/// Builds the position graph of `deps`.
PositionGraph BuildPositionGraph(const DependencySet& deps);

/// True iff the graph has a cycle containing at least one special edge.
bool HasSpecialCycle(const PositionGraph& graph);

/// True iff `deps` is weakly acyclic (sufficient for chase termination on
/// every input instance).
bool IsWeaklyAcyclic(const DependencySet& deps);

}  // namespace tdlib

#endif  // TDLIB_CHASE_TERMINATION_H_
