// Human-readable rendering of chase traces.
//
// A recorded ChaseStep stores the dependency index and the body valuation;
// this module turns a trace into the derivation-log form used by the
// examples and by debugging sessions: which dependency fired, under which
// variable bindings, producing which tuples.
#ifndef TDLIB_CHASE_TRACE_H_
#define TDLIB_CHASE_TRACE_H_

#include <string>

#include "chase/chase.h"
#include "core/dependency.h"
#include "logic/instance.h"

namespace tdlib {

/// Renders one step like:
///   fire D2(A B = C): a0 -> v3@A', ... => tuple 17
/// `instance` must be the (final) instance the chase produced, so tuple ids
/// and value names resolve.
std::string FormatChaseStep(const ChaseStep& step, const DependencySet& deps,
                            const Instance& instance);

/// Renders the whole trace, one line per step, numbered.
std::string FormatChaseTrace(const ChaseResult& result,
                             const DependencySet& deps,
                             const Instance& instance);

}  // namespace tdlib

#endif  // TDLIB_CHASE_TRACE_H_
