// Set-level consequences of the inference problem.
//
// "A solution to the inference problem carries with it the ability to
//  determine whether two sets of dependencies are equivalent, whether a set
//  of dependencies is redundant, etc."  — the paper's introduction.
//
// These operations inherit the inference problem's undecidability, so every
// answer is three-valued and budgeted: kYes / kNo are certificates, kUnknown
// means a budget tripped somewhere inside.
#ifndef TDLIB_CHASE_EQUIVALENCE_H_
#define TDLIB_CHASE_EQUIVALENCE_H_

#include <string>
#include <vector>

#include "chase/implication.h"
#include "core/dependency.h"

namespace tdlib {

/// Three-valued answer for the set-level questions.
enum class ThreeValued { kYes, kNo, kUnknown };

/// Converts an implication verdict.
ThreeValued FromImplication(Implication verdict);

/// Does `d` imply every member of `e`? (kNo pinpoints nothing; use
/// FirstUnimplied for diagnostics.)
ThreeValued ImpliesAll(const DependencySet& d, const DependencySet& e,
                       const ChaseConfig& config = {});

/// Index of the first member of `e` NOT implied by `d` (certificate), or
/// -1 when all are implied, or -2 when a budget made some check unknown.
int FirstUnimplied(const DependencySet& d, const DependencySet& e,
                   const ChaseConfig& config = {});

/// Are the two sets logically equivalent (each implies the other)?
ThreeValued SetsEquivalent(const DependencySet& d, const DependencySet& e,
                           const ChaseConfig& config = {});

/// Is member `index` implied by the other members (i.e. redundant)?
ThreeValued MemberRedundant(const DependencySet& d, int index,
                            const ChaseConfig& config = {});

/// Is the set redundant — does ANY member follow from the others?
ThreeValued SetRedundant(const DependencySet& d,
                         const ChaseConfig& config = {});

/// Result of greedy minimization.
struct MinimizationResult {
  DependencySet minimized;

  /// Indices (into the input) of removed members, in removal order.
  std::vector<int> removed;

  /// True if some redundancy check came back kUnknown — the result is then
  /// sound (only certified-redundant members were removed) but possibly not
  /// minimal.
  bool hit_budget = false;
};

/// Greedily removes members certified redundant (scanning left to right,
/// re-checking against the shrinking set). Sound for any budget; complete
/// only when no check hits its budget.
MinimizationResult MinimizeSet(const DependencySet& d,
                               const ChaseConfig& config = {});

}  // namespace tdlib

#endif  // TDLIB_CHASE_EQUIVALENCE_H_
