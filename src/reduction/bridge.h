// Bridges: the word-encoding structures of the paper's Fig. 2.
//
// "The basic idea is to represent a word A1 A2 ... Ak over S by the
//  structure of Fig. 2. Let us call such a structure a bridge for
//  A1 A2 ... Ak. All the elements across the bottom of a bridge are
//  E-equivalent, all those across the top are E'-equivalent, and each
//  symbol Ai of the word is represented by a triangle with the apex having
//  relations Ai' and Ai'' to the two points on the base."
//
// A bridge for a k-letter word has k+1 base tuples b0..bk and k apex tuples
// t1..tk, with Ai'(b_{i-1}, t_i) and Ai''(b_i, t_i). Bridges exist in two
// forms here: as a Tableau (to assert, via homomorphism, that a bridge is
// embedded in a chase instance — the part (A) loop invariant) and as a
// standalone Instance (for structural tests and the Fig. 2 bench).
#ifndef TDLIB_REDUCTION_BRIDGE_H_
#define TDLIB_REDUCTION_BRIDGE_H_

#include <vector>

#include "logic/instance.h"
#include "logic/tableau.h"
#include "reduction/reduction_schema.h"
#include "semigroup/word.h"

namespace tdlib {

/// A bridge as a tableau over the reduction schema.
struct BridgeTableau {
  Tableau tableau;

  /// Row indices of the base tuples b0..bk (size k+1).
  std::vector<int> base_rows;

  /// Row indices of the apex tuples t1..tk (size k).
  std::vector<int> apex_rows;

  explicit BridgeTableau(SchemaPtr schema) : tableau(std::move(schema)) {}
};

/// Builds the bridge tableau for `word` (non-empty).
BridgeTableau BuildBridgeTableau(const ReductionSchema& rs, const Word& word);

/// A bridge as a concrete instance (each node one tuple; attribute values
/// are the equivalence classes of Fig. 2).
struct BridgeInstance {
  Instance instance;

  /// Tuple ids of b0..bk.
  std::vector<int> base_tuples;

  /// Tuple ids of t1..tk.
  std::vector<int> apex_tuples;

  explicit BridgeInstance(SchemaPtr schema) : instance(std::move(schema)) {}
};

/// Builds the bridge instance for `word` (non-empty).
BridgeInstance BuildBridgeInstance(const ReductionSchema& rs, const Word& word);

}  // namespace tdlib

#endif  // TDLIB_REDUCTION_BRIDGE_H_
