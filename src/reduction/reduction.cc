#include "reduction/reduction.h"

#include <algorithm>
#include <sstream>

namespace tdlib {

Result<GurevichLewisReduction> GurevichLewisReduction::Create(
    const Presentation& p) {
  if (std::string err = p.CheckInvariants(); !err.empty()) {
    return Result<GurevichLewisReduction>::Error(err);
  }
  if (!p.IsNormalized()) {
    return Result<GurevichLewisReduction>::Error(
        "presentation is not (2,1)-normalized; run NormalizeTo21 first");
  }
  if (!p.HasAbsorptionEquations()) {
    return Result<GurevichLewisReduction>::Error(
        "presentation lacks the absorption equations the Main Lemma requires "
        "among the antecedents; call AddAbsorptionEquations()");
  }
  Result<ReductionSchema> schema = ReductionSchema::Create(p);
  if (!schema.ok()) {
    return Result<GurevichLewisReduction>::Error(schema.error());
  }
  const ReductionSchema& rs = schema.value();

  DependencySet d;
  for (const Equation& eq : p.equations()) {
    for (GadgetKind kind : {GadgetKind::kD1, GadgetKind::kD2, GadgetKind::kD3,
                            GadgetKind::kD4}) {
      std::string name = "D";
      name += std::to_string(static_cast<int>(kind));
      name += "(";
      name += p.WordToString(eq.lhs);
      name += " = ";
      name += p.WordToString(eq.rhs);
      name += ")";
      d.Add(BuildGadget(rs, kind, eq), std::move(name));
    }
  }
  Dependency d0 = BuildGoal(rs, p.a0(), p.zero());
  return GurevichLewisReduction(std::move(schema).value(), std::move(d),
                                std::move(d0));
}

int GurevichLewisReduction::MaxAntecedents() const {
  int max_rows = d0_.body().num_rows();
  for (const Dependency& dep : d_.items) {
    max_rows = std::max(max_rows, dep.body().num_rows());
  }
  return max_rows;
}

std::string GurevichLewisReduction::ToString() const {
  std::ostringstream oss;
  oss << "schema (" << arity() << " attributes):";
  for (int a = 0; a < arity(); ++a) oss << " " << schema()->name(a);
  oss << "\n" << d_.ToString();
  oss << "D0: " << d0_.ToString() << "\n";
  return oss.str();
}

}  // namespace tdlib
