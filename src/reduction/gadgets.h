// The dependency gadgets of the reduction (the paper's Fig. 3).
//
// "For each equation r: AB = C in the antecedents of phi, construct the four
//  dependencies D_i(r) (i = 1, 2, 3, 4) illustrated in Fig. 3. Let D be the
//  set of all these dependencies. Also, let D0 be as shown."
//
// The figure itself is described through the proof's case analysis; the
// shapes implemented here are the ones that make both directions of the
// Reduction Theorem go through (see DESIGN.md §3 for the reconstruction and
// the two independent machine validations):
//
//   D1(r) — contract: an A-triangle followed by a B-triangle over a common
//           base midpoint yields a C-triangle over the outer base points.
//   D2(r) — expand, left leg: a C-triangle spawns an A-apex anchored at the
//           left base point (its far base value is existential).
//   D3(r) — expand, right leg: mirror image, a B-apex anchored at the right
//           base point.
//   D4(r) — merge: given the C-triangle plus both legs, a shared midpoint
//           base tuple exists (sound precisely because the part (B) models
//           are built from semigroups with the cancellation property).
//   D0    — the goal: an A0-triangle implies a 0-triangle over the same
//           base, E'-connected to the A0-apex.
//
// All gadgets are produced through the Diagram API, so the figures of the
// paper are literally the source representation.
#ifndef TDLIB_REDUCTION_GADGETS_H_
#define TDLIB_REDUCTION_GADGETS_H_

#include "core/dependency.h"
#include "core/diagram.h"
#include "reduction/reduction_schema.h"
#include "semigroup/presentation.h"

namespace tdlib {

/// Which of the four per-equation gadgets.
enum class GadgetKind { kD1 = 1, kD2 = 2, kD3 = 3, kD4 = 4 };

/// Builds the diagram of gadget `kind` for equation AB = C given as symbol
/// ids (a, b, c). Exposed so tests and the documentation generator can
/// render each figure; BuildGadget converts it to the dependency.
Diagram GadgetDiagram(const ReductionSchema& rs, GadgetKind kind, int a,
                      int b, int c);

/// Builds gadget `kind` for the (2,1) equation `eq` (lhs = {a,b}, rhs = {c}).
Dependency BuildGadget(const ReductionSchema& rs, GadgetKind kind,
                       const Equation& eq);

/// The goal dependency D0's diagram (an A0-triangle implying a 0-triangle).
Diagram GoalDiagram(const ReductionSchema& rs, int a0_symbol, int zero_symbol);

/// The goal dependency D0.
Dependency BuildGoal(const ReductionSchema& rs, int a0_symbol,
                     int zero_symbol);

}  // namespace tdlib

#endif  // TDLIB_REDUCTION_GADGETS_H_
