#include "reduction/part_a.h"

#include <cassert>
#include <sstream>

#include "logic/homomorphism.h"
#include "reduction/bridge.h"

namespace tdlib {
namespace {

// The explicit embedding of the current bridge into the replay instance.
struct Embedding {
  std::vector<int> base;  ///< tuple ids of b0..bk
  std::vector<int> apex;  ///< tuple ids of t1..tk
};

// One decomposed derivation step.
struct DerivationStep {
  int equation_index;
  bool contraction;  ///< true: lhs -> rhs (AB -> C); false: rhs -> lhs
  int offset;        ///< occurrence offset in the source word
};

// Recovers (equation, direction, offset) turning `u` into `v`.
std::optional<DerivationStep> DecomposeStep(const Presentation& p,
                                            const Word& u, const Word& v) {
  for (std::size_t e = 0; e < p.equations().size(); ++e) {
    const Equation& eq = p.equations()[e];
    for (int dir = 0; dir < 2; ++dir) {
      const Word& pat = dir == 0 ? eq.lhs : eq.rhs;
      const Word& rep = dir == 0 ? eq.rhs : eq.lhs;
      for (int offset : FindOccurrences(u, pat)) {
        if (ReplaceAt(u, offset, pat, rep) == v) {
          return DerivationStep{static_cast<int>(e), dir == 0, offset};
        }
      }
    }
  }
  return std::nullopt;
}

// Ensures the chase step (dep, body rows -> given tuples) has fired and
// returns the id of a tuple witnessing the (single) head row. Counts a fire
// into *steps when a new tuple is inserted.
int EnsureFired(Instance* instance, const Dependency& dep,
                const std::vector<int>& body_row_tuples,
                std::uint64_t* steps) {
  assert(dep.IsTd());
  assert(static_cast<int>(body_row_tuples.size()) == dep.body().num_rows());

  Valuation valuation = Valuation::For(dep.body());
  for (int r = 0; r < dep.body().num_rows(); ++r) {
    TupleRef t = instance->tuple(body_row_tuples[r]);
    const Row& row = dep.body().row(r);
    for (int attr = 0; attr < dep.schema().arity(); ++attr) {
      int var = row[attr];
      int bound = valuation.Get(attr, var);
      assert(bound < 0 || bound == t[attr]);
      (void)bound;
      valuation.Set(attr, var, t[attr]);
    }
  }

  // Is the head already witnessed under this match?
  HomomorphismSearch head_search(dep.head(), *instance);
  Valuation initial = Valuation::For(dep.head());
  for (int attr = 0; attr < dep.schema().arity(); ++attr) {
    for (int v = 0; v < dep.head().NumVars(attr); ++v) {
      if (dep.IsUniversal(attr, v)) initial.Set(attr, v, valuation.Get(attr, v));
    }
  }
  head_search.SetInitial(initial);
  Valuation witness = initial;
  if (head_search.FindAny(&witness) == HomSearchStatus::kFound) {
    Tuple t(dep.schema().arity());
    const Row& head_row = dep.head().row(0);
    for (int attr = 0; attr < dep.schema().arity(); ++attr) {
      t[attr] = witness.Get(attr, head_row[attr]);
    }
    int id = instance->FindTuple(t);
    assert(id >= 0);
    return id;
  }

  // Fire: insert the head row, fresh nulls on existential positions.
  Tuple t(dep.schema().arity());
  const Row& head_row = dep.head().row(0);
  for (int attr = 0; attr < dep.schema().arity(); ++attr) {
    int var = head_row[attr];
    int val = dep.IsUniversal(attr, var) ? valuation.Get(attr, var)
                                         : instance->AddValue(attr, "", true);
    t[attr] = val;
  }
  bool added = instance->AddTuple(t);
  assert(added);
  (void)added;
  ++*steps;
  int id = instance->FindTuple(t);
  assert(id >= 0);
  return id;
}

// Verifies the bridge-for-`word` invariant: a bridge embeds into `instance`
// with base endpoints at tuples `a_id`/`b_id` and apexes E'-equivalent to
// tuple `d0_id`.
bool VerifyBridge(const ReductionSchema& rs, const Word& word,
                  const Instance& instance, int a_id, int b_id, int d0_id) {
  BridgeTableau bridge = BuildBridgeTableau(rs, word);
  Valuation initial = Valuation::For(bridge.tableau);
  auto pin_row = [&](int row_idx, int tuple_id) -> bool {
    const Row& row = bridge.tableau.row(row_idx);
    TupleRef t = instance.tuple(tuple_id);
    for (int attr = 0; attr < rs.arity(); ++attr) {
      int var = row[attr];
      int bound = initial.Get(attr, var);
      if (bound >= 0 && bound != t[attr]) return false;
      initial.Set(attr, var, t[attr]);
    }
    return true;
  };
  if (!pin_row(bridge.base_rows.front(), a_id)) return false;
  if (!pin_row(bridge.base_rows.back(), b_id)) return false;
  // All apex rows share one E' variable; pin it to d0's E' value.
  int ep_var = bridge.tableau.row(bridge.apex_rows.front())[rs.EPrime()];
  int d0_ep = instance.tuple(d0_id)[rs.EPrime()];
  int bound = initial.Get(rs.EPrime(), ep_var);
  if (bound >= 0 && bound != d0_ep) return false;
  initial.Set(rs.EPrime(), ep_var, d0_ep);

  HomomorphismSearch search(bridge.tableau, instance);
  search.SetInitial(initial);
  return search.FindAny(nullptr) == HomSearchStatus::kFound;
}

}  // namespace

PartAResult RunPartA(const Presentation& input, const PartAConfig& config) {
  PartAResult result;
  result.normalization = NormalizeTo21(input);
  const Presentation& p = result.normalization.normalized;

  result.word_problem = ProveA0IsZero(p, config.word_problem);

  Result<GurevichLewisReduction> reduction = GurevichLewisReduction::Create(p);
  assert(reduction.ok());
  const GurevichLewisReduction& red = reduction.value();
  const ReductionSchema& rs = red.reduction_schema();

  if (config.run_black_box_chase) {
    result.black_box = ChaseImplies(red.dependencies(), red.goal(), config.chase);
  }

  if (result.word_problem.status != WordProblemStatus::kEqual) {
    // Premise of direction (A) not established within bounds; nothing to
    // replay and nothing contradicts the theorem.
    result.consistent = true;
    return result;
  }

  // ---- Scripted replay of the derivation as chase steps. -------------------
  Instance instance = red.goal().body().Freeze();
  const int a_id = 0, b_id = 1, d0_id = 2;  // frozen body rows, in order
  Embedding emb;
  emb.base = {a_id, b_id};
  emb.apex = {d0_id};

  const std::vector<Word>& derivation = result.word_problem.derivation;
  bool all_embedded = true;
  auto record_stage = [&](const Word& w) {
    bool ok = !config.verify_bridges ||
              VerifyBridge(rs, w, instance, a_id, b_id, d0_id);
    all_embedded = all_embedded && ok;
    result.stages.push_back(
        BridgeStage{w, ok, static_cast<int>(instance.NumTuples())});
  };
  record_stage(derivation.front());

  for (std::size_t j = 0; j + 1 < derivation.size(); ++j) {
    std::optional<DerivationStep> step =
        DecomposeStep(p, derivation[j], derivation[j + 1]);
    assert(step.has_value());
    const int e = step->equation_index;
    const int pos = step->offset;
    auto gadget = [&](GadgetKind kind) -> const Dependency& {
      return red.dependencies().items[4 * e + static_cast<int>(kind) - 1];
    };
    if (step->contraction) {
      // AB -> C: consume apexes pos, pos+1 and midpoint base pos+1.
      std::vector<int> body = {emb.base[pos], emb.base[pos + 1],
                               emb.base[pos + 2], emb.apex[pos],
                               emb.apex[pos + 1]};
      int c_apex = EnsureFired(&instance, gadget(GadgetKind::kD1), body,
                               &result.replay_steps);
      emb.base.erase(emb.base.begin() + pos + 1);
      emb.apex.erase(emb.apex.begin() + pos, emb.apex.begin() + pos + 2);
      emb.apex.insert(emb.apex.begin() + pos, c_apex);
    } else {
      // C -> AB: spawn both legs, then merge midpoints via D4.
      std::vector<int> tri = {emb.base[pos], emb.base[pos + 1], emb.apex[pos]};
      int a_apex = EnsureFired(&instance, gadget(GadgetKind::kD2), tri,
                               &result.replay_steps);
      int b_apex = EnsureFired(&instance, gadget(GadgetKind::kD3), tri,
                               &result.replay_steps);
      std::vector<int> merge = {emb.base[pos], emb.base[pos + 1], emb.apex[pos],
                                a_apex, b_apex};
      int midpoint = EnsureFired(&instance, gadget(GadgetKind::kD4), merge,
                                 &result.replay_steps);
      emb.base.insert(emb.base.begin() + pos + 1, midpoint);
      emb.apex[pos] = a_apex;
      emb.apex.insert(emb.apex.begin() + pos + 1, b_apex);
    }
    record_stage(derivation[j + 1]);
  }

  // The final bridge is for the word "0"; D0's conclusion must now hold.
  ChaseGoal goal_check = ConclusionGoal(red.goal());
  result.replay_reached_goal = goal_check(instance);

  bool black_box_ok =
      !config.run_black_box_chase ||
      result.black_box.verdict == Implication::kImplied;
  result.consistent =
      result.replay_reached_goal && all_embedded && black_box_ok;
  return result;
}

std::string PartAResult::ToString() const {
  std::ostringstream oss;
  oss << "part A: word problem "
      << (word_problem.status == WordProblemStatus::kEqual ? "EQUAL"
          : word_problem.status == WordProblemStatus::kExhausted ? "EXHAUSTED"
                                                                 : "LIMIT")
      << ", derivation length " << word_problem.derivation.size()
      << ", replay steps " << replay_steps << ", goal "
      << (replay_reached_goal ? "reached" : "not reached") << ", "
      << (consistent ? "CONSISTENT" : "INCONSISTENT")
      << " with Reduction Theorem (A)";
  return oss.str();
}

}  // namespace tdlib
