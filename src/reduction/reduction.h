// The full Gurevich-Lewis reduction: presentation phi  |->  (D, D0).
//
// REDUCTION THEOREM.
//  (A) If phi holds in every S-generated semigroup, then D0 holds in every
//      database in which each member of D holds.
//  (B) If phi fails in some finite S-generated semigroup having the
//      cancellation property, then there is a finite database in which each
//      member of D holds but D0 does not.
//
// This class performs the *construction*; parts (A) and (B) are executed by
// part_a.h / part_b.h. The headline parameters, testable here: |D| =
// 4 * #equations, every member of D has at most five antecedents, and the
// schema has 2n + 2 attributes — "our proof yields dependencies with a
// bounded number of antecedents (five at most) but an unbounded number of
// attributes" (the complement of Vardi's construction).
#ifndef TDLIB_REDUCTION_REDUCTION_H_
#define TDLIB_REDUCTION_REDUCTION_H_

#include <string>

#include "core/dependency.h"
#include "reduction/gadgets.h"
#include "reduction/reduction_schema.h"
#include "semigroup/presentation.h"
#include "util/status.h"

namespace tdlib {

/// The reduction output for one presentation.
class GurevichLewisReduction {
 public:
  /// Builds (D, D0) from a (2,1)-normalized presentation. Fails when the
  /// presentation is not normalized (run NormalizeTo21 first), lacks the
  /// absorption equations, or has a symbol colliding with attribute names.
  static Result<GurevichLewisReduction> Create(const Presentation& p);

  const ReductionSchema& reduction_schema() const { return schema_; }
  const SchemaPtr& schema() const { return schema_.schema(); }

  /// The dependency set D: gadgets D1..D4 per equation, in equation order,
  /// named like "D3(A B = C)".
  const DependencySet& dependencies() const { return d_; }

  /// The goal dependency D0.
  const Dependency& goal() const { return d0_; }

  /// Largest antecedent (body row) count across D and D0; the paper proves
  /// this is at most 5.
  int MaxAntecedents() const;

  /// Attribute count, 2n + 2.
  int arity() const { return schema_.arity(); }

  std::string ToString() const;

 private:
  GurevichLewisReduction(ReductionSchema schema, DependencySet d,
                         Dependency d0)
      : schema_(std::move(schema)), d_(std::move(d)), d0_(std::move(d0)) {}

  ReductionSchema schema_;
  DependencySet d_;
  Dependency d0_;
};

}  // namespace tdlib

#endif  // TDLIB_REDUCTION_REDUCTION_H_
