#include "reduction/part_b.h"

#include <map>
#include <sstream>
#include <tuple>

#include "core/satisfaction.h"
#include "util/union_find.h"

namespace tdlib {
namespace {

// An element of the universe P ∪ Q.
struct UniverseElement {
  bool is_triple = false;
  int p_elem = -1;             // when !is_triple: the G' element
  int a = -1, sym = -1, b = -1;  // when is_triple: (a, A, b)
};

}  // namespace

Result<PartBDatabase> BuildCounterexampleDatabase(
    const Presentation& p, const SemigroupWitness& witness,
    const ReductionSchema& rs) {
  if (std::string err = witness.Verify(p); !err.empty()) {
    return Result<PartBDatabase>::Error("witness invalid: " + err);
  }

  // G' = G with an identity adjoined; ids of G are unchanged.
  MultiplicationTable g_prime = witness.table.AdjoinIdentity();
  const int identity = witness.table.size();
  const int a0_elem = witness.assignment[p.a0()];

  // P = { a : exists b with ab = A0 }.
  std::vector<int> p_elems;
  std::vector<int> p_index(g_prime.size(), -1);
  for (int a = 0; a < g_prime.size(); ++a) {
    for (int b = 0; b < g_prime.size(); ++b) {
      if (g_prime.Product(a, b) == a0_elem) {
        p_index[a] = static_cast<int>(p_elems.size());
        p_elems.push_back(a);
        break;
      }
    }
  }

  // Q = { (a, A, b) : a, b in P and a . elem(A) = b }.
  std::vector<UniverseElement> universe;
  universe.reserve(p_elems.size() * (1 + p.num_symbols()));
  for (int a : p_elems) {
    UniverseElement e;
    e.p_elem = a;
    universe.push_back(e);
  }
  std::map<std::tuple<int, int, int>, int> triple_index;
  for (int a : p_elems) {
    for (int sym = 0; sym < p.num_symbols(); ++sym) {
      int b = g_prime.Product(a, witness.assignment[sym]);
      if (p_index[b] < 0) continue;
      UniverseElement e;
      e.is_triple = true;
      e.a = a;
      e.sym = sym;
      e.b = b;
      triple_index[{a, sym, b}] = static_cast<int>(universe.size());
      universe.push_back(e);
    }
  }
  const int n = static_cast<int>(universe.size());
  const int q_count = n - static_cast<int>(p_elems.size());

  // Equivalence relations (1)-(4) as one union-find per attribute.
  std::vector<UnionFind> classes;
  classes.reserve(rs.arity());
  for (int attr = 0; attr < rs.arity(); ++attr) classes.emplace_back(n);
  for (int i = 0; i < n; ++i) {
    const UniverseElement& e = universe[i];
    if (e.is_triple) {
      classes[rs.Prime(e.sym)].Union(i, p_index[e.a]);
      classes[rs.DoublePrime(e.sym)].Union(i, p_index[e.b]);
      if (i > static_cast<int>(p_elems.size())) {
        classes[rs.EPrime()].Union(i, static_cast<int>(p_elems.size()));
      }
    } else if (i > 0) {
      classes[rs.E()].Union(i, 0);
    }
  }

  PartBDatabase db;
  db.database = Instance(rs.schema());
  std::vector<std::vector<int>> class_ids;
  for (int attr = 0; attr < rs.arity(); ++attr) {
    class_ids.push_back(classes[attr].DenseClassIds());
    int num = static_cast<int>(classes[attr].num_sets());
    for (int c = 0; c < num; ++c) db.database.AddValue(attr);
  }
  for (int i = 0; i < n; ++i) {
    Tuple t(rs.arity());
    for (int attr = 0; attr < rs.arity(); ++attr) t[attr] = class_ids[attr][i];
    if (!db.database.AddTuple(t)) {
      return Result<PartBDatabase>::Error(
          "two universe elements produced identical tuples (construction "
          "invariant violated)");
    }
    const UniverseElement& e = universe[i];
    std::ostringstream name;
    if (e.is_triple) {
      name << "q:(" << e.a << "," << p.SymbolName(e.sym) << "," << e.b << ")";
    } else {
      name << "p:" << (e.p_elem == identity ? std::string("I")
                                            : std::to_string(e.p_elem));
    }
    db.element_names.push_back(name.str());
  }
  db.p_size = static_cast<int>(p_elems.size());
  db.q_size = q_count;
  db.tuple_of_identity = p_index[identity];
  db.tuple_of_a0 = p_index[a0_elem];
  auto it = triple_index.find({identity, p.a0(), a0_elem});
  db.tuple_of_identity_a0_triple = it == triple_index.end() ? -1 : it->second;
  return db;
}

std::string VerifyPartB(const GurevichLewisReduction& reduction,
                        const PartBDatabase& db) {
  if (std::string err = db.database.CheckInvariants(); !err.empty()) {
    return "database invariants: " + err;
  }
  // The paper's distinguished elements must exist: I, A0 in P and the triple
  // (I, A0, A0) in Q — they witness (NOT D0).
  if (db.tuple_of_identity < 0) return "identity element missing from P";
  if (db.tuple_of_a0 < 0) return "A0 missing from P";
  if (db.tuple_of_identity_a0_triple < 0) {
    return "(I, A0, A0) missing from Q";
  }
  for (std::size_t i = 0; i < reduction.dependencies().items.size(); ++i) {
    SatisfactionResult r =
        CheckSatisfaction(reduction.dependencies().items[i], db.database);
    if (r.verdict != Satisfaction::kSatisfied) {
      return "dependency " + reduction.dependencies().names[i] +
             " is not satisfied by the constructed database";
    }
  }
  SatisfactionResult goal = CheckSatisfaction(reduction.goal(), db.database);
  if (goal.verdict != Satisfaction::kViolated) {
    return "D0 is not violated by the constructed database";
  }
  return "";
}

PartBResult RunPartB(const Presentation& input,
                     const ModelSearchConfig& search_config) {
  PartBResult result;
  result.normalization = NormalizeTo21(input);
  const Presentation& p = result.normalization.normalized;

  result.model_search = FindRefutingSemigroup(p, search_config);
  if (result.model_search.status != ModelSearchStatus::kFound) {
    result.message =
        result.model_search.status == ModelSearchStatus::kExhausted
            ? "no refuting semigroup within the size bound"
            : "model search hit its budget";
    return result;
  }

  Result<GurevichLewisReduction> reduction = GurevichLewisReduction::Create(p);
  if (!reduction.ok()) {
    result.message = reduction.error();
    return result;
  }
  Result<PartBDatabase> db = BuildCounterexampleDatabase(
      p, *result.model_search.witness,
      reduction.value().reduction_schema());
  if (!db.ok()) {
    result.message = db.error();
    return result;
  }
  result.db = std::move(db).value();
  std::string err = VerifyPartB(reduction.value(), *result.db);
  result.verified = err.empty();
  result.message = err.empty() ? "verified" : err;
  return result;
}

}  // namespace tdlib
