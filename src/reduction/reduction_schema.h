// The attribute schema of the Gurevich-Lewis reduction.
//
// "For each A in S, the relations A' and A''; and additional relations E and
//  E'. (These equivalence relations are the attributes of the dependencies,
//  so if S contains n symbols, the relation will have 2n + 2 attributes.)"
#ifndef TDLIB_REDUCTION_REDUCTION_SCHEMA_H_
#define TDLIB_REDUCTION_REDUCTION_SCHEMA_H_

#include <string>

#include "logic/schema.h"
#include "semigroup/presentation.h"
#include "util/status.h"

namespace tdlib {

/// Maps a presentation's symbols to the 2n+2 reduction attributes:
/// attribute 0 is E, attribute 1 is E', and symbol s occupies attributes
/// 2+2s (named S') and 3+2s (named S'').
class ReductionSchema {
 public:
  /// Fails if a symbol name would collide with E / E' attribute names.
  static Result<ReductionSchema> Create(const Presentation& p);

  const SchemaPtr& schema() const { return schema_; }
  int num_symbols() const { return num_symbols_; }

  /// Attribute ids.
  int E() const { return 0; }
  int EPrime() const { return 1; }
  int Prime(int symbol) const { return 2 + 2 * symbol; }         ///< A'
  int DoublePrime(int symbol) const { return 3 + 2 * symbol; }   ///< A''

  /// Total attribute count: 2n + 2.
  int arity() const { return 2 * num_symbols_ + 2; }

 private:
  ReductionSchema(SchemaPtr schema, int num_symbols)
      : schema_(std::move(schema)), num_symbols_(num_symbols) {}

  SchemaPtr schema_;
  int num_symbols_;
};

}  // namespace tdlib

#endif  // TDLIB_REDUCTION_REDUCTION_SCHEMA_H_
