// Direction (B) of the Reduction Theorem: the finite counterexample.
//
// "Now suppose that phi fails in some finite semigroup G without identity
//  having the cancellation property. Adjoin to G an identity element I ...
//  Let P = {a in G' : there is some b in G' such that ab = A0}. ... For
//  every triple a, A, b such that a, b in P, A in S, and a ->_A b, introduce
//  a new element (a, A, b), and let Q be the set of these new elements. The
//  universe of the model for D is the union of P and Q."
//
// Equivalence relations (the attribute values):
//   (1) ~A'  joins (a, A, b) with a;
//   (2) ~A'' joins (a, A, b) with b;
//   (3) ~E   relates all of P (and is trivial on Q);
//   (4) ~E'  relates all of Q (and is trivial on P).
//
// BuildCounterexampleDatabase materializes this structure as an Instance
// (one tuple per element of P ∪ Q; the value of tuple t at attribute X is
// t's ~X class), and VerifyPartB model-checks the paper's claim: every
// member of D holds, D0 fails.
#ifndef TDLIB_REDUCTION_PART_B_H_
#define TDLIB_REDUCTION_PART_B_H_

#include <optional>
#include <string>
#include <vector>

#include "logic/instance.h"
#include "reduction/reduction.h"
#include "semigroup/model_search.h"
#include "semigroup/normalizer.h"

namespace tdlib {

/// The constructed model plus bookkeeping for tests and examples.
struct PartBDatabase {
  Instance database;

  /// Human-readable element names parallel to tuple ids ("p:I", "q:(a,A,b)").
  std::vector<std::string> element_names;

  int p_size = 0;  ///< |P|
  int q_size = 0;  ///< |Q|

  /// Tuple ids of the distinguished elements used in the paper's (NOT D0)
  /// argument: t1 = I, t2 = A0, t3 = (I, A0, A0).
  int tuple_of_identity = -1;
  int tuple_of_a0 = -1;
  int tuple_of_identity_a0_triple = -1;

  PartBDatabase() : database(MakeSchema({"placeholder"})) {}
};

/// Builds the part (B) database from a refutation witness. The witness must
/// verify (SemigroupWitness::Verify) against `p`, and `p` must be the
/// normalized presentation the reduction was built from.
Result<PartBDatabase> BuildCounterexampleDatabase(
    const Presentation& p, const SemigroupWitness& witness,
    const ReductionSchema& rs);

/// Model-checks the Reduction Theorem (B) claim; returns "" on success or a
/// description of the first failed check.
std::string VerifyPartB(const GurevichLewisReduction& reduction,
                        const PartBDatabase& db);

/// End-to-end pipeline: normalize, search for a refuting semigroup, build
/// the database, verify. Returns "" on success (or a reason the pipeline
/// could not complete, e.g. no semigroup found within bounds).
struct PartBResult {
  NormalizationResult normalization;
  ModelSearchResult model_search;
  std::optional<PartBDatabase> db;
  bool verified = false;
  std::string message;
};
PartBResult RunPartB(const Presentation& input,
                     const ModelSearchConfig& search_config = {});

}  // namespace tdlib

#endif  // TDLIB_REDUCTION_PART_B_H_
