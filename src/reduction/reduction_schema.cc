#include "reduction/reduction_schema.h"

namespace tdlib {

Result<ReductionSchema> ReductionSchema::Create(const Presentation& p) {
  std::vector<std::string> names;
  names.push_back("E");
  names.push_back("E'");
  for (int s = 0; s < p.num_symbols(); ++s) {
    names.push_back(p.SymbolName(s) + "'");
    names.push_back(p.SymbolName(s) + "''");
  }
  Schema schema(std::move(names));
  if (std::string err = schema.Validate(); !err.empty()) {
    return Result<ReductionSchema>::Error(
        "reduction schema: " + err +
        " (a presentation symbol named 'E' collides with the reduction's "
        "distinguished attributes; rename it)");
  }
  return ReductionSchema(std::make_shared<const Schema>(std::move(schema)),
                         p.num_symbols());
}

}  // namespace tdlib
