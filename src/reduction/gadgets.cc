#include "reduction/gadgets.h"

#include <cassert>

namespace tdlib {

Diagram GadgetDiagram(const ReductionSchema& rs, GadgetKind kind, int a,
                      int b, int c) {
  const int E = rs.E();
  const int Ep = rs.EPrime();
  const int Ap = rs.Prime(a), App = rs.DoublePrime(a);
  const int Bp = rs.Prime(b), Bpp = rs.DoublePrime(b);
  const int Cp = rs.Prime(c), Cpp = rs.DoublePrime(c);

  switch (kind) {
    case GadgetKind::kD1: {
      // Nodes: 0 = t1, 1 = t2, 2 = t3 (base); 3 = t4 (A-apex over t1,t2);
      // 4 = t5 (B-apex over t2,t3); 5 = * (C-apex over t1,t3).
      Diagram d(rs.schema(), /*num_antecedents=*/5);
      d.AddEdge(E, 0, 1);
      d.AddEdge(E, 1, 2);
      d.AddEdge(Ap, 0, 3);
      d.AddEdge(App, 1, 3);
      d.AddEdge(Bp, 1, 4);
      d.AddEdge(Bpp, 2, 4);
      d.AddEdge(Ep, 3, 4);
      d.AddEdge(Cp, 0, d.conclusion_node());
      d.AddEdge(Cpp, 2, d.conclusion_node());
      d.AddEdge(Ep, 3, d.conclusion_node());
      return d;
    }
    case GadgetKind::kD2: {
      // Nodes: 0 = t1, 1 = t2 (base); 2 = t3 (C-apex); 3 = * (A-apex
      // anchored at t1; its A''-value is existential — the fresh midpoint).
      Diagram d(rs.schema(), /*num_antecedents=*/3);
      d.AddEdge(E, 0, 1);
      d.AddEdge(Cp, 0, 2);
      d.AddEdge(Cpp, 1, 2);
      d.AddEdge(Ap, 0, d.conclusion_node());
      d.AddEdge(Ep, 2, d.conclusion_node());
      return d;
    }
    case GadgetKind::kD3: {
      // Mirror of D2: a B-apex anchored at t2; its B'-value is existential.
      Diagram d(rs.schema(), /*num_antecedents=*/3);
      d.AddEdge(E, 0, 1);
      d.AddEdge(Cp, 0, 2);
      d.AddEdge(Cpp, 1, 2);
      d.AddEdge(Bpp, 1, d.conclusion_node());
      d.AddEdge(Ep, 2, d.conclusion_node());
      return d;
    }
    case GadgetKind::kD4: {
      // Nodes: 0 = t1, 1 = t2 (base); 2 = t3 (C-apex); 3 = t4 (A-apex from
      // t1, far end dangling); 4 = t5 (B-apex into t2, far end dangling);
      // 5 = * — the shared midpoint base tuple, which exists because in the
      // part (B) models t4 = (t1, A, m1), t5 = (m2, B, t2) force
      // m1 = m2 by cancellation.
      Diagram d(rs.schema(), /*num_antecedents=*/5);
      d.AddEdge(E, 0, 1);
      d.AddEdge(Cp, 0, 2);
      d.AddEdge(Cpp, 1, 2);
      d.AddEdge(Ap, 0, 3);
      d.AddEdge(Ep, 2, 3);
      d.AddEdge(Bpp, 1, 4);
      d.AddEdge(Ep, 2, 4);
      d.AddEdge(App, 3, d.conclusion_node());
      d.AddEdge(Bp, 4, d.conclusion_node());
      d.AddEdge(E, 0, d.conclusion_node());
      return d;
    }
  }
  assert(false && "unreachable");
  return Diagram(rs.schema(), 1);
}

Dependency BuildGadget(const ReductionSchema& rs, GadgetKind kind,
                       const Equation& eq) {
  assert(eq.lhs.size() == 2 && eq.rhs.size() == 1 &&
         "gadgets require (2,1)-normalized equations");
  Diagram d = GadgetDiagram(rs, kind, eq.lhs[0], eq.lhs[1], eq.rhs[0]);
  Result<Dependency> dep = d.ToDependency();
  assert(dep.ok());
  return std::move(dep).value();
}

Diagram GoalDiagram(const ReductionSchema& rs, int a0_symbol,
                    int zero_symbol) {
  // Nodes: 0 = a, 1 = b (base); 2 = d0 (A0-apex); 3 = * = d1 (0-apex over
  // the same base, E'-connected to d0).
  Diagram d(rs.schema(), /*num_antecedents=*/3);
  d.AddEdge(rs.E(), 0, 1);
  d.AddEdge(rs.Prime(a0_symbol), 0, 2);
  d.AddEdge(rs.DoublePrime(a0_symbol), 1, 2);
  d.AddEdge(rs.EPrime(), 2, d.conclusion_node());
  d.AddEdge(rs.Prime(zero_symbol), 0, d.conclusion_node());
  d.AddEdge(rs.DoublePrime(zero_symbol), 1, d.conclusion_node());
  return d;
}

Dependency BuildGoal(const ReductionSchema& rs, int a0_symbol,
                     int zero_symbol) {
  Result<Dependency> dep = GoalDiagram(rs, a0_symbol, zero_symbol).ToDependency();
  assert(dep.ok());
  return std::move(dep).value();
}

}  // namespace tdlib
