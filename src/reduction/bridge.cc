#include "reduction/bridge.h"

#include <algorithm>
#include <cassert>

#include "util/union_find.h"

namespace tdlib {
namespace {

// Computes, for each attribute, the node partition of the 2k+1 bridge nodes
// (nodes 0..k are b0..bk, nodes k+1..2k are t1..tk).
std::vector<std::vector<int>> BridgeClasses(const ReductionSchema& rs,
                                            const Word& word) {
  const int k = static_cast<int>(word.size());
  const int num_nodes = 2 * k + 1;
  auto base = [](int i) { return i; };
  auto apex = [k](int i) { return k + i; };  // i in 1..k

  std::vector<std::vector<int>> classes(rs.arity());
  for (int attr = 0; attr < rs.arity(); ++attr) {
    UnionFind uf(num_nodes);
    if (attr == rs.E()) {
      for (int i = 1; i <= k; ++i) uf.Union(base(0), base(i));
    } else if (attr == rs.EPrime()) {
      for (int i = 2; i <= k; ++i) uf.Union(apex(1), apex(i));
    } else {
      for (int i = 1; i <= k; ++i) {
        int letter = word[i - 1];
        if (attr == rs.Prime(letter)) uf.Union(base(i - 1), apex(i));
        if (attr == rs.DoublePrime(letter)) uf.Union(base(i), apex(i));
      }
    }
    classes[attr] = uf.DenseClassIds();
  }
  return classes;
}

}  // namespace

BridgeTableau BuildBridgeTableau(const ReductionSchema& rs, const Word& word) {
  assert(!word.empty());
  const int k = static_cast<int>(word.size());
  BridgeTableau bridge(rs.schema());
  std::vector<std::vector<int>> classes = BridgeClasses(rs, word);

  // One variable per (attribute, class).
  std::vector<std::vector<int>> class_var(rs.arity());
  for (int attr = 0; attr < rs.arity(); ++attr) {
    int num_classes = 0;
    for (int c : classes[attr]) num_classes = std::max(num_classes, c + 1);
    class_var[attr].resize(num_classes);
    for (int c = 0; c < num_classes; ++c) {
      class_var[attr][c] = bridge.tableau.NewVariable(attr);
    }
  }
  auto row_for = [&](int node) {
    Row row(rs.arity());
    for (int attr = 0; attr < rs.arity(); ++attr) {
      row[attr] = class_var[attr][classes[attr][node]];
    }
    return row;
  };
  for (int i = 0; i <= k; ++i) {
    bridge.base_rows.push_back(bridge.tableau.num_rows());
    bridge.tableau.AddRow(row_for(i));
  }
  for (int i = 1; i <= k; ++i) {
    bridge.apex_rows.push_back(bridge.tableau.num_rows());
    bridge.tableau.AddRow(row_for(k + i));
  }
  return bridge;
}

BridgeInstance BuildBridgeInstance(const ReductionSchema& rs,
                                   const Word& word) {
  assert(!word.empty());
  const int k = static_cast<int>(word.size());
  BridgeInstance bridge(rs.schema());
  std::vector<std::vector<int>> classes = BridgeClasses(rs, word);

  for (int attr = 0; attr < rs.arity(); ++attr) {
    int num_classes = 0;
    for (int c : classes[attr]) num_classes = std::max(num_classes, c + 1);
    for (int c = 0; c < num_classes; ++c) bridge.instance.AddValue(attr);
  }
  auto tuple_for = [&](int node) {
    Tuple t(rs.arity());
    for (int attr = 0; attr < rs.arity(); ++attr) {
      t[attr] = classes[attr][node];
    }
    return t;
  };
  for (int i = 0; i <= k; ++i) {
    Tuple t = tuple_for(i);
    int id = bridge.instance.FindTuple(t);
    if (id < 0) {
      id = static_cast<int>(bridge.instance.NumTuples());
      bridge.instance.AddTuple(t);
    }
    bridge.base_tuples.push_back(id);
  }
  for (int i = 1; i <= k; ++i) {
    Tuple t = tuple_for(k + i);
    int id = bridge.instance.FindTuple(t);
    if (id < 0) {
      id = static_cast<int>(bridge.instance.NumTuples());
      bridge.instance.AddTuple(t);
    }
    bridge.apex_tuples.push_back(id);
  }
  return bridge;
}

}  // namespace tdlib
