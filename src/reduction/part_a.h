// Direction (A) of the Reduction Theorem, executed.
//
// "Suppose that phi holds in every S-generated semigroup. Then there is a
//  sequence of m+1 >= 1 strings u0, u1, ..., um, where u0 is A0, um is 0,
//  and u_{i+1} results from u_i by replacement of a single occurrence of
//  some x_i by y_i or vice versa. ... Check by induction on j = 0..m that
//  [a bridge for u_j is embedded]."
//
// The driver makes that induction a computation:
//   1. normalize the presentation to (2,1) form;
//   2. search for the rewriting derivation A0 ->* 0 (the Main Lemma side);
//   3. build the reduction (D, D0);
//   4. replay the derivation as chase steps — one D1 fire per contraction,
//      a D2, D3, D4 fire per expansion — maintaining an explicit embedding
//      of the current bridge, and independently re-verifying each bridge by
//      homomorphism search (the paper's loop invariant);
//   5. confirm that D0's conclusion is matched at the end, and that the
//      generic black-box chase (ChaseImplies) agrees.
#ifndef TDLIB_REDUCTION_PART_A_H_
#define TDLIB_REDUCTION_PART_A_H_

#include <string>
#include <vector>

#include "chase/implication.h"
#include "reduction/reduction.h"
#include "semigroup/normalizer.h"
#include "semigroup/rewrite.h"

namespace tdlib {

struct PartAConfig {
  WordProblemConfig word_problem;

  /// Budgets for the independent black-box chase run (step 5).
  ChaseConfig chase;

  /// Re-verify the bridge invariant by homomorphism search at every stage.
  bool verify_bridges = true;

  /// Also run the generic ChaseImplies as a cross-check.
  bool run_black_box_chase = true;
};

/// One stage of the replay.
struct BridgeStage {
  Word word;           ///< u_j
  bool embedded;       ///< bridge-for-u_j verified in the chase instance
  int instance_tuples; ///< instance size after this stage
};

struct PartAResult {
  NormalizationResult normalization;
  WordProblemResult word_problem;

  /// True iff the scripted replay reached a 0-bridge and D0's conclusion is
  /// matched in the replay instance. Meaningful only when the word problem
  /// returned kEqual.
  bool replay_reached_goal = false;

  /// Bridge verification per derivation stage (empty if not verifying).
  std::vector<BridgeStage> stages;

  /// Chase steps fired by the replay.
  std::uint64_t replay_steps = 0;

  /// The independent black-box implication run (if enabled).
  ImplicationResult black_box;

  /// Overall: every enabled check agreed with direction (A).
  bool consistent = false;

  std::string ToString() const;
};

/// Runs the full part (A) pipeline on `input` (any presentation; it is
/// normalized internally).
PartAResult RunPartA(const Presentation& input, const PartAConfig& config = {});

}  // namespace tdlib

#endif  // TDLIB_REDUCTION_PART_A_H_
