#include "logic/instance.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/table_printer.h"

namespace tdlib {
namespace {

constexpr char kInstanceMagic[] = "tdinst1";

// Below this many tuples the CSR rebuild is cheaper than the bookkeeping to
// avoid it; tails shorter than this never trigger a rebuild on their own.
constexpr std::size_t kMinCompactTail = 64;

// Length-prefixed string ("<len>:<bytes>"): value names are user-supplied
// and may contain whitespace, so token-based IO cannot carry them.
void WriteString(std::ostream& os, const std::string& s) {
  os << s.size() << ':' << s;
}

bool ReadString(std::istream& is, std::string* s) {
  std::size_t len;
  char colon;
  if (!(is >> len) || !is.get(colon) || colon != ':') return false;
  if (len > (1u << 20)) return false;  // corrupt-input guard
  s->resize(len);
  if (len > 0 && !is.read(&(*s)[0], static_cast<std::streamsize>(len))) {
    return false;
  }
  return true;
}

}  // namespace

Instance::Instance(SchemaPtr schema, TupleLayout layout)
    : schema_(std::move(schema)),
      value_names_(schema_->arity()),
      is_null_(schema_->arity()),
      store_(schema_->arity(), layout),
      csr_ids_(schema_->arity()),
      csr_offsets_(schema_->arity(), {0}),
      tail_(schema_->arity()) {}

int Instance::AddValue(int attr, std::string name, bool labeled_null) {
  int id = static_cast<int>(value_names_[attr].size());
  if (name.empty()) {
    name = (labeled_null ? "_n" : "v") + std::to_string(id) + "@" +
           schema_->name(attr);
  }
  value_names_[attr].push_back(std::move(name));
  is_null_[attr].push_back(labeled_null);
  tail_[attr].emplace_back();
  return id;
}

int Instance::InternValue(int attr, const std::string& name) {
  for (std::size_t v = 0; v < value_names_[attr].size(); ++v) {
    if (value_names_[attr][v] == name) return static_cast<int>(v);
  }
  return AddValue(attr, name);
}

int Instance::NullCount() const {
  int n = 0;
  for (const auto& column : is_null_) {
    for (bool b : column) n += b ? 1 : 0;
  }
  return n;
}

bool Instance::FinishInsert(std::pair<int, bool> inserted) {
  auto [id, is_new] = inserted;
  if (!is_new) return false;
  TupleRef t = store_[static_cast<std::size_t>(id)];
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    tail_[attr][t[attr]].push_back(id);
  }
  // Geometric rebuild cadence: merge the tails into the CSR slab once they
  // match the base in size. Total rebuild work over a run is O(n·arity) —
  // amortized O(arity) per insert, O(log n) rebuilds — and it happens here,
  // inside a mutation, so concurrent readers never observe it.
  const std::size_t tail_ids = store_.size() - csr_count_;
  if (tail_ids >= std::max(kMinCompactTail, csr_count_)) CompactIndex();
  return true;
}

void Instance::CompactIndex() {
  const std::size_t n = store_.size();
  if (csr_count_ == n) return;  // tails empty; nothing to merge
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    const int domain = DomainSize(attr);
    std::vector<std::int32_t>& offsets = csr_offsets_[attr];
    std::vector<int>& ids = csr_ids_[attr];
    const int old_domain = static_cast<int>(offsets.size()) - 1;
    std::vector<std::int32_t> merged_offsets(
        static_cast<std::size_t>(domain) + 1, 0);
    std::vector<int> merged_ids(n);
    std::size_t cursor = 0;
    for (int v = 0; v < domain; ++v) {
      merged_offsets[v] = static_cast<std::int32_t>(cursor);
      if (v < old_domain) {
        std::copy(ids.begin() + offsets[v], ids.begin() + offsets[v + 1],
                  merged_ids.begin() + static_cast<std::ptrdiff_t>(cursor));
        cursor += static_cast<std::size_t>(offsets[v + 1] - offsets[v]);
      }
      std::vector<int>& tail = tail_[attr][v];
      std::copy(tail.begin(), tail.end(),
                merged_ids.begin() + static_cast<std::ptrdiff_t>(cursor));
      cursor += tail.size();
      tail.clear();  // keeps capacity: the next batch reuses the allocation
    }
    merged_offsets[domain] = static_cast<std::int32_t>(cursor);
    ids = std::move(merged_ids);
    offsets = std::move(merged_offsets);
  }
  csr_count_ = n;
}

void Instance::Reserve(std::size_t tuples, std::size_t values_per_attr) {
  store_.Reserve(tuples);
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    value_names_[attr].reserve(values_per_attr);
    is_null_[attr].reserve(values_per_attr);
    tail_[attr].reserve(values_per_attr);
    csr_ids_[attr].reserve(tuples);
    csr_offsets_[attr].reserve(values_per_attr + 1);
  }
}

void Instance::Serialize(std::ostream& os) const {
  os << kInstanceMagic << ' ' << schema_->arity() << '\n';
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    os << value_names_[attr].size() << '\n';
    for (std::size_t v = 0; v < value_names_[attr].size(); ++v) {
      os << (is_null_[attr][v] ? 1 : 0) << ' ';
      WriteString(os, value_names_[attr][v]);
      os << '\n';
    }
  }
  store_.Serialize(os);
}

Result<Instance> Instance::Deserialize(SchemaPtr schema, std::istream& is,
                                       TupleLayout layout) {
  using R = Result<Instance>;
  auto corrupt = [](const char* what) {
    return R::Error(ErrorCode::kCorrupt, std::string("instance: ") + what);
  };
  std::string magic;
  int arity;
  if (!(is >> magic >> arity)) return corrupt("truncated header");
  if (magic != kInstanceMagic) return corrupt("bad magic");
  if (arity != schema->arity()) return corrupt("arity does not match schema");
  Instance instance(std::move(schema), layout);
  for (int attr = 0; attr < arity; ++attr) {
    std::size_t domain;
    if (!(is >> domain)) return corrupt("truncated domain count");
    for (std::size_t v = 0; v < domain; ++v) {
      int null_flag;
      std::string name;
      if (!(is >> null_flag) || null_flag < 0 || null_flag > 1 ||
          !ReadString(is, &name)) {
        return corrupt("malformed domain value entry");
      }
      // AddValue appends, so restored ids are dense and identical.
      instance.AddValue(attr, std::move(name), null_flag != 0);
    }
  }
  // The serialized tuple block carries no layout; read it into whatever
  // layout this instance uses (row-major checkpoints restore into columnar
  // stores and vice versa).
  Result<TupleStore> store = TupleStore::Deserialize(is, layout);
  if (!store.ok()) return R::Error(store.code(), store.error());
  if (store.value().arity() != arity) {
    return corrupt("tuple block arity mismatch");
  }
  // Route tuples through AddTuple so the inverted index (and dedup table)
  // are rebuilt; insertion in id order reproduces ids and ascending posting
  // lists exactly.
  instance.Reserve(store.value().size(), 0);
  for (std::size_t id = 0; id < store.value().size(); ++id) {
    TupleRef t = store.value()[id];
    for (int attr = 0; attr < arity; ++attr) {
      if (t[attr] < 0 || t[attr] >= instance.DomainSize(attr)) {
        return corrupt("tuple value outside its domain");
      }
    }
    if (!instance.AddTuple(t)) return corrupt("duplicate tuple");
  }
  return instance;
}

std::string Instance::ToString() const {
  std::vector<std::string> headers;
  for (int a = 0; a < schema_->arity(); ++a) headers.push_back(schema_->name(a));
  TablePrinter table(headers);
  for (std::size_t i = 0; i < store_.size(); ++i) {
    TupleRef t = store_[i];
    std::vector<std::string> row;
    for (int a = 0; a < schema_->arity(); ++a) {
      row.push_back(value_names_[a][t[a]]);
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

std::string Instance::CheckInvariants() const {
  std::string store_problem = store_.CheckInvariants();
  if (!store_problem.empty()) return store_problem;
  for (std::size_t i = 0; i < store_.size(); ++i) {
    TupleRef t = store_[i];
    for (int a = 0; a < schema_->arity(); ++a) {
      if (t[a] < 0 || t[a] >= DomainSize(a)) return "tuple value out of range";
    }
  }
  if (csr_count_ > store_.size()) return "CSR covers more tuples than stored";
  for (int a = 0; a < schema_->arity(); ++a) {
    const std::vector<std::int32_t>& offsets = csr_offsets_[a];
    if (offsets.empty() || offsets[0] != 0 ||
        offsets.size() > static_cast<std::size_t>(DomainSize(a)) + 1) {
      return "CSR offset table malformed";
    }
    if (static_cast<std::size_t>(offsets.back()) != csr_count_) {
      return "CSR slab does not cover csr_count tuples";
    }
    if (tail_[a].size() != static_cast<std::size_t>(DomainSize(a))) {
      return "tail table size differs from domain";
    }
    std::size_t indexed = 0;
    for (int v = 0; v < DomainSize(a); ++v) {
      CandidateList list = TuplesWith(a, v);
      indexed += list.size();
      int prev = -1;
      for (std::size_t i = 0; i < list.size(); ++i) {
        int id = list[i];
        if (id < 0 || id >= static_cast<int>(store_.size())) {
          return "index refers to missing tuple";
        }
        if (id <= prev) return "posting list not ascending";
        if (store_[static_cast<std::size_t>(id)][a] != v) {
          return "posting list id under the wrong value";
        }
        const bool in_base = i < list.base().size();
        if (in_base && id >= static_cast<int>(csr_count_)) {
          return "tail-region id found in the CSR base";
        }
        if (!in_base && id < static_cast<int>(csr_count_)) {
          return "CSR-region id found in a tail";
        }
        prev = id;
      }
    }
    if (indexed != store_.size()) return "index cardinality mismatch";
  }
  return "";
}

}  // namespace tdlib
