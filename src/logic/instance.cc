#include "logic/instance.h"

#include <sstream>

#include "util/table_printer.h"

namespace tdlib {

Instance::Instance(SchemaPtr schema)
    : schema_(std::move(schema)),
      value_names_(schema_->arity()),
      is_null_(schema_->arity()),
      index_(schema_->arity()) {}

int Instance::AddValue(int attr, std::string name, bool labeled_null) {
  int id = static_cast<int>(value_names_[attr].size());
  if (name.empty()) {
    name = (labeled_null ? "_n" : "v") + std::to_string(id) + "@" +
           schema_->name(attr);
  }
  value_names_[attr].push_back(std::move(name));
  is_null_[attr].push_back(labeled_null);
  index_[attr].emplace_back();
  return id;
}

int Instance::InternValue(int attr, const std::string& name) {
  for (std::size_t v = 0; v < value_names_[attr].size(); ++v) {
    if (value_names_[attr][v] == name) return static_cast<int>(v);
  }
  return AddValue(attr, name);
}

int Instance::NullCount() const {
  int n = 0;
  for (const auto& column : is_null_) {
    for (bool b : column) n += b ? 1 : 0;
  }
  return n;
}

bool Instance::AddTuple(const Tuple& t) {
  if (!tuple_set_.insert(t).second) return false;
  int id = static_cast<int>(tuples_.size());
  tuples_.push_back(t);
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    index_[attr][t[attr]].push_back(id);
  }
  return true;
}

bool Instance::Contains(const Tuple& t) const {
  return tuple_set_.count(t) > 0;
}

int Instance::FindTuple(const Tuple& t) const {
  if (!Contains(t)) return -1;
  // Scan the shortest index list among the tuple's components.
  int best_attr = 0;
  for (int attr = 1; attr < schema_->arity(); ++attr) {
    if (TuplesWith(attr, t[attr]).size() <
        TuplesWith(best_attr, t[best_attr]).size()) {
      best_attr = attr;
    }
  }
  for (int id : TuplesWith(best_attr, t[best_attr])) {
    if (tuples_[id] == t) return id;
  }
  return -1;
}

std::string Instance::ToString() const {
  std::vector<std::string> headers;
  for (int a = 0; a < schema_->arity(); ++a) headers.push_back(schema_->name(a));
  TablePrinter table(headers);
  for (const auto& t : tuples_) {
    std::vector<std::string> row;
    for (int a = 0; a < schema_->arity(); ++a) {
      row.push_back(value_names_[a][t[a]]);
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

std::string Instance::CheckInvariants() const {
  for (const auto& t : tuples_) {
    if (static_cast<int>(t.size()) != schema_->arity()) {
      return "tuple arity mismatch";
    }
    for (int a = 0; a < schema_->arity(); ++a) {
      if (t[a] < 0 || t[a] >= DomainSize(a)) return "tuple value out of range";
    }
  }
  if (tuple_set_.size() != tuples_.size()) return "duplicate tuples";
  for (int a = 0; a < schema_->arity(); ++a) {
    std::size_t indexed = 0;
    for (const auto& ids : index_[a]) {
      indexed += ids.size();
      for (int id : ids) {
        if (id < 0 || id >= static_cast<int>(tuples_.size())) {
          return "index refers to missing tuple";
        }
      }
    }
    if (indexed != tuples_.size()) return "index cardinality mismatch";
  }
  return "";
}

}  // namespace tdlib
