#include "logic/instance.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "util/table_printer.h"

namespace tdlib {
namespace {

constexpr char kInstanceMagic[] = "tdinst1";

// Length-prefixed string ("<len>:<bytes>"): value names are user-supplied
// and may contain whitespace, so token-based IO cannot carry them.
void WriteString(std::ostream& os, const std::string& s) {
  os << s.size() << ':' << s;
}

bool ReadString(std::istream& is, std::string* s) {
  std::size_t len;
  char colon;
  if (!(is >> len) || !is.get(colon) || colon != ':') return false;
  if (len > (1u << 20)) return false;  // corrupt-input guard
  s->resize(len);
  if (len > 0 && !is.read(&(*s)[0], static_cast<std::streamsize>(len))) {
    return false;
  }
  return true;
}

}  // namespace

Instance::Instance(SchemaPtr schema)
    : schema_(std::move(schema)),
      value_names_(schema_->arity()),
      is_null_(schema_->arity()),
      store_(schema_->arity()),
      index_(schema_->arity()) {}

int Instance::AddValue(int attr, std::string name, bool labeled_null) {
  int id = static_cast<int>(value_names_[attr].size());
  if (name.empty()) {
    name = (labeled_null ? "_n" : "v") + std::to_string(id) + "@" +
           schema_->name(attr);
  }
  value_names_[attr].push_back(std::move(name));
  is_null_[attr].push_back(labeled_null);
  index_[attr].emplace_back();
  return id;
}

int Instance::InternValue(int attr, const std::string& name) {
  for (std::size_t v = 0; v < value_names_[attr].size(); ++v) {
    if (value_names_[attr][v] == name) return static_cast<int>(v);
  }
  return AddValue(attr, name);
}

int Instance::NullCount() const {
  int n = 0;
  for (const auto& column : is_null_) {
    for (bool b : column) n += b ? 1 : 0;
  }
  return n;
}

bool Instance::AddRow(const std::int32_t* row) {
  auto [id, inserted] = store_.Insert(row);
  if (!inserted) return false;
  TupleRef t = store_[static_cast<std::size_t>(id)];
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    index_[attr][t[attr]].push_back(id);
  }
  return true;
}

void Instance::Reserve(std::size_t tuples, std::size_t values_per_attr) {
  store_.Reserve(tuples);
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    value_names_[attr].reserve(values_per_attr);
    is_null_[attr].reserve(values_per_attr);
    index_[attr].reserve(values_per_attr);
  }
}

void Instance::Serialize(std::ostream& os) const {
  os << kInstanceMagic << ' ' << schema_->arity() << '\n';
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    os << value_names_[attr].size() << '\n';
    for (std::size_t v = 0; v < value_names_[attr].size(); ++v) {
      os << (is_null_[attr][v] ? 1 : 0) << ' ';
      WriteString(os, value_names_[attr][v]);
      os << '\n';
    }
  }
  store_.Serialize(os);
}

std::optional<Instance> Instance::Deserialize(SchemaPtr schema,
                                              std::istream& is) {
  std::string magic;
  int arity;
  if (!(is >> magic >> arity) || magic != kInstanceMagic ||
      arity != schema->arity()) {
    return std::nullopt;
  }
  Instance instance(std::move(schema));
  for (int attr = 0; attr < arity; ++attr) {
    std::size_t domain;
    if (!(is >> domain)) return std::nullopt;
    for (std::size_t v = 0; v < domain; ++v) {
      int null_flag;
      std::string name;
      if (!(is >> null_flag) || !ReadString(is, &name)) return std::nullopt;
      // AddValue appends, so restored ids are dense and identical.
      instance.AddValue(attr, std::move(name), null_flag != 0);
    }
  }
  std::optional<TupleStore> store = TupleStore::Deserialize(is);
  if (!store.has_value() || store->arity() != arity) return std::nullopt;
  // Route tuples through AddTuple so the inverted index (and dedup table)
  // are rebuilt; insertion in id order reproduces ids and ascending index
  // lists exactly.
  instance.Reserve(store->size(), 0);
  for (std::size_t id = 0; id < store->size(); ++id) {
    TupleRef t = (*store)[id];
    for (int attr = 0; attr < arity; ++attr) {
      if (t[attr] < 0 || t[attr] >= instance.DomainSize(attr)) {
        return std::nullopt;
      }
    }
    if (!instance.AddTuple(t)) return std::nullopt;
  }
  return instance;
}

std::string Instance::ToString() const {
  std::vector<std::string> headers;
  for (int a = 0; a < schema_->arity(); ++a) headers.push_back(schema_->name(a));
  TablePrinter table(headers);
  for (std::size_t i = 0; i < store_.size(); ++i) {
    TupleRef t = store_[i];
    std::vector<std::string> row;
    for (int a = 0; a < schema_->arity(); ++a) {
      row.push_back(value_names_[a][t[a]]);
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

std::string Instance::CheckInvariants() const {
  std::string store_problem = store_.CheckInvariants();
  if (!store_problem.empty()) return store_problem;
  for (std::size_t i = 0; i < store_.size(); ++i) {
    TupleRef t = store_[i];
    for (int a = 0; a < schema_->arity(); ++a) {
      if (t[a] < 0 || t[a] >= DomainSize(a)) return "tuple value out of range";
    }
  }
  for (int a = 0; a < schema_->arity(); ++a) {
    std::size_t indexed = 0;
    for (const auto& ids : index_[a]) {
      indexed += ids.size();
      int prev = -1;
      for (int id : ids) {
        if (id < 0 || id >= static_cast<int>(store_.size())) {
          return "index refers to missing tuple";
        }
        if (id <= prev) return "index list not ascending";
        prev = id;
      }
    }
    if (indexed != store_.size()) return "index cardinality mismatch";
  }
  return "";
}

}  // namespace tdlib
