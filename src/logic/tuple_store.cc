#include "logic/tuple_store.h"

#include <algorithm>
#include <atomic>
#include <istream>
#include <ostream>

#include "util/simd.h"

namespace tdlib {
namespace {

constexpr std::size_t kInitialSlots = 16;  // power of two

constexpr char kStoreMagic[] = "tdstore1";

std::atomic<TupleLayout> g_default_layout{TupleLayout::kRowMajor};

}  // namespace

TupleLayout DefaultTupleLayout() {
  return g_default_layout.load(std::memory_order_relaxed);
}

void SetDefaultTupleLayout(TupleLayout layout) {
  g_default_layout.store(layout, std::memory_order_relaxed);
}

TupleStore::TupleStore(int arity, TupleLayout layout)
    : arity_(arity),
      layout_(layout),
      slots_(kInitialSlots, 0),
      slot_mask_(kInitialSlots - 1) {}

std::size_t TupleStore::HashRow(const std::int32_t* row) const {
  return static_cast<std::size_t>(HashRowI32(row, arity_));
}

std::size_t TupleStore::HashStored(std::size_t id) const {
  // The hash is a layout-blind function of the row (HashRowI32 sees only
  // the component sequence via the stride), so dedup tables in both layouts
  // converge to identical slot assignments.
  return layout_ == TupleLayout::kRowMajor
             ? static_cast<std::size_t>(
                   HashRowI32(arena_.data() + id * arity_, arity_))
             : static_cast<std::size_t>(HashRowI32(
                   arena_.data() + id, arity_,
                   static_cast<std::ptrdiff_t>(col_capacity_)));
}

bool TupleStore::RowEquals(std::size_t id, const std::int32_t* row) const {
  if (layout_ == TupleLayout::kRowMajor) {
    const std::int32_t* stored = arena_.data() + id * arity_;
    for (int i = 0; i < arity_; ++i) {
      if (stored[i] != row[i]) return false;
    }
    return true;
  }
  for (int i = 0; i < arity_; ++i) {
    if (Component(id, i) != row[i]) return false;
  }
  return true;
}

void TupleStore::Grow() { Rehash(slots_.size() * 2); }

void TupleStore::Rehash(std::size_t target) {
  std::vector<std::int32_t> old = std::move(slots_);
  slots_.assign(target, 0);
  slot_mask_ = target - 1;
  if (num_tuples_ == 0) return;
  // Bulk-hash every stored row once up front: columnar slabs take
  // HashRowsI32's wide path (rows in vector lanes, one contiguous load per
  // attribute), and either way the per-entry loop below touches only the
  // precomputed table.
  std::vector<std::uint64_t> hashes(num_tuples_);
  if (layout_ == TupleLayout::kRowMajor) {
    HashRowsI32(arena_.data(), num_tuples_, arity_,
                /*row_stride=*/arity_, /*attr_stride=*/1, hashes.data());
  } else {
    HashRowsI32(arena_.data(), num_tuples_, arity_,
                /*row_stride=*/1,
                /*attr_stride=*/static_cast<std::ptrdiff_t>(col_capacity_),
                hashes.data());
  }
  for (std::int32_t entry : old) {
    if (entry == 0) continue;
    std::size_t id = static_cast<std::size_t>(entry - 1);
    std::size_t slot = static_cast<std::size_t>(hashes[id]) & slot_mask_;
    while (slots_[slot] != 0) slot = (slot + 1) & slot_mask_;
    slots_[slot] = entry;
  }
}

void TupleStore::EnsureColumnCapacity(std::size_t tuples) {
  if (tuples <= col_capacity_) return;
  std::size_t target = std::max<std::size_t>(kInitialSlots, col_capacity_ * 2);
  while (target < tuples) target *= 2;
  // One slab, arity_ equal columns: column `attr` occupies
  // [attr*target, attr*target + num_tuples_). Doubling keeps total copy work
  // linear in the final size (O(log n) migrations).
  std::vector<std::int32_t> grown(target * static_cast<std::size_t>(arity_));
  for (int attr = 0; attr < arity_; ++attr) {
    std::copy(arena_.begin() +
                  static_cast<std::ptrdiff_t>(attr * col_capacity_),
              arena_.begin() +
                  static_cast<std::ptrdiff_t>(attr * col_capacity_ +
                                              num_tuples_),
              grown.begin() + static_cast<std::ptrdiff_t>(attr * target));
  }
  arena_ = std::move(grown);
  col_capacity_ = target;
}

std::pair<int, bool> TupleStore::Insert(const std::int32_t* row) {
  // Stage the row first: `row` may point into our own slab, which the
  // append below can reallocate.
  scratch_.assign(row, row + arity_);
  return InsertStaged();
}

std::pair<int, bool> TupleStore::Insert(TupleRef row) {
  scratch_.resize(static_cast<std::size_t>(arity_));
  for (int i = 0; i < arity_; ++i) scratch_[i] = row[i];
  return InsertStaged();
}

std::pair<int, bool> TupleStore::InsertStaged() {
  std::size_t slot = HashRow(scratch_.data()) & slot_mask_;
  while (slots_[slot] != 0) {
    std::size_t id = static_cast<std::size_t>(slots_[slot] - 1);
    if (RowEquals(id, scratch_.data())) return {static_cast<int>(id), false};
    slot = (slot + 1) & slot_mask_;
  }

  int id = static_cast<int>(num_tuples_);
  if (layout_ == TupleLayout::kRowMajor) {
    arena_.insert(arena_.end(), scratch_.begin(), scratch_.end());
  } else {
    EnsureColumnCapacity(num_tuples_ + 1);
    for (int attr = 0; attr < arity_; ++attr) {
      arena_[static_cast<std::size_t>(attr) * col_capacity_ + num_tuples_] =
          scratch_[attr];
    }
  }
  ++num_tuples_;
  slots_[slot] = id + 1;
  // Keep the load factor under ~0.75 so probe chains stay short.
  if (num_tuples_ * 4 >= slots_.size() * 3) Grow();
  return {id, true};
}

int TupleStore::Find(const std::int32_t* row) const {
  std::size_t slot = HashRow(row) & slot_mask_;
  while (slots_[slot] != 0) {
    std::size_t id = static_cast<std::size_t>(slots_[slot] - 1);
    if (RowEquals(id, row)) return static_cast<int>(id);
    slot = (slot + 1) & slot_mask_;
  }
  return -1;
}

void TupleStore::Reserve(std::size_t tuples) {
  if (layout_ == TupleLayout::kRowMajor) {
    arena_.reserve(tuples * static_cast<std::size_t>(arity_));
  } else {
    EnsureColumnCapacity(tuples);
  }
  std::size_t want = kInitialSlots;
  // Size the table so `tuples` entries stay under the 0.75 load factor.
  while (want * 3 < tuples * 4) want *= 2;
  if (want > slots_.size()) Rehash(want);
}

void TupleStore::Serialize(std::ostream& os) const {
  os << kStoreMagic << ' ' << arity_ << ' ' << num_tuples_ << '\n';
  for (std::size_t id = 0; id < num_tuples_; ++id) {
    for (int i = 0; i < arity_; ++i) {
      os << Component(id, i) << (i + 1 == arity_ ? '\n' : ' ');
    }
  }
}

Result<TupleStore> TupleStore::Deserialize(std::istream& is,
                                           TupleLayout layout) {
  using R = Result<TupleStore>;
  auto corrupt = [](const char* what) {
    return R::Error(ErrorCode::kCorrupt, std::string("tuple store: ") + what);
  };
  std::string magic;
  int arity;
  std::size_t count;
  if (!(is >> magic >> arity >> count)) return corrupt("truncated header");
  if (magic != kStoreMagic) return corrupt("bad magic");
  if (arity < 0 || arity > (1 << 20)) {
    // Untrusted arity: reject before row allocation.
    return corrupt("arity out of range");
  }
  TupleStore store(arity, layout);
  // The count is untrusted input: pre-size only up to a sane bound (the
  // table grows on demand past it), so a corrupt header cannot OOM here —
  // a lying count just fails at end of input below.
  store.Reserve(std::min<std::size_t>(count, 1u << 20));
  std::vector<std::int32_t> row(static_cast<std::size_t>(arity));
  for (std::size_t id = 0; id < count; ++id) {
    for (std::int32_t& x : row) {
      if (!(is >> x)) return corrupt("truncated tuple block");
    }
    auto [got_id, inserted] = store.Insert(row.data());
    // Re-insertion in id order must reproduce the original ids exactly.
    if (!inserted || got_id != static_cast<int>(id)) {
      return corrupt("duplicate row breaks id assignment");
    }
  }
  return store;
}

std::string TupleStore::CheckInvariants() const {
  if (layout_ == TupleLayout::kRowMajor) {
    if (arena_.size() != num_tuples_ * static_cast<std::size_t>(arity_)) {
      return "arena size is not tuples * arity";
    }
  } else {
    if (num_tuples_ > col_capacity_) return "columns smaller than tuple count";
    if (arena_.size() != col_capacity_ * static_cast<std::size_t>(arity_)) {
      return "arena size is not columns * arity";
    }
  }
  if ((slots_.size() & slot_mask_) != 0 || slot_mask_ + 1 != slots_.size()) {
    return "slot table size is not a power of two";
  }
  std::size_t occupied = 0;
  for (std::int32_t entry : slots_) {
    if (entry == 0) continue;
    ++occupied;
    std::size_t id = static_cast<std::size_t>(entry - 1);
    if (id >= num_tuples_) return "slot refers to a missing tuple";
  }
  if (occupied != num_tuples_) return "slot count differs from tuple count";
  std::vector<std::int32_t> row(static_cast<std::size_t>(arity_));
  for (std::size_t id = 0; id < num_tuples_; ++id) {
    for (int i = 0; i < arity_; ++i) row[static_cast<std::size_t>(i)] =
        Component(id, i);
    int found = Find(row.data());
    if (found != static_cast<int>(id)) {
      return found < 0 ? "stored tuple not findable" : "duplicate tuple";
    }
  }
  return "";
}

}  // namespace tdlib
