// Relation schemas with typed (disjoint-domain) attributes.
//
// The paper works with "a single relation R with a fixed number of columns or
// attributes A, B, ..., C" under a typing restriction: "the domains of the
// various attributes are disjoint". A Schema is that column list; typing is
// enforced structurally because every variable and every domain value in
// tdlib is indexed *per attribute*.
#ifndef TDLIB_LOGIC_SCHEMA_H_
#define TDLIB_LOGIC_SCHEMA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tdlib {

/// An ordered list of attribute names. Attributes are referred to by index
/// (0-based) everywhere in the library; names exist for parsing and printing.
class Schema {
 public:
  Schema() = default;

  /// Creates a schema with the given attribute names. Names must be unique
  /// and non-empty; violations are reported by `Validate`.
  explicit Schema(std::vector<std::string> attribute_names);

  /// Number of attributes (the paper's "fixed number of columns").
  int arity() const { return static_cast<int>(names_.size()); }

  /// Name of attribute `attr`. Precondition: 0 <= attr < arity().
  const std::string& name(int attr) const { return names_[attr]; }

  /// Index of the attribute called `name`, or -1.
  int IndexOf(std::string_view name) const;

  /// Returns an empty string if the schema is well formed, otherwise a
  /// human-readable description of the first problem.
  std::string Validate() const;

  /// Schemas are equal iff they have the same attribute names in order.
  friend bool operator==(const Schema& a, const Schema& b) {
    return a.names_ == b.names_;
  }

  /// Convenience: builds a schema with attributes "A0", "A1", ... .
  static Schema Numbered(int arity, std::string_view prefix = "A");

 private:
  std::vector<std::string> names_;
};

/// Schemas are shared immutably between instances and dependencies.
using SchemaPtr = std::shared_ptr<const Schema>;

/// Creates a shared schema.
SchemaPtr MakeSchema(std::vector<std::string> attribute_names);

}  // namespace tdlib

#endif  // TDLIB_LOGIC_SCHEMA_H_
