// TupleStore: a flat, deduplicating arena of fixed-arity int32 tuples.
//
// The chase spends its life reading tuples: every homomorphism-search node
// dereferences one, every dedup probe hashes one. Storing each tuple as its
// own std::vector puts a heap allocation and a pointer chase on that path.
// TupleStore instead lays all tuples out back-to-back in one int32_t arena —
// tuple id i occupies arena[i*arity .. (i+1)*arity) — and hands out TupleRef
// views (pointer + arity) into it. The dedup structure is an open-addressing
// table of tuple *ids* (arena offsets), not owning copies: a probe hashes
// the arena bytes in place, so insertion does exactly one table walk.
//
// Invalidation contract: a TupleRef is a borrowed view; any Insert may grow
// the arena and invalidate outstanding refs. Ids are stable forever (tuples
// are never removed), so persist ids, not refs, across mutations.
//
// Concurrent-read contract: const members (operator[], Find, size,
// CheckInvariants) perform pure reads — Find probes the slot table in place
// and never touches the mutable `scratch_` staging row (only Insert does).
// Concurrent const calls from many threads are safe while no thread calls
// Insert/Reserve; writers must be externally fenced from readers. This is
// the foundation of the chase's read-only parallel match phase.
#ifndef TDLIB_LOGIC_TUPLE_STORE_H_
#define TDLIB_LOGIC_TUPLE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tdlib {

// Domain values are plain `int` throughout tdlib; the arena stores them as
// int32_t so spans over caller-provided rows need no conversion.
static_assert(sizeof(int) == sizeof(std::int32_t),
              "tdlib assumes 32-bit int (TupleRef aliases int rows)");

/// A borrowed, span-like view of one stored tuple (or any row of `arity`
/// consecutive int32 components). Cheap to copy; never owns memory.
class TupleRef {
 public:
  TupleRef() : data_(nullptr), arity_(0) {}
  TupleRef(const std::int32_t* data, int arity) : data_(data), arity_(arity) {}

  int operator[](int attr) const { return data_[attr]; }
  int arity() const { return arity_; }
  int size() const { return arity_; }
  const std::int32_t* data() const { return data_; }
  const std::int32_t* begin() const { return data_; }
  const std::int32_t* end() const { return data_ + arity_; }

  friend bool operator==(TupleRef a, TupleRef b) {
    if (a.arity_ != b.arity_) return false;
    for (int i = 0; i < a.arity_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(TupleRef a, TupleRef b) { return !(a == b); }

 private:
  const std::int32_t* data_;
  int arity_;
};

/// The arena. All tuples share one contiguous buffer; a private
/// open-addressing hash table over tuple ids provides O(1) dedup without a
/// second copy of any tuple. Value semantics (copy/move) are the defaults —
/// the table stores ids, never pointers into the arena.
class TupleStore {
 public:
  explicit TupleStore(int arity);

  int arity() const { return arity_; }
  std::size_t size() const { return num_tuples_; }

  /// View of tuple `id` (0 <= id < size()). Invalidated by Insert.
  TupleRef operator[](std::size_t id) const {
    return TupleRef(arena_.data() + id * arity_, arity_);
  }

  /// Inserts the row at `row` (arity() components). Returns {id, true} for a
  /// new tuple, {existing id, false} for a duplicate. Exactly one hash-table
  /// walk either way. `row` may alias this store's own arena.
  std::pair<int, bool> Insert(const std::int32_t* row);

  /// Id of the stored tuple equal to `row`, or -1.
  int Find(const std::int32_t* row) const;

  /// Pre-sizes the arena and hash table for `tuples` insertions.
  void Reserve(std::size_t tuples);

  /// "" when consistent, else a description of the first violation
  /// (arena/table size drift, table entry out of range, missed dedup).
  std::string CheckInvariants() const;

  /// Writes the arena as portable whitespace-separated text
  /// ("tdstore1 arity count" + the raw components in id order). Ids are the
  /// persistence contract: tuples are written — and re-inserted — in id
  /// order, so a restored store assigns every tuple its original id and the
  /// dedup table converges to the same layout. This is what lets a chase
  /// checkpoint (which persists ids, not refs) resume against a restored
  /// instance byte for byte.
  void Serialize(std::ostream& os) const;

  /// Round-trips Serialize. Returns std::nullopt on malformed input or a
  /// duplicate row (a serialized store is dedup-consistent by construction).
  static std::optional<TupleStore> Deserialize(std::istream& is);

 private:
  std::size_t HashRow(const std::int32_t* row) const;
  bool RowEquals(std::size_t id, const std::int32_t* row) const;
  void Grow();
  void Rehash(std::size_t target);

  int arity_;
  std::size_t num_tuples_ = 0;
  std::vector<std::int32_t> arena_;    // num_tuples_ * arity_ components
  std::vector<std::int32_t> slots_;    // open addressing; id + 1, 0 = empty
  std::size_t slot_mask_ = 0;          // slots_.size() - 1 (power of two)
  std::vector<std::int32_t> scratch_;  // staging row (self-insert safety)
};

}  // namespace tdlib

#endif  // TDLIB_LOGIC_TUPLE_STORE_H_
