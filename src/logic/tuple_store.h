// TupleStore: a flat, deduplicating arena of fixed-arity int32 tuples, in
// either of two physical layouts behind one logical interface.
//
// The chase spends its life reading tuples: every homomorphism-search node
// dereferences one, every dedup probe hashes one. Storing each tuple as its
// own std::vector puts a heap allocation and a pointer chase on that path.
// TupleStore instead lays all components out in one int32_t slab and hands
// out TupleRef views (pointer + arity + stride) into it:
//
//   * kRowMajor (the default): tuple id i occupies
//     arena[i*arity .. (i+1)*arity) — stride-1 within a tuple. Best when the
//     hot loops read whole rows (dedup hashing, TryBindRow).
//   * kColumnar (SoA): component (attr, id) lives at
//     arena[attr*col_capacity + id] — stride-1 within an ATTRIBUTE. Best
//     when the hot loops scan one attribute across many tuples (wide
//     reduction schemas, arity = 2n + 2, where a row-major row spans
//     several cache lines). See README "Data layout" for measurements.
//
// The layout is observable only as speed: ids, dedup outcomes, iteration
// order and Serialize bytes are identical in both modes (the persistence
// format carries no layout, so a checkpoint written by a row-major store
// restores into a columnar one byte for byte).
//
// The dedup structure is an open-addressing table of tuple *ids* (slab
// offsets), not owning copies: a probe hashes the slab components in place,
// so insertion does exactly one table walk.
//
// Invalidation contract: a TupleRef is a borrowed view; any Insert may grow
// the slab and invalidate outstanding refs. Ids are stable forever (tuples
// are never removed), so persist ids, not refs, across mutations.
//
// Concurrent-read contract: const members (operator[], Find, size,
// CheckInvariants) perform pure reads — Find probes the slot table in place
// and never touches the mutable `scratch_` staging row (only Insert does).
// Concurrent const calls from many threads are safe while no thread calls
// Insert/Reserve; writers must be externally fenced from readers. This is
// the foundation of the chase's read-only parallel match phase.
#ifndef TDLIB_LOGIC_TUPLE_STORE_H_
#define TDLIB_LOGIC_TUPLE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace tdlib {

// Domain values are plain `int` throughout tdlib; the arena stores them as
// int32_t so spans over caller-provided rows need no conversion.
static_assert(sizeof(int) == sizeof(std::int32_t),
              "tdlib assumes 32-bit int (TupleRef aliases int rows)");

/// Physical layout of a TupleStore's component slab.
enum class TupleLayout {
  kRowMajor,  ///< tuples back to back: component (attr, id) at id*arity+attr
  kColumnar,  ///< per-attribute columns:  component (attr, id) at attr*cap+id
};

/// The process-wide default layout for newly constructed stores (and hence
/// Instances, frozen tableaux, chase results, ...). Row-major unless
/// overridden. Reads/writes are atomic, but the intended use is to set it
/// once at startup (tdbatch --layout, bench setup) before any store exists —
/// changing it mid-flight only affects stores constructed afterwards.
TupleLayout DefaultTupleLayout();
void SetDefaultTupleLayout(TupleLayout layout);

/// A borrowed, span-like view of one stored tuple: component `attr` lives at
/// data[attr * stride]. Row-major views have stride 1 (and can alias any
/// caller-owned row of `arity` consecutive int32s); columnar views stride by
/// the store's column capacity. Cheap to copy; never owns memory. Consumers
/// must go through operator[] — raw-pointer access is only meaningful for
/// stride-1 views (see contiguous()/data()).
class TupleRef {
 public:
  TupleRef() : data_(nullptr), arity_(0), stride_(1) {}
  TupleRef(const std::int32_t* data, int arity, std::ptrdiff_t stride = 1)
      : data_(data), arity_(arity), stride_(stride) {}

  int operator[](int attr) const { return data_[attr * stride_]; }
  int arity() const { return arity_; }
  int size() const { return arity_; }

  /// True iff the components are adjacent in memory (stride 1); only then is
  /// data() a valid pointer to the whole row.
  bool contiguous() const { return stride_ == 1; }
  const std::int32_t* data() const { return data_; }

  friend bool operator==(TupleRef a, TupleRef b) {
    if (a.arity_ != b.arity_) return false;
    for (int i = 0; i < a.arity_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
  friend bool operator!=(TupleRef a, TupleRef b) { return !(a == b); }

 private:
  const std::int32_t* data_;
  int arity_;
  std::ptrdiff_t stride_;
};

/// A borrowed view of one ATTRIBUTE across all stored tuples: the component
/// of tuple `id` lives at data[id * stride]. The transpose of TupleRef —
/// same slab, sliced the other way. Columnar stores hand out stride-1 spans
/// (the whole column is contiguous: one vector load covers eight adjacent
/// tuple ids); row-major spans stride by the arity. This is what the
/// homomorphism search's block filter scans with util/simd.h's EqMaskI32.
/// Invalidated by Insert, like TupleRef.
struct ColumnSpan {
  const std::int32_t* data = nullptr;
  std::ptrdiff_t stride = 1;
};

/// The arena. All tuples share one contiguous slab; a private
/// open-addressing hash table over tuple ids provides O(1) dedup without a
/// second copy of any tuple. Value semantics (copy/move) are the defaults —
/// the table stores ids, never pointers into the slab.
class TupleStore {
 public:
  explicit TupleStore(int arity, TupleLayout layout = DefaultTupleLayout());

  int arity() const { return arity_; }
  std::size_t size() const { return num_tuples_; }
  TupleLayout layout() const { return layout_; }

  /// View of tuple `id` (0 <= id < size()). Invalidated by Insert.
  TupleRef operator[](std::size_t id) const {
    return layout_ == TupleLayout::kRowMajor
               ? TupleRef(arena_.data() + id * arity_, arity_)
               : TupleRef(arena_.data() + id, arity_,
                          static_cast<std::ptrdiff_t>(col_capacity_));
  }

  /// View of attribute `attr` across all size() tuples (stride 1 when
  /// columnar, stride arity() when row-major). Invalidated by Insert.
  ColumnSpan Column(int attr) const {
    if (arena_.empty()) return {};  // keep nullptr arithmetic out of UBSan
    return layout_ == TupleLayout::kRowMajor
               ? ColumnSpan{arena_.data() + attr,
                            static_cast<std::ptrdiff_t>(arity_)}
               : ColumnSpan{arena_.data() +
                                static_cast<std::size_t>(attr) * col_capacity_,
                            1};
  }

  /// Inserts the row at `row` (arity() contiguous components). Returns
  /// {id, true} for a new tuple, {existing id, false} for a duplicate.
  /// Exactly one hash-table walk either way. `row` may alias this store's
  /// own slab.
  std::pair<int, bool> Insert(const std::int32_t* row);

  /// Same, for a (possibly strided) view — including a view into this
  /// store's own slab.
  std::pair<int, bool> Insert(TupleRef row);

  /// Id of the stored tuple equal to `row` (contiguous), or -1.
  int Find(const std::int32_t* row) const;

  /// Pre-sizes the slab and hash table for `tuples` insertions.
  void Reserve(std::size_t tuples);

  /// "" when consistent, else a description of the first violation
  /// (slab/table size drift, table entry out of range, missed dedup).
  std::string CheckInvariants() const;

  /// Writes the store as portable whitespace-separated text
  /// ("tdstore1 arity count" + the raw components in id order). Ids are the
  /// persistence contract: tuples are written — and re-inserted — in id
  /// order, so a restored store assigns every tuple its original id and the
  /// dedup table converges to the same layout, REGARDLESS of either side's
  /// physical layout. This is what lets a chase checkpoint (which persists
  /// ids, not refs) resume against a restored instance byte for byte.
  void Serialize(std::ostream& os) const;

  /// Round-trips Serialize into a store with the requested layout. The
  /// stream is untrusted: arity and count are bounds-checked before any
  /// allocation, and malformed input — bad magic, truncation, a duplicate
  /// row (a serialized store is dedup-consistent by construction) — yields
  /// ErrorCode::kCorrupt with a field-level message.
  static Result<TupleStore> Deserialize(
      std::istream& is, TupleLayout layout = DefaultTupleLayout());

 private:
  /// Component (attr) of stored tuple `id`, layout-blind.
  std::int32_t Component(std::size_t id, int attr) const {
    return layout_ == TupleLayout::kRowMajor
               ? arena_[id * static_cast<std::size_t>(arity_) + attr]
               : arena_[static_cast<std::size_t>(attr) * col_capacity_ + id];
  }
  std::pair<int, bool> InsertStaged();
  std::size_t HashRow(const std::int32_t* row) const;
  std::size_t HashStored(std::size_t id) const;
  bool RowEquals(std::size_t id, const std::int32_t* row) const;
  void EnsureColumnCapacity(std::size_t tuples);
  void Grow();
  void Rehash(std::size_t target);

  int arity_;
  TupleLayout layout_;
  std::size_t num_tuples_ = 0;
  std::size_t col_capacity_ = 0;       // columnar only: slots per column
  std::vector<std::int32_t> arena_;    // the component slab (see TupleLayout)
  std::vector<std::int32_t> slots_;    // open addressing; id + 1, 0 = empty
  std::size_t slot_mask_ = 0;          // slots_.size() - 1 (power of two)
  std::vector<std::int32_t> scratch_;  // staging row (self-insert safety)
};

}  // namespace tdlib

#endif  // TDLIB_LOGIC_TUPLE_STORE_H_
