#include "logic/homomorphism.h"

#include <algorithm>
#include <limits>

namespace tdlib {
namespace {

// Intersections pay for their galloping bookkeeping by skipping candidates
// the single-list scan would have tried and rejected; on lists this short
// the scan is cheaper than the merge, so the shortest list is used alone.
constexpr std::size_t kMinIntersectSize = 8;

// First element of [lo, hi) at or after `lo` whose id is >= target, found by
// galloping (doubling steps, then std::lower_bound in the bracketed window).
// Raw contiguous pointers: the hot merge must not pay a two-run branch per
// probe.
const int* GallopSpan(const int* lo, const int* hi, int target) {
  if (lo == hi || *lo >= target) return lo;
  std::ptrdiff_t step = 1;
  const int* low = lo;  // invariant: *low < target
  while (low + step < hi && low[step] < target) {
    low += step;
    step <<= 1;
  }
  const int* high = low + step < hi ? low + step : hi;
  return std::lower_bound(low + 1, high, target);
}

// First position in `list` at or after `pos` whose id is >= target.
// Cursor-resumable: intersection loops advance monotonically, so the total
// gallop work over one merge is O(sum of list sizes) worst case and
// O(k log n) when the driver is sparse in the others. The two runs are
// handled as separate contiguous spans (base ids all precede tail ids), so
// each probe is a stride-1 pointer compare.
std::size_t GallopTo(const CandidateList& list, std::size_t pos, int target) {
  const IdSpan base = list.base();
  if (pos < base.size()) {
    const int* p = GallopSpan(base.begin() + pos, base.end(), target);
    if (p != base.end()) return static_cast<std::size_t>(p - base.begin());
    pos = base.size();
  }
  const IdSpan tail = list.tail();
  const std::size_t tail_pos = pos - base.size();
  const int* p = GallopSpan(tail.begin() + tail_pos, tail.end(), target);
  return base.size() + static_cast<std::size_t>(p - tail.begin());
}

}  // namespace

Valuation Valuation::For(const Tableau& t) {
  Valuation v;
  v.values.resize(t.schema().arity());
  for (int attr = 0; attr < t.schema().arity(); ++attr) {
    v.values[attr].assign(t.NumVars(attr), -1);
  }
  return v;
}

HomomorphismSearch::HomomorphismSearch(const Tableau& source,
                                       const Instance& target,
                                       HomSearchOptions options)
    : source_(source),
      target_(target),
      options_(options),
      valuation_(Valuation::For(source)),
      row_done_(source.num_rows(), false),
      row_tuples_(source.num_rows(), -1),
      candidate_storage_(source.num_rows()),
      undo_storage_(source.num_rows()) {
  bound_lists_.reserve(static_cast<std::size_t>(source.schema().arity()));
  list_cursors_.reserve(static_cast<std::size_t>(source.schema().arity()));
}

void HomomorphismSearch::SetInitial(const Valuation& initial) {
  valuation_ = initial;
}

HomSearchStatus HomomorphismSearch::FindAny(Valuation* result) {
  HomSearchStatus status = ForEach([&](const Valuation& v) {
    if (result != nullptr) *result = v;
    return false;  // stop at the first hit
  });
  // ForEach reports kFound when the visitor stopped it.
  return status;
}

HomSearchStatus HomomorphismSearch::ForEach(
    const std::function<bool(const Valuation&)>& visit) {
  stats_ = HomSearchStats{};
  delta_rows_bound_ = 0;
  std::fill(row_done_.begin(), row_done_.end(), false);
  bool stopped = false;
  Backtrack(0, visit, &stopped);
  if (stopped) return HomSearchStatus::kFound;
  return stats_.budget_hit ? HomSearchStatus::kBudget
                           : HomSearchStatus::kExhausted;
}

std::pair<int, int> HomomorphismSearch::RowIdBounds(int row_idx) const {
  if (options_.delta_begin < 0 || options_.delta_seed_row < 0) {
    return {0, std::numeric_limits<int>::max()};
  }
  if (row_idx < options_.delta_seed_row) return {0, options_.delta_begin};
  if (row_idx == options_.delta_seed_row) {
    // The seed row binds the delta — or, when the chase sliced this
    // partition member into sub-tasks, one sub-range of it.
    int lo = options_.delta_seed_begin >= 0 ? options_.delta_seed_begin
                                            : options_.delta_begin;
    int hi = options_.delta_seed_end >= 0 ? options_.delta_seed_end
                                          : std::numeric_limits<int>::max();
    return {lo, hi};
  }
  return {0, std::numeric_limits<int>::max()};
}

int HomomorphismSearch::PickNextRow() const {
  if (!options_.use_dynamic_order) {
    for (int i = 0; i < source_.num_rows(); ++i) {
      if (!row_done_[i]) return i;
    }
    return -1;
  }
  // Most-constrained-first: prefer the row whose smallest bound-position
  // candidate list is shortest; rows with no bound position score the whole
  // instance size. A delta-restricted id range caps the score too, so the
  // seed row (candidates = the delta, usually tiny) is matched early.
  int best = -1;
  std::size_t best_score = std::numeric_limits<std::size_t>::max();
  for (int i = 0; i < source_.num_rows(); ++i) {
    if (row_done_[i]) continue;
    auto [min_id, max_id] = RowIdBounds(i);
    std::size_t range = 0;
    int capped = static_cast<int>(
        std::min<std::size_t>(target_.NumTuples(),
                              static_cast<std::size_t>(max_id)));
    if (capped > min_id) range = static_cast<std::size_t>(capped - min_id);
    std::size_t score = range;
    const Row& r = source_.row(i);
    for (int attr = 0; attr < source_.schema().arity(); ++attr) {
      int bound = valuation_.Get(attr, r[attr]);
      if (bound >= 0) {
        score = std::min(score, target_.CountWith(attr, bound));
      }
    }
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

void HomomorphismSearch::RowCandidates(int row_idx, int min_id, int max_id,
                                       std::vector<int>* storage,
                                       CandidateRuns* out) {
  out->runs[0] = IdSpan();
  out->runs[1] = IdSpan();
  const Row& r = source_.row(row_idx);
  if (options_.use_index) {
    bound_lists_.clear();
    for (int attr = 0; attr < source_.schema().arity(); ++attr) {
      int bound = valuation_.Get(attr, r[attr]);
      if (bound >= 0) bound_lists_.push_back(target_.TuplesWith(attr, bound));
    }
    if (!bound_lists_.empty()) {
      // Shortest list first (ties keep the lowest attribute, matching the
      // historical choice — PickNextRow's scores, and hence the search tree,
      // depend on nothing here, but determinism is cheap).
      std::size_t best = 0;
      for (std::size_t i = 1; i < bound_lists_.size(); ++i) {
        if (bound_lists_[i].size() < bound_lists_[best].size()) best = i;
      }
      const CandidateList& driver = bound_lists_[best];
      // Deterministic intersection accounting: which branch a multi-list
      // choice takes is a pure function of the bound lists, so these
      // counters are byte-identical across runs (unlike wall time).
      if (bound_lists_.size() >= 2 && options_.use_intersection) {
        if (driver.size() > kMinIntersectSize) {
          ++stats_.intersections;
        } else {
          ++stats_.intersect_skips;
        }
      }
      if (options_.use_intersection && bound_lists_.size() >= 2 &&
          driver.size() > kMinIntersectSize) {
        // Galloping k-way intersection, driver outermost. Every id kept here
        // is exactly an id the single-list scan would have accepted in
        // TryBindRow — the merge moves the equality checks off the per-
        // candidate path, it never changes the candidate set.
        storage->clear();
        list_cursors_.assign(bound_lists_.size(), 0);
        std::size_t pos = GallopTo(driver, 0, min_id);
        bool exhausted = false;
        for (; pos < driver.size() && !exhausted; ++pos) {
          const int id = driver[pos];
          // The caller discards everything past its id window; stopping the
          // merge here (ids ascending) keeps a narrow delta window from
          // paying a full-posting-list merge. Invisible in the counters:
          // these ids were never tried.
          if (id >= max_id) break;
          bool all = true;
          for (std::size_t j = 0; j < bound_lists_.size(); ++j) {
            if (j == best) continue;
            std::size_t c = GallopTo(bound_lists_[j], list_cursors_[j], id);
            list_cursors_[j] = c;
            if (c >= bound_lists_[j].size()) {
              // This list has no ids >= id anymore: nothing later in the
              // driver can be in the intersection either.
              all = false;
              exhausted = true;
              break;
            }
            if (bound_lists_[j][c] != id) {
              all = false;
              break;
            }
          }
          if (all) storage->push_back(id);
        }
        out->runs[0] = IdSpan(storage->data(), storage->size());
        return;
      }
      // Single-list mode: hand out the index spans directly (zero copies);
      // TryBindRow filters the other bound positions per candidate. Runs are
      // ascending with base ids < tail ids, so a delta cutoff is one binary
      // search per run.
      out->runs[0] =
          min_id > 0 ? driver.base().SuffixFrom(min_id) : driver.base();
      out->runs[1] =
          min_id > 0 ? driver.tail().SuffixFrom(min_id) : driver.tail();
      return;
    }
  }
  storage->clear();
  const std::size_t scan_end = std::min<std::size_t>(
      target_.NumTuples(), static_cast<std::size_t>(max_id));
  if (scan_end > static_cast<std::size_t>(min_id)) {
    storage->reserve(scan_end - static_cast<std::size_t>(min_id));
    for (std::size_t i = static_cast<std::size_t>(min_id); i < scan_end; ++i) {
      storage->push_back(static_cast<int>(i));
    }
  }
  out->runs[0] = IdSpan(storage->data(), storage->size());
}

bool HomomorphismSearch::TryBindRow(int row_idx, TupleRef tuple,
                                    std::vector<std::pair<int, int>>* undo) {
  const Row& r = source_.row(row_idx);
  for (int attr = 0; attr < source_.schema().arity(); ++attr) {
    int var = r[attr];
    int bound = valuation_.Get(attr, var);
    if (bound >= 0) {
      if (bound != tuple[attr]) {
        UndoBindings(*undo);
        undo->clear();
        return false;
      }
    } else {
      valuation_.Set(attr, var, tuple[attr]);
      undo->emplace_back(attr, var);
    }
  }
  return true;
}

void HomomorphismSearch::UndoBindings(
    const std::vector<std::pair<int, int>>& undo) {
  for (auto [attr, var] : undo) valuation_.Set(attr, var, -1);
}

bool HomomorphismSearch::Backtrack(
    int depth, const std::function<bool(const Valuation&)>& visit,
    bool* stopped) {
  if (options_.max_nodes > 0 && stats_.nodes >= options_.max_nodes) {
    stats_.budget_hit = true;
    return false;
  }
  // Amortized wall-clock / cancel check: a single pumped search can run for
  // seconds, so waiting for the caller to look at the clock between
  // searches lets a deadline overshoot arbitrarily. The cancel flag rides
  // the same cadence — it is how a concurrent sibling search's budget trip
  // winds this one down.
  if ((stats_.nodes & 0x1FF) == 0x1FF) {
    if (options_.deadline != nullptr && options_.deadline->Expired()) {
      stats_.budget_hit = true;
      stats_.deadline_hit = true;
      return false;
    }
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      stats_.budget_hit = true;
      return false;
    }
    if (options_.job_cancel != nullptr &&
        options_.job_cancel->load(std::memory_order_relaxed)) {
      stats_.budget_hit = true;
      stats_.cancel_hit = true;
      return false;
    }
  }
  ++stats_.nodes;
  if (depth == source_.num_rows()) {
    // All rows matched. Complete the valuation on variables that appear in
    // no row (possible when the variable space is wider than the rows): they
    // are unconstrained, so leave them unbound; visitors treat -1 as "any".
    if (!visit(valuation_)) {
      *stopped = true;
      return false;
    }
    return true;
  }
  int row_idx = PickNextRow();
  // The semi-naive partition as per-row id windows: candidate runs are
  // ascending, so the window is one lower_bound plus an early break.
  auto [min_id, max_id] = RowIdBounds(row_idx);
  const bool any_row_mode =
      options_.delta_begin >= 0 && options_.delta_seed_row < 0;
  if (any_row_mode && delta_rows_bound_ == 0 &&
      depth == source_.num_rows() - 1) {
    // "Any row" mode: if no row has hit the delta yet, only a delta tuple
    // on the last undone row can complete a delta-touching match.
    min_id = std::max(min_id, options_.delta_begin);
  }
  std::vector<int>& storage = candidate_storage_[depth];
  CandidateRuns candidates;
  RowCandidates(row_idx, min_id, max_id, &storage, &candidates);
  row_done_[row_idx] = true;
  std::vector<std::pair<int, int>>& undo = undo_storage_[depth];
  undo.clear();
  bool window_closed = false;
  for (int run = 0; run < 2 && !window_closed; ++run) {
    for (int tuple_id : candidates.runs[run]) {
      // Runs are ascending and run 0's ids all precede run 1's, so the first
      // id past the window ends the whole iteration.
      if (tuple_id >= max_id) {
        window_closed = true;
        break;
      }
      ++stats_.candidates;
      undo.clear();
      if (!TryBindRow(row_idx, target_.tuple(tuple_id), &undo)) continue;
      row_tuples_[row_idx] = tuple_id;
      bool in_delta = any_row_mode && tuple_id >= options_.delta_begin;
      delta_rows_bound_ += in_delta ? 1 : 0;
      bool keep_going = Backtrack(depth + 1, visit, stopped);
      delta_rows_bound_ -= in_delta ? 1 : 0;
      UndoBindings(undo);
      if (!keep_going && (*stopped || stats_.budget_hit)) {
        row_done_[row_idx] = false;
        return false;
      }
    }
  }
  row_done_[row_idx] = false;
  return true;
}

HomSearchStatus ExistsHomomorphism(const Tableau& source,
                                   const Instance& target,
                                   HomSearchOptions options) {
  HomomorphismSearch search(source, target, options);
  return search.FindAny(nullptr);
}

HomSearchStatus MapsInto(const Tableau& from, const Tableau& to,
                         HomSearchOptions options) {
  Instance frozen = to.Freeze();
  return ExistsHomomorphism(from, frozen, options);
}

}  // namespace tdlib
