#include "logic/homomorphism.h"

#include <algorithm>
#include <limits>

namespace tdlib {

Valuation Valuation::For(const Tableau& t) {
  Valuation v;
  v.values.resize(t.schema().arity());
  for (int attr = 0; attr < t.schema().arity(); ++attr) {
    v.values[attr].assign(t.NumVars(attr), -1);
  }
  return v;
}

HomomorphismSearch::HomomorphismSearch(const Tableau& source,
                                       const Instance& target,
                                       HomSearchOptions options)
    : source_(source),
      target_(target),
      options_(options),
      valuation_(Valuation::For(source)),
      row_done_(source.num_rows(), false),
      row_tuples_(source.num_rows(), -1) {}

void HomomorphismSearch::SetInitial(const Valuation& initial) {
  valuation_ = initial;
}

HomSearchStatus HomomorphismSearch::FindAny(Valuation* result) {
  HomSearchStatus status = ForEach([&](const Valuation& v) {
    if (result != nullptr) *result = v;
    return false;  // stop at the first hit
  });
  // ForEach reports kFound when the visitor stopped it.
  return status;
}

HomSearchStatus HomomorphismSearch::ForEach(
    const std::function<bool(const Valuation&)>& visit) {
  stats_ = HomSearchStats{};
  delta_rows_bound_ = 0;
  std::fill(row_done_.begin(), row_done_.end(), false);
  bool stopped = false;
  Backtrack(0, visit, &stopped);
  if (stopped) return HomSearchStatus::kFound;
  return stats_.budget_hit ? HomSearchStatus::kBudget
                           : HomSearchStatus::kExhausted;
}

std::pair<int, int> HomomorphismSearch::RowIdBounds(int row_idx) const {
  if (options_.delta_begin < 0 || options_.delta_seed_row < 0) {
    return {0, std::numeric_limits<int>::max()};
  }
  if (row_idx < options_.delta_seed_row) return {0, options_.delta_begin};
  if (row_idx == options_.delta_seed_row) {
    return {options_.delta_begin, std::numeric_limits<int>::max()};
  }
  return {0, std::numeric_limits<int>::max()};
}

int HomomorphismSearch::PickNextRow() const {
  if (!options_.use_dynamic_order) {
    for (int i = 0; i < source_.num_rows(); ++i) {
      if (!row_done_[i]) return i;
    }
    return -1;
  }
  // Most-constrained-first: prefer the row whose smallest bound-position
  // candidate list is shortest; rows with no bound position score the whole
  // instance size. A delta-restricted id range caps the score too, so the
  // seed row (candidates = the delta, usually tiny) is matched early.
  int best = -1;
  std::size_t best_score = std::numeric_limits<std::size_t>::max();
  for (int i = 0; i < source_.num_rows(); ++i) {
    if (row_done_[i]) continue;
    auto [min_id, max_id] = RowIdBounds(i);
    std::size_t range = 0;
    int capped = static_cast<int>(
        std::min<std::size_t>(target_.NumTuples(),
                              static_cast<std::size_t>(max_id)));
    if (capped > min_id) range = static_cast<std::size_t>(capped - min_id);
    std::size_t score = range;
    const Row& r = source_.row(i);
    for (int attr = 0; attr < source_.schema().arity(); ++attr) {
      int bound = valuation_.Get(attr, r[attr]);
      if (bound >= 0) {
        score = std::min(score, target_.TuplesWith(attr, bound).size());
      }
    }
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

const std::vector<int>* HomomorphismSearch::RowCandidates(
    int row_idx, int min_id, std::vector<int>* storage,
    std::size_t* first) const {
  const Row& r = source_.row(row_idx);
  *first = 0;
  if (options_.use_index) {
    // Use the shortest index list among bound positions. Lists are
    // ascending, so a delta cutoff is one binary search.
    int best_attr = -1;
    std::size_t best_size = std::numeric_limits<std::size_t>::max();
    for (int attr = 0; attr < source_.schema().arity(); ++attr) {
      int bound = valuation_.Get(attr, r[attr]);
      if (bound >= 0 && target_.TuplesWith(attr, bound).size() < best_size) {
        best_size = target_.TuplesWith(attr, bound).size();
        best_attr = attr;
      }
    }
    if (best_attr >= 0) {
      const std::vector<int>& ids =
          target_.TuplesWith(best_attr, valuation_.Get(best_attr, r[best_attr]));
      if (min_id > 0) {
        *first = static_cast<std::size_t>(
            std::lower_bound(ids.begin(), ids.end(), min_id) - ids.begin());
      }
      return &ids;
    }
  }
  storage->clear();
  storage->reserve(target_.NumTuples());
  for (std::size_t i = static_cast<std::size_t>(min_id);
       i < target_.NumTuples(); ++i) {
    storage->push_back(static_cast<int>(i));
  }
  return storage;
}

bool HomomorphismSearch::TryBindRow(int row_idx, TupleRef tuple,
                                    std::vector<std::pair<int, int>>* undo) {
  const Row& r = source_.row(row_idx);
  for (int attr = 0; attr < source_.schema().arity(); ++attr) {
    int var = r[attr];
    int bound = valuation_.Get(attr, var);
    if (bound >= 0) {
      if (bound != tuple[attr]) {
        UndoBindings(*undo);
        undo->clear();
        return false;
      }
    } else {
      valuation_.Set(attr, var, tuple[attr]);
      undo->emplace_back(attr, var);
    }
  }
  return true;
}

void HomomorphismSearch::UndoBindings(
    const std::vector<std::pair<int, int>>& undo) {
  for (auto [attr, var] : undo) valuation_.Set(attr, var, -1);
}

bool HomomorphismSearch::Backtrack(
    int depth, const std::function<bool(const Valuation&)>& visit,
    bool* stopped) {
  if (options_.max_nodes > 0 && stats_.nodes >= options_.max_nodes) {
    stats_.budget_hit = true;
    return false;
  }
  // Amortized wall-clock / cancel check: a single pumped search can run for
  // seconds, so waiting for the caller to look at the clock between
  // searches lets a deadline overshoot arbitrarily. The cancel flag rides
  // the same cadence — it is how a concurrent sibling search's budget trip
  // winds this one down.
  if ((stats_.nodes & 0x1FF) == 0x1FF) {
    if (options_.deadline != nullptr && options_.deadline->Expired()) {
      stats_.budget_hit = true;
      stats_.deadline_hit = true;
      return false;
    }
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      stats_.budget_hit = true;
      return false;
    }
    if (options_.job_cancel != nullptr &&
        options_.job_cancel->load(std::memory_order_relaxed)) {
      stats_.budget_hit = true;
      stats_.cancel_hit = true;
      return false;
    }
  }
  ++stats_.nodes;
  if (depth == source_.num_rows()) {
    // All rows matched. Complete the valuation on variables that appear in
    // no row (possible when the variable space is wider than the rows): they
    // are unconstrained, so leave them unbound; visitors treat -1 as "any".
    if (!visit(valuation_)) {
      *stopped = true;
      return false;
    }
    return true;
  }
  int row_idx = PickNextRow();
  // The semi-naive partition as per-row id windows: candidate lists are
  // ascending, so the window is one lower_bound plus an early break.
  auto [min_id, max_id] = RowIdBounds(row_idx);
  const bool any_row_mode =
      options_.delta_begin >= 0 && options_.delta_seed_row < 0;
  if (any_row_mode && delta_rows_bound_ == 0 &&
      depth == source_.num_rows() - 1) {
    // "Any row" mode: if no row has hit the delta yet, only a delta tuple
    // on the last undone row can complete a delta-touching match.
    min_id = std::max(min_id, options_.delta_begin);
  }
  std::vector<int> storage;
  std::size_t first = 0;
  const std::vector<int>* candidates =
      RowCandidates(row_idx, min_id, &storage, &first);
  row_done_[row_idx] = true;
  std::vector<std::pair<int, int>> undo;
  for (std::size_t ci = first; ci < candidates->size(); ++ci) {
    int tuple_id = (*candidates)[ci];
    if (tuple_id >= max_id) break;
    undo.clear();
    if (!TryBindRow(row_idx, target_.tuple(tuple_id), &undo)) continue;
    row_tuples_[row_idx] = tuple_id;
    bool in_delta = any_row_mode && tuple_id >= options_.delta_begin;
    delta_rows_bound_ += in_delta ? 1 : 0;
    bool keep_going = Backtrack(depth + 1, visit, stopped);
    delta_rows_bound_ -= in_delta ? 1 : 0;
    UndoBindings(undo);
    if (!keep_going && (*stopped || stats_.budget_hit)) {
      row_done_[row_idx] = false;
      return false;
    }
  }
  row_done_[row_idx] = false;
  return true;
}

HomSearchStatus ExistsHomomorphism(const Tableau& source,
                                   const Instance& target,
                                   HomSearchOptions options) {
  HomomorphismSearch search(source, target, options);
  return search.FindAny(nullptr);
}

HomSearchStatus MapsInto(const Tableau& from, const Tableau& to,
                         HomSearchOptions options) {
  Instance frozen = to.Freeze();
  return ExistsHomomorphism(from, frozen, options);
}

}  // namespace tdlib
