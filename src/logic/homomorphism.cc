#include "logic/homomorphism.h"

#include <algorithm>
#include <limits>

#include "util/simd.h"

namespace tdlib {
namespace {

// First element of [lo, hi) at or after `lo` whose id is >= target, found by
// galloping (doubling steps, then std::lower_bound in the bracketed window).
// Raw contiguous pointers: the hot merge must not pay a two-run branch per
// probe.
const int* GallopSpan(const int* lo, const int* hi, int target) {
  if (lo == hi || *lo >= target) return lo;
  std::ptrdiff_t step = 1;
  const int* low = lo;  // invariant: *low < target
  while (low + step < hi && low[step] < target) {
    low += step;
    step <<= 1;
  }
  const int* high = low + step < hi ? low + step : hi;
  return std::lower_bound(low + 1, high, target);
}

// First position in `list` at or after `pos` whose id is >= target.
// Cursor-resumable: intersection loops advance monotonically, so the total
// gallop work over one merge is O(sum of list sizes) worst case and
// O(k log n) when the driver is sparse in the others. The two runs are
// handled as separate contiguous spans (base ids all precede tail ids), so
// each probe is a stride-1 pointer compare.
std::size_t GallopTo(const CandidateList& list, std::size_t pos, int target) {
  const IdSpan base = list.base();
  if (pos < base.size()) {
    const int* p = GallopSpan(base.begin() + pos, base.end(), target);
    if (p != base.end()) return static_cast<std::size_t>(p - base.begin());
    pos = base.size();
  }
  const IdSpan tail = list.tail();
  const std::size_t tail_pos = pos - base.size();
  const int* p = GallopSpan(tail.begin() + tail_pos, tail.end(), target);
  return base.size() + static_cast<std::size_t>(p - tail.begin());
}

// Drops the suffix of ids >= max_id from an ascending run (one binary
// search, and only when the run actually reaches max_id).
IdSpan PrefixBelow(IdSpan s, int max_id) {
  if (s.empty() || s[s.size() - 1] < max_id) return s;
  const int* e = std::lower_bound(s.begin(), s.end(), max_id);
  return IdSpan(s.begin(), static_cast<std::size_t>(e - s.begin()));
}

}  // namespace

Valuation Valuation::For(const Tableau& t) {
  Valuation v;
  v.values.resize(t.schema().arity());
  for (int attr = 0; attr < t.schema().arity(); ++attr) {
    v.values[attr].assign(t.NumVars(attr), -1);
  }
  return v;
}

HomomorphismSearch::HomomorphismSearch(const Tableau& source,
                                       const Instance& target,
                                       HomSearchOptions options)
    : source_(source),
      target_(target),
      options_(options),
      valuation_(Valuation::For(source)),
      row_done_(source.num_rows(), false),
      row_tuples_(source.num_rows(), -1),
      candidate_storage_(source.num_rows()),
      undo_storage_(source.num_rows()),
      filter_storage_(source.num_rows()) {
  bound_lists_.reserve(static_cast<std::size_t>(source.schema().arity()));
  bound_attrs_.reserve(static_cast<std::size_t>(source.schema().arity()));
  list_cursors_.reserve(static_cast<std::size_t>(source.schema().arity()));
}

void HomomorphismSearch::SetInitial(const Valuation& initial) {
  valuation_ = initial;
}

HomSearchStatus HomomorphismSearch::FindAny(Valuation* result) {
  HomSearchStatus status = ForEach([&](const Valuation& v) {
    if (result != nullptr) *result = v;
    return false;  // stop at the first hit
  });
  // ForEach reports kFound when the visitor stopped it.
  return status;
}

HomSearchStatus HomomorphismSearch::ForEach(
    const std::function<bool(const Valuation&)>& visit) {
  stats_ = HomSearchStats{};
  delta_rows_bound_ = 0;
  std::fill(row_done_.begin(), row_done_.end(), false);
  bool stopped = false;
  Backtrack(0, visit, &stopped);
  if (stopped) return HomSearchStatus::kFound;
  return stats_.budget_hit ? HomSearchStatus::kBudget
                           : HomSearchStatus::kExhausted;
}

std::pair<int, int> HomomorphismSearch::RowIdBounds(int row_idx) const {
  if (options_.delta_begin < 0 || options_.delta_seed_row < 0) {
    return {0, std::numeric_limits<int>::max()};
  }
  if (row_idx < options_.delta_seed_row) return {0, options_.delta_begin};
  if (row_idx == options_.delta_seed_row) {
    // The seed row binds the delta — or, when the chase sliced this
    // partition member into sub-tasks, one sub-range of it.
    int lo = options_.delta_seed_begin >= 0 ? options_.delta_seed_begin
                                            : options_.delta_begin;
    int hi = options_.delta_seed_end >= 0 ? options_.delta_seed_end
                                          : std::numeric_limits<int>::max();
    return {lo, hi};
  }
  return {0, std::numeric_limits<int>::max()};
}

int HomomorphismSearch::PickNextRow() const {
  if (!options_.use_dynamic_order) {
    for (int i = 0; i < source_.num_rows(); ++i) {
      if (!row_done_[i]) return i;
    }
    return -1;
  }
  // Most-constrained-first: prefer the row whose smallest bound-position
  // candidate list is shortest; rows with no bound position score the whole
  // instance size. A delta-restricted id range caps the score too, so the
  // seed row (candidates = the delta, usually tiny) is matched early.
  int best = -1;
  std::size_t best_score = std::numeric_limits<std::size_t>::max();
  for (int i = 0; i < source_.num_rows(); ++i) {
    if (row_done_[i]) continue;
    auto [min_id, max_id] = RowIdBounds(i);
    std::size_t range = 0;
    int capped = static_cast<int>(
        std::min<std::size_t>(target_.NumTuples(),
                              static_cast<std::size_t>(max_id)));
    if (capped > min_id) range = static_cast<std::size_t>(capped - min_id);
    std::size_t score = range;
    const Row& r = source_.row(i);
    for (int attr = 0; attr < source_.schema().arity(); ++attr) {
      int bound = valuation_.Get(attr, r[attr]);
      if (bound >= 0) {
        score = std::min(score, target_.CountWith(attr, bound));
      }
    }
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

void HomomorphismSearch::RowCandidates(int row_idx, int min_id, int max_id,
                                       std::vector<int>* storage,
                                       CandidateRuns* out) {
  out->runs[0] = IdSpan();
  out->runs[1] = IdSpan();
  out->filtered_attr = -1;
  out->fully_filtered = false;
  const Row& r = source_.row(row_idx);
  if (options_.use_index) {
    bound_lists_.clear();
    bound_attrs_.clear();
    for (int attr = 0; attr < source_.schema().arity(); ++attr) {
      int bound = valuation_.Get(attr, r[attr]);
      if (bound >= 0) {
        bound_lists_.push_back(target_.TuplesWith(attr, bound));
        bound_attrs_.push_back(attr);
      }
    }
    if (!bound_lists_.empty()) {
      // Shortest list first (ties keep the lowest attribute, matching the
      // historical choice — PickNextRow's scores, and hence the search tree,
      // depend on nothing here, but determinism is cheap).
      std::size_t best = 0;
      for (std::size_t i = 1; i < bound_lists_.size(); ++i) {
        if (bound_lists_[i].size() < bound_lists_[best].size()) best = i;
      }
      const CandidateList& driver = bound_lists_[best];
      // Deterministic intersection accounting: which branch a multi-list
      // choice takes is a pure function of the bound lists, so these
      // counters are byte-identical across runs (unlike wall time).
      if (bound_lists_.size() >= 2 && options_.use_intersection) {
        if (driver.size() > options_.min_intersect_size) {
          ++stats_.intersections;
        } else {
          ++stats_.intersect_skips;
        }
      }
      if (options_.use_intersection && bound_lists_.size() >= 2 &&
          driver.size() > options_.min_intersect_size) {
        // Intersection output matches EVERY bound position by construction;
        // the block evaluator has nothing left to filter.
        out->fully_filtered = true;
        if (options_.use_simd) {
          MergeCandidatesSimd(best, min_id, max_id, storage);
          out->runs[0] = IdSpan(storage->data(), storage->size());
          return;
        }
        // Galloping k-way intersection, driver outermost. Every id kept here
        // is exactly an id the single-list scan would have accepted in
        // TryBindRow — the merge moves the equality checks off the per-
        // candidate path, it never changes the candidate set.
        storage->clear();
        list_cursors_.assign(bound_lists_.size(), 0);
        std::size_t pos = GallopTo(driver, 0, min_id);
        bool exhausted = false;
        for (; pos < driver.size() && !exhausted; ++pos) {
          const int id = driver[pos];
          // The caller discards everything past its id window; stopping the
          // merge here (ids ascending) keeps a narrow delta window from
          // paying a full-posting-list merge. Invisible in the counters:
          // these ids were never tried.
          if (id >= max_id) break;
          bool all = true;
          for (std::size_t j = 0; j < bound_lists_.size(); ++j) {
            if (j == best) continue;
            std::size_t c = GallopTo(bound_lists_[j], list_cursors_[j], id);
            list_cursors_[j] = c;
            if (c >= bound_lists_[j].size()) {
              // This list has no ids >= id anymore: nothing later in the
              // driver can be in the intersection either.
              all = false;
              exhausted = true;
              break;
            }
            if (bound_lists_[j][c] != id) {
              all = false;
              break;
            }
          }
          if (all) storage->push_back(id);
        }
        out->runs[0] = IdSpan(storage->data(), storage->size());
        return;
      }
      // Single-list mode: hand out the index spans directly (zero copies);
      // the other bound positions are filtered per candidate (block masks
      // when use_simd, TryBindRow otherwise). The driver's own attribute is
      // guaranteed by the posting list — record it so the block evaluator
      // skips that column. Runs are ascending with base ids < tail ids, so
      // a delta cutoff is one binary search per run.
      out->filtered_attr = bound_attrs_[best];
      out->runs[0] =
          min_id > 0 ? driver.base().SuffixFrom(min_id) : driver.base();
      out->runs[1] =
          min_id > 0 ? driver.tail().SuffixFrom(min_id) : driver.tail();
      return;
    }
  }
  storage->clear();
  const std::size_t scan_end = std::min<std::size_t>(
      target_.NumTuples(), static_cast<std::size_t>(max_id));
  if (scan_end > static_cast<std::size_t>(min_id)) {
    storage->reserve(scan_end - static_cast<std::size_t>(min_id));
    for (std::size_t i = static_cast<std::size_t>(min_id); i < scan_end; ++i) {
      storage->push_back(static_cast<int>(i));
    }
  }
  out->runs[0] = IdSpan(storage->data(), storage->size());
}

void HomomorphismSearch::MergeCandidatesSimd(std::size_t best, int min_id,
                                             int max_id,
                                             std::vector<int>* storage) {
  // The result set is exactly the scalar merge's: driver ∩ every other
  // bound list, trimmed to [min_id, max_id). Trimming only the driver
  // suffices (the fold can never emit an id outside the driver), and doing
  // it first keeps a narrow delta window from paying full-list folds.
  const CandidateList& driver = bound_lists_[best];
  IdSpan a0 = driver.base();
  IdSpan a1 = driver.tail();
  if (min_id > 0) {
    a0 = a0.SuffixFrom(min_id);
    a1 = a1.SuffixFrom(min_id);
  }
  a0 = PrefixBelow(a0, max_id);
  a1 = PrefixBelow(a1, max_id);
  // Fold lhs ∩ L_j over the other bound lists, ping-ponging between the
  // scratch buffer and `storage` with the parity arranged so the LAST fold
  // materializes into `storage`. One fold is at most four IntersectI32
  // calls: both sides are (up to) two ascending runs with every first-run
  // id below every second-run id, so the pairwise run intersections are
  // mutually disjoint and already ascending when emitted in the order
  // A0∩B0, A0∩B1, A1∩B0, A1∩B1.
  const std::size_t folds = bound_lists_.size() - 1;
  std::vector<int>* bufs[2] = {&isect_scratch_, storage};
  int dst_idx = folds % 2 == 1 ? 1 : 0;
  std::size_t lhs_size = a0.size() + a1.size();
  const int* c_data = nullptr;  // contiguous lhs after the first fold
  std::size_t c_size = 0;
  bool first = true;
  for (std::size_t j = 0; j < bound_lists_.size(); ++j) {
    if (j == best) continue;
    const IdSpan b0 = bound_lists_[j].base();
    const IdSpan b1 = bound_lists_[j].tail();
    std::vector<int>* dst = bufs[dst_idx];
    dst_idx ^= 1;
    dst->resize(std::min(lhs_size, b0.size() + b1.size()));
    std::size_t n = 0;
    if (first) {
      n += IntersectI32(a0.begin(), a0.size(), b0.begin(), b0.size(),
                        dst->data() + n);
      n += IntersectI32(a0.begin(), a0.size(), b1.begin(), b1.size(),
                        dst->data() + n);
      n += IntersectI32(a1.begin(), a1.size(), b0.begin(), b0.size(),
                        dst->data() + n);
      n += IntersectI32(a1.begin(), a1.size(), b1.begin(), b1.size(),
                        dst->data() + n);
      first = false;
    } else {
      n += IntersectI32(c_data, c_size, b0.begin(), b0.size(),
                        dst->data() + n);
      n += IntersectI32(c_data, c_size, b1.begin(), b1.size(),
                        dst->data() + n);
    }
    dst->resize(n);
    c_data = dst->data();
    c_size = n;
    lhs_size = n;
    if (n == 0) break;  // an empty intersection stays empty
  }
  // The parity arrangement lands the last fold in `storage`; the only way
  // to finish elsewhere is the early empty break, where clearing is the
  // same answer.
  if (c_size == 0) storage->clear();
}

bool HomomorphismSearch::TryBindRow(int row_idx, TupleRef tuple,
                                    std::vector<std::pair<int, int>>* undo) {
  const Row& r = source_.row(row_idx);
  for (int attr = 0; attr < source_.schema().arity(); ++attr) {
    int var = r[attr];
    int bound = valuation_.Get(attr, var);
    if (bound >= 0) {
      if (bound != tuple[attr]) {
        UndoBindings(*undo);
        undo->clear();
        return false;
      }
    } else {
      valuation_.Set(attr, var, tuple[attr]);
      undo->emplace_back(attr, var);
    }
  }
  return true;
}

void HomomorphismSearch::UndoBindings(
    const std::vector<std::pair<int, int>>& undo) {
  for (auto [attr, var] : undo) valuation_.Set(attr, var, -1);
}

bool HomomorphismSearch::Backtrack(
    int depth, const std::function<bool(const Valuation&)>& visit,
    bool* stopped) {
  if (options_.max_nodes > 0 && stats_.nodes >= options_.max_nodes) {
    stats_.budget_hit = true;
    return false;
  }
  // Amortized wall-clock / cancel check: a single pumped search can run for
  // seconds, so waiting for the caller to look at the clock between
  // searches lets a deadline overshoot arbitrarily. The cancel flag rides
  // the same cadence — it is how a concurrent sibling search's budget trip
  // winds this one down.
  if ((stats_.nodes & 0x1FF) == 0x1FF) {
    if (options_.deadline != nullptr && options_.deadline->Expired()) {
      stats_.budget_hit = true;
      stats_.deadline_hit = true;
      return false;
    }
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      stats_.budget_hit = true;
      return false;
    }
    if (options_.job_cancel != nullptr &&
        options_.job_cancel->load(std::memory_order_relaxed)) {
      stats_.budget_hit = true;
      stats_.cancel_hit = true;
      return false;
    }
  }
  ++stats_.nodes;
  if (depth == source_.num_rows()) {
    // All rows matched. Complete the valuation on variables that appear in
    // no row (possible when the variable space is wider than the rows): they
    // are unconstrained, so leave them unbound; visitors treat -1 as "any".
    if (!visit(valuation_)) {
      *stopped = true;
      return false;
    }
    return true;
  }
  int row_idx = PickNextRow();
  // The semi-naive partition as per-row id windows: candidate runs are
  // ascending, so the window is one lower_bound plus an early break.
  auto [min_id, max_id] = RowIdBounds(row_idx);
  const bool any_row_mode =
      options_.delta_begin >= 0 && options_.delta_seed_row < 0;
  if (any_row_mode && delta_rows_bound_ == 0 &&
      depth == source_.num_rows() - 1) {
    // "Any row" mode: if no row has hit the delta yet, only a delta tuple
    // on the last undone row can complete a delta-touching match.
    min_id = std::max(min_id, options_.delta_begin);
  }
  std::vector<int>& storage = candidate_storage_[depth];
  CandidateRuns candidates;
  RowCandidates(row_idx, min_id, max_id, &storage, &candidates);
  row_done_[row_idx] = true;
  std::vector<std::pair<int, int>>& undo = undo_storage_[depth];
  undo.clear();
  bool window_closed = false;
  if (options_.use_simd) {
    // Block candidate evaluation: AND one survivor bitmask per bound
    // position over up to 64 candidates at a time, then bind only the
    // survivors. The filter set is fixed for the whole depth (TryBindRow
    // undoes its bindings before the next candidate, so the bound
    // positions seen by every candidate at this depth are identical).
    std::vector<std::pair<int, int>>& filters = filter_storage_[depth];
    filters.clear();
    if (!candidates.fully_filtered) {
      const Row& r = source_.row(row_idx);
      for (int attr = 0; attr < source_.schema().arity(); ++attr) {
        if (attr == candidates.filtered_attr) continue;
        int bound = valuation_.Get(attr, r[attr]);
        if (bound >= 0) filters.emplace_back(attr, bound);
      }
    }
    for (int run = 0; run < 2 && !window_closed; ++run) {
      const IdSpan span = candidates.runs[run];
      const int* ids = span.begin();
      std::size_t limit = span.size();
      if (limit > 0 && ids[limit - 1] >= max_id) {
        // Ascending runs: everything from the first id past the window is
        // out, and reaching the window's edge ends run 1 too (same flip the
        // scalar loop does when it SEES the first out-of-window id).
        limit = static_cast<std::size_t>(
            std::lower_bound(ids, ids + limit, max_id) - ids);
        window_closed = true;
      }
      for (std::size_t blk = 0; blk < limit; blk += 64) {
        const std::size_t bn = std::min<std::size_t>(64, limit - blk);
        const int* bids = ids + blk;
        std::uint64_t mask =
            bn == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bn) - 1;
        if (!filters.empty()) {
          // Consecutive-id blocks (full scans, dense delta windows, CSR
          // groups without holes) read the column directly — stride-1
          // loads when the store is columnar; scattered blocks gather.
          const bool consecutive =
              bids[bn - 1] - bids[0] == static_cast<int>(bn) - 1;
          for (const auto& [attr, value] : filters) {
            const ColumnSpan col = target_.Column(attr);
            mask &= consecutive
                        ? EqMaskI32(col.data + bids[0] * col.stride,
                                    col.stride, bn, value)
                        : EqMaskGatherI32(col.data, col.stride, bids, bn,
                                          value);
            if (mask == 0) break;
          }
        }
        // Exact-parity accounting: the scalar loop counts every id up to
        // and including the last one it reached. Charging each survivor for
        // itself plus the rejected ids since the previous survivor keeps
        // `candidates` byte-identical even when a visitor or budget stops
        // the search mid-block (ids past the stopping point stay
        // uncounted, exactly like the scalar loop never reaching them).
        std::size_t counted = 0;
        while (mask != 0) {
          const unsigned p = static_cast<unsigned>(__builtin_ctzll(mask));
          mask &= mask - 1;
          stats_.candidates += p + 1 - counted;
          counted = p + 1;
          const int tuple_id = bids[p];
          undo.clear();
          if (!TryBindRow(row_idx, target_.tuple(tuple_id), &undo)) continue;
          row_tuples_[row_idx] = tuple_id;
          bool in_delta = any_row_mode && tuple_id >= options_.delta_begin;
          delta_rows_bound_ += in_delta ? 1 : 0;
          bool keep_going = Backtrack(depth + 1, visit, stopped);
          delta_rows_bound_ -= in_delta ? 1 : 0;
          UndoBindings(undo);
          if (!keep_going && (*stopped || stats_.budget_hit)) {
            row_done_[row_idx] = false;
            return false;
          }
        }
        stats_.candidates += bn - counted;
      }
    }
    row_done_[row_idx] = false;
    return true;
  }
  for (int run = 0; run < 2 && !window_closed; ++run) {
    for (int tuple_id : candidates.runs[run]) {
      // Runs are ascending and run 0's ids all precede run 1's, so the first
      // id past the window ends the whole iteration.
      if (tuple_id >= max_id) {
        window_closed = true;
        break;
      }
      ++stats_.candidates;
      undo.clear();
      if (!TryBindRow(row_idx, target_.tuple(tuple_id), &undo)) continue;
      row_tuples_[row_idx] = tuple_id;
      bool in_delta = any_row_mode && tuple_id >= options_.delta_begin;
      delta_rows_bound_ += in_delta ? 1 : 0;
      bool keep_going = Backtrack(depth + 1, visit, stopped);
      delta_rows_bound_ -= in_delta ? 1 : 0;
      UndoBindings(undo);
      if (!keep_going && (*stopped || stats_.budget_hit)) {
        row_done_[row_idx] = false;
        return false;
      }
    }
  }
  row_done_[row_idx] = false;
  return true;
}

HomSearchStatus ExistsHomomorphism(const Tableau& source,
                                   const Instance& target,
                                   HomSearchOptions options) {
  HomomorphismSearch search(source, target, options);
  return search.FindAny(nullptr);
}

HomSearchStatus MapsInto(const Tableau& from, const Tableau& to,
                         HomSearchOptions options) {
  Instance frozen = to.Freeze();
  return ExistsHomomorphism(from, frozen, options);
}

}  // namespace tdlib
