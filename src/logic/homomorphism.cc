#include "logic/homomorphism.h"

#include <algorithm>
#include <limits>

namespace tdlib {

Valuation Valuation::For(const Tableau& t) {
  Valuation v;
  v.values.resize(t.schema().arity());
  for (int attr = 0; attr < t.schema().arity(); ++attr) {
    v.values[attr].assign(t.NumVars(attr), -1);
  }
  return v;
}

HomomorphismSearch::HomomorphismSearch(const Tableau& source,
                                       const Instance& target,
                                       HomSearchOptions options)
    : source_(source),
      target_(target),
      options_(options),
      valuation_(Valuation::For(source)),
      row_done_(source.num_rows(), false) {}

void HomomorphismSearch::SetInitial(const Valuation& initial) {
  valuation_ = initial;
}

HomSearchStatus HomomorphismSearch::FindAny(Valuation* result) {
  HomSearchStatus status = ForEach([&](const Valuation& v) {
    if (result != nullptr) *result = v;
    return false;  // stop at the first hit
  });
  // ForEach reports kFound when the visitor stopped it.
  return status;
}

HomSearchStatus HomomorphismSearch::ForEach(
    const std::function<bool(const Valuation&)>& visit) {
  nodes_ = 0;
  budget_hit_ = false;
  std::fill(row_done_.begin(), row_done_.end(), false);
  bool stopped = false;
  Backtrack(0, visit, &stopped);
  if (stopped) return HomSearchStatus::kFound;
  return budget_hit_ ? HomSearchStatus::kBudget : HomSearchStatus::kExhausted;
}

int HomomorphismSearch::PickNextRow() const {
  if (!options_.use_dynamic_order) {
    for (int i = 0; i < source_.num_rows(); ++i) {
      if (!row_done_[i]) return i;
    }
    return -1;
  }
  // Most-constrained-first: prefer the row whose smallest bound-position
  // candidate list is shortest; rows with no bound position score the whole
  // instance size.
  int best = -1;
  std::size_t best_score = std::numeric_limits<std::size_t>::max();
  for (int i = 0; i < source_.num_rows(); ++i) {
    if (row_done_[i]) continue;
    std::size_t score = target_.NumTuples();
    const Row& r = source_.row(i);
    for (int attr = 0; attr < source_.schema().arity(); ++attr) {
      int bound = valuation_.Get(attr, r[attr]);
      if (bound >= 0) {
        score = std::min(score, target_.TuplesWith(attr, bound).size());
      }
    }
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

bool HomomorphismSearch::RowCandidates(int row_idx,
                                       std::vector<int>* candidates) const {
  const Row& r = source_.row(row_idx);
  if (options_.use_index) {
    // Use the shortest index list among bound positions.
    int best_attr = -1;
    std::size_t best_size = std::numeric_limits<std::size_t>::max();
    for (int attr = 0; attr < source_.schema().arity(); ++attr) {
      int bound = valuation_.Get(attr, r[attr]);
      if (bound >= 0 && target_.TuplesWith(attr, bound).size() < best_size) {
        best_size = target_.TuplesWith(attr, bound).size();
        best_attr = attr;
      }
    }
    if (best_attr >= 0) {
      *candidates = target_.TuplesWith(best_attr, valuation_.Get(best_attr, r[best_attr]));
      return true;
    }
  }
  candidates->resize(target_.NumTuples());
  for (std::size_t i = 0; i < target_.NumTuples(); ++i) {
    (*candidates)[i] = static_cast<int>(i);
  }
  return true;
}

bool HomomorphismSearch::TryBindRow(int row_idx, const Tuple& tuple,
                                    std::vector<std::pair<int, int>>* undo) {
  const Row& r = source_.row(row_idx);
  for (int attr = 0; attr < source_.schema().arity(); ++attr) {
    int var = r[attr];
    int bound = valuation_.Get(attr, var);
    if (bound >= 0) {
      if (bound != tuple[attr]) {
        UndoBindings(*undo);
        undo->clear();
        return false;
      }
    } else {
      valuation_.Set(attr, var, tuple[attr]);
      undo->emplace_back(attr, var);
    }
  }
  return true;
}

void HomomorphismSearch::UndoBindings(
    const std::vector<std::pair<int, int>>& undo) {
  for (auto [attr, var] : undo) valuation_.Set(attr, var, -1);
}

bool HomomorphismSearch::Backtrack(
    int depth, const std::function<bool(const Valuation&)>& visit,
    bool* stopped) {
  if (options_.max_nodes > 0 && nodes_ >= options_.max_nodes) {
    budget_hit_ = true;
    return false;
  }
  ++nodes_;
  if (depth == source_.num_rows()) {
    // All rows matched. Complete the valuation on variables that appear in
    // no row (possible when the variable space is wider than the rows): they
    // are unconstrained, so leave them unbound; visitors treat -1 as "any".
    if (!visit(valuation_)) {
      *stopped = true;
      return false;
    }
    return true;
  }
  int row_idx = PickNextRow();
  std::vector<int> candidates;
  RowCandidates(row_idx, &candidates);
  row_done_[row_idx] = true;
  std::vector<std::pair<int, int>> undo;
  for (int tuple_id : candidates) {
    undo.clear();
    if (!TryBindRow(row_idx, target_.tuple(tuple_id), &undo)) continue;
    bool keep_going = Backtrack(depth + 1, visit, stopped);
    UndoBindings(undo);
    if (!keep_going && (*stopped || budget_hit_)) {
      row_done_[row_idx] = false;
      return false;
    }
  }
  row_done_[row_idx] = false;
  return true;
}

HomSearchStatus ExistsHomomorphism(const Tableau& source,
                                   const Instance& target,
                                   HomSearchOptions options) {
  HomomorphismSearch search(source, target, options);
  return search.FindAny(nullptr);
}

HomSearchStatus MapsInto(const Tableau& from, const Tableau& to,
                         HomSearchOptions options) {
  Instance frozen = to.Freeze();
  return ExistsHomomorphism(from, frozen, options);
}

}  // namespace tdlib
