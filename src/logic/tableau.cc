#include "logic/tableau.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace tdlib {

Tableau::Tableau(SchemaPtr schema)
    : schema_(std::move(schema)), var_names_(schema_->arity()) {}

int Tableau::NewVariable(int attr, std::string name) {
  int id = static_cast<int>(var_names_[attr].size());
  if (name.empty()) {
    // Default names are lowercase attribute name + index: a0, a1, ... This
    // matches the paper's convention of using the attribute letter for its
    // variables (a, a', a'', ...).
    std::string base = schema_->name(attr);
    for (auto& c : base) c = static_cast<char>(std::tolower(c));
    name = base + std::to_string(id);
  }
  var_names_[attr].push_back(std::move(name));
  return id;
}

void Tableau::EnsureVariables(int attr, int count) {
  while (NumVars(attr) < count) NewVariable(attr);
}

void Tableau::AddRow(Row row) { rows_.push_back(std::move(row)); }

int Tableau::TotalVars() const {
  int total = 0;
  for (const auto& names : var_names_) total += static_cast<int>(names.size());
  return total;
}

Instance Tableau::Freeze() const {
  Instance frozen(schema_);
  int max_vars = 0;
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    max_vars = std::max(max_vars, NumVars(attr));
  }
  frozen.Reserve(rows_.size(), static_cast<std::size_t>(max_vars));
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    for (int v = 0; v < NumVars(attr); ++v) {
      frozen.AddValue(attr, var_names_[attr][v]);
    }
  }
  for (const auto& r : rows_) frozen.AddTuple(r);
  return frozen;
}

std::string Tableau::ToString() const {
  std::ostringstream oss;
  for (const auto& r : rows_) {
    oss << "R(";
    for (int attr = 0; attr < schema_->arity(); ++attr) {
      if (attr > 0) oss << ", ";
      oss << var_names_[attr][r[attr]];
    }
    oss << ")\n";
  }
  return oss.str();
}

std::string Tableau::CheckInvariants() const {
  for (const auto& r : rows_) {
    if (static_cast<int>(r.size()) != schema_->arity()) {
      return "row arity mismatch";
    }
    for (int attr = 0; attr < schema_->arity(); ++attr) {
      if (r[attr] < 0 || r[attr] >= NumVars(attr)) {
        return "row uses unknown variable";
      }
    }
  }
  for (int attr = 0; attr < schema_->arity(); ++attr) {
    std::unordered_set<std::string> seen;
    for (const auto& n : var_names_[attr]) {
      if (!seen.insert(n).second) {
        return "duplicate variable name in attribute " + schema_->name(attr);
      }
    }
  }
  return "";
}

}  // namespace tdlib
