// Finite relation instances (the paper's "databases").
//
// An Instance is a finite set of tuples over a Schema. Domain values are
// dense integers *per attribute* — the typing restriction ("the domains of
// the various attributes are disjoint") is therefore structural: a value id
// is meaningless without its attribute. Values may optionally carry names
// (for examples and debugging) and a labeled-null flag (for chase-invented
// values, which matters when reading a chase result as a universal model).
//
// Storage: tuples live in a flat TupleStore slab (logic/tuple_store.h, in
// either row-major or columnar layout); `tuple(id)` hands out TupleRef views
// into it. Dedup is keyed on slab offsets (tuple ids), never on owning
// vectors, so the hot chase/matching paths touch contiguous buffers.
// TupleRefs are invalidated by AddTuple; ids are stable (never removed).
//
// Inverted index: the (attribute, value) -> tuple ids map the homomorphism
// search probes on every node is a flat CSR layout — one `ids` slab per
// attribute plus a per-value offset table — covering all tuples with
// id < csr_count_, plus small per-value tail vectors for ids inserted since
// the last rebuild. TuplesWith hands out a CandidateList of (at most) two
// borrowed spans; base ids are all smaller than tail ids and each run is
// ascending, so the concatenation is one sorted posting list. The CSR slab
// is rebuilt when the tails reach the size of the base (geometric cadence:
// O(log n) rebuilds, amortized O(arity) per insert), which only ever happens
// inside a mutation — never under a concurrent reader.
//
// Concurrent-read contract: Instance has no internal synchronization, but
// every const member (tuple, TuplesWith, NumTuples, FindTuple, Contains,
// DomainSize, ValueName, IsLabeledNull, ...) is a pure read — no lazy
// caches, no mutable members, no shared scratch (TupleStore::Find probes
// the hash table in place; TuplesWith only reads the CSR slab and tails).
// Any number of threads may therefore call const members concurrently AS
// LONG AS no thread mutates the instance (AddTuple, AddValue, InternValue,
// Reserve, CompactIndex). The parallel chase leans on exactly this: its
// match tasks share one instance read-only, and every mutation (firing,
// index rebuilds) happens serially between matching phases. Mutations must
// be fenced from reads by the caller (the chase's task join provides the
// fence).
#ifndef TDLIB_LOGIC_INSTANCE_H_
#define TDLIB_LOGIC_INSTANCE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "logic/schema.h"
#include "logic/tuple_store.h"

namespace tdlib {

/// A tuple is one domain-value id per attribute, in schema order. Owning
/// form, used when building rows; stored tuples are read back as TupleRefs.
using Tuple = std::vector<int>;

/// A borrowed ascending run of tuple ids (a slice of a posting list).
class IdSpan {
 public:
  IdSpan() : data_(nullptr), size_(0) {}
  IdSpan(const int* data, std::size_t size) : data_(data), size_(size) {}

  const int* begin() const { return data_; }
  const int* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int operator[](std::size_t i) const { return data_[i]; }

  /// Drops the prefix of ids < min_id (one binary search; ids ascending).
  IdSpan SuffixFrom(int min_id) const {
    const int* p = std::lower_bound(data_, data_ + size_, min_id);
    return IdSpan(p, static_cast<std::size_t>(data_ + size_ - p));
  }

 private:
  const int* data_;
  std::size_t size_;
};

/// One (attribute, value) posting list: `base` is a slice of the CSR ids
/// slab, `tail` the appends since the last rebuild. Each run is ascending
/// and every base id is smaller than every tail id, so base ⧺ tail is one
/// sorted list. Borrowed views — invalidated by any Instance mutation.
class CandidateList {
 public:
  CandidateList() = default;
  CandidateList(IdSpan base, IdSpan tail) : base_(base), tail_(tail) {}

  IdSpan base() const { return base_; }
  IdSpan tail() const { return tail_; }
  std::size_t size() const { return base_.size() + tail_.size(); }
  bool empty() const { return base_.empty() && tail_.empty(); }
  int operator[](std::size_t i) const {
    return i < base_.size() ? base_[i] : tail_[i - base_.size()];
  }

  /// Materializes the concatenated list (tests / cold paths only).
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(size());
    out.insert(out.end(), base_.begin(), base_.end());
    out.insert(out.end(), tail_.begin(), tail_.end());
    return out;
  }

 private:
  IdSpan base_;
  IdSpan tail_;
};

/// A finite set of tuples over a fixed schema, with per-attribute domains.
///
/// Tuples are deduplicated on insertion. The CSR inverted index (attribute,
/// value) -> tuple ids is maintained incrementally; homomorphism search
/// relies on it. Posting lists are ascending (ids are appended in insertion
/// order), which the delta-driven chase exploits.
class Instance {
 public:
  explicit Instance(SchemaPtr schema,
                    TupleLayout layout = DefaultTupleLayout());

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }
  TupleLayout layout() const { return store_.layout(); }

  // ---- Domains -------------------------------------------------------------

  /// Adds a fresh domain value for `attr`, optionally named, and returns its
  /// id. Ids are dense per attribute.
  int AddValue(int attr, std::string name = "", bool labeled_null = false);

  /// Adds (or finds) the value named `name` in `attr`'s domain.
  int InternValue(int attr, const std::string& name);

  /// Number of values in `attr`'s domain.
  int DomainSize(int attr) const {
    return static_cast<int>(value_names_[attr].size());
  }

  /// Name of value `v` in attribute `attr` (auto-generated if none given).
  const std::string& ValueName(int attr, int v) const {
    return value_names_[attr][v];
  }

  /// True iff value `v` of `attr` was created as a labeled null.
  bool IsLabeledNull(int attr, int v) const { return is_null_[attr][v]; }

  /// Total number of labeled nulls across all attributes.
  int NullCount() const;

  // ---- Tuples --------------------------------------------------------------

  /// Inserts `t` (one value id per attribute; each must be a valid domain
  /// id). Returns true if the tuple was new. One dedup lookup per call.
  bool AddTuple(const Tuple& t) {
    assert(static_cast<int>(t.size()) == schema_->arity());
    return FinishInsert(store_.Insert(t.data()));
  }

  /// Brace-init convenience: AddTuple({0, 1}).
  bool AddTuple(std::initializer_list<int> t) {
    assert(static_cast<int>(t.size()) == schema_->arity());
    return FinishInsert(store_.Insert(t.begin()));
  }

  /// Inserts a tuple viewed through a TupleRef (possibly into another
  /// instance's arena — of either layout — or this one's; self-insertion is
  /// safe).
  bool AddTuple(TupleRef t) {
    assert(t.arity() == schema_->arity());
    return FinishInsert(store_.Insert(t));
  }

  /// Returns true iff `t` is present.
  bool Contains(const Tuple& t) const { return store_.Find(t.data()) >= 0; }

  /// Returns the id of tuple `t`, or -1 if absent.
  int FindTuple(const Tuple& t) const { return store_.Find(t.data()); }

  std::size_t NumTuples() const { return store_.size(); }

  /// Borrowed view of tuple `i`; invalidated by AddTuple/AddValue growth of
  /// the arena. Persist ids across mutations, not refs.
  TupleRef tuple(int i) const { return store_[static_cast<std::size_t>(i)]; }

  /// Borrowed view of attribute `attr` across all tuples (stride 1 when the
  /// store is columnar). The homomorphism search's block filter reads whole
  /// candidate blocks through this instead of per-tuple TupleRefs.
  /// Invalidated by AddTuple, like tuple().
  ColumnSpan Column(int attr) const { return store_.Column(attr); }

  /// Posting-list length for (attr, value) without materializing the view —
  /// the most-constrained-first heuristic reads sizes for every (row, attr)
  /// pair on every search node, so this stays two loads and an add.
  std::size_t CountWith(int attr, int value) const {
    const std::vector<std::int32_t>& offsets = csr_offsets_[attr];
    std::size_t n = tail_[attr][value].size();
    if (static_cast<std::size_t>(value) + 1 < offsets.size()) {
      n += static_cast<std::size_t>(offsets[value + 1] - offsets[value]);
    }
    return n;
  }

  /// Tuple ids whose `attr` component equals `value`, as a two-run sorted
  /// view (CSR base + recent tail). Borrowed; invalidated by any mutation.
  CandidateList TuplesWith(int attr, int value) const {
    IdSpan base;
    const std::vector<std::int32_t>& offsets = csr_offsets_[attr];
    if (static_cast<std::size_t>(value) + 1 < offsets.size()) {
      base = IdSpan(csr_ids_[attr].data() + offsets[value],
                    static_cast<std::size_t>(offsets[value + 1] -
                                             offsets[value]));
    }
    const std::vector<int>& tail = tail_[attr][value];
    return CandidateList(base, IdSpan(tail.data(), tail.size()));
  }

  /// Merges the index tails into the CSR slab so every posting list becomes
  /// one contiguous base run. O(domain + tuples·arity); a mutation (must be
  /// fenced from concurrent readers like any other). Called automatically on
  /// a geometric cadence from AddTuple; exposed for callers that want a
  /// fully flat index before a long read-only phase.
  void CompactIndex();

  /// Pre-sizes the tuple arena, dedup table, CSR ids slabs and per-attribute
  /// domain vectors; cuts rehash/realloc churn when the final shape is known
  /// (chase seeds, budget-bounded runs, generators, Freeze).
  void Reserve(std::size_t tuples, std::size_t values_per_attr);

  // ---- Persistence ---------------------------------------------------------

  /// Writes domains (names length-prefixed, so any byte except the
  /// terminator survives), null flags and the tuple arena as portable text.
  /// The schema itself is NOT written — the caller owns it and passes it
  /// back to Deserialize (a chase checkpoint's consumer already holds the
  /// dependency set, and with it the schema). No physical-layout information
  /// is written either: the format is the logical content, so any layout
  /// restores from any layout's output.
  ///
  /// Restoration invariant: value ids, tuple ids, names, null flags and the
  /// inverted index are all reproduced exactly, so a restored instance is
  /// indistinguishable from the original to every reader — including a
  /// resumed chase, whose checkpoints persist ids into this id space.
  void Serialize(std::ostream& os) const;

  /// Round-trips Serialize against `schema` (which must have the serialized
  /// arity) into an instance with the requested layout. The stream is
  /// untrusted: every domain size, null flag, name length and tuple value
  /// is bounds-checked, and malformed input yields ErrorCode::kCorrupt with
  /// a field-level message — never UB or an unchecked allocation.
  static Result<Instance> Deserialize(
      SchemaPtr schema, std::istream& is,
      TupleLayout layout = DefaultTupleLayout());

  // ---- Debugging -----------------------------------------------------------

  /// Renders the instance as an aligned table of value names.
  std::string ToString() const;

  /// Internal-consistency check; returns an empty string or a description of
  /// the first violation (bad ids, index mismatch, duplicate tuples).
  std::string CheckInvariants() const;

 private:
  bool FinishInsert(std::pair<int, bool> inserted);

  SchemaPtr schema_;
  std::vector<std::vector<std::string>> value_names_;  // [attr][value]
  std::vector<std::vector<bool>> is_null_;             // [attr][value]
  TupleStore store_;                                   // flat tuple arena

  // CSR inverted index over tuples with id < csr_count_: csr_ids_[attr] is
  // one slab of csr_count_ tuple ids grouped by value (ascending within a
  // group); csr_offsets_[attr][v .. v+1] brackets value v's group. Tuples
  // with id >= csr_count_ live in tail_[attr][value] until the next rebuild.
  std::vector<std::vector<int>> csr_ids_;               // [attr] -> ids slab
  std::vector<std::vector<std::int32_t>> csr_offsets_;  // [attr] -> offsets
  std::vector<std::vector<std::vector<int>>> tail_;     // [attr][value] -> ids
  std::size_t csr_count_ = 0;
};

}  // namespace tdlib

#endif  // TDLIB_LOGIC_INSTANCE_H_
