// Finite relation instances (the paper's "databases").
//
// An Instance is a finite set of tuples over a Schema. Domain values are
// dense integers *per attribute* — the typing restriction ("the domains of
// the various attributes are disjoint") is therefore structural: a value id
// is meaningless without its attribute. Values may optionally carry names
// (for examples and debugging) and a labeled-null flag (for chase-invented
// values, which matters when reading a chase result as a universal model).
//
// Storage: tuples live in a flat TupleStore arena (logic/tuple_store.h);
// `tuple(id)` hands out TupleRef views into it. Dedup and the inverted index
// are keyed on arena offsets (tuple ids), never on owning vectors, so the
// hot chase/matching paths touch one contiguous buffer. TupleRefs are
// invalidated by AddTuple; ids are stable (tuples are never removed).
//
// Concurrent-read contract: Instance has no internal synchronization, but
// every const member (tuple, TuplesWith, NumTuples, FindTuple, Contains,
// DomainSize, ValueName, IsLabeledNull, ...) is a pure read — no lazy
// caches, no mutable members, no shared scratch (TupleStore::Find probes
// the hash table in place). Any number of threads may therefore call const
// members concurrently AS LONG AS no thread mutates the instance (AddTuple,
// AddValue, InternValue, Reserve). The parallel chase leans on exactly this:
// its match tasks share one instance read-only, and every mutation (firing)
// happens serially between matching phases. Mutations must be fenced from
// reads by the caller (the chase's task join provides the fence).
#ifndef TDLIB_LOGIC_INSTANCE_H_
#define TDLIB_LOGIC_INSTANCE_H_

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "logic/schema.h"
#include "logic/tuple_store.h"

namespace tdlib {

/// A tuple is one domain-value id per attribute, in schema order. Owning
/// form, used when building rows; stored tuples are read back as TupleRefs.
using Tuple = std::vector<int>;

/// A finite set of tuples over a fixed schema, with per-attribute domains.
///
/// Tuples are deduplicated on insertion. An inverted index (attribute,
/// value) -> tuple ids is maintained incrementally; homomorphism search
/// relies on it. Index lists are ascending (ids are appended in insertion
/// order), which the delta-driven chase exploits.
class Instance {
 public:
  explicit Instance(SchemaPtr schema);

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }

  // ---- Domains -------------------------------------------------------------

  /// Adds a fresh domain value for `attr`, optionally named, and returns its
  /// id. Ids are dense per attribute.
  int AddValue(int attr, std::string name = "", bool labeled_null = false);

  /// Adds (or finds) the value named `name` in `attr`'s domain.
  int InternValue(int attr, const std::string& name);

  /// Number of values in `attr`'s domain.
  int DomainSize(int attr) const {
    return static_cast<int>(value_names_[attr].size());
  }

  /// Name of value `v` in attribute `attr` (auto-generated if none given).
  const std::string& ValueName(int attr, int v) const {
    return value_names_[attr][v];
  }

  /// True iff value `v` of `attr` was created as a labeled null.
  bool IsLabeledNull(int attr, int v) const { return is_null_[attr][v]; }

  /// Total number of labeled nulls across all attributes.
  int NullCount() const;

  // ---- Tuples --------------------------------------------------------------

  /// Inserts `t` (one value id per attribute; each must be a valid domain
  /// id). Returns true if the tuple was new. One dedup lookup per call.
  bool AddTuple(const Tuple& t) {
    assert(static_cast<int>(t.size()) == schema_->arity());
    return AddRow(t.data());
  }

  /// Brace-init convenience: AddTuple({0, 1}).
  bool AddTuple(std::initializer_list<int> t) {
    assert(static_cast<int>(t.size()) == schema_->arity());
    return AddRow(t.begin());
  }

  /// Inserts a tuple viewed through a TupleRef (possibly into another
  /// instance's arena, or this one's — self-insertion is safe).
  bool AddTuple(TupleRef t) {
    assert(t.arity() == schema_->arity());
    return AddRow(t.data());
  }

  /// Returns true iff `t` is present.
  bool Contains(const Tuple& t) const { return store_.Find(t.data()) >= 0; }

  /// Returns the id of tuple `t`, or -1 if absent.
  int FindTuple(const Tuple& t) const { return store_.Find(t.data()); }

  std::size_t NumTuples() const { return store_.size(); }

  /// Borrowed view of tuple `i`; invalidated by AddTuple/AddValue growth of
  /// the arena. Persist ids across mutations, not refs.
  TupleRef tuple(int i) const { return store_[static_cast<std::size_t>(i)]; }

  /// Tuple ids whose `attr` component equals `value`, ascending.
  const std::vector<int>& TuplesWith(int attr, int value) const {
    return index_[attr][value];
  }

  /// Pre-sizes the tuple arena, dedup table and per-attribute domain
  /// vectors; cuts rehash/realloc churn when the final shape is known
  /// (chase seeds, generators, Freeze).
  void Reserve(std::size_t tuples, std::size_t values_per_attr);

  // ---- Persistence ---------------------------------------------------------

  /// Writes domains (names length-prefixed, so any byte except the
  /// terminator survives), null flags and the tuple arena as portable text.
  /// The schema itself is NOT written — the caller owns it and passes it
  /// back to Deserialize (a chase checkpoint's consumer already holds the
  /// dependency set, and with it the schema).
  ///
  /// Restoration invariant: value ids, tuple ids, names, null flags and the
  /// inverted index are all reproduced exactly, so a restored instance is
  /// indistinguishable from the original to every reader — including a
  /// resumed chase, whose checkpoints persist ids into this id space.
  void Serialize(std::ostream& os) const;

  /// Round-trips Serialize against `schema` (which must have the serialized
  /// arity). Returns std::nullopt on malformed input.
  static std::optional<Instance> Deserialize(SchemaPtr schema,
                                             std::istream& is);

  // ---- Debugging -----------------------------------------------------------

  /// Renders the instance as an aligned table of value names.
  std::string ToString() const;

  /// Internal-consistency check; returns an empty string or a description of
  /// the first violation (bad ids, index mismatch, duplicate tuples).
  std::string CheckInvariants() const;

 private:
  bool AddRow(const std::int32_t* row);

  SchemaPtr schema_;
  std::vector<std::vector<std::string>> value_names_;  // [attr][value]
  std::vector<std::vector<bool>> is_null_;             // [attr][value]
  TupleStore store_;                                   // flat tuple arena
  std::vector<std::vector<std::vector<int>>> index_;   // [attr][value] -> ids
};

}  // namespace tdlib

#endif  // TDLIB_LOGIC_INSTANCE_H_
