// Finite relation instances (the paper's "databases").
//
// An Instance is a finite set of tuples over a Schema. Domain values are
// dense integers *per attribute* — the typing restriction ("the domains of
// the various attributes are disjoint") is therefore structural: a value id
// is meaningless without its attribute. Values may optionally carry names
// (for examples and debugging) and a labeled-null flag (for chase-invented
// values, which matters when reading a chase result as a universal model).
#ifndef TDLIB_LOGIC_INSTANCE_H_
#define TDLIB_LOGIC_INSTANCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "logic/schema.h"
#include "util/hash.h"

namespace tdlib {

/// A tuple is one domain-value id per attribute, in schema order.
using Tuple = std::vector<int>;

/// A finite set of tuples over a fixed schema, with per-attribute domains.
///
/// Tuples are deduplicated on insertion. An inverted index (attribute,
/// value) -> tuple ids is maintained incrementally; homomorphism search
/// relies on it.
class Instance {
 public:
  explicit Instance(SchemaPtr schema);

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }

  // ---- Domains -------------------------------------------------------------

  /// Adds a fresh domain value for `attr`, optionally named, and returns its
  /// id. Ids are dense per attribute.
  int AddValue(int attr, std::string name = "", bool labeled_null = false);

  /// Adds (or finds) the value named `name` in `attr`'s domain.
  int InternValue(int attr, const std::string& name);

  /// Number of values in `attr`'s domain.
  int DomainSize(int attr) const {
    return static_cast<int>(value_names_[attr].size());
  }

  /// Name of value `v` in attribute `attr` (auto-generated if none given).
  const std::string& ValueName(int attr, int v) const {
    return value_names_[attr][v];
  }

  /// True iff value `v` of `attr` was created as a labeled null.
  bool IsLabeledNull(int attr, int v) const { return is_null_[attr][v]; }

  /// Total number of labeled nulls across all attributes.
  int NullCount() const;

  // ---- Tuples --------------------------------------------------------------

  /// Inserts `t` (one value id per attribute; each must be a valid domain
  /// id). Returns true if the tuple was new.
  bool AddTuple(const Tuple& t);

  /// Returns true iff `t` is present.
  bool Contains(const Tuple& t) const;

  /// Returns the id of tuple `t`, or -1 if absent.
  int FindTuple(const Tuple& t) const;

  std::size_t NumTuples() const { return tuples_.size(); }
  const Tuple& tuple(int i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Tuple ids whose `attr` component equals `value`.
  const std::vector<int>& TuplesWith(int attr, int value) const {
    return index_[attr][value];
  }

  // ---- Debugging -----------------------------------------------------------

  /// Renders the instance as an aligned table of value names.
  std::string ToString() const;

  /// Internal-consistency check; returns an empty string or a description of
  /// the first violation (bad ids, index mismatch, duplicate tuples).
  std::string CheckInvariants() const;

 private:
  SchemaPtr schema_;
  std::vector<std::vector<std::string>> value_names_;  // [attr][value]
  std::vector<std::vector<bool>> is_null_;             // [attr][value]
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, VectorHash> tuple_set_;
  std::vector<std::vector<std::vector<int>>> index_;   // [attr][value] -> ids
};

}  // namespace tdlib

#endif  // TDLIB_LOGIC_INSTANCE_H_
