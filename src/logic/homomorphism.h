// Homomorphism search: embedding tableaux into instances.
//
// A homomorphism maps each variable of a tableau to a domain value of the
// same attribute such that every row becomes a tuple of the instance. This
// is the computational heart of the library: dependency satisfaction, chase
// applicability, tableau containment and the part (B) model check are all
// homomorphism problems. The search is backtracking with a most-constrained-
// row-first heuristic and candidate lists drawn from the instance's inverted
// index; an optional node budget keeps worst-case (NP-hard) searches bounded.
#ifndef TDLIB_LOGIC_HOMOMORPHISM_H_
#define TDLIB_LOGIC_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "logic/instance.h"
#include "logic/tableau.h"

namespace tdlib {

/// A (partial) assignment of domain values to typed variables:
/// values[attr][var] is a value id of `attr`, or -1 when unbound.
struct Valuation {
  std::vector<std::vector<int>> values;

  /// Creates an all-unbound valuation shaped like `t`'s variable space.
  static Valuation For(const Tableau& t);

  int Get(int attr, int var) const { return values[attr][var]; }
  void Set(int attr, int var, int value) { values[attr][var] = value; }
  bool Bound(int attr, int var) const { return values[attr][var] >= 0; }
};

/// Tuning and budget knobs for the search.
struct HomSearchOptions {
  /// Abort after exploring this many search-tree nodes (0 = unlimited).
  std::uint64_t max_nodes = 0;

  /// Disable the inverted-index candidate pruning; used by the EXP-CHASE
  /// ablation benchmark to quantify what the index buys.
  bool use_index = true;

  /// Disable the most-constrained-row-first dynamic ordering (rows are then
  /// matched in tableau order).
  bool use_dynamic_order = true;
};

/// Outcome of a search that may exhaust its budget.
enum class HomSearchStatus {
  kFound,      ///< a homomorphism exists (and was produced)
  kExhausted,  ///< the full space was searched; no homomorphism exists
  kBudget,     ///< the node budget ran out before the space was exhausted
};

/// Backtracking search for homomorphisms `source -> target`.
class HomomorphismSearch {
 public:
  /// Both referents must outlive the search object.
  HomomorphismSearch(const Tableau& source, const Instance& target,
                     HomSearchOptions options = {});

  /// Pre-binds variables (e.g. the universal variables of a dependency head
  /// when testing whether a body match is already witnessed). The valuation
  /// must be shaped like `source`'s variable space.
  void SetInitial(const Valuation& initial);

  /// Finds one homomorphism extending the initial valuation.
  HomSearchStatus FindAny(Valuation* result);

  /// Enumerates homomorphisms; `visit` returns false to stop early. Every
  /// total extension of the initial valuation that maps all rows into the
  /// target is visited exactly once.
  HomSearchStatus ForEach(const std::function<bool(const Valuation&)>& visit);

  /// Search-tree nodes explored by the last call.
  std::uint64_t nodes_explored() const { return nodes_; }

 private:
  bool Backtrack(int depth, const std::function<bool(const Valuation&)>& visit,
                 bool* stopped);
  int PickNextRow() const;
  bool RowCandidates(int row_idx, std::vector<int>* candidates) const;
  bool TryBindRow(int row_idx, const Tuple& tuple, std::vector<std::pair<int, int>>* undo);
  void UndoBindings(const std::vector<std::pair<int, int>>& undo);

  const Tableau& source_;
  const Instance& target_;
  HomSearchOptions options_;
  Valuation valuation_;
  std::vector<bool> row_done_;
  std::uint64_t nodes_ = 0;
  bool budget_hit_ = false;
};

/// Convenience wrapper: is there any homomorphism source -> target?
/// Returns kFound / kExhausted / kBudget.
HomSearchStatus ExistsHomomorphism(const Tableau& source,
                                   const Instance& target,
                                   HomSearchOptions options = {});

/// Tableau containment: does `from` map homomorphically into `to` frozen?
/// (Classic tableau-containment test; used for triviality and equivalence.)
HomSearchStatus MapsInto(const Tableau& from, const Tableau& to,
                         HomSearchOptions options = {});

}  // namespace tdlib

#endif  // TDLIB_LOGIC_HOMOMORPHISM_H_
