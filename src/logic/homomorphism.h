// Homomorphism search: embedding tableaux into instances.
//
// A homomorphism maps each variable of a tableau to a domain value of the
// same attribute such that every row becomes a tuple of the instance. This
// is the computational heart of the library: dependency satisfaction, chase
// applicability, tableau containment and the part (B) model check are all
// homomorphism problems. The search is backtracking with a most-constrained-
// row-first heuristic and candidate lists drawn from the instance's CSR
// inverted index; an optional node budget keeps worst-case (NP-hard)
// searches bounded.
//
// Candidate pruning: when a row has several bound positions, their posting
// lists are intersected up front (galloping merge over the index's sorted
// spans) instead of scanning one list and rejecting mismatches per
// candidate. The intersection never changes WHICH bindings are explored —
// every surviving candidate is exactly a candidate the single-list scan
// would have accepted — so search-tree shape, visited matches and the
// `nodes` counter are byte-identical with the optimization on or off; only
// the `candidates` counter (rows actually tried) and wall time move. The
// use_intersection ablation flag quantifies the win.
//
// Block candidate evaluation (use_simd): instead of testing bound row
// positions tuple-by-tuple inside TryBindRow, the search evaluates each
// bound position over a whole block of up to 64 candidates with one
// util/simd.h kernel call — stride-1 column loads when the target store is
// columnar (or the ids are consecutive), hardware gathers otherwise — and
// ANDs the per-position survivor bitmasks before any per-tuple binding. The
// multi-list intersection likewise runs the vectorized run merge. Like the
// intersection, this is a pure implementation swap: the survivor set, the
// visit order, `nodes` and `candidates` are byte-identical with the flag on
// or off, on any CPU (the kernels are bit-identical across dispatch
// levels), which the parity tests enforce end to end.
//
// Delta restriction (semi-naive matching): a search can be confined to one
// member of the standard semi-naive partition of the delta-touching matches
// — seed row in the delta, earlier rows in the old region, later rows
// unrestricted — so that re-matching after an insertion batch costs time
// proportional to the batch, not the instance. The seed row's id window can
// further be narrowed to a sub-slice of the delta (delta_seed_begin/_end),
// which is how the chase splits one partition member into several
// equal-range sub-tasks when a pass has fewer members than workers. The
// chase unions the partition members (and slices) and fires in a canonical
// order (chase/chase.h), which is how delta mode reproduces the naive chase
// byte for byte.
//
// Concurrency: a HomomorphismSearch object is strictly single-thread — all
// of its mutable state (valuation, row bookkeeping, scratch buffers, stats)
// lives in the object. Any number of searches may run concurrently over the
// SAME target instance as long as no thread mutates it (see the concurrent-
// read contract in logic/instance.h); the parallel chase runs one search
// object per task and aggregates HomSearchStats after the join.
#ifndef TDLIB_LOGIC_HOMOMORPHISM_H_
#define TDLIB_LOGIC_HOMOMORPHISM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <type_traits>
#include <vector>

#include "logic/instance.h"
#include "logic/tableau.h"
#include "util/timer.h"

namespace tdlib {

/// A (partial) assignment of domain values to typed variables:
/// values[attr][var] is a value id of `attr`, or -1 when unbound.
struct Valuation {
  std::vector<std::vector<int>> values;

  /// Creates an all-unbound valuation shaped like `t`'s variable space.
  static Valuation For(const Tableau& t);

  int Get(int attr, int var) const { return values[attr][var]; }
  void Set(int attr, int var, int value) { values[attr][var] = value; }
  bool Bound(int attr, int var) const { return values[attr][var] >= 0; }
};

/// Counters one search produced. Search-local by design: every
/// HomomorphismSearch owns exactly one HomSearchStats and nothing else ever
/// writes it, so concurrent searches race on nothing. Aggregation across
/// searches (the chase's per-pass totals) is an explicit MergeFrom of
/// per-task copies after the tasks have joined — never two searches
/// pointing at one struct.
struct HomSearchStats {
  std::uint64_t nodes = 0;       ///< search-tree nodes explored
  std::uint64_t candidates = 0;  ///< candidate tuples tried against a row
                                 ///  (what the index + intersection prune)
  std::uint64_t intersections = 0;    ///< multi-list candidate choices that
                                      ///  ran the galloping merge
  std::uint64_t intersect_skips = 0;  ///< multi-list choices that fell back
                                      ///  to the single shortest list (driver
                                      ///  under the merge's break-even size)
  bool budget_hit = false;   ///< a node/deadline/cancel limit stopped a search
  bool deadline_hit = false; ///< specifically the wall-clock deadline
  bool cancel_hit = false;   ///< specifically the job-level cancel flag

  void MergeFrom(const HomSearchStats& other) {
    nodes += other.nodes;
    candidates += other.candidates;
    intersections += other.intersections;
    intersect_skips += other.intersect_skips;
    budget_hit = budget_hit || other.budget_hit;
    deadline_hit = deadline_hit || other.deadline_hit;
    cancel_hit = cancel_hit || other.cancel_hit;
  }
};
// Plain counters only: no pointers, no atomics, nothing shareable. If this
// ever grows a reference to shared state, the parallel chase's sum-after-
// join aggregation breaks — keep it trivially copyable.
static_assert(std::is_trivially_copyable<HomSearchStats>::value,
              "HomSearchStats must stay per-search value data");

/// Tuning and budget knobs for the search.
struct HomSearchOptions {
  /// Abort after exploring this many search-tree nodes (0 = unlimited).
  std::uint64_t max_nodes = 0;

  /// Disable the inverted-index candidate pruning; used by the EXP-CHASE
  /// ablation benchmark to quantify what the index buys.
  bool use_index = true;

  /// Intersect ALL bound-position posting lists when choosing a row's
  /// candidates (galloping merge) instead of scanning the single shortest
  /// list and filtering per candidate. Node-for-node identical searches —
  /// only `candidates` and wall time change. Off = the single-list ablation
  /// baseline.
  bool use_intersection = true;

  /// Skip the multi-list intersection when the driver (shortest bound-
  /// position posting) list has at most this many ids: on lists this short
  /// the scan-and-filter beats the merge's bookkeeping. 8 is the historical
  /// break-even on the reduction workloads. The threshold decides the
  /// deterministic intersections/intersect_skips split (a pure function of
  /// the bound lists and this value) and can shift `candidates` and wall
  /// time — never which matches are found, their order, or `nodes`.
  std::size_t min_intersect_size = 8;

  /// Evaluate candidates block-at-a-time with util/simd.h kernels (see the
  /// file comment): survivor bitmasks over 64-candidate blocks, vectorized
  /// run intersection, ANDed before any per-tuple binding. Byte-identical
  /// searches on or off — every counter, match and visit order is preserved
  /// (ctest-enforced); only wall time moves. Off = the scalar ablation
  /// baseline (tdbatch --no-simd).
  bool use_simd = true;

  /// Disable the most-constrained-row-first dynamic ordering (rows are then
  /// matched in tableau order).
  bool use_dynamic_order = true;

  /// Delta restriction: when delta_begin >= 0 and delta_seed_row >= 0,
  /// enumerate the `delta_seed_row` member of the semi-naive partition —
  /// row delta_seed_row binds only tuples with id >= delta_begin ("the
  /// delta"), every row before it (in tableau row order) binds only ids
  /// < delta_begin ("old"), rows after it are unrestricted. The union over
  /// delta_seed_row = 0..num_rows-1 visits every delta-touching match
  /// exactly once; each member's cost scales with the delta, not the
  /// instance.
  ///
  /// delta_seed_row = -1 (the default) is the "any row" mode: one search
  /// visiting every delta-touching match (all-old matches are pruned at the
  /// last undone row). Never explores more nodes than an unrestricted
  /// search, and — unlike a single partition member — complete on its own,
  /// which is why it is the default when only delta_begin is set.
  ///
  /// delta_begin < 0 disables the restriction entirely.
  int delta_begin = -1;
  int delta_seed_row = -1;

  /// Optional narrowing of the seed row's id window to
  /// [delta_seed_begin, delta_seed_end) instead of [delta_begin, +inf).
  /// Meaningful only in partition mode (delta_seed_row >= 0); -1 leaves the
  /// respective end unbounded. The chase's work-stealing slices use this to
  /// cut one partition member into disjoint sub-ranges whose union is
  /// exactly the member.
  int delta_seed_begin = -1;
  int delta_seed_end = -1;

  /// Optional wall-clock deadline, checked every few hundred nodes inside
  /// Backtrack so one huge search cannot overshoot a caller's budget. On
  /// expiry the search reports kBudget (the space was not exhausted) and
  /// deadline_hit() is set; the borrowed Deadline must outlive the search.
  /// Deadline reads are const and thread-safe, so concurrent searches may
  /// share one Deadline object.
  const Deadline* deadline = nullptr;

  /// Optional cooperative cancel flag, checked on the same amortized cadence
  /// as the deadline. This is how a budget trip in one of the chase's
  /// concurrent match tasks binds across all of them: the tripping task sets
  /// the shared flag and every sibling search winds down within a few
  /// hundred nodes, reporting kBudget. Null (the default) disables the
  /// check; the flag must outlive the search.
  const std::atomic<bool>* cancel = nullptr;

  /// Optional job-level cancel flag, checked on the same cadence as `cancel`
  /// but with distinct reporting: a trip here sets stats.cancel_hit, which
  /// lets callers (the chase, and through it the engine's JobHandle::Cancel)
  /// tell a user-requested cancellation apart from an ordinary budget stop.
  /// `cancel` stays reserved for the chase's sibling-trip propagation — the
  /// two flags have different owners and different lifetimes, so they ride
  /// as separate pointers. Null disables; must outlive the search.
  const std::atomic<bool>* job_cancel = nullptr;
};

/// Outcome of a search that may exhaust its budget.
enum class HomSearchStatus {
  kFound,      ///< a homomorphism exists (and was produced)
  kExhausted,  ///< the full space was searched; no homomorphism exists
  kBudget,     ///< the node/deadline budget ran out before exhaustion
};

/// Backtracking search for homomorphisms `source -> target`.
class HomomorphismSearch {
 public:
  /// Both referents must outlive the search object.
  HomomorphismSearch(const Tableau& source, const Instance& target,
                     HomSearchOptions options = {});

  /// Pre-binds variables (e.g. the universal variables of a dependency head
  /// when testing whether a body match is already witnessed). The valuation
  /// must be shaped like `source`'s variable space.
  void SetInitial(const Valuation& initial);

  /// Finds one homomorphism extending the initial valuation.
  HomSearchStatus FindAny(Valuation* result);

  /// Enumerates homomorphisms; `visit` returns false to stop early. Every
  /// total extension of the initial valuation that maps all rows into the
  /// target (and touches the delta, if one is set) is visited exactly once.
  HomSearchStatus ForEach(const std::function<bool(const Valuation&)>& visit);

  /// Counters for the last call (reset by every FindAny/ForEach).
  const HomSearchStats& stats() const { return stats_; }

  /// Search-tree nodes explored by the last call.
  std::uint64_t nodes_explored() const { return stats_.nodes; }

  /// The tuple id each source row is bound to, in tableau row order — the
  /// "body image" of the match being visited. Valid only inside a ForEach/
  /// FindAny visit callback (entries are stale outside one).
  const std::vector<int>& row_tuples() const { return row_tuples_; }

  /// True iff the last call stopped because options.deadline expired
  /// (reported as kBudget; this disambiguates for timeout accounting).
  bool deadline_hit() const { return stats_.deadline_hit; }

 private:
  /// Up to two ascending candidate runs (CSR base + tail, or one merged /
  /// materialized run), plus what is already known about them. Every id in
  /// runs[0] precedes every id in runs[1]. `filtered_attr` names a bound
  /// attribute the runs are guaranteed to match (the driver posting list's
  /// attribute); `fully_filtered` marks intersection output, where EVERY
  /// bound position is guaranteed. The block evaluator skips columns that
  /// cannot reject anything.
  struct CandidateRuns {
    IdSpan runs[2];
    int filtered_attr = -1;
    bool fully_filtered = false;
  };

  bool Backtrack(int depth, const std::function<bool(const Valuation&)>& visit,
                 bool* stopped);
  int PickNextRow() const;
  /// Tuple ids row `row_idx` may bind: [first, second). Encodes the delta
  /// partition (and seed slices); {0, INT_MAX} when unrestricted.
  std::pair<int, int> RowIdBounds(int row_idx) const;
  /// Candidate ids in [min_id, max_id) for `row_idx`, either as borrowed
  /// index spans (which may run past max_id — the caller's iteration stops
  /// there) or materialized into `storage` (full scans, intersections; these
  /// DO stop at max_id, so a narrow delta window never pays a full-list
  /// merge).
  void RowCandidates(int row_idx, int min_id, int max_id,
                     std::vector<int>* storage, CandidateRuns* out);
  /// The use_simd replacement for the scalar k-way galloping merge:
  /// pairwise IntersectI32 folds over the bound lists' runs, driver (index
  /// `best` in bound_lists_) trimmed to [min_id, max_id) first. Produces
  /// exactly the scalar merge's id set into `storage`.
  void MergeCandidatesSimd(std::size_t best, int min_id, int max_id,
                           std::vector<int>* storage);
  bool TryBindRow(int row_idx, TupleRef tuple,
                  std::vector<std::pair<int, int>>* undo);
  void UndoBindings(const std::vector<std::pair<int, int>>& undo);

  const Tableau& source_;
  const Instance& target_;
  HomSearchOptions options_;
  Valuation valuation_;
  std::vector<bool> row_done_;
  std::vector<int> row_tuples_;
  int delta_rows_bound_ = 0;  ///< "any row" mode: rows on delta tuples now
  // Per-depth scratch, reused across the whole search so the hot loop does
  // not allocate per node (capacity sticks after the first few nodes).
  std::vector<std::vector<int>> candidate_storage_;
  std::vector<std::vector<std::pair<int, int>>> undo_storage_;
  std::vector<CandidateList> bound_lists_;    // RowCandidates scratch
  std::vector<int> bound_attrs_;              // attr of each bound list
  std::vector<std::size_t> list_cursors_;     // RowCandidates scratch
  std::vector<int> isect_scratch_;            // SIMD fold ping-pong buffer
  // (attr, bound value) pairs the block evaluator filters a depth's
  // candidates on — per depth, because Backtrack recurses mid-loop.
  std::vector<std::vector<std::pair<int, int>>> filter_storage_;
  HomSearchStats stats_;
};

/// Convenience wrapper: is there any homomorphism source -> target?
/// Returns kFound / kExhausted / kBudget.
HomSearchStatus ExistsHomomorphism(const Tableau& source,
                                   const Instance& target,
                                   HomSearchOptions options = {});

/// Tableau containment: does `from` map homomorphically into `to` frozen?
/// (Classic tableau-containment test; used for triviality and equivalence.)
HomSearchStatus MapsInto(const Tableau& from, const Tableau& to,
                         HomSearchOptions options = {});

}  // namespace tdlib

#endif  // TDLIB_LOGIC_HOMOMORPHISM_H_
