// Tableaux: finite sets of atoms R(x, y, ...) over typed variables.
//
// A tableau is the syntactic object underlying both the antecedents and the
// conclusions of template dependencies: a list of rows, each row holding one
// *typed variable* per attribute. Variables are identified by (attribute,
// index); because the index space is per-attribute, "no variable can appear
// in two different columns" (the paper's typing restriction) holds by
// construction.
#ifndef TDLIB_LOGIC_TABLEAU_H_
#define TDLIB_LOGIC_TABLEAU_H_

#include <string>
#include <vector>

#include "logic/instance.h"
#include "logic/schema.h"

namespace tdlib {

/// A row assigns one variable id per attribute (schema order).
using Row = std::vector<int>;

/// A set of rows over a shared, per-attribute variable space.
///
/// The variable space may be larger than what the rows mention (a dependency
/// keeps body and head rows in one numbering; head-only variables are the
/// existentially quantified ones).
class Tableau {
 public:
  explicit Tableau(SchemaPtr schema);

  const Schema& schema() const { return *schema_; }
  const SchemaPtr& schema_ptr() const { return schema_; }

  /// Allocates a fresh variable for `attr`; returns its id (dense per attr).
  int NewVariable(int attr, std::string name = "");

  /// Ensures at least `count` variables exist for `attr`.
  void EnsureVariables(int attr, int count);

  /// Appends a row. Every entry must be an existing variable id of its
  /// attribute; rows are NOT deduplicated (callers may rely on row indices).
  void AddRow(Row row);

  int num_rows() const { return static_cast<int>(rows_.size()); }
  const Row& row(int i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Number of variables allocated for `attr`.
  int NumVars(int attr) const {
    return static_cast<int>(var_names_[attr].size());
  }

  /// Total number of variables across attributes.
  int TotalVars() const;

  /// Display name of variable (attr, v).
  const std::string& VarName(int attr, int v) const {
    return var_names_[attr][v];
  }

  /// Renames variable (attr, v); name must be unique per attribute for
  /// parse/print round-trips, which `CheckInvariants` verifies.
  void SetVarName(int attr, int v, std::string name) {
    var_names_[attr][v] = std::move(name);
  }

  /// The frozen instance: each variable becomes a distinct constant, each
  /// row a tuple. Homomorphism tests into frozen tableaux implement tableau
  /// containment; the chase starts from a frozen antecedent.
  Instance Freeze() const;

  /// Renders rows as R(x, y, z) lines.
  std::string ToString() const;

  /// Returns "" or a description of the first structural violation.
  std::string CheckInvariants() const;

 private:
  SchemaPtr schema_;
  std::vector<Row> rows_;
  std::vector<std::vector<std::string>> var_names_;  // [attr][var]
};

}  // namespace tdlib

#endif  // TDLIB_LOGIC_TABLEAU_H_
