#include "logic/schema.h"

#include <unordered_set>

namespace tdlib {

Schema::Schema(std::vector<std::string> attribute_names)
    : names_(std::move(attribute_names)) {}

int Schema::IndexOf(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::Validate() const {
  if (names_.empty()) return "schema has no attributes";
  std::unordered_set<std::string> seen;
  for (const auto& n : names_) {
    if (n.empty()) return "schema has an empty attribute name";
    if (!seen.insert(n).second) return "duplicate attribute name: " + n;
  }
  return "";
}

Schema Schema::Numbered(int arity, std::string_view prefix) {
  std::vector<std::string> names;
  names.reserve(arity);
  for (int i = 0; i < arity; ++i) {
    names.push_back(std::string(prefix) + std::to_string(i));
  }
  return Schema(std::move(names));
}

SchemaPtr MakeSchema(std::vector<std::string> attribute_names) {
  return std::make_shared<const Schema>(std::move(attribute_names));
}

}  // namespace tdlib
