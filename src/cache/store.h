// Persistent result-cache store: warm starts across process runs.
//
// tdbatch's --cache-file=PATH loads this before a batch and saves after it,
// so a re-run of an isomorph-heavy workload (the Gurevich–Lewis reduction
// sweeps are exactly that) starts hot. The format follows the portable-text
// discipline of chase/ChaseCheckpoint: version-tagged header, decimal
// fields, explicit "end" terminator, and kCorrupt-typed rejection of
// anything malformed — a damaged warm-start file must degrade to a cold
// start with a diagnosable error, never to wrong verdicts or a crash
// (tests/serialization_corrupt_test.cc sweeps single-byte damage over it).
//
//   tdlib-result-cache 1
//   <count>
//   <hi hex> <lo hex> <verdict> <rounds> <steps> <passes> <hom> <match>
//       <carried> <cands>          (one line per entry, count times)
//   end
//
// Entries carry only the deterministic payload: hit counts and trace ids
// are runtime provenance and reset on load. Loading goes through
// ResultCache::Insert, so a file bigger than the byte budget simply evicts
// — and because SaveResultCache writes most-recent-first, a truncating
// reload keeps the hottest entries.
#ifndef TDLIB_CACHE_STORE_H_
#define TDLIB_CACHE_STORE_H_

#include <iosfwd>
#include <string>

#include "cache/result_cache.h"
#include "util/status.h"

namespace tdlib {

/// Writes every cache entry in ForEach order (most recent first per shard).
void SaveResultCache(std::ostream& os, const ResultCache& cache);

/// Parses `is` and inserts every valid entry into `cache`. Returns the
/// number of entries loaded, or a kCorrupt-typed error naming the first
/// malformed line (bad magic/version, absurd count, out-of-range verdict,
/// unparseable field, missing "end", trailing garbage). Entries before the
/// damage point are already inserted when an error returns — callers that
/// want all-or-nothing should load into a scratch cache first; tdbatch
/// deliberately keeps the prefix (a warm start is best-effort).
Result<int> LoadResultCache(std::istream& is, ResultCache* cache);

/// File-path conveniences. Load returns kNotFound for an unopenable path
/// (distinct from kCorrupt: "no warm-start file yet" is not damage).
Result<int> LoadResultCacheFile(const std::string& path, ResultCache* cache);
Result<int> SaveResultCacheFile(const std::string& path,
                                const ResultCache& cache);

}  // namespace tdlib

#endif  // TDLIB_CACHE_STORE_H_
