#include "cache/result_cache.h"

#include <algorithm>

#include "util/metrics.h"

namespace tdlib {
namespace {

// Registry pointers resolved once per process (metrics.h idiom: the
// registry never deletes a metric, so the statics are stable). Gauges get
// deltas, not sets — several ResultCache instances may publish into the
// same process registry (tests, tdbatch + fuzz), and deltas sum correctly.
Counter* HitsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("cache.hits");
  return c;
}
Counter* MissesCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("cache.misses");
  return c;
}
Counter* EvictionsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("cache.evictions");
  return c;
}
Counter* InsertionsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("cache.insertions");
  return c;
}
Counter* CoalescedCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("cache.inflight_coalesced");
  return c;
}
Gauge* BytesGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge("cache.bytes");
  return g;
}
Gauge* EntriesGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge("cache.entries");
  return g;
}

}  // namespace

JobResult CachedVerdictToResult(const CachedVerdict& verdict,
                                const std::string& name) {
  JobResult result;
  result.name = name;
  result.status = JobStatus::kCompleted;
  result.verdict = verdict.verdict;
  result.rounds_used = verdict.rounds_used;
  result.chase_steps = verdict.chase_steps;
  result.chase_passes = verdict.chase_passes;
  result.hom_nodes = verdict.hom_nodes;
  result.match_tasks = verdict.match_tasks;
  result.carried_passes = verdict.carried_passes;
  result.candidates_checked = verdict.candidates_checked;
  result.cache_source = CacheSource::kHit;
  return result;
}

CachedVerdict CachedVerdictFromResult(const JobResult& result,
                                      std::uint64_t source_trace_id) {
  CachedVerdict verdict;
  verdict.verdict = result.verdict;
  verdict.rounds_used = result.rounds_used;
  verdict.chase_steps = result.chase_steps;
  verdict.chase_passes = result.chase_passes;
  verdict.hom_nodes = result.hom_nodes;
  verdict.match_tasks = result.match_tasks;
  verdict.carried_passes = result.carried_passes;
  verdict.candidates_checked = result.candidates_checked;
  verdict.source_trace_id = source_trace_id;
  return verdict;
}

ResultCache::ResultCache(CacheOptions options) : options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.max_bytes < kEntryCost) options_.max_bytes = kEntryCost;
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Each shard gets an equal slice of the budget, floored at one entry so a
  // tiny budget with many shards still caches something per shard.
  shard_budget_ = std::max<std::size_t>(
      options_.max_bytes / shards_.size(), kEntryCost);
}

bool ResultCache::Lookup(const CacheFingerprint& fingerprint,
                         CachedVerdict* out) {
  if (!fingerprint.valid) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    MissesCounter()->Add(1);
    return false;
  }
  Shard& shard = ShardFor(fingerprint);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(fingerprint);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      it->second->second.hits += 1;
      if (out != nullptr) *out = it->second->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      HitsCounter()->Add(1);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  MissesCounter()->Add(1);
  return false;
}

void ResultCache::Insert(const CacheFingerprint& fingerprint,
                         const CachedVerdict& verdict) {
  if (!fingerprint.valid) return;
  Shard& shard = ShardFor(fingerprint);
  std::int64_t evicted = 0;
  std::int64_t entry_delta = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(fingerprint);
    if (it != shard.index.end()) {
      // Content-addressed refresh: keep recency and hit count, overwrite
      // the (identical by construction) deterministic payload.
      const std::uint64_t hits = it->second->second.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      it->second->second = verdict;
      it->second->second.hits = hits;
      return;
    }
    shard.lru.emplace_front(fingerprint, verdict);
    shard.index[fingerprint] = shard.lru.begin();
    shard.bytes += kEntryCost;
    entry_delta = 1;
    while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      shard.bytes -= kEntryCost;
      ++evicted;
      --entry_delta;
    }
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  InsertionsCounter()->Add(1);
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    EvictionsCounter()->Add(evicted);
  }
  EntriesGauge()->Add(entry_delta);
  BytesGauge()->Add(entry_delta * static_cast<std::int64_t>(kEntryCost));
}

void ResultCache::CountCoalesced() {
  coalesced_.fetch_add(1, std::memory_order_relaxed);
  CoalescedCounter()->Add(1);
}

CacheStats ResultCache::Stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += static_cast<std::int64_t>(shard->lru.size());
    stats.bytes += shard->bytes;
  }
  return stats;
}

void ResultCache::ForEach(
    const std::function<void(const CacheFingerprint&, const CachedVerdict&)>&
        visit) const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& entry : shard->lru) visit(entry.first, entry.second);
  }
}

}  // namespace tdlib
