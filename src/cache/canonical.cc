#include "cache/canonical.h"

#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace tdlib {
namespace {

// Relabels one dependency's variables per attribute by first occurrence
// (body rows first, then head rows, each row left to right) and appends the
// relabeled rows. The maps are shared between body and head, so a universal
// head variable resolves to the index its body occurrence introduced —
// exactly the equality pattern, with names and allocation order erased.
void EncodeDependency(const Dependency& dep, std::ostream& os) {
  const int arity = dep.schema().arity();
  std::vector<std::unordered_map<int, int>> relabel(arity);
  auto canon = [&relabel](int attr, int var) {
    auto inserted = relabel[attr].emplace(
        var, static_cast<int>(relabel[attr].size()));
    return inserted.first->second;
  };
  auto encode_tableau = [&](const Tableau& t, char tag) {
    os << tag << ' ' << t.num_rows() << '\n';
    for (const Row& row : t.rows()) {
      for (int attr = 0; attr < arity; ++attr) {
        os << canon(attr, row[attr]) << ' ';
      }
      os << '\n';
    }
  };
  os << "dep " << arity << '\n';
  encode_tableau(dep.body(), 'b');
  encode_tableau(dep.head(), 'h');
}

}  // namespace

bool CacheableConfig(const DualSolverConfig& config) {
  return config.base_chase.deadline_seconds <= 0 &&
         config.base_counterexample.deadline_seconds <= 0;
}

std::string CanonicalProblemText(const DependencySet& d, const Dependency& d0,
                                 const DualSolverConfig& config) {
  std::ostringstream oss;
  // Version tag: bump if the encoding ever changes shape, so fingerprints
  // from different library versions can never alias.
  oss << "tdlib-canonical 1\n" << d.items.size() << '\n';
  for (const Dependency& dep : d.items) EncodeDependency(dep, oss);
  oss << "goal\n";
  EncodeDependency(d0, oss);
  // Every deterministic budget and matching-strategy knob: they all either
  // steer the verdict (rounds, steps, tuples) or the counters the cached
  // DeterministicSummary must reproduce (use_delta splits hom_nodes
  // differently, auto_burst/max_fires_per_pass move pass boundaries,
  // match_slice_ids changes match_tasks). Deadlines are excluded because
  // CacheableConfig already rejects them; pool/cancel are runtime wiring
  // with byte-identical output by the engine's parallelism contract.
  const ChaseConfig& chase = config.base_chase;
  const CounterexampleConfig& cex = config.base_counterexample;
  oss << "cfg " << config.rounds << ' ' << (config.resume_chase ? 1 : 0)
      << ' ' << chase.max_steps << ' ' << chase.max_tuples << ' '
      << chase.hom_max_nodes << ' ' << (chase.record_trace ? 1 : 0) << ' '
      << (chase.eager_goal_check ? 1 : 0) << ' ' << (chase.use_delta ? 1 : 0)
      << ' ' << chase.max_fires_per_pass << ' ' << (chase.auto_burst ? 1 : 0)
      << ' ' << chase.match_slice_ids << ' '
      << (chase.use_intersection ? 1 : 0) << ' ' << (chase.use_simd ? 1 : 0)
      << ' ' << cex.max_tuples << ' ' << cex.max_candidates << '\n';
  return oss.str();
}

CacheFingerprint FingerprintProblem(const DependencySet& d,
                                    const Dependency& d0,
                                    const DualSolverConfig& config) {
  CacheFingerprint fp;
  if (!CacheableConfig(config)) return fp;
  const std::string text = CanonicalProblemText(d, d0, config);
  const Hash128 h = HashBytes128(text.data(), text.size());
  fp.hi = h.hi;
  fp.lo = h.lo;
  fp.valid = true;
  return fp;
}

}  // namespace tdlib
