// The result cache: content-addressed verdicts behind SolverService.
//
// Maps canonical-form fingerprints (cache/canonical.h) to the deterministic
// fields of a completed JobResult. Because the fingerprint already encodes
// every budget and strategy knob that steers those fields, a hit can be
// replayed verbatim: the service publishes the cached verdict with only the
// submission's name substituted, and the bytes equal a fresh solve's — the
// ctest-enforced transparency contract (tests/cache_test.cc).
//
// Shape: a sharded LRU with a byte budget. Each shard owns a mutex, an
// intrusive recency list and an index; fingerprints scatter uniformly (they
// are SplitMix64-finalized), so concurrent Submits from the engine pool
// rarely collide on a shard lock. Eviction is per shard, oldest first,
// until the shard is back inside its slice of the byte budget. Counters
// (cache.hits / cache.misses / cache.evictions / cache.insertions plus
// byte/entry gauges) publish into util/metrics; the always-on CacheStats
// atomics exist so tdbatch and tests can read totals without flipping the
// global metrics switch.
//
// The in-flight dedup table (second isomorphic Submit attaches to the
// running chase) lives with the service, not here: a running JobState is
// engine state, scoped to one service's pool. See engine/service.cc.
#ifndef TDLIB_CACHE_RESULT_CACHE_H_
#define TDLIB_CACHE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/fingerprint.h"
#include "engine/job.h"

namespace tdlib {

/// Construction-time knobs.
struct CacheOptions {
  /// Byte budget across all shards (approximate: entries are costed at
  /// kEntryCost each). Must be > 0; the cache never grows past it.
  std::size_t max_bytes = 64ull << 20;

  /// Shard count (clamped to >= 1). More shards = less lock contention,
  /// coarser per-shard budget slices. Tests pin 1 for deterministic LRU.
  int shards = 8;
};

/// The deterministic payload of one completed job — every field the cache
/// must replay for a hit to be byte-identical to a fresh solve, plus
/// provenance (hit count, the producing run's trace id).
struct CachedVerdict {
  DualVerdict verdict = DualVerdict::kUnknown;
  int rounds_used = 0;
  std::uint64_t chase_steps = 0;
  std::uint64_t chase_passes = 0;
  std::uint64_t hom_nodes = 0;
  std::uint64_t match_tasks = 0;
  std::uint64_t carried_passes = 0;
  std::uint64_t candidates_checked = 0;

  /// Times this entry was served (in-memory only; starts at 0 after a
  /// persistent-store load).
  std::uint64_t hits = 0;

  /// Trace id of the run that produced the verdict (util/trace_span spans
  /// of the original chase carry it), 0 when unknown/loaded from disk.
  std::uint64_t source_trace_id = 0;
};

/// Builds the JobResult a hit publishes: the cached deterministic fields
/// under the submitting job's name, status kCompleted, provenance kHit.
/// Wall-clock fields start at zero — they describe this (instant) serve.
JobResult CachedVerdictToResult(const CachedVerdict& verdict,
                                const std::string& name);

/// Extracts the cacheable payload of a completed result.
CachedVerdict CachedVerdictFromResult(const JobResult& result,
                                      std::uint64_t source_trace_id);

/// Always-on operation totals (relaxed atomics, summed over shards).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::int64_t coalesced = 0;  ///< submissions attached to an in-flight run
  std::int64_t entries = 0;
  std::size_t bytes = 0;
};

/// See the file comment. Thread-safe; shareable across services (the
/// ServiceOptions carries a shared_ptr so tdbatch can load/save around the
/// service lifetime).
class ResultCache {
 public:
  /// Accounting cost of one entry: payload + fingerprint keys + node and
  /// index overhead, rounded to a stable figure so byte-budget tests are
  /// exact. The budget is a memory *model*, not a malloc audit.
  static constexpr std::size_t kEntryCost = 256;

  explicit ResultCache(CacheOptions options = {});

  /// Looks `fingerprint` up; on a hit copies the payload into `out`
  /// (pre-bumped hit count included), refreshes recency, and counts a hit.
  /// A miss (or invalid fingerprint) counts a miss and returns false.
  bool Lookup(const CacheFingerprint& fingerprint, CachedVerdict* out);

  /// Inserts or refreshes (fingerprints are content addresses, so a
  /// re-insert under the same key carries identical deterministic fields —
  /// the entry is refreshed rather than duplicated). Evicts oldest-first
  /// until the shard is inside its byte-budget slice; the newest entry
  /// itself is never evicted. Invalid fingerprints are ignored.
  void Insert(const CacheFingerprint& fingerprint,
              const CachedVerdict& verdict);

  /// Counts one submission that attached to an in-flight isomorphic run
  /// (the service calls this; kept here so every cache.* counter has one
  /// owner).
  void CountCoalesced();

  CacheStats Stats() const;

  /// Visits every entry, shard by shard, most recent first within a shard
  /// (the persistent store's save order, so a budget-truncated reload keeps
  /// the hottest entries). The callback must not call back into the cache.
  void ForEach(const std::function<void(const CacheFingerprint&,
                                        const CachedVerdict&)>& visit) const;

  const CacheOptions& options() const { return options_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<CacheFingerprint, CachedVerdict>> lru;
    std::unordered_map<
        CacheFingerprint,
        std::list<std::pair<CacheFingerprint, CachedVerdict>>::iterator,
        CacheFingerprintHash>
        index;
    std::size_t bytes = 0;
  };

  Shard& ShardFor(const CacheFingerprint& fingerprint) {
    return *shards_[static_cast<std::size_t>(
        CacheFingerprintHash{}(fingerprint)) % shards_.size()];
  }

  CacheOptions options_;
  std::size_t shard_budget_;  ///< max_bytes / shards, at least one entry
  /// unique_ptr because a Shard owns a mutex (immovable, so no vector<Shard>).
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> insertions_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::int64_t> coalesced_{0};
};

}  // namespace tdlib

#endif  // TDLIB_CACHE_RESULT_CACHE_H_
