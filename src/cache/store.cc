#include "cache/store.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cache/fingerprint.h"

namespace tdlib {
namespace {

constexpr char kMagic[] = "tdlib-result-cache";
constexpr int kVersion = 1;

// Upper bound on a plausible entry count: far above any real cache (a
// 4M-entry cache would model at 1 GiB) and far below anything that could
// make a corrupted count allocate the process to death.
constexpr std::int64_t kMaxEntries = std::int64_t{1} << 22;

Result<int> Corrupt(const std::string& what) {
  return Result<int>::Error(ErrorCode::kCorrupt,
                            "result-cache store: " + what);
}

bool ParseHex64(const std::string& token, std::uint64_t* out) {
  if (token.empty() || token.size() > 16) return false;
  std::uint64_t value = 0;
  for (char c : token) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = value;
  return true;
}

}  // namespace

void SaveResultCache(std::ostream& os, const ResultCache& cache) {
  const CacheStats stats = cache.Stats();
  os << kMagic << ' ' << kVersion << '\n' << stats.entries << '\n';
  char hex[17];
  cache.ForEach([&os, &hex](const CacheFingerprint& fp,
                            const CachedVerdict& v) {
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fp.hi));
    os << hex << ' ';
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fp.lo));
    os << hex << ' ' << static_cast<int>(v.verdict) << ' ' << v.rounds_used
       << ' ' << v.chase_steps << ' ' << v.chase_passes << ' ' << v.hom_nodes
       << ' ' << v.match_tasks << ' ' << v.carried_passes << ' '
       << v.candidates_checked << '\n';
  });
  os << "end\n";
}

Result<int> LoadResultCache(std::istream& is, ResultCache* cache) {
  std::string magic;
  int version = 0;
  if (!(is >> magic) || magic != kMagic) return Corrupt("bad magic");
  if (!(is >> version) || version != kVersion) {
    return Corrupt("unsupported version");
  }
  std::int64_t count = 0;
  if (!(is >> count) || count < 0 || count > kMaxEntries) {
    return Corrupt("implausible entry count");
  }
  int loaded = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    std::string hi_hex, lo_hex;
    int verdict = 0, rounds = 0;
    std::uint64_t steps = 0, passes = 0, hom = 0, match = 0, carried = 0,
                  cands = 0;
    if (!(is >> hi_hex >> lo_hex >> verdict >> rounds >> steps >> passes >>
          hom >> match >> carried >> cands)) {
      return Corrupt("truncated or unparseable entry " + std::to_string(i));
    }
    CacheFingerprint fp;
    if (!ParseHex64(hi_hex, &fp.hi) || !ParseHex64(lo_hex, &fp.lo)) {
      return Corrupt("bad fingerprint in entry " + std::to_string(i));
    }
    fp.valid = true;
    if (verdict < static_cast<int>(DualVerdict::kImplied) ||
        verdict > static_cast<int>(DualVerdict::kUnknown)) {
      return Corrupt("verdict out of range in entry " + std::to_string(i));
    }
    if (rounds < 0) {
      return Corrupt("negative rounds in entry " + std::to_string(i));
    }
    CachedVerdict v;
    v.verdict = static_cast<DualVerdict>(verdict);
    v.rounds_used = rounds;
    v.chase_steps = steps;
    v.chase_passes = passes;
    v.hom_nodes = hom;
    v.match_tasks = match;
    v.carried_passes = carried;
    v.candidates_checked = cands;
    cache->Insert(fp, v);
    ++loaded;
  }
  std::string terminator;
  if (!(is >> terminator) || terminator != "end") {
    return Corrupt("missing end marker");
  }
  if (is >> terminator) return Corrupt("trailing garbage after end");
  return loaded;
}

Result<int> LoadResultCacheFile(const std::string& path, ResultCache* cache) {
  std::ifstream in(path);
  if (!in) {
    return Result<int>::Error(ErrorCode::kNotFound,
                              "cannot open result-cache file: " + path);
  }
  return LoadResultCache(in, cache);
}

Result<int> SaveResultCacheFile(const std::string& path,
                                const ResultCache& cache) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Result<int>::Error(ErrorCode::kNotFound,
                              "cannot write result-cache file: " + path);
  }
  SaveResultCache(out, cache);
  out.flush();
  if (!out) {
    return Result<int>::Error(ErrorCode::kUnknown,
                              "short write to result-cache file: " + path);
  }
  const CacheStats stats = cache.Stats();
  return static_cast<int>(stats.entries);
}

}  // namespace tdlib
