// Canonical-form fingerprints: the content address of one implication
// problem.
//
// A CacheFingerprint is the 128-bit hash of the canonical form of a job's
// (D, D0, solver budgets) — see cache/canonical.h. Two jobs that differ only
// by variable or attribute renaming canonicalize identically and therefore
// share a fingerprint; the result cache, the in-flight dedup table and
// (next on the roadmap) the multi-process router's consistent hashing all
// key on this value. The struct is deliberately dependency-free so the
// engine's job plumbing can carry one without pulling in cache headers.
#ifndef TDLIB_CACHE_FINGERPRINT_H_
#define TDLIB_CACHE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

namespace tdlib {

/// 128-bit content address of a canonicalized implication problem. `valid`
/// distinguishes "fingerprint of something" from the default state (jobs
/// the cache ignores: cache off, wall-clock deadlines, etc.).
struct CacheFingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  bool valid = false;

  friend bool operator==(const CacheFingerprint& a, const CacheFingerprint& b) {
    return a.valid == b.valid && a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const CacheFingerprint& a, const CacheFingerprint& b) {
    return !(a == b);
  }

  /// 32 lowercase hex digits (hi then lo); "-" for an invalid fingerprint.
  std::string ToHex() const {
    if (!valid) return "-";
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return std::string(buf);
  }
};

/// Hash functor for unordered containers keyed on fingerprints. The value
/// is already uniform (SplitMix64-finalized), so folding the words is enough.
struct CacheFingerprintHash {
  std::size_t operator()(const CacheFingerprint& f) const {
    return static_cast<std::size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace tdlib

#endif  // TDLIB_CACHE_FINGERPRINT_H_
