// The canonicalizer: implication problems modulo renaming.
//
// The Gurevich–Lewis reduction (and production traffic generally) produces
// floods of implication questions that differ only by variable and
// attribute *names* — millions of user queries collapse onto a much smaller
// space of problems up to renaming. This module computes that quotient:
// a canonical text form of (D, D0, solver budgets) that is invariant under
//
//   * attribute renaming  — attributes are reduced to their positions, so
//     schemas {A,B,C} and {X,Y,Z} canonicalize identically;
//   * variable renaming   — within each attribute, variables are relabeled
//     by first occurrence scanning body rows then head rows left to right,
//     which erases both display names and the (arbitrary) allocation order
//     of variable ids while preserving the equality pattern;
//   * dependency names    — DependencySet::names and Job::name are
//     provenance, not semantics, and are excluded.
//
// and sensitive to everything the engine's byte-identity contract depends
// on: dependency ORDER in D (the canonical fire order keys on dependency
// index, so permuting D legitimately changes traces and counters), row
// order inside each tableau, and every deterministic solver budget
// (rounds, step/tuple/node budgets, matching-strategy knobs) — two jobs
// share a fingerprint only if a fresh solve of either produces the same
// DeterministicSummary bytes, which is what lets the result cache replay
// verdicts verbatim. Wall-clock deadlines make runs nondeterministic, so
// configs carrying one are not cacheable at all (CacheableConfig).
#ifndef TDLIB_CACHE_CANONICAL_H_
#define TDLIB_CACHE_CANONICAL_H_

#include <string>

#include "cache/fingerprint.h"
#include "chase/dual_solver.h"
#include "core/dependency.h"

namespace tdlib {

/// True iff results under `config` are a deterministic function of
/// (D, D0, config) — the precondition for caching them. Wall-clock
/// deadlines (chase or model-search side) stop runs at machine-load-
/// dependent points, so they void cacheability; every other budget
/// (steps, tuples, nodes, candidates, rounds) trips deterministically.
bool CacheableConfig(const DualSolverConfig& config);

/// Renders the canonical text form described in the file comment. Exposed
/// for tests and debugging; the cache itself only ever sees the hash.
std::string CanonicalProblemText(const DependencySet& d, const Dependency& d0,
                                 const DualSolverConfig& config);

/// Hashes the canonical form into a 128-bit content address
/// (util/hash.h::HashBytes128). Returns an INVALID fingerprint when
/// `config` is not cacheable, so callers can gate on `.valid` alone.
CacheFingerprint FingerprintProblem(const DependencySet& d,
                                    const Dependency& d0,
                                    const DualSolverConfig& config);

}  // namespace tdlib

#endif  // TDLIB_CACHE_CANONICAL_H_
