// Quickstart: declare a template dependency, model-check it, and ask an
// inference question — the three core operations of tdlib.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "chase/implication.h"
#include "core/parser.h"
#include "core/satisfaction.h"

using namespace tdlib;

int main() {
  // 1. A schema: one relation, typed attributes (disjoint domains).
  SchemaPtr schema = MakeSchema({"SUPPLIER", "STYLE", "SIZE"});

  // 2. A template dependency, in the paper's Fig. 1 shape: if a supplier
  //    supplies style b and (any) garments in size c', then SOME supplier
  //    supplies style b in size c'.
  Dependency fig1 = std::move(ParseDependency(
                        schema, "R(a,b,c) & R(a,b2,c2) => R(a9,b,c2)"))
                        .value();
  std::cout << "dependency: " << fig1.ToString() << "\n";
  std::cout << "  template dependency: " << (fig1.IsTd() ? "yes" : "no")
            << ", full: " << (fig1.IsFull() ? "yes" : "no")
            << ", trivial: " << (fig1.IsTrivial() ? "yes" : "no") << "\n\n";

  // 3. A database, and model checking.
  Instance db(schema);
  auto add = [&](const std::string& s, const std::string& st,
                 const std::string& sz) {
    db.AddTuple({db.InternValue(0, s), db.InternValue(1, st),
                 db.InternValue(2, sz)});
  };
  add("StLaurent", "EveningDress", "10");
  add("BVD", "Brief", "36");
  add("StLaurent", "Brief", "36");
  std::cout << "database:\n" << db.ToString() << "\n";
  SatisfactionResult check = CheckSatisfaction(fig1, db);
  std::cout << "fig1 satisfied: "
            << (check.verdict == Satisfaction::kSatisfied ? "yes" : "NO")
            << " (" << check.body_matches << " antecedent matches checked)\n\n";

  // 4. Inference: does one dependency follow from another? The chase gives
  //    certificates in both directions (and honest kUnknown under budgets,
  //    because TD inference is undecidable — the subject of the paper this
  //    library reproduces).
  DependencySet premises;
  premises.Add(std::move(ParseDependency(schema,
                                         "R(a,b,c) & R(a,b2,c2) => "
                                         "R(a9,b,c) & R(a9,b,c2)"))
                   .value(),
               "eid");
  ImplicationResult inference = ChaseImplies(premises, fig1);
  std::cout << "does the EID imply fig1?  " << inference.ToString() << "\n";
  return 0;
}
