// td_tool: a small command-line front end to the inference engine.
//
// Reads a dependency program (see core/parser.h for the grammar) from a
// file or stdin; the LAST dependency is the goal D0, all earlier ones form
// the premise set D. Runs the dual solver and reports the verdict.
//
//   $ ./build/examples/td_tool program.td
//   $ echo 'schema A B
//           td R(a,b) & R(a2,b2) => R(a,b2)
//           td R(a,b) & R(a2,b2) & R(a3,b3) => R(a,b3)' | ./build/examples/td_tool
//
// Flags:
//   --chase-steps=N   chase budget per round (default 100000)
//   --max-tuples=N    finite-counterexample size bound (default 3)
//   --rounds=N        escalation rounds (default 3)
#include <fstream>
#include <iostream>
#include <sstream>

#include "chase/dual_solver.h"
#include "core/parser.h"
#include "util/strings.h"

using namespace tdlib;

namespace {

int Usage() {
  std::cerr << "usage: td_tool [--chase-steps=N] [--max-tuples=N] "
               "[--rounds=N] [program.td]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  DualSolverConfig config;
  config.base_chase.max_steps = 100000;
  config.base_counterexample.max_tuples = 3;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--chase-steps=")) {
      config.base_chase.max_steps = std::stoull(arg.substr(14));
    } else if (StartsWith(arg, "--max-tuples=")) {
      config.base_counterexample.max_tuples = std::stoi(arg.substr(13));
    } else if (StartsWith(arg, "--rounds=")) {
      config.rounds = std::stoi(arg.substr(9));
    } else if (StartsWith(arg, "--")) {
      return Usage();
    } else {
      path = arg;
    }
  }

  std::string text;
  if (path.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  SchemaPtr schema;
  Result<DependencySet> parsed = ParseDependencyProgram(text, &schema);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.error() << "\n";
    return 2;
  }
  DependencySet all = std::move(parsed).value();
  if (all.items.size() < 2) {
    std::cerr << "need at least two dependencies (premises + goal)\n";
    return 2;
  }
  Dependency goal = std::move(all.items.back());
  std::string goal_name = all.names.back();
  all.items.pop_back();
  all.names.pop_back();

  std::cout << "premises D:\n" << all.ToString();
  std::cout << "goal D0" << (goal_name.empty() ? "" : " (" + goal_name + ")")
            << ": " << goal.ToString() << "\n\n";

  DualResult result = SolveImplication(all, goal, config);
  std::cout << result.ToString() << "\n";
  switch (result.verdict) {
    case DualVerdict::kImplied:
      std::cout << "D |= D0 over all (finite and infinite) databases.\n";
      return 0;
    case DualVerdict::kRefutedFinite:
    case DualVerdict::kRefutedByFixpoint: {
      std::cout << "D does NOT imply D0; counterexample database:\n";
      const auto& witness =
          result.verdict == DualVerdict::kRefutedFinite
              ? result.counterexample.witness
              : result.implication.counterexample;
      if (witness.has_value()) std::cout << witness->ToString();
      return 0;
    }
    case DualVerdict::kUnknown:
      std::cout << "budgets exhausted: undecidability in action — raise "
                   "--chase-steps / --max-tuples / --rounds and retry.\n";
      return 1;
  }
  return 1;
}
