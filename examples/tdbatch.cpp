// tdbatch: the batch front end to the asynchronous inference service.
//
// Runs a named workload (or a list of .td files) through engine/SolverService
// and prints a per-job summary table; optionally streams each result as it
// completes and/or writes the same rows as CSV for the experiment harness.
//
//   $ ./build/examples/tdbatch --workload=reduction-sweep --size=12 --threads=4
//   $ ./build/examples/tdbatch --workload=random --seed=7 --deadline=2.5
//   $ ./build/examples/tdbatch a.td b.td c.td --csv=out.csv --stream
//
// Flags:
//   --workload=NAME   reduction-sweep (default) or random; ignored when
//                     .td files are given
//   --size=N          jobs to generate (default 12)
//   --seed=N          random-workload seed (default 1)
//   --threads=N       pool width (default 0 = hardware concurrency)
//   --rounds=N        dual-solver escalation rounds per job (default 2,
//                     the trimmed DefaultWorkloadSolverConfig — generated
//                     families contain gap instances that pump forever)
//   --chase-steps=N   chase budget per round (default 2000, same reason)
//   --max-tuples=N    finite-counterexample size bound (default 3)
//   --deadline=S      per-job wall-clock budget in seconds, measured from
//                     submission — submissions all happen up front, so this
//                     doubles as the old global batch budget (default none)
//   --stream          print each job's result line the moment it completes
//                     (completion order, from the service's on_complete
//                     callback) instead of only the table at the end
//   --naive-chase     disable delta-driven matching (ablation baseline;
//                     verdicts are identical, the chase just re-matches
//                     the whole instance every pass)
//   --layout=NAME     tuple-store layout: row (default) or soa/columnar —
//                     per-attribute component slabs; physical only, every
//                     result byte is identical (see README "Data layout")
//   --no-intersect    scan the single shortest posting list per row instead
//                     of intersecting all bound-position lists (ablation
//                     baseline; node-for-node identical searches)
//   --no-simd         evaluate candidates tuple-by-tuple instead of with
//                     the util/simd.h block kernels (ablation baseline;
//                     every counter and result byte is identical — see
//                     README "SIMD kernels". TDLIB_FORCE_SCALAR=1 in the
//                     environment instead keeps the block path but caps
//                     kernel dispatch at the scalar fallbacks)
//   --no-auto-burst   fix max_fires_per_pass instead of auto-tuning it from
//                     the observed per-pass growth (auto: geometric pumping
//                     runs uncapped, flat growth gets the bounded burst)
//   --serial-chase    keep each job's chase matching phase on its own
//                     thread (disable lending the service pool to the
//                     chase; results are byte-identical, this is the
//                     ablation baseline for chase-level parallelism)
//   --no-resume       make escalation rounds re-run the chase from scratch
//                     instead of resuming the previous round's checkpoint
//                     (ablation baseline; results are byte-identical, the
//                     chase just re-derives every round's prefix)
//   --cache[=BYTES]   canonical-form result cache for the service mode,
//                     with an optional byte budget (default on, 64 MiB):
//                     jobs identical up to variable/attribute renaming are
//                     solved once and served byte-identically thereafter,
//                     and concurrent isomorphic submissions coalesce onto
//                     one chase. The summary table/CSV gain a "cache"
//                     column (miss/hit/coalesced) and a hit/miss stats line
//   --no-cache        ablation baseline: every submission runs its own
//                     chase (the pre-cache behavior, byte-identical output)
//   --cache-file=PATH warm-start file: load cached verdicts from PATH
//                     before the batch (a corrupt file is reported and
//                     skipped — cold start, never wrong verdicts) and save
//                     the cache back to PATH afterwards
//   --stop-on-refutation   skip jobs not yet started once any job refutes
//   --serial          run on the calling thread (reference mode; the cache
//                     is a service feature, so --serial ignores it)
//   --csv=PATH        also write per-job rows as CSV
//   --metrics[=PATH]  enable the metrics layer; dump the final snapshot as
//                     JSON to PATH (stdout when no PATH)
//   --prom=PATH       also dump the snapshot as Prometheus text exposition
//                     (implies --metrics)
//   --trace=PATH      enable tracing; dump the span ring buffer as Chrome
//                     trace_event JSON (load in chrome://tracing/Perfetto)
//   --slow-log=S      log a phase breakdown to stderr for every job whose
//                     submit-to-terminal time reaches S seconds
//
// The TDLIB_FAULT environment variable arms the util/fault.h injection
// sites for this run (e.g. TDLIB_FAULT="chase-alloc:3,deadline"); armed
// faults surface as typed one-line errors or kSkipped/kCancelled results,
// and their fault.injected.* counters appear in --metrics output.
//
// Exit codes: 0 = success, 2 = usage error, 3 = unreadable input file,
// 4 = malformed workload/TD program, 5 = cannot write an output file,
// 1 = any other failure. Every failure prints one diagnostic line to
// stderr prefixed "tdbatch:".
#include <atomic>
#include <exception>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "cache/store.h"
#include "engine/batch_solver.h"
#include "engine/service.h"
#include "engine/workload.h"
#include "logic/tuple_store.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/timer.h"
#include "util/trace_span.h"

using namespace tdlib;

namespace {

// Distinct non-zero exit codes, so scripts and the CI harness can tell
// "bad invocation" from "bad input" from "bad environment" without
// scraping stderr.
enum ExitCode {
  kExitSuccess = 0,
  kExitFailure = 1,       // unclassified (internal error, exception)
  kExitUsage = 2,         // bad flags
  kExitUnreadable = 3,    // an input file could not be opened
  kExitMalformed = 4,     // workload/TD program failed to parse
  kExitWriteFailure = 5,  // an output file could not be written
};

int ExitCodeForError(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNotFound: return kExitUnreadable;
    case ErrorCode::kParseError: return kExitMalformed;
    case ErrorCode::kInvalidArgument: return kExitUsage;
    default: return kExitFailure;
  }
}

int Usage() {
  std::cerr << "usage: tdbatch [--workload=reduction-sweep|random] [--size=N]\n"
               "               [--seed=N] [--threads=N] [--rounds=N]\n"
               "               [--chase-steps=N] [--max-tuples=N]\n"
               "               [--deadline=S] [--stream] [--naive-chase]\n"
               "               [--layout=row|soa] [--no-intersect]\n"
               "               [--no-simd] [--no-auto-burst] [--serial-chase]\n"
               "               [--no-resume] [--cache[=BYTES]] [--no-cache]\n"
               "               [--cache-file=PATH] [--stop-on-refutation]\n"
               "               [--serial] [--csv=PATH] [--metrics[=PATH]]\n"
               "               [--prom=PATH] [--trace=PATH] [--slow-log=S]\n"
               "               [file.td ...]\n";
  return 2;
}

int RunBatch(int argc, char** argv) {
  std::string family = "reduction-sweep";
  WorkloadOptions workload;
  // Burst auto-tune is the tdbatch default (the library default stays
  // conservative); --no-auto-burst is the ablation.
  workload.solver.base_chase.auto_burst = true;
  int num_threads = 0;
  bool chase_parallelism = true;
  bool stop_on_refutation = false;
  double deadline_seconds = 0;
  bool serial = false;
  bool stream = false;
  std::string csv_path;
  bool metrics = false;
  std::string metrics_path;  // "" with metrics=true means stdout
  std::string prom_path;
  std::string trace_path;
  double slow_log_seconds = 0;
  bool use_cache = true;
  std::size_t cache_bytes = CacheOptions{}.max_bytes;
  std::string cache_file;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    try {
      if (StartsWith(arg, "--workload=")) {
        family = arg.substr(11);
      } else if (StartsWith(arg, "--size=")) {
        workload.size = std::stoi(arg.substr(7));
      } else if (StartsWith(arg, "--seed=")) {
        workload.seed = std::stoull(arg.substr(7));
      } else if (StartsWith(arg, "--threads=")) {
        num_threads = std::stoi(arg.substr(10));
      } else if (StartsWith(arg, "--rounds=")) {
        workload.solver.rounds = std::stoi(arg.substr(9));
      } else if (StartsWith(arg, "--chase-steps=")) {
        workload.solver.base_chase.max_steps = std::stoull(arg.substr(14));
      } else if (StartsWith(arg, "--max-tuples=")) {
        workload.solver.base_counterexample.max_tuples =
            std::stoi(arg.substr(13));
      } else if (StartsWith(arg, "--deadline=")) {
        deadline_seconds = std::stod(arg.substr(11));
      } else if (arg == "--stream") {
        stream = true;
      } else if (arg == "--naive-chase") {
        workload.solver.base_chase.use_delta = false;
      } else if (StartsWith(arg, "--layout=")) {
        std::string layout = arg.substr(9);
        if (layout == "row" || layout == "row-major") {
          SetDefaultTupleLayout(TupleLayout::kRowMajor);
        } else if (layout == "soa" || layout == "columnar") {
          SetDefaultTupleLayout(TupleLayout::kColumnar);
        } else {
          return Usage();
        }
      } else if (arg == "--no-intersect") {
        workload.solver.base_chase.use_intersection = false;
      } else if (arg == "--no-simd") {
        workload.solver.base_chase.use_simd = false;
      } else if (arg == "--no-auto-burst") {
        workload.solver.base_chase.auto_burst = false;
      } else if (arg == "--serial-chase") {
        chase_parallelism = false;
      } else if (arg == "--no-resume") {
        workload.solver.resume_chase = false;
      } else if (arg == "--cache") {
        use_cache = true;
      } else if (StartsWith(arg, "--cache=")) {
        use_cache = true;
        cache_bytes = std::stoull(arg.substr(8));
      } else if (arg == "--no-cache") {
        use_cache = false;
      } else if (StartsWith(arg, "--cache-file=")) {
        cache_file = arg.substr(13);
      } else if (arg == "--stop-on-refutation") {
        stop_on_refutation = true;
      } else if (arg == "--serial") {
        serial = true;
      } else if (StartsWith(arg, "--csv=")) {
        csv_path = arg.substr(6);
      } else if (arg == "--metrics") {
        metrics = true;
      } else if (StartsWith(arg, "--metrics=")) {
        metrics = true;
        metrics_path = arg.substr(10);
      } else if (StartsWith(arg, "--prom=")) {
        metrics = true;
        prom_path = arg.substr(7);
      } else if (StartsWith(arg, "--trace=")) {
        trace_path = arg.substr(8);
      } else if (StartsWith(arg, "--slow-log=")) {
        slow_log_seconds = std::stod(arg.substr(11));
      } else if (StartsWith(arg, "--")) {
        return Usage();
      } else {
        files.push_back(arg);
      }
    } catch (const std::exception&) {
      std::cerr << "tdbatch: bad value in '" << arg << "'\n";
      return Usage();
    }
  }
  if (workload.size < 1) {
    std::cerr << "tdbatch: --size must be >= 1\n";
    return Usage();
  }

  Result<std::vector<Job>> jobs =
      files.empty() ? MakeWorkload(family, workload)
                    : FileWorkload(files, workload);
  if (!jobs.ok()) {
    std::cerr << "tdbatch: " << ErrorCodeName(jobs.code()) << ": "
              << jobs.error() << "\n";
    return ExitCodeForError(jobs.code());
  }

  // Observability switches flip before any solving so the whole run is
  // covered; both default off (zero-cost path).
  if (metrics) SetMetricsEnabled(true);
  if (!trace_path.empty()) SetTracingEnabled(true);

  BatchSummary summary;
  if (serial) {
    BatchOptions batch;
    batch.deadline_seconds = deadline_seconds;
    batch.stop_on_first_refutation = stop_on_refutation;
    summary = RunSerial(jobs.value(), batch);
    if (stream) {
      // The reference mode has no worker callbacks; completion order IS
      // submission order, so stream after the fact.
      for (const JobResult& r : summary.results) {
        std::cout << r.ToString() << "\n";
      }
    }
  } else {
    // The asynchronous path: one submission per job, results observed
    // through handles. --stream and --stop-on-refutation both ride the
    // per-submission on_complete callback; early stop closes a shared
    // admission gate so queued jobs are skipped, exactly like the old
    // batch-global control.
    Timer wall;
    std::shared_ptr<ResultCache> cache;
    if (use_cache) {
      CacheOptions cache_options;
      cache_options.max_bytes = cache_bytes;
      cache = std::make_shared<ResultCache>(cache_options);
      if (!cache_file.empty()) {
        Result<int> loaded = LoadResultCacheFile(cache_file, cache.get());
        if (loaded.ok()) {
          std::cout << "cache: warm start, " << loaded.value()
                    << " entries from " << cache_file << "\n";
        } else if (loaded.code() == ErrorCode::kCorrupt) {
          // Best-effort warm start: a damaged file degrades to whatever
          // valid prefix loaded, never to wrong verdicts or an abort.
          std::cerr << "tdbatch: ignoring corrupt cache file " << cache_file
                    << " (" << loaded.error() << ")\n";
        }
        // kNotFound = no warm-start file yet: silent cold start.
      }
    }
    ServiceOptions service_options;
    service_options.num_threads = num_threads;
    service_options.chase_parallelism = chase_parallelism;
    service_options.slow_log_seconds = slow_log_seconds;
    service_options.result_cache = cache;
    SolverService service(service_options);
    summary.num_threads = service.num_threads();

    std::mutex stream_mu;
    std::atomic<bool> refuted{false};
    std::vector<JobHandle> handles;
    handles.reserve(jobs.value().size());
    for (const Job& job : jobs.value()) {
      SubmitOptions submit;
      submit.deadline_seconds = deadline_seconds;
      if (stop_on_refutation) submit.skip_when = &refuted;
      if (stream || stop_on_refutation) {
        submit.on_complete = [&](const JobResult& r) {
          if (stop_on_refutation && IsRefutation(r)) {
            refuted.store(true, std::memory_order_relaxed);
          }
          if (stream) {
            std::lock_guard<std::mutex> lock(stream_mu);
            std::cout << r.ToString() << "\n";
          }
        };
      }
      handles.push_back(service.Submit(job, submit));
    }
    summary.results.reserve(handles.size());
    for (const JobHandle& handle : handles) {
      summary.results.push_back(handle.Wait());
    }
    summary.wall_seconds = wall.ElapsedSeconds();
    for (const JobResult& r : summary.results) {
      switch (r.status) {
        case JobStatus::kCompleted: ++summary.completed; break;
        case JobStatus::kCancelled: ++summary.cancelled; break;
        case JobStatus::kSkipped: ++summary.skipped; break;
      }
    }
    if (cache != nullptr) {
      const CacheStats stats = cache->Stats();
      std::cout << "cache: " << stats.hits << " hit(s), " << stats.misses
                << " miss(es), " << stats.coalesced << " coalesced, "
                << stats.entries << " entries (" << stats.bytes
                << " bytes)\n";
      if (!cache_file.empty()) {
        Result<int> saved = SaveResultCacheFile(cache_file, *cache);
        if (saved.ok()) {
          std::cout << "wrote " << cache_file << " (" << saved.value()
                    << " entries)\n";
        } else {
          std::cerr << "tdbatch: cannot write " << cache_file << " ("
                    << saved.error() << ")\n";
          return kExitWriteFailure;
        }
      }
    }
  }

  std::cout << summary.ToTable();

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "tdbatch: cannot write " << csv_path << "\n";
      return kExitWriteFailure;
    }
    summary.WriteCsv(out);
    std::cout << "wrote " << csv_path << "\n";
  }

  if (metrics) {
    const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    if (metrics_path.empty()) {
      std::cout << snapshot.ToJson() << "\n";
    } else {
      std::ofstream out(metrics_path);
      if (!out) {
        std::cerr << "tdbatch: cannot write " << metrics_path << "\n";
        return kExitWriteFailure;
      }
      out << snapshot.ToJson() << "\n";
      std::cout << "wrote " << metrics_path << "\n";
    }
    if (!prom_path.empty()) {
      std::ofstream out(prom_path);
      if (!out) {
        std::cerr << "tdbatch: cannot write " << prom_path << "\n";
        return kExitWriteFailure;
      }
      out << snapshot.ToPrometheus();
      std::cout << "wrote " << prom_path << "\n";
    }
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "tdbatch: cannot write " << trace_path << "\n";
      return kExitWriteFailure;
    }
    TraceBuffer::Global().WriteChromeTrace(out);
    out << "\n";
    const std::uint64_t dropped = TraceBuffer::Global().Dropped();
    std::cout << "wrote " << trace_path << " ("
              << TraceBuffer::Global().TotalRecorded() - dropped << " spans";
    if (dropped > 0) std::cout << ", " << dropped << " dropped";
    std::cout << ")\n";
  }
  return kExitSuccess;
}

}  // namespace

int main(int argc, char** argv) {
  // Arm any TDLIB_FAULT-specified injection sites before the first solve so
  // the whole run — admission, chase, checkpointing — is under the spec.
  ArmFaultsFromEnv();
  try {
    return RunBatch(argc, argv);
  } catch (const std::exception& e) {
    // No internal error should surface as a raw terminate; one line, code 1.
    std::cerr << "tdbatch: internal error: " << e.what() << "\n";
    return kExitFailure;
  }
}
