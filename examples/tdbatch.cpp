// tdbatch: the batch front end to the parallel inference engine.
//
// Runs a named workload (or a list of .td files) through engine/BatchSolver
// and prints a per-job summary table; optionally writes the same rows as
// CSV for the experiment harness.
//
//   $ ./build/examples/tdbatch --workload=reduction-sweep --size=12 --threads=4
//   $ ./build/examples/tdbatch --workload=random --seed=7 --deadline=2.5
//   $ ./build/examples/tdbatch a.td b.td c.td --csv=out.csv
//
// Flags:
//   --workload=NAME   reduction-sweep (default) or random; ignored when
//                     .td files are given
//   --size=N          jobs to generate (default 12)
//   --seed=N          random-workload seed (default 1)
//   --threads=N       pool width (default 0 = hardware concurrency)
//   --rounds=N        dual-solver escalation rounds per job (default 2,
//                     the trimmed DefaultWorkloadSolverConfig — generated
//                     families contain gap instances that pump forever)
//   --chase-steps=N   chase budget per round (default 2000, same reason)
//   --max-tuples=N    finite-counterexample size bound (default 3)
//   --deadline=S      global wall-clock budget in seconds (default none)
//   --naive-chase     disable delta-driven matching (ablation baseline;
//                     verdicts are identical, the chase just re-matches
//                     the whole instance every pass)
//   --serial-chase    keep each job's chase matching phase on its own
//                     thread (disable lending the batch pool to the chase;
//                     results are byte-identical, this is the ablation
//                     baseline for chase-level parallelism)
//   --stop-on-refutation   cancel the batch at the first refuted job
//   --serial          run on the calling thread (reference mode)
//   --csv=PATH        also write per-job rows as CSV
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/batch_solver.h"
#include "engine/workload.h"
#include "util/strings.h"

using namespace tdlib;

namespace {

int Usage() {
  std::cerr << "usage: tdbatch [--workload=reduction-sweep|random] [--size=N]\n"
               "               [--seed=N] [--threads=N] [--rounds=N]\n"
               "               [--chase-steps=N] [--max-tuples=N]\n"
               "               [--deadline=S] [--naive-chase] [--serial-chase]\n"
               "               [--stop-on-refutation] [--serial]\n"
               "               [--csv=PATH] [file.td ...]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string family = "reduction-sweep";
  WorkloadOptions workload;
  BatchOptions batch;
  bool serial = false;
  std::string csv_path;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    try {
      if (StartsWith(arg, "--workload=")) {
        family = arg.substr(11);
      } else if (StartsWith(arg, "--size=")) {
        workload.size = std::stoi(arg.substr(7));
      } else if (StartsWith(arg, "--seed=")) {
        workload.seed = std::stoull(arg.substr(7));
      } else if (StartsWith(arg, "--threads=")) {
        batch.num_threads = std::stoi(arg.substr(10));
      } else if (StartsWith(arg, "--rounds=")) {
        workload.solver.rounds = std::stoi(arg.substr(9));
      } else if (StartsWith(arg, "--chase-steps=")) {
        workload.solver.base_chase.max_steps = std::stoull(arg.substr(14));
      } else if (StartsWith(arg, "--max-tuples=")) {
        workload.solver.base_counterexample.max_tuples =
            std::stoi(arg.substr(13));
      } else if (StartsWith(arg, "--deadline=")) {
        batch.deadline_seconds = std::stod(arg.substr(11));
      } else if (arg == "--naive-chase") {
        workload.solver.base_chase.use_delta = false;
      } else if (arg == "--serial-chase") {
        batch.chase_parallelism = false;
      } else if (arg == "--stop-on-refutation") {
        batch.stop_on_first_refutation = true;
      } else if (arg == "--serial") {
        serial = true;
      } else if (StartsWith(arg, "--csv=")) {
        csv_path = arg.substr(6);
      } else if (StartsWith(arg, "--")) {
        return Usage();
      } else {
        files.push_back(arg);
      }
    } catch (const std::exception&) {
      std::cerr << "tdbatch: bad value in '" << arg << "'\n";
      return Usage();
    }
  }
  if (workload.size < 1) {
    std::cerr << "tdbatch: --size must be >= 1\n";
    return Usage();
  }

  Result<std::vector<Job>> jobs =
      files.empty() ? MakeWorkload(family, workload)
                    : FileWorkload(files, workload);
  if (!jobs.ok()) {
    std::cerr << "tdbatch: " << jobs.error() << "\n";
    return 1;
  }

  BatchSummary summary;
  if (serial) {
    summary = RunSerial(jobs.value(), batch);
  } else {
    BatchSolver solver(batch);
    summary = solver.Run(jobs.value());
  }

  std::cout << summary.ToTable();

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::cerr << "tdbatch: cannot write " << csv_path << "\n";
      return 1;
    }
    summary.WriteCsv(out);
    std::cout << "wrote " << csv_path << "\n";
  }
  return 0;
}
