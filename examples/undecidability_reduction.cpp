// The paper's construction, live: from a semigroup presentation to the
// dependency set D and goal D0, then direction (A) executed — the word
// problem derivation replayed as chase steps with the bridge invariant
// verified at every stage.
//
//   $ ./build/examples/undecidability_reduction
#include <iostream>

#include "reduction/part_a.h"
#include "reduction/reduction.h"
#include "semigroup/normalizer.h"

using namespace tdlib;

int main() {
  // A presentation where A0 = 0 is derivable:
  //   A0 A0 = A0   (A0 is idempotent)
  //   A0 A0 = 0    (and its square vanishes)
  Presentation p;
  p.AddEquationFromText("A0 A0 = A0");
  p.AddEquationFromText("A0 A0 = 0");
  p.AddAbsorptionEquations();
  std::cout << "presentation phi:\n" << p.ToString() << "\n";

  NormalizationResult norm = NormalizeTo21(p);
  GurevichLewisReduction red =
      std::move(GurevichLewisReduction::Create(norm.normalized)).value();
  std::cout << "reduction: " << red.arity() << " attributes (2n+2), "
            << red.dependencies().items.size() << " dependencies (4 per "
            << "equation), max antecedents " << red.MaxAntecedents()
            << " (the paper's bound: 5)\n\n";
  std::cout << "goal D0: " << red.goal().ToString() << "\n\n";

  PartAConfig config;
  config.chase.max_steps = 50000;
  PartAResult result = RunPartA(p, config);
  std::cout << result.ToString() << "\n\n";

  std::cout << "derivation replayed through the chase (u_j : bridge "
               "verified : instance size):\n";
  for (const BridgeStage& stage : result.stages) {
    std::cout << "  " << norm.normalized.WordToString(stage.word) << " : "
              << (stage.embedded ? "embedded" : "MISSING") << " : "
              << stage.instance_tuples << " tuples\n";
  }
  std::cout << "\nblack-box chase agrees: " << result.black_box.ToString()
            << "\n";
  return result.consistent ? 0 : 1;
}
