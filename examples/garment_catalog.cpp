// The garment catalog scenario from the paper's prose, end to end:
// diagrams, satisfaction with named violations, and chase repair.
//
//   $ ./build/examples/garment_catalog
#include <iostream>

#include "chase/chase.h"
#include "chase/trace.h"
#include "core/diagram.h"
#include "core/parser.h"
#include "core/satisfaction.h"

using namespace tdlib;

int main() {
  SchemaPtr schema = MakeSchema({"SUPPLIER", "STYLE", "SIZE"});

  // Build Fig. 1 as a DIAGRAM — the notation the paper uses for all its
  // figures — then convert to a dependency.
  Diagram diagram(schema, /*num_antecedents=*/2);
  diagram.AddEdgeByName("SUPPLIER", 0, 1);
  diagram.AddEdgeByName("STYLE", 0, diagram.conclusion_node());
  diagram.AddEdgeByName("SIZE", 1, diagram.conclusion_node());
  Dependency fig1 = std::move(diagram.ToDependency()).value();
  std::cout << "Fig. 1 as a diagram (GraphViz):\n" << diagram.ToDot() << "\n";
  std::cout << "as a dependency: " << fig1.ToString() << "\n\n";

  // A catalog that violates it.
  Instance db(schema);
  auto add = [&](const std::string& s, const std::string& st,
                 const std::string& sz) {
    db.AddTuple({db.InternValue(0, s), db.InternValue(1, st),
                 db.InternValue(2, sz)});
  };
  add("StLaurent", "EveningDress", "10");
  add("StLaurent", "Brief", "36");
  add("BVD", "Brief", "36");
  std::cout << "catalog:\n" << db.ToString() << "\n";

  SatisfactionResult check = CheckSatisfaction(fig1, db);
  if (check.verdict == Satisfaction::kViolated) {
    std::cout << "VIOLATED: a supplier covers a style and a size with no "
                 "one offering that style in that size.\n\n";
  }

  // The chase repairs the catalog: every fire invents a placeholder
  // supplier (a labeled null) for a missing (style, size) combination.
  DependencySet deps;
  deps.Add(fig1, "fig1");
  ChaseConfig config;
  config.record_trace = true;
  ChaseResult result = RunChase(&db, deps, config);
  std::cout << "chase: " << result.ToString() << "\n";
  std::cout << FormatChaseTrace(result, deps, db);
  std::cout << "repaired catalog (placeholder suppliers are _n* values):\n"
            << db.ToString() << "\n";
  std::cout << "fig1 satisfied now: "
            << (Satisfies(db, fig1) ? "yes" : "NO") << "\n";
  return 0;
}
