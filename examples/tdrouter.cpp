// tdrouter: the sharded-service front end (src/cluster/router.h as a CLI).
//
// Spawns N tdworker processes, routes a generated workload across them by
// canonical-fingerprint consistent hashing, and prints a per-job table plus
// a one-line summary the CI smoke job greps. Robustness hooks make the
// failure modes drivable from a shell: kill a worker mid-run, arm socket
// faults via TDLIB_FAULT, bound queues and quotas, or run with zero
// workers to watch the in-process fallback take over.
//
//   $ ./build/examples/tdrouter --workers=2 --size=12
//   $ ./build/examples/tdrouter --workers=2 --kill-worker-after=3 --check-serial
//
// Flags:
//   --workers=N           worker process count (default 2; 0 = fallback only)
//   --worker-cmd=PATH     worker executable (default: $TDLIB_TDWORKER, else
//                         "tdworker" next to this binary)
//   --workload=NAME       reduction-sweep (default) or random
//   --size=N              jobs to generate (default 12)
//   --seed=N              random-workload seed (default 1)
//   --threads=N           chase parallelism inside each worker (default 1)
//   --probe-steps=N       park-and-migrate probe budget (default 0 = off)
//   --max-retries=N       crash retries per job before kSkipped (default 2)
//   --max-restarts=N      restarts per worker slot (default 3)
//   --queue-depth=N       admission bound on in-flight jobs (default 1024)
//   --tenant-quota=N      per-tenant in-flight bound (default 0 = off)
//   --tenants=N           spread jobs round-robin over N tenant ids (default 1)
//   --kill-worker-after=K SIGKILL worker slot 0 after the K-th completion
//                         (the crash-recovery smoke leg)
//   --check-serial        re-solve every completed job serially in-process
//                         and require byte-identical DeterministicSummary
//                         (exit 6 on any divergence)
//   --stream              print each result line as it completes
//   --metrics[=PATH]      enable metrics; dump the final snapshot as JSON
//
// Exit codes: 0 = success, 2 = usage error, 4 = malformed workload,
// 6 = serial-parity divergence, 1 = any other failure.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "engine/workload.h"
#include "util/fault.h"
#include "util/metrics.h"

namespace {

constexpr int kExitSuccess = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitMalformed = 4;
constexpr int kExitParity = 6;

bool ParseUint(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (*end != '\0') return false;
  *out = v;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tdrouter [--workers=N] [--worker-cmd=PATH] "
               "[--workload=NAME] [--size=N] [--seed=N] [--threads=N]\n"
               "                [--probe-steps=N] [--max-retries=N] "
               "[--max-restarts=N] [--queue-depth=N] [--tenant-quota=N]\n"
               "                [--tenants=N] [--kill-worker-after=K] "
               "[--check-serial] [--stream] [--metrics[=PATH]]\n");
  return kExitUsage;
}

/// Default worker command: $TDLIB_TDWORKER, else "tdworker" in argv[0]'s
/// directory (the build tree layout puts the two side by side).
std::string DefaultWorkerCommand(const char* argv0) {
  const char* env = std::getenv("TDLIB_TDWORKER");
  if (env != nullptr && env[0] != '\0') return env;
  std::string self = argv0;
  const std::size_t slash = self.find_last_of('/');
  return slash == std::string::npos ? "tdworker"
                                    : self.substr(0, slash + 1) + "tdworker";
}

}  // namespace

int main(int argc, char** argv) {
  tdlib::ClusterOptions options;
  options.worker_command = DefaultWorkerCommand(argv[0]);
  std::string workload = "reduction-sweep";
  tdlib::WorkloadOptions workload_options;
  int tenants = 1;
  std::uint64_t kill_after = 0;
  bool check_serial = false;
  bool stream = false;
  bool metrics = false;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    std::uint64_t n = 0;
    if (key == "--workers" && ParseUint(val, &n)) {
      options.num_workers = static_cast<int>(n);
    } else if (key == "--worker-cmd" && !val.empty()) {
      options.worker_command = val;
    } else if (key == "--workload" && !val.empty()) {
      workload = val;
    } else if (key == "--size" && ParseUint(val, &n)) {
      workload_options.size = static_cast<int>(n);
    } else if (key == "--seed" && ParseUint(val, &n)) {
      workload_options.seed = n;
    } else if (key == "--threads" && ParseUint(val, &n)) {
      options.worker_threads = static_cast<int>(n);
    } else if (key == "--probe-steps" && ParseUint(val, &n)) {
      options.migration_probe_steps = n;
    } else if (key == "--max-retries" && ParseUint(val, &n)) {
      options.max_retries = static_cast<int>(n);
    } else if (key == "--max-restarts" && ParseUint(val, &n)) {
      options.max_restarts = static_cast<int>(n);
    } else if (key == "--queue-depth" && ParseUint(val, &n)) {
      options.max_queue_depth = static_cast<std::size_t>(n);
    } else if (key == "--tenant-quota" && ParseUint(val, &n)) {
      options.tenant_quota = static_cast<std::size_t>(n);
    } else if (key == "--tenants" && ParseUint(val, &n) && n > 0) {
      tenants = static_cast<int>(n);
    } else if (key == "--kill-worker-after" && ParseUint(val, &n)) {
      kill_after = n;
    } else if (arg == "--check-serial") {
      check_serial = true;
    } else if (arg == "--stream") {
      stream = true;
    } else if (key == "--metrics") {
      metrics = true;
      metrics_path = val;
    } else {
      std::fprintf(stderr, "tdrouter: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (metrics) tdlib::SetMetricsEnabled(true);
  tdlib::ArmFaultsFromEnv();

  tdlib::Result<std::vector<tdlib::Job>> jobs =
      tdlib::MakeWorkload(workload, workload_options);
  if (!jobs.ok()) {
    std::fprintf(stderr, "tdrouter: %s\n", jobs.error().c_str());
    return kExitMalformed;
  }

  std::atomic<std::int64_t> completions{0};
  std::mutex print_mu;

  std::vector<tdlib::ClusterResult> results(jobs.value().size());
  {
    tdlib::ClusterRouter router(options);
    std::vector<tdlib::ClusterHandle> handles;
    handles.reserve(jobs.value().size());
    for (std::size_t i = 0; i < jobs.value().size(); ++i) {
      tdlib::ClusterSubmitOptions submit;
      submit.tenant = "tenant-" + std::to_string(i % tenants);
      submit.on_complete = [&, i](const tdlib::ClusterResult& r) {
        completions.fetch_add(1, std::memory_order_relaxed);
        if (stream) {
          std::lock_guard<std::mutex> lock(print_mu);
          std::printf("%-20s %-10s %-18s attempts=%d%s%s\n",
                      r.result.name.c_str(),
                      std::string(tdlib::ClusterOutcomeName(r.outcome)).c_str(),
                      std::string(r.result.VerdictName()).c_str(), r.attempts,
                      r.migrated ? " migrated" : "",
                      r.result.cache_source == tdlib::CacheSource::kHit
                          ? " hit"
                          : "");
        }
      };
      handles.push_back(router.Submit(jobs.value()[i], std::move(submit)));
    }
    if (kill_after > 0) {
      while (completions.load(std::memory_order_relaxed) <
             static_cast<std::int64_t>(kill_after)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      router.KillWorker(0);
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
      results[i] = handles[i].Wait();
    }
    router.WaitIdle();

    const tdlib::ClusterStats stats = router.Stats();
    std::printf(
        "tdrouter: submitted=%lld completed=%lld shed=%lld "
        "retries=%lld retries_exhausted=%lld migrated=%lld fallback=%lld "
        "cache_hits=%lld crashes=%lld restarts=%lld heartbeat_timeouts=%lld\n",
        static_cast<long long>(stats.submitted),
        static_cast<long long>(stats.completed),
        static_cast<long long>(stats.shed_queue + stats.shed_quota),
        static_cast<long long>(stats.retries),
        static_cast<long long>(stats.retries_exhausted),
        static_cast<long long>(stats.migrated),
        static_cast<long long>(stats.fallback),
        static_cast<long long>(stats.cache_hits),
        static_cast<long long>(stats.worker_crashes),
        static_cast<long long>(stats.worker_restarts),
        static_cast<long long>(stats.heartbeat_timeouts));
  }

  int exit_code = kExitSuccess;
  if (check_serial) {
    int checked = 0, divergent = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const tdlib::ClusterResult& r = results[i];
      if (r.outcome != tdlib::ClusterOutcome::kCompleted &&
          r.outcome != tdlib::ClusterOutcome::kFallback) {
        continue;  // shed / retries-exhausted jobs never ran anywhere
      }
      tdlib::JobResult serial =
          tdlib::RunJob(jobs.value()[i], jobs.value()[i].config);
      ++checked;
      if (serial.DeterministicSummary() != r.result.DeterministicSummary()) {
        ++divergent;
        std::fprintf(stderr,
                     "tdrouter: PARITY DIVERGENCE on %s\n  cluster: %s\n"
                     "  serial:  %s\n",
                     r.result.name.c_str(),
                     r.result.DeterministicSummary().c_str(),
                     serial.DeterministicSummary().c_str());
      }
    }
    std::printf("tdrouter: parity=%s checked=%d divergent=%d\n",
                divergent == 0 ? "ok" : "FAIL", checked, divergent);
    if (divergent > 0) exit_code = kExitParity;
  }

  if (metrics) {
    const std::string json =
        tdlib::MetricsRegistry::Global().Snapshot().ToJson();
    if (metrics_path.empty()) {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream out(metrics_path);
      out << json << '\n';
      if (!out) {
        std::fprintf(stderr, "tdrouter: cannot write %s\n",
                     metrics_path.c_str());
        return kExitFailure;
      }
    }
  }
  return exit_code;
}
