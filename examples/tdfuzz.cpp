// tdfuzz: the differential fuzzing front end (src/fuzz/).
//
// Generates endless deterministic rounds of implication questions, solves
// each under every engine axis (naive/delta, thread count, tuple layout,
// intersection, SIMD, auto-burst, checkpoint/resume, serial/service) and
// cross-checks the results under each axis's invariance class. On a
// divergence it delta-debugs the case down to a minimal job and writes a
// replayable repro program.
//
//   $ ./build/examples/tdfuzz --seed=42 --rounds=3
//   $ ./build/examples/tdfuzz --seconds=60 --repro-dir=/tmp/repros
//   $ ./build/examples/tdfuzz --replay=repro-gadget-r0-c2.td
//
// Flags:
//   --seed=N        stream seed (default 1); same seed = same stream,
//                   bit for bit
//   --rounds=N      rounds to run (default 1; 0 = endless, stop with
//                   --seconds or a signal)
//   --seconds=S     wall budget; finishes the current round, then stops
//   --cases=N       cases per round (default 6, cycling the three families)
//   --threads=N     worker count for the thread-count axis (default 4)
//   --steps=N       base chase step budget per solve (default 300)
//   --no-resume     skip the checkpoint/resume axis
//   --no-service    skip the serial-vs-service axis
//   --replay=FILE   re-check one repro program instead of fuzzing
//   --repro-dir=DIR write minimized repro files there (default ".")
//   --metrics       print the fuzz.* / engine.* / fault.* counters as JSON
//                   when done
//   --inject-flip   harness self-test: arm the deliberate fire-order bug
//                   (util/fault.h kFireOrderFlip) in every variant run; a
//                   working harness MUST exit 1 with a repro
//
// Exit codes: 0 = clean, 1 = divergence found (repro written), 2 = usage,
// 3 = unreadable replay file, 4 = malformed replay file.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzz.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/timer.h"

using namespace tdlib;

namespace {

int Usage() {
  std::cerr << "usage: tdfuzz [--seed=N] [--rounds=N] [--seconds=S]\n"
               "              [--cases=N] [--threads=N] [--steps=N]\n"
               "              [--no-resume] [--no-service]\n"
               "              [--replay=FILE] [--repro-dir=DIR] [--metrics]\n"
               "              [--inject-flip]\n";
  return 2;
}

// Repro filenames keep only the [-A-Za-z0-9_.] subset of the case name
// ("gadget/r3/c5" -> "gadget-r3-c5").
std::string ReproFileName(const std::string& case_name) {
  std::string safe;
  for (char c : case_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    safe.push_back(ok ? c : '-');
  }
  return "repro-" + safe + ".td";
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  std::uint64_t rounds = 1;
  double wall_budget_seconds = 0;
  std::string replay_path;
  std::string repro_dir = ".";
  bool metrics = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    try {
      if (StartsWith(arg, "--seed=")) {
        options.seed = std::stoull(arg.substr(7));
      } else if (StartsWith(arg, "--rounds=")) {
        rounds = std::stoull(arg.substr(9));
      } else if (StartsWith(arg, "--seconds=")) {
        wall_budget_seconds = std::stod(arg.substr(10));
      } else if (StartsWith(arg, "--cases=")) {
        options.cases_per_round = std::stoi(arg.substr(8));
      } else if (StartsWith(arg, "--threads=")) {
        options.threads = std::stoi(arg.substr(10));
      } else if (StartsWith(arg, "--steps=")) {
        options.base_steps = std::stoull(arg.substr(8));
      } else if (arg == "--no-resume") {
        options.check_resume = false;
      } else if (arg == "--no-service") {
        options.check_service = false;
      } else if (StartsWith(arg, "--replay=")) {
        replay_path = arg.substr(9);
      } else if (StartsWith(arg, "--repro-dir=")) {
        repro_dir = arg.substr(12);
      } else if (arg == "--metrics") {
        metrics = true;
      } else if (arg == "--inject-flip") {
        options.inject_fire_order_flip = true;
      } else {
        return Usage();
      }
    } catch (const std::exception&) {
      std::cerr << "tdfuzz: bad value in '" << arg << "'\n";
      return Usage();
    }
  }
  if (options.cases_per_round < 1 || options.base_steps < 1) {
    std::cerr << "tdfuzz: --cases and --steps must be >= 1\n";
    return Usage();
  }

  if (metrics) SetMetricsEnabled(true);
  // Deliberately no ArmFaultsFromEnv() here: an environment-armed fault
  // would make variant runs diverge from the reference and every report
  // would be noise. tdbatch is the TDLIB_FAULT entry point.

  int divergences_found = 0;

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::cerr << "tdfuzz: cannot read " << replay_path << "\n";
      return 3;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Result<Job> job = ParseReproProgram(text.str());
    if (!job.ok()) {
      std::cerr << "tdfuzz: " << replay_path << ": " << job.error() << "\n";
      return 4;
    }
    std::vector<FuzzDivergence> divergences =
        CheckJobAcrossAxes(job.value(), options);
    if (divergences.empty()) {
      std::cout << "replay " << replay_path << ": all axes agree\n";
    } else {
      for (const FuzzDivergence& d : divergences) {
        std::cout << "replay " << replay_path << ": axis=" << d.axis << " "
                  << d.detail << "\n";
      }
      divergences_found = static_cast<int>(divergences.size());
    }
  } else {
    Timer wall;
    for (std::uint64_t round = 0; rounds == 0 || round < rounds; ++round) {
      if (wall_budget_seconds > 0 &&
          wall.ElapsedSeconds() >= wall_budget_seconds) {
        std::cout << "wall budget reached after " << round << " round(s)\n";
        break;
      }
      FuzzRoundReport report = RunFuzzRound(options, round);
      std::cout << "round " << report.round << ": " << report.cases
                << " cases, " << report.solver_runs << " solver runs, "
                << report.divergences.size() << " divergence(s)\n";
      for (const FuzzDivergence& d : report.divergences) {
        ++divergences_found;
        std::cout << "  DIVERGENCE case=" << d.case_name
                  << " axis=" << d.axis << " " << d.detail << "\n";
        // Re-derive the diverging job from the deterministic stream, shrink
        // it, and write the repro.
        std::vector<Job> cases = GenerateFuzzCases(options, report.round);
        for (const Job& job : cases) {
          if (job.name != d.case_name) continue;
          Job minimal = MinimizeDivergence(job, options);
          const std::string path =
              repro_dir + "/" + ReproFileName(d.case_name);
          std::ofstream out(path);
          if (!out) {
            std::cerr << "tdfuzz: cannot write " << path << "\n";
          } else {
            out << FormatReproProgram(minimal, options, d.axis);
            std::cout << "  wrote " << path << "\n";
          }
          break;
        }
      }
      if (!report.divergences.empty()) break;  // repros written; stop here
    }
  }

  if (metrics) {
    std::cout << MetricsRegistry::Global().Snapshot().ToJson() << "\n";
  }
  return divergences_found > 0 ? 1 : 0;
}
