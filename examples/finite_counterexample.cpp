// Direction (B), live: find a finite cancellation semigroup refuting
// A0 = 0, build the paper's P ∪ Q database from it, and model-check that it
// satisfies every dependency in D while violating D0.
//
//   $ ./build/examples/finite_counterexample
#include <iostream>

#include "reduction/part_b.h"

using namespace tdlib;

int main() {
  // Absorption equations only: nothing forces A0 to vanish.
  Presentation p;
  p.AddAbsorptionEquations();
  std::cout << "presentation phi (absorption only):\n" << p.ToString() << "\n";

  PartBResult result = RunPartB(p);
  if (result.model_search.status != ModelSearchStatus::kFound) {
    std::cout << "no refuting semigroup found: " << result.message << "\n";
    return 1;
  }
  const SemigroupWitness& w = *result.model_search.witness;
  std::cout << "refuting semigroup (identity-free, cancellation property, "
            << w.table.size() << " elements):\n"
            << w.table.ToString() << "\n";
  std::cout << "assignment:";
  for (int s = 0; s < result.normalization.normalized.num_symbols(); ++s) {
    std::cout << " " << result.normalization.normalized.SymbolName(s) << "->"
              << w.assignment[s];
  }
  std::cout << "\n\n";

  const PartBDatabase& db = *result.db;
  std::cout << "constructed database: |P| = " << db.p_size
            << ", |Q| = " << db.q_size << "\n";
  for (std::size_t i = 0; i < db.element_names.size(); ++i) {
    std::cout << "  tuple " << i << " = " << db.element_names[i] << "\n";
  }
  std::cout << "\n" << db.database.ToString() << "\n";
  std::cout << "verification: " << result.message << "\n";
  std::cout << "(the paper's NOT-D0 witness: t1 = "
            << db.element_names[db.tuple_of_identity] << ", t2 = "
            << db.element_names[db.tuple_of_a0] << ", t3 = "
            << db.element_names[db.tuple_of_identity_a0_triple] << ")\n";
  return result.verified ? 0 : 1;
}
