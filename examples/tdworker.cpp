// tdworker: one solver worker process of the sharded service.
//
// Spawned by the router (examples/tdrouter or ClusterRouter embedded in a
// test) with an inherited socketpair end; never run by hand. Speaks the
// length-prefixed framed protocol of src/cluster/wire.h and is crash-only:
// a corrupt frame makes it exit(2) and the supervisor restart it.
//
// Flags:
//   --fd=N           inherited socket file descriptor (required)
//   --threads=N      chase matching parallelism (default 1)
//   --cache-bytes=N  worker-side result cache budget (default 16 MiB)
//   --hang-after=N   test hook: stop answering heartbeats after N jobs
//                    (simulates a wedged worker; default never)
//
// The TDLIB_FAULT environment variable arms the util/fault.h sites in this
// process (e.g. TDLIB_FAULT="cluster.socket-read:3"), which is how the CI
// socket-fault leg makes a worker die mid-frame.
//
// Exit codes: 0 = clean shutdown, 2 = corrupt stream (crash-only exit),
// 64 = usage error.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/worker.h"
#include "util/fault.h"

namespace {

bool ParseUint(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int fd = -1;
  tdlib::WorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t value = 0;
    if (arg.rfind("--fd=", 0) == 0 && ParseUint(arg.c_str() + 5, &value)) {
      fd = static_cast<int>(value);
    } else if (arg.rfind("--threads=", 0) == 0 &&
               ParseUint(arg.c_str() + 10, &value)) {
      options.threads = static_cast<int>(value);
    } else if (arg.rfind("--cache-bytes=", 0) == 0 &&
               ParseUint(arg.c_str() + 14, &value)) {
      options.cache_bytes = static_cast<std::size_t>(value);
    } else if (arg.rfind("--hang-after=", 0) == 0 &&
               ParseUint(arg.c_str() + 13, &value)) {
      options.hang_after_jobs = static_cast<int>(value);
    } else {
      std::fprintf(stderr, "tdworker: unknown flag '%s'\n", arg.c_str());
      return 64;
    }
  }
  if (fd < 0) {
    std::fprintf(stderr, "tdworker: --fd=N is required (spawned by tdrouter)\n");
    return 64;
  }
  tdlib::ArmFaultsFromEnv();
  return tdlib::RunWorkerLoop(fd, options);
}
