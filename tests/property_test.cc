// Property-style and parameterized suites: invariants that must hold across
// randomly generated or systematically swept inputs.
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/counterexample.h"
#include "chase/implication.h"
#include "core/diagram.h"
#include "core/parser.h"
#include "core/satisfaction.h"
#include "logic/homomorphism.h"
#include "reduction/bridge.h"
#include "reduction/part_a.h"
#include "semigroup/normalizer.h"
#include "semigroup/quotient.h"
#include "semigroup/rewrite.h"
#include "util/rng.h"

namespace tdlib {
namespace {

// ---- Random generators ------------------------------------------------------

// A random TD over `arity` attributes with `rows` antecedents. Variables per
// attribute are drawn from a small pool so agreements are common.
Dependency RandomTd(Rng* rng, int arity, int rows) {
  SchemaPtr schema = MakeSchema([&] {
    std::vector<std::string> names;
    for (int i = 0; i < arity; ++i) names.push_back("X" + std::to_string(i));
    return names;
  }());
  Dependency::Builder builder(schema);
  std::vector<std::vector<int>> pool(arity);
  auto var = [&](int attr) {
    // 50%: reuse an existing variable; otherwise mint a new one.
    if (!pool[attr].empty() && rng->Chance(1, 2)) {
      return pool[attr][rng->Below(pool[attr].size())];
    }
    int v = builder.Var(attr);
    pool[attr].push_back(v);
    return v;
  };
  for (int r = 0; r < rows; ++r) {
    Row row(arity);
    for (int attr = 0; attr < arity; ++attr) row[attr] = var(attr);
    builder.AddBodyRow(std::move(row));
  }
  Row head(arity);
  for (int attr = 0; attr < arity; ++attr) head[attr] = var(attr);
  builder.AddHeadRow(std::move(head));
  return std::move(builder).Build().value();
}

// A random instance over the TD's schema.
Instance RandomInstance(Rng* rng, const SchemaPtr& schema, int domain,
                        int tuples) {
  Instance inst(schema);
  for (int attr = 0; attr < schema->arity(); ++attr) {
    for (int v = 0; v < domain; ++v) inst.AddValue(attr);
  }
  for (int t = 0; t < tuples; ++t) {
    Tuple tuple(schema->arity());
    for (int attr = 0; attr < schema->arity(); ++attr) {
      tuple[attr] = static_cast<int>(rng->Below(domain));
    }
    inst.AddTuple(tuple);
  }
  return inst;
}

// ---- Diagram round-trip property -------------------------------------------

class DiagramRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DiagramRoundTrip, PreservesSatisfactionOnRandomInstances) {
  Rng rng(GetParam());
  Dependency td = RandomTd(&rng, 3, 1 + GetParam() % 4);
  Result<Diagram> diagram = Diagram::FromDependency(td);
  ASSERT_TRUE(diagram.ok());
  Result<Dependency> back = diagram.value().ToDependency();
  ASSERT_TRUE(back.ok());
  // The round-tripped TD must agree with the original on random databases.
  for (int i = 0; i < 8; ++i) {
    Instance inst = RandomInstance(&rng, td.schema_ptr(), 3, 5);
    EXPECT_EQ(Satisfies(inst, td), Satisfies(inst, back.value()))
        << "seed=" << GetParam() << " probe=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagramRoundTrip, ::testing::Range(1, 17));

// ---- Parser round-trip property --------------------------------------------

class ParserRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ParserRoundTrip, FormatThenParseIsIdentity) {
  Rng rng(GetParam() * 7919);
  Dependency td = RandomTd(&rng, 2 + GetParam() % 3, 1 + GetParam() % 3);
  std::string text = FormatDependency(td);
  Result<Dependency> parsed = ParseDependency(td.schema_ptr(), text);
  ASSERT_TRUE(parsed.ok()) << parsed.error() << "\n" << text;
  EXPECT_EQ(FormatDependency(parsed.value()), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTrip, ::testing::Range(1, 17));

// ---- Chase soundness properties --------------------------------------------

class ChaseSoundness : public ::testing::TestWithParam<int> {};

TEST_P(ChaseSoundness, FixpointModelsEveryDependency) {
  Rng rng(GetParam() * 104729);
  SchemaPtr schema = MakeSchema({"X0", "X1"});
  DependencySet deps;
  for (int i = 0; i < 3; ++i) {
    Dependency d = RandomTd(&rng, 2, 2);
    // Reuse the generated structure but over the shared schema: regenerate
    // directly on `schema` by parsing its own rendering.
    Result<Dependency> re = ParseDependency(schema, FormatDependency(d));
    ASSERT_TRUE(re.ok());
    deps.Add(std::move(re).value());
  }
  Instance inst = RandomInstance(&rng, schema, 3, 4);
  ChaseConfig config;
  config.max_steps = 2000;
  config.max_tuples = 4000;
  ChaseResult result = RunChase(&inst, deps, config);
  if (result.status == ChaseStatus::kFixpoint) {
    for (const Dependency& d : deps.items) {
      EXPECT_TRUE(Satisfies(inst, d)) << FormatDependency(d);
    }
  }
  EXPECT_EQ(inst.CheckInvariants(), "");
}

TEST_P(ChaseSoundness, ImpliedVerdictsAreSound) {
  // When ChaseImplies says kImplied, every random model of D we can find
  // must satisfy D0; when it says kNotImplied, the produced counterexample
  // must really be one.
  Rng rng(GetParam() * 15485863);
  SchemaPtr schema = MakeSchema({"X0", "X1"});
  DependencySet deps;
  Result<Dependency> cross =
      ParseDependency(schema, "R(a,b) & R(a2,b2) => R(a,b2)");
  deps.Add(std::move(cross).value());
  Dependency d0_raw = RandomTd(&rng, 2, 2);
  Result<Dependency> d0 = ParseDependency(schema, FormatDependency(d0_raw));
  ASSERT_TRUE(d0.ok());
  ChaseConfig config;
  config.max_steps = 2000;
  ImplicationResult r = ChaseImplies(deps, d0.value(), config);
  if (r.verdict == Implication::kNotImplied) {
    ASSERT_TRUE(r.counterexample.has_value());
    EXPECT_EQ(CheckSatisfaction(d0.value(), *r.counterexample).verdict,
              Satisfaction::kViolated);
    for (const Dependency& d : deps.items) {
      EXPECT_TRUE(Satisfies(*r.counterexample, d));
    }
  } else if (r.verdict == Implication::kImplied) {
    // Cross-validate against the finite enumerator: no small model of D can
    // violate d0.
    CounterexampleConfig cc;
    cc.max_tuples = 3;
    CounterexampleResult cex = FindFiniteCounterexample(deps, d0.value(), cc);
    EXPECT_NE(cex.status, CounterexampleStatus::kFound);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseSoundness, ::testing::Range(1, 21));

// ---- Bridge properties across word lengths ---------------------------------

class BridgeSweep : public ::testing::TestWithParam<int> {};

TEST_P(BridgeSweep, TableauEmbedsInOwnInstance) {
  const int k = GetParam();
  Presentation p;
  p.AddSymbol("A");
  p.AddSymbol("B");
  p.AddAbsorptionEquations();
  Result<ReductionSchema> rs = ReductionSchema::Create(p);
  ASSERT_TRUE(rs.ok());
  Rng rng(k);
  Word w;
  for (int i = 0; i < k; ++i) {
    w.push_back(static_cast<int>(rng.Below(p.num_symbols())));
  }
  BridgeTableau tableau = BuildBridgeTableau(rs.value(), w);
  BridgeInstance instance = BuildBridgeInstance(rs.value(), w);
  EXPECT_EQ(ExistsHomomorphism(tableau.tableau, instance.instance),
            HomSearchStatus::kFound);
  EXPECT_EQ(tableau.tableau.CheckInvariants(), "");
  EXPECT_EQ(instance.instance.CheckInvariants(), "");
  // Structure: 2k+1 rows/tuples, one E-class, one E'-class.
  EXPECT_EQ(tableau.tableau.num_rows(), 2 * k + 1);
}

INSTANTIATE_TEST_SUITE_P(WordLengths, BridgeSweep, ::testing::Range(1, 13));

// ---- Part (A) consistency across derivable presentations -------------------

class PartASweep : public ::testing::TestWithParam<int> {};

TEST_P(PartASweep, DerivableChainOfLengthK) {
  // Presentation: B_i B_i = B_{i+1} chain, B_k B_k = 0, A0 A0 = B_0 and
  // A0 A0 = A0 (pump). A0 -> A0 A0 -> B0 -> ... derivable for every k.
  const int k = GetParam();
  Presentation p;
  p.AddEquationFromText("A0 A0 = A0");
  p.AddEquationFromText("A0 A0 = B0");
  for (int i = 0; i <= k; ++i) {
    std::string eq = "B";
    eq += std::to_string(i);
    eq += " B";
    eq += std::to_string(i);
    eq += " = ";
    if (i < k) {
      eq += "B";
      eq += std::to_string(i + 1);
    } else {
      eq += "0";
    }
    p.AddEquationFromText(eq);
  }
  p.AddAbsorptionEquations();
  PartAConfig config;
  config.word_problem.max_word_length = k + 4;
  config.word_problem.max_states = 300000;
  config.chase.max_steps = 60000;
  config.chase.max_tuples = 60000;
  config.run_black_box_chase = (k <= 1);  // black-box chase cost grows fast
  PartAResult result = RunPartA(p, config);
  ASSERT_EQ(result.word_problem.status, WordProblemStatus::kEqual);
  EXPECT_TRUE(result.replay_reached_goal);
  EXPECT_TRUE(result.consistent) << result.ToString();
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, PartASweep, ::testing::Range(0, 4));

// ---- Normalizer properties --------------------------------------------------

class NormalizerSweep : public ::testing::TestWithParam<int> {};

TEST_P(NormalizerSweep, RandomEquationsNormalizeAndPreserveDerivability) {
  Rng rng(GetParam() * 2654435761u);
  Presentation p;
  const int extra = 2;
  for (int s = 0; s < extra; ++s) p.AddSymbol("S" + std::to_string(s));
  // Random equations over words of length 1..4.
  for (int e = 0; e < 3; ++e) {
    auto word = [&] {
      Word w;
      int len = 1 + static_cast<int>(rng.Below(4));
      for (int i = 0; i < len; ++i) {
        w.push_back(static_cast<int>(rng.Below(p.num_symbols())));
      }
      return w;
    };
    p.AddEquation(word(), word());
  }
  p.AddAbsorptionEquations();
  NormalizationResult norm = NormalizeTo21(p);
  EXPECT_TRUE(norm.normalized.IsNormalized());
  EXPECT_TRUE(norm.normalized.HasAbsorptionEquations());
  EXPECT_EQ(norm.normalized.CheckInvariants(), "");

  // Derivability of A0 = 0 must be preserved in the "provable" direction:
  // if the original proves it within small bounds, the normalized one must
  // prove it too (possibly via longer derivations; give it room).
  WordProblemConfig small;
  small.max_word_length = 6;
  small.max_states = 20000;
  WordProblemResult original = ProveA0IsZero(p, small);
  if (original.status == WordProblemStatus::kEqual) {
    WordProblemConfig big;
    big.max_word_length = 9;
    big.max_states = 400000;
    WordProblemResult normalized = ProveA0IsZero(norm.normalized, big);
    EXPECT_EQ(normalized.status, WordProblemStatus::kEqual)
        << "seed " << GetParam() << "\n"
        << p.ToString() << "---\n"
        << norm.normalized.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizerSweep, ::testing::Range(1, 26));

// ---- Counterexample enumerator agrees with satisfaction --------------------

class EnumeratorSweep : public ::testing::TestWithParam<int> {};

TEST_P(EnumeratorSweep, EveryReportedWitnessChecksOut) {
  Rng rng(GetParam() * 97);
  SchemaPtr schema = MakeSchema({"X0", "X1"});
  Dependency d0_raw = RandomTd(&rng, 2, 2);
  Result<Dependency> d0 = ParseDependency(schema, FormatDependency(d0_raw));
  ASSERT_TRUE(d0.ok());
  DependencySet empty;
  CounterexampleConfig config;
  config.max_tuples = 2;
  CounterexampleResult r = FindFiniteCounterexample(empty, d0.value(), config);
  if (r.status == CounterexampleStatus::kFound) {
    EXPECT_EQ(CheckSatisfaction(d0.value(), *r.witness).verdict,
              Satisfaction::kViolated);
  } else {
    // No witness with <= 2 tuples: d0 must hold on every 1- and 2-tuple
    // database; spot-check random ones.
    for (int i = 0; i < 10; ++i) {
      Instance inst = RandomInstance(&rng, schema, 2, 2);
      EXPECT_TRUE(Satisfies(inst, d0.value()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumeratorSweep, ::testing::Range(1, 21));

}  // namespace
}  // namespace tdlib
