// Unit tests for schemas, instances and tableaux.
#include <gtest/gtest.h>

#include "logic/instance.h"
#include "logic/schema.h"
#include "logic/tableau.h"

namespace tdlib {
namespace {

TEST(Schema, ValidateCatchesProblems) {
  EXPECT_NE(Schema(std::vector<std::string>{}).Validate(), "");
  EXPECT_NE(Schema({"A", ""}).Validate(), "");
  EXPECT_NE(Schema({"A", "A"}).Validate(), "");
  EXPECT_EQ(Schema({"A", "B"}).Validate(), "");
}

TEST(Schema, IndexOfAndNumbered) {
  Schema s = Schema::Numbered(3, "X");
  EXPECT_EQ(s.arity(), 3);
  EXPECT_EQ(s.name(1), "X1");
  EXPECT_EQ(s.IndexOf("X2"), 2);
  EXPECT_EQ(s.IndexOf("nope"), -1);
  EXPECT_TRUE(s == Schema({"X0", "X1", "X2"}));
}

class InstanceTest : public ::testing::Test {
 protected:
  InstanceTest() : schema_(MakeSchema({"A", "B"})), inst_(schema_) {}
  SchemaPtr schema_;
  Instance inst_;
};

TEST_F(InstanceTest, DomainsAreIndependentPerAttribute) {
  int a0 = inst_.AddValue(0, "x");
  int b0 = inst_.AddValue(1, "y");
  EXPECT_EQ(a0, 0);
  EXPECT_EQ(b0, 0);  // same id, different attribute: typing is structural
  EXPECT_EQ(inst_.DomainSize(0), 1);
  EXPECT_EQ(inst_.DomainSize(1), 1);
  EXPECT_EQ(inst_.ValueName(0, 0), "x");
  EXPECT_EQ(inst_.ValueName(1, 0), "y");
}

TEST_F(InstanceTest, InternValueIsIdempotent) {
  int v1 = inst_.InternValue(0, "v");
  int v2 = inst_.InternValue(0, "v");
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(inst_.DomainSize(0), 1);
}

TEST_F(InstanceTest, TuplesDeduplicate) {
  inst_.AddValue(0);
  inst_.AddValue(1);
  EXPECT_TRUE(inst_.AddTuple({0, 0}));
  EXPECT_FALSE(inst_.AddTuple({0, 0}));
  EXPECT_EQ(inst_.NumTuples(), 1u);
  EXPECT_TRUE(inst_.Contains({0, 0}));
}

TEST_F(InstanceTest, IndexTracksTuples) {
  inst_.AddValue(0);
  inst_.AddValue(0);
  inst_.AddValue(1);
  inst_.AddTuple({0, 0});
  inst_.AddTuple({1, 0});
  EXPECT_EQ(inst_.TuplesWith(0, 0).ToVector(), (std::vector<int>{0}));
  EXPECT_EQ(inst_.TuplesWith(0, 1).ToVector(), (std::vector<int>{1}));
  EXPECT_EQ(inst_.TuplesWith(1, 0).ToVector(), (std::vector<int>{0, 1}));
  EXPECT_EQ(inst_.CheckInvariants(), "");
}

TEST_F(InstanceTest, FindTuple) {
  inst_.AddValue(0);
  inst_.AddValue(0);
  inst_.AddValue(1);
  inst_.AddTuple({0, 0});
  inst_.AddTuple({1, 0});
  EXPECT_EQ(inst_.FindTuple({0, 0}), 0);
  EXPECT_EQ(inst_.FindTuple({1, 0}), 1);
  EXPECT_EQ(inst_.FindTuple({0, 1}), -1);
}

TEST_F(InstanceTest, LabeledNullsAreCounted) {
  inst_.AddValue(0, "", true);
  inst_.AddValue(0, "c");
  inst_.AddValue(1, "", true);
  EXPECT_EQ(inst_.NullCount(), 2);
  EXPECT_TRUE(inst_.IsLabeledNull(0, 0));
  EXPECT_FALSE(inst_.IsLabeledNull(0, 1));
}

TEST_F(InstanceTest, ToStringShowsValueNames) {
  inst_.InternValue(0, "acme");
  inst_.InternValue(1, "brief");
  inst_.AddTuple({0, 0});
  std::string s = inst_.ToString();
  EXPECT_NE(s.find("acme"), std::string::npos);
  EXPECT_NE(s.find("brief"), std::string::npos);
}

TEST(Tableau, FreezeMakesOneConstantPerVariable) {
  SchemaPtr schema = MakeSchema({"A", "B"});
  Tableau t(schema);
  int a0 = t.NewVariable(0);
  int a1 = t.NewVariable(0);
  int b0 = t.NewVariable(1);
  t.AddRow({a0, b0});
  t.AddRow({a1, b0});
  Instance frozen = t.Freeze();
  EXPECT_EQ(frozen.DomainSize(0), 2);
  EXPECT_EQ(frozen.DomainSize(1), 1);
  EXPECT_EQ(frozen.NumTuples(), 2u);
  EXPECT_TRUE(frozen.Contains({0, 0}));
  EXPECT_TRUE(frozen.Contains({1, 0}));
}

TEST(Tableau, InvariantsCatchBadRows) {
  SchemaPtr schema = MakeSchema({"A", "B"});
  Tableau t(schema);
  t.NewVariable(0);
  t.NewVariable(1);
  t.AddRow({0, 5});  // variable 5 does not exist for B
  EXPECT_NE(t.CheckInvariants(), "");
}

TEST(Tableau, DuplicateVariableNamesRejected) {
  SchemaPtr schema = MakeSchema({"A"});
  Tableau t(schema);
  t.NewVariable(0, "x");
  t.NewVariable(0, "x");
  EXPECT_NE(t.CheckInvariants(), "");
}

TEST(Tableau, DefaultNamesAreLowercasedAttribute) {
  SchemaPtr schema = MakeSchema({"SUPPLIER"});
  Tableau t(schema);
  t.NewVariable(0);
  EXPECT_EQ(t.VarName(0, 0), "supplier0");
}

TEST(Tableau, TotalVarsSumsAttributes) {
  SchemaPtr schema = MakeSchema({"A", "B", "C"});
  Tableau t(schema);
  t.NewVariable(0);
  t.NewVariable(0);
  t.NewVariable(2);
  EXPECT_EQ(t.TotalVars(), 3);
  t.EnsureVariables(1, 2);
  EXPECT_EQ(t.TotalVars(), 5);
}

}  // namespace
}  // namespace tdlib
