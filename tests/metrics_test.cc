// Observability-layer tests (util/metrics.h, util/trace_span.h) and the
// non-perturbation contract they exist to keep: enabling metrics and
// tracing must leave every solver output byte-identical — instances,
// traces, deterministic counters and summaries — at every thread count,
// across checkpoints and resumes. The primitives themselves are tested for
// exactness (sharded counters sum precisely, histogram merges are
// associative to the bit, exports are golden-stable) because the bench
// recap and the cross-PR BENCH_*.json trajectory treat them as ground
// truth.
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chase/chase.h"
#include "core/generators.h"
#include "core/parser.h"
#include "engine/batch_solver.h"
#include "engine/service.h"
#include "engine/workload.h"
#include "reduction/reduction.h"
#include "semigroup/normalizer.h"
#include "semigroup/presentation.h"
#include "util/rng.h"
#include "util/trace_span.h"

namespace tdlib {
namespace {

// Flips the global switches for one test and leaves the process pristine:
// switches off, global registry zeroed, global trace ring emptied.
class ObservabilityGuard {
 public:
  ObservabilityGuard(bool metrics, bool tracing) {
    SetMetricsEnabled(metrics);
    SetTracingEnabled(tracing);
  }
  ~ObservabilityGuard() {
    SetMetricsEnabled(false);
    SetTracingEnabled(false);
    MetricsRegistry::Global().Reset();
    TraceBuffer::Global().Clear();
  }
};

// ---- Counter ----------------------------------------------------------------

TEST(Counter, DisabledAddIsANoOp) {
  ObservabilityGuard guard(false, false);
  Counter counter;
  counter.Add(5);
  counter.Add();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(Counter, ConcurrentAddsFromManyThreadsSumExactly) {
  ObservabilityGuard guard(true, false);
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add(3);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), std::int64_t{3} * kThreads * kAddsPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

// ---- Gauge ------------------------------------------------------------------

TEST(Gauge, SetAddAndDisabledNoOp) {
  {
    ObservabilityGuard guard(true, false);
    Gauge gauge;
    gauge.Set(7);
    gauge.Add(-3);
    EXPECT_EQ(gauge.Value(), 4);
    gauge.Reset();
    EXPECT_EQ(gauge.Value(), 0);
  }
  ObservabilityGuard guard(false, false);
  Gauge gauge;
  gauge.Set(7);
  gauge.Add(1);
  EXPECT_EQ(gauge.Value(), 0);
}

// ---- Histogram --------------------------------------------------------------

TEST(Histogram, BucketingFollowsThePrometheusLeConvention) {
  ObservabilityGuard guard(true, false);
  Histogram h({0.5, 1.0, 2.0});
  h.Observe(0.25);  // <= 0.5
  h.Observe(0.5);   // <= 0.5 (le is inclusive)
  h.Observe(0.75);  // <= 1.0
  h.Observe(2.0);   // <= 2.0
  h.Observe(5.0);   // +Inf only
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.cumulative, (std::vector<std::int64_t>{2, 3, 4}));
  EXPECT_EQ(snap.count, 5);
  // All observations are exact in nanoseconds, so the sum is exact too.
  EXPECT_EQ(snap.sum_ns, std::int64_t{8500000000});
}

TEST(Histogram, ConcurrentObservationsKeepExactTotals) {
  ObservabilityGuard guard(true, false);
  Histogram h(LatencyBuckets());
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObsPerThread; ++i) h.Observe(0.000001);  // 1µs
    });
  }
  for (std::thread& t : threads) t.join();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, std::int64_t{kThreads} * kObsPerThread);
  EXPECT_EQ(snap.sum_ns, std::int64_t{1000} * kThreads * kObsPerThread);
  EXPECT_EQ(snap.cumulative.front(), snap.count);  // all in the 1µs bucket
}

TEST(Histogram, MergeIsAssociativeToTheBit) {
  ObservabilityGuard guard(true, false);
  const std::vector<double> bounds = {0.001, 0.1, 1.0};
  Histogram ha(bounds), hb(bounds), hc(bounds);
  ha.Observe(0.0005);
  ha.Observe(0.05);
  hb.Observe(0.5);
  hb.Observe(7.0);
  hc.Observe(0.001);
  HistogramSnapshot a = ha.Snapshot(), b = hb.Snapshot(), c = hc.Snapshot();

  HistogramSnapshot left = a;  // (a + b) + c
  left.MergeFrom(b);
  left.MergeFrom(c);
  HistogramSnapshot bc = b;  // a + (b + c)
  bc.MergeFrom(c);
  HistogramSnapshot right = a;
  right.MergeFrom(bc);

  EXPECT_EQ(left.cumulative, right.cumulative);
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.sum_ns, right.sum_ns);  // integer ns: exact, no float drift
  EXPECT_EQ(left.count, 5);
}

// ---- Registry and exports ---------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("a.counter");
  Counter* c2 = registry.GetCounter("a.counter");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = registry.GetHistogram("a.hist", {1.0});
  // Bounds apply only on first creation; a later lookup with different
  // bounds still returns the original histogram.
  Histogram* h2 = registry.GetHistogram("a.hist", {2.0, 3.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds(), (std::vector<double>{1.0}));
}

// One registry fixture shared by both export goldens.
MetricsRegistry* GoldenRegistry() {
  MetricsRegistry* registry = new MetricsRegistry();
  registry->GetCounter("engine.jobs_completed")->Add(3);
  registry->GetGauge("pool.queue_depth")->Set(2);
  Histogram* h = registry->GetHistogram("job.seconds", {0.0025, 1.0});
  h->Observe(0.001);
  h->Observe(0.5);
  h->Observe(3.0);
  return registry;
}

TEST(MetricsExport, JsonGolden) {
  ObservabilityGuard guard(true, false);
  std::unique_ptr<MetricsRegistry> registry(GoldenRegistry());
  EXPECT_EQ(registry->Snapshot().ToJson(),
            "{\"counters\":{\"engine.jobs_completed\":3},"
            "\"gauges\":{\"pool.queue_depth\":2},"
            "\"histograms\":{\"job.seconds\":{"
            "\"bounds\":[0.0025,1],\"cumulative\":[1,2],"
            "\"count\":3,\"sum_seconds\":3.501}}}");
}

TEST(MetricsExport, PrometheusGolden) {
  ObservabilityGuard guard(true, false);
  std::unique_ptr<MetricsRegistry> registry(GoldenRegistry());
  EXPECT_EQ(registry->Snapshot().ToPrometheus(),
            "# TYPE engine_jobs_completed counter\n"
            "engine_jobs_completed 3\n"
            "# TYPE pool_queue_depth gauge\n"
            "pool_queue_depth 2\n"
            "# TYPE job_seconds histogram\n"
            "job_seconds_bucket{le=\"0.0025\"} 1\n"
            "job_seconds_bucket{le=\"1\"} 2\n"
            "job_seconds_bucket{le=\"+Inf\"} 3\n"
            "job_seconds_sum 3.501\n"
            "job_seconds_count 3\n");
}

// ---- Trace buffer and spans -------------------------------------------------

TEST(TraceBuffer, RingWrapKeepsNewestOldestFirstAndCountsDrops) {
  ObservabilityGuard guard(false, true);
  TraceBuffer buffer(4);
  const char* names[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (int i = 0; i < 6; ++i) {
    TraceEvent event;
    event.name = names[i];
    event.start_ns = i;
    buffer.Record(event);
  }
  EXPECT_EQ(buffer.TotalRecorded(), 6u);
  EXPECT_EQ(buffer.Dropped(), 2u);
  std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_STREQ(events[i].name, names[i + 2]);  // e0, e1 fell off
    EXPECT_EQ(events[i].start_ns, i + 2);
  }
  buffer.Clear();
  EXPECT_EQ(buffer.TotalRecorded(), 0u);
  EXPECT_TRUE(buffer.Snapshot().empty());
}

TEST(TraceSpan, SpansNestUnderTheCurrentJobScope) {
  ObservabilityGuard guard(false, true);
  TraceBuffer::Global().Clear();
  EXPECT_EQ(CurrentTraceJob(), 0u);
  {
    TraceJobScope scope(7);
    EXPECT_EQ(CurrentTraceJob(), 7u);
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(CurrentTraceJob(), 0u);
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);  // spans record at close: inner first
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[0].job, 7u);
  EXPECT_EQ(events[1].job, 7u);
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[1].dur_ns, events[0].dur_ns);
}

TEST(TraceSpan, DisabledSpansRecordNothing) {
  ObservabilityGuard guard(false, false);
  TraceBuffer::Global().Clear();
  {
    TraceJobScope scope(9);
    TraceSpan span("never.recorded");
  }
  EXPECT_TRUE(TraceBuffer::Global().Snapshot().empty());
}

TEST(TraceBuffer, ChromeTraceExportIsValidAndRelative) {
  ObservabilityGuard guard(false, true);
  TraceBuffer buffer(8);
  TraceEvent event;
  event.name = "phase";
  event.job = 3;
  event.start_ns = 5000000;  // 5ms after an arbitrary epoch
  event.dur_ns = 2000;       // 2µs
  event.tid = 1;
  event.depth = 0;
  buffer.Record(event);
  event.start_ns = 6000000;
  buffer.Record(event);
  std::ostringstream out;
  buffer.WriteChromeTrace(out);
  const std::string trace = out.str();
  // Timestamps are µs relative to the OLDEST event: 0 and 1000.
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"ts\":0"), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"ts\":1000"), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"dur\":2"), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"job\":3"), std::string::npos) << trace;
}

// ---- Non-perturbation: chase byte parity on/off -----------------------------

struct ChaseRun {
  std::string instance_text;
  ChaseResult result;
};

ChaseRun RunOnce(const Instance& seed, const DependencySet& deps,
                 const ChaseConfig& config) {
  Instance instance = seed;
  ChaseRun run;
  run.result = RunChase(&instance, deps, config);
  run.instance_text = instance.ToString();
  return run;
}

void ExpectIdenticalRuns(const ChaseRun& off, const ChaseRun& on,
                         const std::string& label) {
  EXPECT_EQ(off.instance_text, on.instance_text) << label;
  EXPECT_EQ(off.result.status, on.result.status) << label;
  EXPECT_EQ(off.result.steps, on.result.steps) << label;
  EXPECT_EQ(off.result.passes, on.result.passes) << label;
  EXPECT_EQ(off.result.hom_nodes, on.result.hom_nodes) << label;
  EXPECT_EQ(off.result.hom_candidates, on.result.hom_candidates) << label;
  EXPECT_EQ(off.result.match_tasks, on.result.match_tasks) << label;
  ASSERT_EQ(off.result.trace.size(), on.result.trace.size()) << label;
  for (std::size_t i = 0; i < off.result.trace.size(); ++i) {
    EXPECT_EQ(off.result.trace[i].dependency_index,
              on.result.trace[i].dependency_index)
        << label << " step " << i;
    EXPECT_EQ(off.result.trace[i].body_match.values,
              on.result.trace[i].body_match.values)
        << label << " step " << i;
    EXPECT_EQ(off.result.trace[i].new_tuples, on.result.trace[i].new_tuples)
        << label << " step " << i;
  }
}

class MetricsChaseParity : public ::testing::TestWithParam<int> {};

TEST_P(MetricsChaseParity, RandomTdChaseIsByteIdenticalWithObservabilityOn) {
  Rng rng(GetParam() * 7919);
  SchemaPtr schema = MakeSchema({"X0", "X1"});
  TdGeneratorOptions options;
  options.body_rows = 2;
  DependencySet deps;
  deps.Add(RandomDependency(&rng, options, schema));
  deps.Add(RandomDependency(&rng, options, schema));
  Instance seed = RandomInstance(&rng, schema, 3, 4);

  ChaseConfig config;
  config.record_trace = true;
  config.max_steps = 200;
  config.max_tuples = 1000;

  // Reference with the whole layer off, then the same chase with metrics
  // AND tracing on. The instrumentation is pure sink: every byte must match.
  ChaseRun off = RunOnce(seed, deps, config);
  ChaseRun on;
  MetricsSnapshot snap;
  {
    ObservabilityGuard guard(true, true);
    MetricsRegistry::Global().Reset();
    on = RunOnce(seed, deps, config);
    snap = MetricsRegistry::Global().Snapshot();
  }
  ExpectIdenticalRuns(off, on, "seed " + std::to_string(GetParam()));

  // The published counters must agree exactly with the run's own
  // deterministic counters — the registry is a mirror, never a second
  // source of truth.
  EXPECT_EQ(snap.counters["chase.steps"],
            static_cast<std::int64_t>(on.result.steps));
  EXPECT_EQ(snap.counters["chase.passes"],
            static_cast<std::int64_t>(on.result.passes));
  EXPECT_EQ(snap.counters["chase.hom_nodes"],
            static_cast<std::int64_t>(on.result.hom_nodes));
  EXPECT_EQ(snap.counters["chase.match_tasks"],
            static_cast<std::int64_t>(on.result.match_tasks));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsChaseParity, ::testing::Range(1, 7));

// ---- Non-perturbation: batch summary parity at 1/2/4/8 threads --------------

TEST(MetricsBatchParity, DeterministicSummaryIdenticalAtEveryThreadCount) {
  WorkloadOptions options;
  options.size = 6;
  std::vector<Job> jobs = ReductionSweepWorkload(options);
  const std::string reference = RunSerial(jobs).DeterministicSummary();

  for (int threads : {1, 2, 4, 8}) {
    ObservabilityGuard guard(true, true);
    MetricsRegistry::Global().Reset();
    BatchOptions batch;
    batch.num_threads = threads;
    BatchSummary pooled = BatchSolver(batch).Run(jobs);
    EXPECT_EQ(pooled.DeterministicSummary(), reference)
        << "threads=" << threads;

    // Outcome counters mirror the summary's own tallies.
    MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    EXPECT_EQ(snap.counters["engine.jobs_submitted"],
              static_cast<std::int64_t>(jobs.size()));
    EXPECT_EQ(snap.counters["engine.jobs_completed"], pooled.completed);
    EXPECT_EQ(snap.counters["engine.jobs_skipped"], pooled.skipped);
    EXPECT_EQ(snap.counters["engine.jobs_cancelled"], pooled.cancelled);
    EXPECT_EQ(snap.gauges["engine.jobs_inflight"], 0);
  }
}

// ---- Non-perturbation: checkpoint/resume parity -----------------------------

TEST(MetricsResumeParity, ResumedChaseStaysByteIdenticalWithMetricsOn) {
  // The pumping reduction instance: every fire enables the next, so the
  // step budget trips deterministically mid-stream and leaves a checkpoint.
  Presentation p;
  p.AddEquationFromText("A A0 = A0");
  p.AddAbsorptionEquations();
  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  ASSERT_TRUE(red.ok());
  const DependencySet& deps = red.value().dependencies();
  Instance seed = red.value().goal().body().Freeze();

  ChaseConfig config;
  config.record_trace = true;

  // Reference: uninterrupted run to the big budget, observability off.
  ChaseConfig big = config;
  big.max_steps = 100;
  ChaseRun reference = RunOnce(seed, deps, big);

  // Interrupted run + serialize/restore + resume, all with the layer on.
  ObservabilityGuard guard(true, true);
  ChaseConfig small = config;
  small.max_steps = 17;
  Instance interrupted = seed;
  ChaseCheckpoint checkpoint;
  ChaseResult first =
      RunChase(&interrupted, deps, small, {}, &checkpoint);
  ASSERT_EQ(first.status, ChaseStatus::kStepLimit);
  ASSERT_TRUE(checkpoint.valid);

  std::ostringstream out;
  interrupted.Serialize(out);
  checkpoint.Serialize(out);
  std::istringstream in(out.str());
  Result<Instance> restored =
      Instance::Deserialize(seed.schema_ptr(), in);
  ASSERT_TRUE(restored.ok());
  Result<ChaseCheckpoint> restored_checkpoint =
      ChaseCheckpoint::Deserialize(in);
  ASSERT_TRUE(restored_checkpoint.ok());
  ASSERT_TRUE(restored_checkpoint.value().ResumableWith(
      big, restored.value(), deps));

  ChaseResult resumed = RunChase(&restored.value(), deps, big, {},
                                 &restored_checkpoint.value());
  EXPECT_EQ(restored.value().ToString(), reference.instance_text);
  EXPECT_EQ(resumed.status, reference.result.status);
  EXPECT_EQ(resumed.steps, reference.result.steps);
  EXPECT_EQ(resumed.passes, reference.result.passes);
  EXPECT_EQ(resumed.hom_nodes, reference.result.hom_nodes);
  // Phase timings are this-run wall clock, NOT part of the checkpoint: the
  // resumed run restarts them from zero rather than inheriting the
  // interrupted run's clock.
  EXPECT_LE(resumed.checkpoint_seconds, first.checkpoint_seconds +
                                            resumed.checkpoint_seconds);
}

// ---- Outcome counters: one terminal publication per run ---------------------

Job PumpingJob() {
  Presentation p;
  p.AddSymbol("A");
  p.AddEquationFromText("A A0 = A0");
  p.AddAbsorptionEquations();
  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  EXPECT_TRUE(red.ok());
  DualSolverConfig config;
  config.rounds = 1;
  config.base_chase.max_steps = 0;
  config.base_chase.max_tuples = 0;
  config.base_counterexample.max_tuples = 0;
  return Job{"pumping", red.value().dependencies(), red.value().goal(),
             config, 0};
}

TEST(ServiceOutcomeMetrics, EveryTerminalRunIsCountedExactlyOnce) {
  ObservabilityGuard guard(true, false);
  MetricsRegistry::Global().Reset();

  WorkloadOptions options;
  options.size = 2;
  std::vector<Job> jobs = ReductionSweepWorkload(options);
  std::atomic<bool> always_skip{true};

  JobHandle queued_cancel;
  JobHandle completed_then_resumed;
  {
    ServiceOptions service_options;
    service_options.num_threads = 1;
    SolverService service(service_options);

    // Pin the single worker so the next submission is cancelled while
    // still QUEUED — the terminal publication then happens on the
    // cancelling thread, not a worker.
    JobHandle pumping = service.Submit(PumpingJob());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    queued_cancel = service.Submit(jobs[0]);
    EXPECT_TRUE(queued_cancel.Cancel());
    // A second Cancel on the same terminal run must not double-publish.
    queued_cancel.Cancel();
    EXPECT_EQ(queued_cancel.Wait().status, JobStatus::kCancelled);

    // Running-cancel path: the worker publishes the terminal state.
    EXPECT_TRUE(pumping.Cancel());
    EXPECT_EQ(pumping.Wait().status, JobStatus::kCancelled);

    // Completed path, then a budget-resume: the SAME handle terminates
    // twice — two runs, two publications.
    completed_then_resumed = service.Submit(jobs[1]);
    EXPECT_EQ(completed_then_resumed.Wait().status, JobStatus::kCompleted);
    ASSERT_TRUE(completed_then_resumed.ResumeWithBudget(jobs[1].config));
    EXPECT_EQ(completed_then_resumed.Wait().status, JobStatus::kCompleted);

    // Admission-gate path: skipped without running.
    SubmitOptions skip;
    skip.skip_when = &always_skip;
    EXPECT_EQ(service.Submit(jobs[0], skip).Wait().status,
              JobStatus::kSkipped);
  }  // service destructor: every job terminal, workers joined

  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  // 4 submissions + 1 resume = 5 runs; each run terminal exactly once.
  EXPECT_EQ(snap.counters["engine.jobs_submitted"], 4);
  EXPECT_EQ(snap.counters["engine.job_resumes"], 1);
  EXPECT_EQ(snap.counters["engine.jobs_completed"], 2);
  EXPECT_EQ(snap.counters["engine.jobs_cancelled"], 2);
  EXPECT_EQ(snap.counters["engine.jobs_skipped"], 1);
  EXPECT_EQ(snap.counters["engine.jobs_completed"] +
                snap.counters["engine.jobs_cancelled"] +
                snap.counters["engine.jobs_skipped"],
            5);
  // Started runs all left the in-flight gauge; nothing leaked.
  EXPECT_EQ(snap.gauges["engine.jobs_inflight"], 0);
  // The submit-to-terminal histogram saw every run too.
  auto it = snap.histograms.find("engine.job_seconds");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, 5);
}

// ---- Slow log ---------------------------------------------------------------

TEST(ServiceSlowLog, ThresholdEmitsOneLineWithPhaseBreakdown) {
  ObservabilityGuard guard(true, false);
  std::mutex mu;
  std::vector<std::string> lines;
  ServiceOptions service_options;
  service_options.num_threads = 2;
  service_options.slow_log_seconds = 1e-9;  // everything is "slow"
  service_options.slow_log_sink = [&mu, &lines](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  WorkloadOptions options;
  options.size = 2;
  std::vector<Job> jobs = ReductionSweepWorkload(options);
  {
    SolverService service(service_options);
    std::vector<JobHandle> handles;
    for (const Job& job : jobs) handles.push_back(service.Submit(job));
    for (const JobHandle& handle : handles) handle.Wait();
  }
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(lines.size(), jobs.size());
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("slow job "), std::string::npos) << line;
    EXPECT_NE(line.find("queue="), std::string::npos) << line;
    EXPECT_NE(line.find("match="), std::string::npos) << line;
    EXPECT_NE(line.find("fire="), std::string::npos) << line;
  }
}

// ---- Phase timings ride along outside the determinism contract --------------

TEST(JobResultTimings, CsvCarriesPhaseColumnsButSummaryDoesNot) {
  const std::vector<std::string> header = JobResult::CsvHeader();
  for (const char* column :
       {"queue_seconds", "match_seconds", "fire_seconds",
        "checkpoint_seconds"}) {
    EXPECT_NE(std::find(header.begin(), header.end(), column), header.end())
        << column;
  }
  WorkloadOptions options;
  options.size = 1;
  std::vector<Job> jobs = ReductionSweepWorkload(options);
  JobResult result = RunJob(jobs[0]);
  EXPECT_EQ(result.CsvRow().size(), header.size());
  // Wall-clock fields never leak into the deterministic contract.
  EXPECT_EQ(result.DeterministicSummary().find("match_seconds"),
            std::string::npos);
  EXPECT_GE(result.match_seconds, 0.0);
  EXPECT_GE(result.fire_seconds, 0.0);
}

}  // namespace
}  // namespace tdlib
