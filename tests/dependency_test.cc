// Tests for Dependency: construction, classification (full/embedded,
// TD/EID, trivial), renaming and rendering.
#include "core/dependency.h"

#include <gtest/gtest.h>

#include "core/parser.h"

namespace tdlib {
namespace {

SchemaPtr GarmentSchema() { return MakeSchema({"SUPPLIER", "STYLE", "SIZE"}); }

// The paper's Fig. 1 dependency:
//   R(a,b,c) & R(a,b',c') => R(a*, b, c').
Dependency Fig1() {
  Result<Dependency> d = ParseDependency(
      GarmentSchema(), "R(a,b,c) & R(a,b2,c2) => R(a9,b,c2)");
  EXPECT_TRUE(d.ok()) << d.error();
  return std::move(d).value();
}

TEST(Dependency, BuilderRejectsEmptyBodyOrHead) {
  {
    Dependency::Builder b(GarmentSchema());
    b.AddHeadRow({b.Var(0), b.Var(1), b.Var(2)});
    EXPECT_FALSE(std::move(b).Build().ok());
  }
  {
    Dependency::Builder b(GarmentSchema());
    b.AddBodyRow({b.Var(0), b.Var(1), b.Var(2)});
    EXPECT_FALSE(std::move(b).Build().ok());
  }
}

TEST(Dependency, Fig1IsEmbeddedTd) {
  Dependency d = Fig1();
  EXPECT_TRUE(d.IsTd());
  EXPECT_FALSE(d.IsFull());  // a* is existential
  EXPECT_FALSE(d.IsTrivial());
  EXPECT_EQ(d.CheckInvariants(), "");
}

TEST(Dependency, FullWhenConclusionVarsAppearInBody) {
  Result<Dependency> d = ParseDependency(
      GarmentSchema(), "R(a,b,c) & R(a,b2,c2) => R(a,b,c2)");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().IsFull());
}

TEST(Dependency, UniversalityFollowsBodyOccurrence) {
  Dependency d = Fig1();
  // Variable a (attr 0, id 0) occurs in the body; a9 (the existential) not.
  EXPECT_TRUE(d.IsUniversal(0, 0));
  bool some_existential = false;
  for (int v = 0; v < d.head().NumVars(0); ++v) {
    some_existential = some_existential || !d.IsUniversal(0, v);
  }
  EXPECT_TRUE(some_existential);
}

TEST(Dependency, TrivialWhenConclusionIsAnAntecedent) {
  Result<Dependency> d =
      ParseDependency(GarmentSchema(), "R(a,b,c) & R(a,b2,c2) => R(a,b,c)");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().IsTrivial());
}

TEST(Dependency, TrivialWithExistentialCollapse) {
  // R(a,b,c) => R(a, b*, c): b* existential can map onto b.
  Result<Dependency> d =
      ParseDependency(GarmentSchema(), "R(a,b,c) => R(a,b9,c)");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().IsTrivial());
}

TEST(Dependency, EidWithConjunctiveConclusion) {
  // The EID example from the paper:
  //   R(a,b,c) & R(a,b',c') => R(a*,b,c) & R(a*,b,c').
  Result<Dependency> d = ParseDependency(
      GarmentSchema(),
      "R(a,b,c) & R(a,b2,c2) => R(a9,b,c) & R(a9,b,c2)");
  ASSERT_TRUE(d.ok()) << d.error();
  EXPECT_FALSE(d.value().IsTd());
  EXPECT_EQ(d.value().head().num_rows(), 2);
  // The shared existential a* makes this NOT expressible as two separate
  // TDs; it is also non-trivial.
  EXPECT_FALSE(d.value().IsTrivial());
}

TEST(Dependency, RenameVariablesPreservesStructure) {
  Dependency d = Fig1();
  Dependency renamed = d.RenameVariables("_copy");
  EXPECT_EQ(renamed.CheckInvariants(), "");
  EXPECT_EQ(renamed.body().num_rows(), d.body().num_rows());
  EXPECT_EQ(renamed.head().num_rows(), d.head().num_rows());
  EXPECT_TRUE(renamed.IsTd());
  EXPECT_FALSE(renamed.IsFull());
  EXPECT_NE(renamed.ToString(), d.ToString());  // names differ
}

TEST(Dependency, ToStringRoundTripsThroughParser) {
  Dependency d = Fig1();
  Result<Dependency> reparsed =
      ParseDependency(GarmentSchema(), d.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_EQ(reparsed.value().ToString(), d.ToString());
}

TEST(DependencySet, NamesTravelWithItems) {
  DependencySet set;
  set.Add(Fig1(), "fig1");
  EXPECT_EQ(set.items.size(), 1u);
  EXPECT_NE(set.ToString().find("fig1:"), std::string::npos);
}

}  // namespace
}  // namespace tdlib
