// Tests for the shared workload generators.
#include "core/generators.h"

#include <gtest/gtest.h>

#include "core/satisfaction.h"

namespace tdlib {
namespace {

TEST(Generators, DependenciesAreValid) {
  Rng rng(11);
  for (int i = 0; i < 32; ++i) {
    TdGeneratorOptions options;
    options.arity = 2 + i % 3;
    options.body_rows = 1 + i % 4;
    options.head_rows = 1 + i % 2;
    Dependency d = RandomDependency(&rng, options);
    EXPECT_EQ(d.CheckInvariants(), "");
    EXPECT_EQ(d.body().num_rows(), options.body_rows);
    EXPECT_EQ(d.head().num_rows(), options.head_rows);
    EXPECT_EQ(d.schema().arity(), options.arity);
  }
}

TEST(Generators, ForceFullProducesFullDependencies) {
  Rng rng(12);
  for (int i = 0; i < 32; ++i) {
    TdGeneratorOptions options;
    options.body_rows = 2;
    options.force_full = true;
    Dependency d = RandomDependency(&rng, options);
    EXPECT_TRUE(d.IsFull());
  }
}

TEST(Generators, SharedSchemaIsRespected) {
  Rng rng(13);
  SchemaPtr schema = MakeSchema({"P", "Q"});
  TdGeneratorOptions options;
  options.arity = 99;  // overridden by the schema
  Dependency d = RandomDependency(&rng, options, schema);
  EXPECT_EQ(&d.schema(), schema.get());
  EXPECT_EQ(d.schema().arity(), 2);
}

TEST(Generators, InstancesAreValidAndSeedStable) {
  SchemaPtr schema = MakeSchema({"P", "Q"});
  Rng r1(77), r2(77);
  Instance a = RandomInstance(&r1, schema, 4, 10);
  Instance b = RandomInstance(&r2, schema, 4, 10);
  EXPECT_EQ(a.CheckInvariants(), "");
  EXPECT_EQ(a.NumTuples(), b.NumTuples());
  for (std::size_t i = 0; i < a.NumTuples(); ++i) {
    EXPECT_EQ(a.tuple(static_cast<int>(i)), b.tuple(static_cast<int>(i)));
  }
}

TEST(Generators, GeneratedPairsExerciseSatisfaction) {
  // Smoke: random dependency against random instance never crashes and
  // returns a definitive verdict without budgets.
  Rng rng(99);
  SchemaPtr schema = MakeSchema({"P", "Q", "S"});
  for (int i = 0; i < 16; ++i) {
    TdGeneratorOptions options;
    options.body_rows = 2;
    Dependency d = RandomDependency(&rng, options, schema);
    Instance inst = RandomInstance(&rng, schema, 3, 6);
    SatisfactionResult r = CheckSatisfaction(d, inst);
    EXPECT_NE(r.verdict, Satisfaction::kUnknown);
  }
}

}  // namespace
}  // namespace tdlib
