// Tests for chase-based implication, the full-TD decision procedure, the
// finite counterexample search, the dual solver, and termination analysis.
#include "chase/implication.h"

#include <gtest/gtest.h>

#include "chase/counterexample.h"
#include "chase/dual_solver.h"
#include "chase/full_td.h"
#include "chase/termination.h"
#include "core/parser.h"
#include "core/satisfaction.h"
#include "reduction/reduction.h"
#include "semigroup/normalizer.h"

namespace tdlib {
namespace {

SchemaPtr Ab() { return MakeSchema({"A", "B"}); }

Dependency Parse(const SchemaPtr& schema, const std::string& text) {
  Result<Dependency> d = ParseDependency(schema, text);
  EXPECT_TRUE(d.ok()) << d.error();
  return std::move(d).value();
}

TEST(Implication, SetImpliesItsMembers) {
  SchemaPtr schema = Ab();
  DependencySet d;
  d.Add(Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)"), "cross");
  Dependency d0 = Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)");
  ImplicationResult r = ChaseImplies(d, d0);
  EXPECT_EQ(r.verdict, Implication::kImplied);
}

TEST(Implication, CrossImpliesWeakerEmbedded) {
  // cross: R(a,b) & R(a2,b2) => R(a,b2) implies the embedded version
  // R(a,b) & R(a2,b2) => R(a,b9) ... which is trivial anyway; use a
  // genuinely weaker consequence: R(a,b) & R(a2,b2) => R(a9,b2) (some
  // supplier has b2 — witnessed by row 2 itself, also trivial!). A
  // non-trivial consequence: the 3-row chain closure.
  SchemaPtr schema = Ab();
  DependencySet d;
  d.Add(Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)"), "cross");
  Dependency d0 =
      Parse(schema, "R(a,b) & R(a2,b2) & R(a3,b3) => R(a,b3)");
  ImplicationResult r = ChaseImplies(d, d0);
  EXPECT_EQ(r.verdict, Implication::kImplied);
}

TEST(Implication, NotImpliedYieldsUniversalCounterexample) {
  SchemaPtr schema = Ab();
  DependencySet d;  // empty set
  Dependency d0 = Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)");
  ImplicationResult r = ChaseImplies(d, d0);
  ASSERT_EQ(r.verdict, Implication::kNotImplied);
  ASSERT_TRUE(r.counterexample.has_value());
  // The universal model contains the frozen body and violates d0.
  EXPECT_EQ(CheckSatisfaction(d0, *r.counterexample).verdict,
            Satisfaction::kViolated);
}

TEST(Implication, TrivialGoalIsAlwaysImplied) {
  SchemaPtr schema = Ab();
  DependencySet d;  // even the empty set
  Dependency d0 = Parse(schema, "R(a,b) & R(a2,b2) => R(a,b)");
  ImplicationResult r = ChaseImplies(d, d0);
  EXPECT_EQ(r.verdict, Implication::kImplied);
  EXPECT_EQ(r.chase.steps, 0u);
}

TEST(Implication, BudgetYieldsUnknownOnPumpingSet) {
  Presentation p;
  p.AddEquationFromText("A A0 = A0");  // rhs A0: D2 pumps from the goal triangle
  p.AddAbsorptionEquations();
  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  ASSERT_TRUE(red.ok());
  ChaseConfig config;
  config.max_steps = 30;
  ImplicationResult r =
      ChaseImplies(red.value().dependencies(), red.value().goal(), config);
  EXPECT_EQ(r.verdict, Implication::kUnknown);
}

TEST(FullTd, DecisionProcedureAgreesWithChase) {
  SchemaPtr schema = Ab();
  DependencySet d;
  d.Add(Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)"), "cross");
  Dependency yes =
      Parse(schema, "R(a,b) & R(a2,b2) & R(a3,b3) => R(a,b3)");
  Dependency no = Parse(schema, "R(a,b) & R(a2,b) => R(a2,b)");
  ASSERT_TRUE(AllFull(d, yes));
  std::string error;
  EXPECT_TRUE(DecideFullTdImplication(d, yes, &error));
  EXPECT_EQ(error, "");
  EXPECT_TRUE(DecideFullTdImplication(d, no, &error));  // `no` is trivial
  Dependency hard = Parse(schema, "R(a,b) & R(a2,b2) => R(a2,b)");
  // cross gives R(a,b2) not R(a2,b)... but with both orders of the body
  // rows, cross DOES give R(a2, b) too (swap the roles). So implied.
  EXPECT_TRUE(DecideFullTdImplication(d, hard, &error));
}

TEST(FullTd, RejectsEmbeddedInputs) {
  SchemaPtr schema = Ab();
  DependencySet d;
  d.Add(Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)"), "cross");
  Dependency embedded = Parse(schema, "R(a,b) & R(a2,b2) => R(a9,b2)");
  ASSERT_FALSE(AllFull(d, embedded));
  std::string error;
  DecideFullTdImplication(d, embedded, &error);
  EXPECT_NE(error, "");
}

TEST(FullTd, NonImplicationDecided) {
  SchemaPtr schema = Ab();
  DependencySet d;  // empty
  Dependency d0 = Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)");
  std::string error;
  ChaseResult stats;
  EXPECT_FALSE(DecideFullTdImplication(d, d0, &error, &stats));
  EXPECT_EQ(error, "");
  EXPECT_EQ(stats.status, ChaseStatus::kFixpoint);
}

TEST(FullTd, TupleBoundHolds) {
  SchemaPtr schema = Ab();
  Dependency d0 = Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)");
  // 2 A-vars x 2 B-vars -> at most 4 tuples in the full chase.
  EXPECT_EQ(FullChaseTupleBound(d0), 4u);
}

TEST(Counterexample, BellNumbersOfSetPartitions) {
  // |partitions of [n]| = Bell(n): 1, 1, 2, 5, 15, 52.
  for (auto [n, bell] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 2}, {3, 5}, {4, 15}}) {
    int count = 0;
    ForEachSetPartition(n, [&](const std::vector<int>&) {
      ++count;
      return true;
    });
    EXPECT_EQ(count, bell) << "n=" << n;
  }
}

TEST(Counterexample, FindsWitnessForNonImplication) {
  SchemaPtr schema = Ab();
  DependencySet d;  // empty set implies only trivialities
  Dependency d0 = Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)");
  CounterexampleConfig config;
  config.max_tuples = 2;
  CounterexampleResult r = FindFiniteCounterexample(d, d0, config);
  ASSERT_EQ(r.status, CounterexampleStatus::kFound);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_EQ(CheckSatisfaction(d0, *r.witness).verdict,
            Satisfaction::kViolated);
}

TEST(Counterexample, ExhaustsWhenImplied) {
  SchemaPtr schema = Ab();
  DependencySet d;
  d.Add(Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)"), "cross");
  Dependency d0 =
      Parse(schema, "R(a,b) & R(a2,b2) & R(a3,b3) => R(a,b3)");
  CounterexampleConfig config;
  config.max_tuples = 3;
  CounterexampleResult r = FindFiniteCounterexample(d, d0, config);
  EXPECT_EQ(r.status, CounterexampleStatus::kExhausted);
}

TEST(Counterexample, CandidateLimitReported) {
  SchemaPtr schema = Ab();
  DependencySet d;
  d.Add(Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)"), "cross");
  Dependency d0 =
      Parse(schema, "R(a,b) & R(a2,b2) & R(a3,b3) => R(a,b3)");
  CounterexampleConfig config;
  config.max_tuples = 3;
  config.max_candidates = 2;
  CounterexampleResult r = FindFiniteCounterexample(d, d0, config);
  EXPECT_EQ(r.status, CounterexampleStatus::kLimit);
}

TEST(DualSolver, ImpliedSide) {
  SchemaPtr schema = Ab();
  DependencySet d;
  d.Add(Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)"), "cross");
  Dependency d0 =
      Parse(schema, "R(a,b) & R(a2,b2) & R(a3,b3) => R(a,b3)");
  DualResult r = SolveImplication(d, d0);
  EXPECT_EQ(r.verdict, DualVerdict::kImplied);
}

TEST(DualSolver, RefutedByFixpointSide) {
  SchemaPtr schema = Ab();
  DependencySet d;  // empty: the chase terminates instantly
  Dependency d0 = Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)");
  DualResult r = SolveImplication(d, d0);
  EXPECT_EQ(r.verdict, DualVerdict::kRefutedByFixpoint);
}

TEST(DualSolver, AbsorptionOnlyRefutedByFixpoint) {
  // With absorption equations alone, no gadget applies to the frozen
  // A0-triangle (no equation's rhs is A0), so the chase terminates at once
  // and its terminal instance is itself a finite counterexample.
  Presentation p;
  p.AddAbsorptionEquations();
  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  ASSERT_TRUE(red.ok());
  DualResult r =
      SolveImplication(red.value().dependencies(), red.value().goal());
  EXPECT_EQ(r.verdict, DualVerdict::kRefutedByFixpoint);
}

TEST(DualSolver, GapInstanceIsNeverImplied) {
  // "A A0 = A0": A0 = 0 is not derivable (all reachable words are A^k A0),
  // yet cancellation condition (ii) rules out any Main-Lemma refuter (an
  // element with x a = a and a != 0 is forbidden). The chase pumps forever,
  // so the dual solver must end in kUnknown or, at best, find a database
  // counterexample outside the semigroup correspondence — never kImplied.
  Presentation p;
  p.AddEquationFromText("A A0 = A0");
  p.AddAbsorptionEquations();
  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  ASSERT_TRUE(red.ok());
  DualSolverConfig config;
  config.rounds = 1;
  config.base_chase.max_steps = 60;
  config.base_counterexample.max_tuples = 2;
  DualResult r = SolveImplication(red.value().dependencies(),
                                  red.value().goal(), config);
  EXPECT_NE(r.verdict, DualVerdict::kImplied);
  EXPECT_NE(r.verdict, DualVerdict::kRefutedByFixpoint);
}

TEST(Termination, FullTdsAreWeaklyAcyclic) {
  SchemaPtr schema = Ab();
  DependencySet d;
  d.Add(Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)"), "cross");
  EXPECT_TRUE(IsWeaklyAcyclic(d));
}

TEST(Termination, GadgetsAreNotWeaklyAcyclic) {
  // If the reduction's dependency set were weakly acyclic its chase would
  // always terminate, contradicting undecidability: the analysis must
  // reject it.
  Presentation p;
  p.AddAbsorptionEquations();
  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  ASSERT_TRUE(red.ok());
  EXPECT_FALSE(IsWeaklyAcyclic(red.value().dependencies()));
}

TEST(Termination, PositionGraphRendering) {
  SchemaPtr schema = Ab();
  DependencySet d;
  d.Add(Parse(schema, "R(a,b) & R(a2,b2) => R(a,b2)"), "cross");
  PositionGraph g = BuildPositionGraph(d);
  EXPECT_EQ(g.num_positions, 2);
  std::string s = g.ToString(*schema);
  EXPECT_NE(s.find("A -> A"), std::string::npos);
  EXPECT_EQ(s.find("=>"), std::string::npos);  // no special edges
}

TEST(Termination, EmptySetIsWeaklyAcyclic) {
  DependencySet d;
  EXPECT_TRUE(IsWeaklyAcyclic(d));
}

}  // namespace
}  // namespace tdlib
