// End-to-end tests for the Gurevich-Lewis reduction: construction shape,
// direction (A) replay, direction (B) counterexample, and the headline
// parameter claims of the paper.
#include "reduction/reduction.h"

#include <gtest/gtest.h>

#include "chase/implication.h"
#include "core/satisfaction.h"
#include "reduction/bridge.h"
#include "reduction/part_a.h"
#include "reduction/part_b.h"
#include "semigroup/normalizer.h"

namespace tdlib {
namespace {

// A presentation where A0 = 0 IS derivable:
//   A0 A0 = A0  (so A0 can be pumped),  A0 A0 = 0  (so the pump vanishes).
// Derivation: A0 -> A0 A0 -> 0.
Presentation DerivablePresentation() {
  Presentation p;
  p.AddEquationFromText("A0 A0 = A0");
  p.AddEquationFromText("A0 A0 = 0");
  p.AddAbsorptionEquations();
  return p;
}

// Absorption only: A0 = 0 is NOT derivable (the free semigroup with zero
// refutes it, and so does the 2-element null semigroup).
Presentation UnderivablePresentation() {
  Presentation p;
  p.AddAbsorptionEquations();
  return p;
}

TEST(ReductionShape, AttributeCountIs2nPlus2) {
  Presentation p = DerivablePresentation();
  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  ASSERT_TRUE(red.ok()) << red.error();
  EXPECT_EQ(red.value().arity(), 2 * norm.normalized.num_symbols() + 2);
}

TEST(ReductionShape, AtMostFiveAntecedents) {
  // "our proof yields dependencies with a bounded number of antecedents
  //  (five at most) but an unbounded number of attributes"
  for (Presentation p : {DerivablePresentation(), UnderivablePresentation()}) {
    NormalizationResult norm = NormalizeTo21(p);
    Result<GurevichLewisReduction> red =
        GurevichLewisReduction::Create(norm.normalized);
    ASSERT_TRUE(red.ok()) << red.error();
    EXPECT_LE(red.value().MaxAntecedents(), 5);
  }
}

TEST(ReductionShape, FourGadgetsPerEquation) {
  Presentation p = DerivablePresentation();
  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  ASSERT_TRUE(red.ok()) << red.error();
  EXPECT_EQ(red.value().dependencies().items.size(),
            4 * norm.normalized.equations().size());
}

TEST(ReductionShape, RequiresNormalizedInput) {
  Presentation p;
  int a = p.AddSymbol("A");
  int b = p.AddSymbol("B");
  p.AddEquation(Word{a, b, a}, Word{b});  // length-3 lhs: not normalized
  p.AddAbsorptionEquations();
  Result<GurevichLewisReduction> red = GurevichLewisReduction::Create(p);
  EXPECT_FALSE(red.ok());
}

TEST(ReductionShape, GadgetsAreValidTypedTds) {
  Presentation p = DerivablePresentation();
  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  ASSERT_TRUE(red.ok()) << red.error();
  for (const Dependency& dep : red.value().dependencies().items) {
    EXPECT_TRUE(dep.IsTd());
    EXPECT_EQ(dep.CheckInvariants(), "");
  }
  EXPECT_TRUE(red.value().goal().IsTd());
  EXPECT_FALSE(red.value().goal().IsTrivial());
}

TEST(ReductionShape, DistinctLetterGadgetsAreNonTrivial) {
  // Degenerate equations (repeated letters, e.g. A0 A0 = A0) can yield
  // trivial gadgets — when A = C the C-triangle is itself the required
  // A-apex. For an equation with three distinct letters, all four gadgets
  // must be genuinely non-trivial.
  Presentation p;
  p.AddEquationFromText("A B = C");
  p.AddAbsorptionEquations();
  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  ASSERT_TRUE(red.ok()) << red.error();
  const DependencySet& d = red.value().dependencies();
  for (std::size_t i = 0; i < d.items.size(); ++i) {
    if (d.names[i].find("A B = C") == std::string::npos) continue;
    EXPECT_FALSE(d.items[i].IsTrivial()) << d.names[i];
  }
}

TEST(PartA, DerivableWordProblemYieldsImplication) {
  PartAConfig config;
  config.chase.max_steps = 20000;
  config.chase.max_tuples = 20000;
  PartAResult result = RunPartA(DerivablePresentation(), config);
  ASSERT_EQ(result.word_problem.status, WordProblemStatus::kEqual);
  EXPECT_TRUE(result.replay_reached_goal);
  EXPECT_EQ(result.black_box.verdict, Implication::kImplied);
  EXPECT_TRUE(result.consistent) << result.ToString();
  // Every derivation stage's bridge embeds in the replay instance.
  for (const BridgeStage& stage : result.stages) {
    EXPECT_TRUE(stage.embedded);
  }
}

TEST(PartA, UnderivableStaysUnproven) {
  PartAConfig config;
  config.word_problem.max_word_length = 6;
  config.chase.max_steps = 300;   // embedded gadgets pump forever; keep small
  config.chase.max_tuples = 2000;
  PartAResult result = RunPartA(UnderivablePresentation(), config);
  EXPECT_NE(result.word_problem.status, WordProblemStatus::kEqual);
  // The theorem says implication FAILS here, so the chase must never reach
  // the goal (it may well not terminate; both non-kImplied outcomes are
  // acceptable).
  EXPECT_NE(result.black_box.verdict, Implication::kImplied);
  EXPECT_TRUE(result.consistent);
}

TEST(PartB, AbsorptionOnlyIsRefutedByNullSemigroup) {
  ModelSearchConfig config;
  config.max_size = 3;
  PartBResult result = RunPartB(UnderivablePresentation(), config);
  ASSERT_EQ(result.model_search.status, ModelSearchStatus::kFound);
  ASSERT_TRUE(result.db.has_value());
  EXPECT_TRUE(result.verified) << result.message;
  // P contains at least I and A0; Q contains at least (I, A0, A0).
  EXPECT_GE(result.db->p_size, 2);
  EXPECT_GE(result.db->q_size, 1);
}

TEST(PartB, DerivablePresentationHasNoSmallRefuter) {
  // If A0 = 0 is derivable, NO semigroup (of any size) refutes it; the
  // search must exhaust.
  ModelSearchConfig config;
  config.max_size = 3;
  PartBResult result = RunPartB(DerivablePresentation(), config);
  EXPECT_EQ(result.model_search.status, ModelSearchStatus::kExhausted);
}

TEST(PartB, WitnessVerificationCatchesBadWitness) {
  Presentation p = UnderivablePresentation();
  NormalizationResult norm = NormalizeTo21(p);
  SemigroupWitness bad{MultiplicationTable::Null(2),
                       std::vector<int>(norm.normalized.num_symbols(), 0)};
  // A0 mapped to zero: not a refuter.
  EXPECT_NE(bad.Verify(norm.normalized), "");
}

TEST(Bridge, StructureMatchesFigure2) {
  Presentation p = DerivablePresentation();
  NormalizationResult norm = NormalizeTo21(p);
  Result<ReductionSchema> rs = ReductionSchema::Create(norm.normalized);
  ASSERT_TRUE(rs.ok());
  Word w{norm.normalized.a0(), norm.normalized.a0(), norm.normalized.zero()};
  BridgeInstance bridge = BuildBridgeInstance(rs.value(), w);
  // k + 1 base tuples, k apexes, all distinct.
  EXPECT_EQ(bridge.base_tuples.size(), w.size() + 1);
  EXPECT_EQ(bridge.apex_tuples.size(), w.size());
  EXPECT_EQ(bridge.instance.NumTuples(), 2 * w.size() + 1);
  // All base tuples share the E value; all apexes share the E' value.
  const Instance& inst = bridge.instance;
  int e_val = inst.tuple(bridge.base_tuples[0])[rs.value().E()];
  for (int id : bridge.base_tuples) {
    EXPECT_EQ(inst.tuple(id)[rs.value().E()], e_val);
  }
  int ep_val = inst.tuple(bridge.apex_tuples[0])[rs.value().EPrime()];
  for (int id : bridge.apex_tuples) {
    EXPECT_EQ(inst.tuple(id)[rs.value().EPrime()], ep_val);
  }
  // Apex i agrees with base i-1 on Ai' and with base i on Ai''.
  for (std::size_t i = 0; i < w.size(); ++i) {
    int prime = rs.value().Prime(w[i]);
    int dprime = rs.value().DoublePrime(w[i]);
    EXPECT_EQ(inst.tuple(bridge.apex_tuples[i])[prime],
              inst.tuple(bridge.base_tuples[i])[prime]);
    EXPECT_EQ(inst.tuple(bridge.apex_tuples[i])[dprime],
              inst.tuple(bridge.base_tuples[i + 1])[dprime]);
  }
}

TEST(Bridge, InstanceSatisfiesNoGoalPrematurely) {
  // A bridge for a word without a 0-triangle does not witness D0's head
  // pattern (sanity check that bridges do not accidentally contain goals).
  Presentation p = UnderivablePresentation();
  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  ASSERT_TRUE(red.ok());
  const ReductionSchema& rs = red.value().reduction_schema();
  Word w{norm.normalized.a0()};
  BridgeInstance bridge = BuildBridgeInstance(rs, w);
  // The bridge satisfies D0's BODY (an A0 triangle) but must violate D0.
  SatisfactionResult r =
      CheckSatisfaction(red.value().goal(), bridge.instance);
  EXPECT_EQ(r.verdict, Satisfaction::kViolated);
}

}  // namespace
}  // namespace tdlib
