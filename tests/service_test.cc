// Tests for the asynchronous SolverService API: handles, cancellation,
// streaming completion callbacks, and budget-resume (src/engine/service.h,
// src/engine/job_handle.h).
#include "engine/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "engine/batch_solver.h"
#include "engine/workload.h"
#include "reduction/reduction.h"
#include "semigroup/normalizer.h"
#include "semigroup/presentation.h"
#include "util/timer.h"

namespace tdlib {
namespace {

// Submits the pumping job and gives the single worker time to dequeue it,
// so later submissions are guaranteed to queue BEHIND a running job (sweep
// jobs carry nonzero priorities and would otherwise win a dequeue race).
JobHandle SubmitPinnedPumpingJob(SolverService* service, const Job& job) {
  JobHandle handle = service->Submit(job);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  return handle;
}

// A job whose chase PUMPS FOREVER under unbounded budgets: the equation
// "A A0 = A0" puts A0 on an equation's right-hand side, so the expansion
// gadget applies to the goal's own frozen triangle and every fire feeds the
// next (see tests/chase_test.cc). With all limits zeroed, only cooperative
// cancellation can stop this job.
Job MakePumpingJob() {
  Presentation p;
  p.AddSymbol("A");
  p.AddEquationFromText("A A0 = A0");
  p.AddAbsorptionEquations();
  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  EXPECT_TRUE(red.ok());
  DualSolverConfig config;
  config.rounds = 1;
  config.base_chase.max_steps = 0;    // unlimited
  config.base_chase.max_tuples = 0;   // unlimited
  config.base_counterexample.max_tuples = 0;
  return Job{"pumping", red.value().dependencies(), red.value().goal(),
             config, 0};
}

// ---- Submit / Wait / Poll --------------------------------------------------

TEST(SolverService, ResultsMatchTheSerialReferenceByteForByte) {
  WorkloadOptions options;
  options.size = 6;
  std::vector<Job> jobs = ReductionSweepWorkload(options);
  BatchSummary serial = RunSerial(jobs);

  ServiceOptions service_options;
  service_options.num_threads = 4;
  SolverService service(service_options);
  std::vector<JobHandle> handles;
  for (const Job& job : jobs) handles.push_back(service.Submit(job));
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_EQ(handles[i].Wait().DeterministicSummary(),
              serial.results[i].DeterministicSummary());
  }
}

TEST(SolverService, PollTransitionsFromNulloptToTheResult) {
  WorkloadOptions options;
  options.size = 1;
  std::vector<Job> jobs = ReductionSweepWorkload(options);
  ServiceOptions service_options;
  service_options.num_threads = 1;
  SolverService service(service_options);
  JobHandle handle = service.Submit(jobs[0]);
  // Poll never blocks; once Wait returns, Poll must agree with it.
  JobResult waited = handle.Wait();
  std::optional<JobResult> polled = handle.Poll();
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->DeterministicSummary(), waited.DeterministicSummary());
  EXPECT_EQ(handle.name(), jobs[0].name);
}

TEST(SolverService, HandlesStayValidAfterTheServiceIsGone) {
  WorkloadOptions options;
  options.size = 2;
  std::vector<Job> jobs = ReductionSweepWorkload(options);
  std::vector<JobHandle> handles;
  {
    SolverService service;
    for (const Job& job : jobs) handles.push_back(service.Submit(job));
  }  // destructor waits for every job
  for (JobHandle& handle : handles) {
    std::optional<JobResult> r = handle.Poll();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, JobStatus::kCompleted);
  }
  // Resume needs the service; after it is gone the call fails cleanly.
  EXPECT_FALSE(handles[0].ResumeWithBudget(DualSolverConfig{}));
}

// ---- Streaming (on_complete) -----------------------------------------------

TEST(SolverService, OnCompleteFiresExactlyOncePerJobInCompletionOrder) {
  WorkloadOptions options;
  options.size = 8;
  std::vector<Job> jobs = ReductionSweepWorkload(options);

  std::mutex mu;
  std::vector<std::string> completed;
  ServiceOptions service_options;
  service_options.num_threads = 2;
  SolverService service(service_options);
  std::vector<JobHandle> handles;
  for (const Job& job : jobs) {
    SubmitOptions submit;
    submit.on_complete = [&mu, &completed](const JobResult& r) {
      std::lock_guard<std::mutex> lock(mu);
      completed.push_back(r.name);
    };
    handles.push_back(service.Submit(job, submit));
  }
  for (const JobHandle& handle : handles) handle.Wait();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(completed.size(), jobs.size());
  std::set<std::string> unique(completed.begin(), completed.end());
  EXPECT_EQ(unique.size(), jobs.size());  // each exactly once
}

TEST(SolverService, PerSubmissionPriorityOverridesJobPriority) {
  // A single worker, pinned by a pumping job while the real jobs are
  // submitted: the queue then drains in per-submission priority order
  // (which inverts both submission order and the jobs' own priorities),
  // observable through completion order.
  ServiceOptions service_options;
  service_options.num_threads = 1;
  SolverService service(service_options);
  JobHandle pumping = SubmitPinnedPumpingJob(&service, MakePumpingJob());

  WorkloadOptions options;
  options.size = 3;
  std::vector<Job> jobs = ReductionSweepWorkload(options);

  std::mutex mu;
  std::vector<std::string> completed;
  std::vector<JobHandle> handles;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SubmitOptions submit;
    submit.priority = static_cast<int>(i);  // later submissions outrank
    submit.on_complete = [&mu, &completed](const JobResult& r) {
      std::lock_guard<std::mutex> lock(mu);
      completed.push_back(r.name);
    };
    handles.push_back(service.Submit(jobs[i], submit));
  }
  // Only now release the worker: all three are queued, so the drain order
  // is purely the priority order.
  pumping.Cancel();
  pumping.Wait();
  for (const JobHandle& handle : handles) handle.Wait();

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(completed, (std::vector<std::string>{jobs[2].name, jobs[1].name,
                                                 jobs[0].name}));
}

// ---- Cancellation ----------------------------------------------------------

TEST(SolverService, CancelStopsAPumpingJobPromptly) {
  // The job never terminates on its own (unbounded budgets, pumping chase);
  // Cancel from another thread must stop it within the cooperative-check
  // cadence. The generous outer bound keeps the test robust on slow CI; the
  // point is that Wait returns AT ALL, with kCancelled.
  ServiceOptions service_options;
  service_options.num_threads = 1;
  SolverService service(service_options);
  JobHandle handle = service.Submit(MakePumpingJob());

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(handle.Poll().has_value());  // genuinely still pumping
  Timer cancel_timer;
  EXPECT_TRUE(handle.Cancel());
  JobResult r = handle.Wait();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_EQ(std::string(r.VerdictName()), "CANCELLED");
  EXPECT_LT(cancel_timer.ElapsedSeconds(), 10.0);
}

TEST(SolverService, CancelQueuedJobMakesItTerminalWithoutRunning) {
  // One worker, occupied by a pumping job: the second submission stays
  // queued, so cancelling it must take effect at admission.
  ServiceOptions service_options;
  service_options.num_threads = 1;
  SolverService service(service_options);
  JobHandle pumping = SubmitPinnedPumpingJob(&service, MakePumpingJob());

  WorkloadOptions options;
  options.size = 1;
  JobHandle queued = service.Submit(ReductionSweepWorkload(options)[0]);
  EXPECT_TRUE(queued.Cancel());
  EXPECT_TRUE(pumping.Cancel());
  EXPECT_EQ(queued.Wait().status, JobStatus::kCancelled);
  EXPECT_EQ(queued.Wait().chase_steps, 0u);  // never ran
  EXPECT_EQ(pumping.Wait().status, JobStatus::kCancelled);
}

TEST(SolverService, CancelFinishedJobIsAHarmlessNoOp) {
  WorkloadOptions options;
  options.size = 1;
  SolverService service;
  JobHandle handle = service.Submit(ReductionSweepWorkload(options)[0]);
  JobResult before = handle.Wait();
  EXPECT_EQ(before.status, JobStatus::kCompleted);
  EXPECT_FALSE(handle.Cancel());  // already terminal: refused
  JobResult after = handle.Wait();
  EXPECT_EQ(after.status, JobStatus::kCompleted);
  EXPECT_EQ(after.DeterministicSummary(), before.DeterministicSummary());
}

TEST(SolverService, CancelSkippedJobIsAHarmlessNoOp) {
  std::atomic<bool> gate{true};  // admission gate already closed
  WorkloadOptions options;
  options.size = 1;
  SolverService service;
  SubmitOptions submit;
  submit.skip_when = &gate;
  JobHandle handle = service.Submit(ReductionSweepWorkload(options)[0],
                                    submit);
  EXPECT_EQ(handle.Wait().status, JobStatus::kSkipped);
  EXPECT_FALSE(handle.Cancel());
  EXPECT_EQ(handle.Wait().status, JobStatus::kSkipped);
}

// ---- Per-submission deadlines ----------------------------------------------

TEST(SolverService, ExpiredSubmissionDeadlineSkipsTheJob) {
  // One worker pinned by a pumping job; the second submission's deadline
  // expires while it queues, so admission skips it.
  ServiceOptions service_options;
  service_options.num_threads = 1;
  SolverService service(service_options);
  JobHandle pumping = SubmitPinnedPumpingJob(&service, MakePumpingJob());

  WorkloadOptions options;
  options.size = 1;
  SubmitOptions submit;
  submit.deadline_seconds = 1e-4;
  JobHandle late = service.Submit(ReductionSweepWorkload(options)[0], submit);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pumping.Cancel();
  EXPECT_EQ(late.Wait().status, JobStatus::kSkipped);
  EXPECT_EQ(pumping.Wait().status, JobStatus::kCancelled);
}

// ---- ResumeWithBudget ------------------------------------------------------

// The gap instance ("A A0 = A0" with the counterexample bound forced to 0)
// exhausts any chase budget with kUnknown — the resume workhorse.
Job MakeGapJob(std::uint64_t chase_steps, int rounds) {
  Presentation p;
  p.AddSymbol("A");
  p.AddEquationFromText("A A0 = A0");
  p.AddAbsorptionEquations();
  NormalizationResult norm = NormalizeTo21(p);
  GurevichLewisReduction red =
      std::move(GurevichLewisReduction::Create(norm.normalized)).value();
  DualSolverConfig config;
  config.rounds = rounds;
  config.base_chase.max_steps = chase_steps;
  config.base_counterexample.max_tuples = 0;  // the empty DB never violates
  return Job{"gap", red.dependencies(), red.goal(), config, 0};
}

TEST(SolverService, ResumeWithBudgetContinuesAndMatchesFromScratch) {
  // Exhaust a small budget, resume with a bigger one; the final result must
  // be byte-identical to running the bigger budget from scratch — the
  // resumed chase continues its checkpoint instead of re-deriving, and the
  // cumulative counters are designed to make that invisible.
  SolverService service;
  JobHandle handle = service.Submit(MakeGapJob(/*chase_steps=*/50,
                                               /*rounds=*/1));
  JobResult first = handle.Wait();
  EXPECT_EQ(first.status, JobStatus::kCompleted);
  EXPECT_EQ(first.verdict, DualVerdict::kUnknown);
  EXPECT_EQ(first.chase_steps, 50u);

  Job big = MakeGapJob(/*chase_steps=*/400, /*rounds=*/1);
  ASSERT_TRUE(handle.ResumeWithBudget(big.config));
  JobResult resumed = handle.Wait();
  JobResult scratch = RunJob(big);
  EXPECT_EQ(resumed.DeterministicSummary(), scratch.DeterministicSummary());
  EXPECT_EQ(resumed.chase_steps, 400u);
}

TEST(SolverService, ResumeAfterResumeKeepsContinuing) {
  SolverService service;
  JobHandle handle = service.Submit(MakeGapJob(25, 1));
  handle.Wait();
  ASSERT_TRUE(handle.ResumeWithBudget(MakeGapJob(100, 1).config));
  handle.Wait();
  ASSERT_TRUE(handle.ResumeWithBudget(MakeGapJob(300, 1).config));
  JobResult resumed = handle.Wait();
  JobResult scratch = RunJob(MakeGapJob(300, 1));
  EXPECT_EQ(resumed.DeterministicSummary(), scratch.DeterministicSummary());
}

TEST(SolverService, SmallerBudgetResumeParksTheSessionForLater) {
  // Resuming with budgets BELOW the recorded progress must not destroy the
  // parked chase: the small run happens beside it, and a later bigger
  // resume still continues the original 50-step state (observable as
  // byte-identity with a from-scratch run at the big budget).
  SolverService service;
  JobHandle handle = service.Submit(MakeGapJob(/*chase_steps=*/50,
                                               /*rounds=*/1));
  EXPECT_EQ(handle.Wait().chase_steps, 50u);

  ASSERT_TRUE(handle.ResumeWithBudget(MakeGapJob(30, 1).config));
  EXPECT_EQ(handle.Wait().chase_steps, 30u);  // fresh throwaway run

  Job big = MakeGapJob(400, 1);
  ASSERT_TRUE(handle.ResumeWithBudget(big.config));
  JobResult resumed = handle.Wait();
  JobResult scratch = RunJob(big);
  EXPECT_EQ(resumed.DeterministicSummary(), scratch.DeterministicSummary());
}

TEST(SolverService, ResumeCanFlipAnUnknownIntoAVerdict) {
  // With enough budget the gap job's enumerator is still hobbled
  // (max_tuples=0), but a REAL sweep job refutes once the chase budget and
  // tuple bound grow: resume to a config with a working enumerator.
  Presentation p;
  p.AddSymbol("A");
  p.AddEquationFromText("A A0 = A0");
  p.AddAbsorptionEquations();
  NormalizationResult norm = NormalizeTo21(p);
  GurevichLewisReduction red =
      std::move(GurevichLewisReduction::Create(norm.normalized)).value();
  DualSolverConfig small;
  small.rounds = 1;
  small.base_chase.max_steps = 100;
  small.base_counterexample.max_tuples = 0;
  Job job{"gap-escalate", red.dependencies(), red.goal(), small, 0};

  SolverService service;
  JobHandle handle = service.Submit(job);
  EXPECT_EQ(handle.Wait().verdict, DualVerdict::kUnknown);

  DualSolverConfig bigger = small;
  bigger.rounds = 2;
  bigger.base_chase.max_steps = 2000;
  bigger.base_counterexample.max_tuples = 3;
  ASSERT_TRUE(handle.ResumeWithBudget(bigger));
  EXPECT_EQ(handle.Wait().verdict, DualVerdict::kRefutedFinite);
}

TEST(SolverService, ResumeAfterQueuedCancelRunsExactlyOnce) {
  // A queued Cancel() leaves the original pool task orphaned in the queue;
  // a subsequent resume must not let that stale task and the resume's own
  // task both execute the run (they would race on the shared session and
  // double-fire the callback). Observable: exactly one callback per run —
  // the cancelled run's and the resumed run's, two in total.
  ServiceOptions service_options;
  service_options.num_threads = 1;
  SolverService service(service_options);
  JobHandle pumping = SubmitPinnedPumpingJob(&service, MakePumpingJob());

  std::mutex mu;
  std::vector<std::string> callbacks;
  Job job = MakeGapJob(/*chase_steps=*/30, /*rounds=*/1);
  SubmitOptions submit;
  submit.on_complete = [&mu, &callbacks](const JobResult& r) {
    std::lock_guard<std::mutex> lock(mu);
    callbacks.push_back(std::string(r.VerdictName()));
  };
  JobHandle handle = service.Submit(job, submit);

  EXPECT_TRUE(handle.Cancel());  // queued: terminal immediately...
  EXPECT_EQ(handle.Wait().status, JobStatus::kCancelled);
  // ...with its stale task still sitting in the queue behind the pump.
  ASSERT_TRUE(handle.ResumeWithBudget(job.config));
  pumping.Cancel();
  pumping.Wait();
  JobResult resumed = handle.Wait();
  EXPECT_EQ(resumed.status, JobStatus::kCompleted);
  EXPECT_EQ(resumed.DeterministicSummary(), RunJob(job).DeterministicSummary());
  service.WaitIdle();  // drain the orphaned task before counting

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(callbacks,
            (std::vector<std::string>{"CANCELLED", "UNKNOWN"}));
}

TEST(SolverService, ResumeWhileRunningIsRefused) {
  SolverService service;
  JobHandle handle = service.Submit(MakePumpingJob());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(handle.ResumeWithBudget(DualSolverConfig{}));
  handle.Cancel();
  EXPECT_EQ(handle.Wait().status, JobStatus::kCancelled);
}

TEST(SolverService, ResumeAfterCancelRunsAgainFromScratch) {
  // A cancelled run leaves no resumable checkpoint (searches were cut
  // mid-stream); Resume must still work, falling back to a fresh run.
  SolverService service;
  JobHandle handle = service.Submit(MakePumpingJob());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  handle.Cancel();
  EXPECT_EQ(handle.Wait().status, JobStatus::kCancelled);

  Job bounded = MakeGapJob(200, 1);
  ASSERT_TRUE(handle.ResumeWithBudget(bounded.config));
  JobResult resumed = handle.Wait();
  EXPECT_EQ(resumed.status, JobStatus::kCompleted);
  // The pumping job's (D, D0) equals the gap job's, so from-scratch under
  // the same budgets is the reference.
  JobResult scratch = RunJob(Job{"pumping", bounded.dependencies,
                                 bounded.goal, bounded.config, 0});
  EXPECT_EQ(resumed.DeterministicSummary(), scratch.DeterministicSummary());
}

}  // namespace
}  // namespace tdlib
