// Serial-vs-pool cross-validation: the parallel match phase must be a pure
// wall-clock optimization. For every workload, chasing with
// ChaseConfig::pool at ANY thread count must produce byte-identical
// terminal instances, identical traces (same fires, same order, same new
// tuple ids), identical statuses — and the exact same number of
// homomorphism-search nodes and match tasks, since the pooled run executes
// the same searches as the serial run, just on more threads.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "chase/implication.h"
#include "core/generators.h"
#include "core/parser.h"
#include "engine/batch_solver.h"
#include "engine/thread_pool.h"
#include "engine/workload.h"
#include "util/rng.h"

namespace tdlib {
namespace {

const int kThreadCounts[] = {1, 2, 4, 8};

void ExpectSameTrace(const ChaseResult& serial, const ChaseResult& pooled,
                     const std::string& label) {
  ASSERT_EQ(serial.trace.size(), pooled.trace.size()) << label;
  for (std::size_t i = 0; i < serial.trace.size(); ++i) {
    EXPECT_EQ(serial.trace[i].dependency_index,
              pooled.trace[i].dependency_index)
        << label << " step " << i;
    EXPECT_EQ(serial.trace[i].new_tuples, pooled.trace[i].new_tuples)
        << label << " step " << i;
    EXPECT_EQ(serial.trace[i].body_match.values,
              pooled.trace[i].body_match.values)
        << label << " step " << i;
  }
}

// Chases `seed` serially (pool = null), then once per thread count with a
// fresh pool, and asserts byte-identical outcomes every time.
void CrossValidate(const Instance& seed, const DependencySet& deps,
                   ChaseConfig base, const std::string& label) {
  base.record_trace = true;
  base.pool = nullptr;
  Instance serial_instance = seed;
  ChaseResult serial = RunChase(&serial_instance, deps, base);
  EXPECT_EQ(serial_instance.CheckInvariants(), "") << label;

  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    ChaseConfig pooled_config = base;
    pooled_config.pool = &pool;
    Instance pooled_instance = seed;
    ChaseResult pooled = RunChase(&pooled_instance, deps, pooled_config);
    std::string tag = label + " threads=" + std::to_string(threads);

    EXPECT_EQ(serial.status, pooled.status) << tag;
    EXPECT_EQ(serial.steps, pooled.steps) << tag;
    EXPECT_EQ(serial.passes, pooled.passes) << tag;
    // The pooled run executes the same set of searches as the serial run,
    // so even the node totals and the task decomposition must agree.
    EXPECT_EQ(serial.hom_nodes, pooled.hom_nodes) << tag;
    EXPECT_EQ(serial.hom_candidates, pooled.hom_candidates) << tag;
    EXPECT_EQ(serial.match_tasks, pooled.match_tasks) << tag;
    ExpectSameTrace(serial, pooled, tag);
    EXPECT_EQ(serial_instance.ToString(), pooled_instance.ToString()) << tag;
    EXPECT_EQ(pooled_instance.CheckInvariants(), "") << tag;
  }
}

// ---- Random TD workloads ----------------------------------------------------

class RandomTdParallelCheck : public ::testing::TestWithParam<int> {};

TEST_P(RandomTdParallelCheck, SerialAndPooledChaseAgreeByteForByte) {
  Rng rng(GetParam() * 9173);
  SchemaPtr schema = MakeSchema({"X0", "X1"});
  TdGeneratorOptions options;
  options.body_rows = 2;
  DependencySet deps;
  deps.Add(RandomDependency(&rng, options, schema));
  deps.Add(RandomDependency(&rng, options, schema));

  Instance seed = RandomInstance(&rng, schema, 3, 4);
  ChaseConfig config;
  config.max_steps = 300;
  config.max_tuples = 1500;
  CrossValidate(seed, deps, config,
                "random seed " + std::to_string(GetParam()));

  // Same workload under a burst cap: carried steps are re-checked by
  // dedicated match tasks, so the carry path must be parallel-safe too.
  config.max_fires_per_pass = 3;
  CrossValidate(seed, deps, config,
                "random capped seed " + std::to_string(GetParam()));

  // Naive matching with a pool: the per-dependency full scans fan out.
  config.max_fires_per_pass = 0;
  config.use_delta = false;
  CrossValidate(seed, deps, config,
                "random naive seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTdParallelCheck,
                         ::testing::Range(1, 16));

// ---- Existential gadgets (labeled-null invention) ---------------------------

TEST(ParallelChaseTest, ExistentialGadgetsInventIdenticalNulls) {
  SchemaPtr schema = MakeSchema({"A", "B"});
  // Each fire invents nulls; byte-identity means serial and pooled runs
  // must invent them in exactly the same order with the same auto-names.
  const char* programs[] = {
      "R(a,b) & R(a2,b2) => R(a,b3)",
      "R(a,b) => R(a2,b)",
      "R(a,b) & R(a,b2) => R(a3,b) & R(a3,b2)",
  };
  for (const char* text : programs) {
    DependencySet deps;
    deps.Add(std::move(ParseDependency(schema, text)).value());
    Instance seed(schema);
    for (int v = 0; v < 3; ++v) {
      seed.AddValue(0);
      seed.AddValue(1);
    }
    seed.AddTuple({0, 0});
    seed.AddTuple({1, 2});
    ChaseConfig config;
    config.max_steps = 40;  // these gadgets need not terminate
    config.max_tuples = 400;
    CrossValidate(seed, deps, config, text);
  }
}

// ---- Cross-product closure (the chase throughput workload) ------------------

TEST(ParallelChaseTest, CrossProductClosureIdentical) {
  SchemaPtr schema = MakeSchema({"A", "B"});
  DependencySet deps;
  deps.Add(std::move(
               ParseDependency(schema, "R(a,b) & R(a2,b2) => R(a,b2)"))
               .value(),
           "cross");
  Rng rng(42);
  Instance seed(schema);
  const int domain = 8;
  for (int attr = 0; attr < 2; ++attr) {
    for (int v = 0; v < domain; ++v) seed.AddValue(attr);
  }
  for (int i = 0; i < 16; ++i) {
    seed.AddTuple({static_cast<int>(rng.Below(domain)),
                   static_cast<int>(rng.Below(domain))});
  }
  ChaseConfig config;
  config.max_steps = 0;
  config.max_tuples = 0;
  CrossValidate(seed, deps, config, "cross-product closure");

  // The bounded-burst production regime, where carried steps accumulate.
  config.max_fires_per_pass = 16;
  CrossValidate(seed, deps, config, "cross-product closure cap=16");
}

// ---- Zigzag reachability closure --------------------------------------------

TEST(ParallelChaseTest, ZigzagReachabilityIdentical) {
  SchemaPtr schema = MakeSchema({"A", "B"});
  DependencySet deps;
  deps.Add(std::move(ParseDependency(
               schema, "R(a,b) & R(a2,b) & R(a2,b2) => R(a,b2)"))
               .value(),
           "reach");
  const int n = 12;
  Instance seed(schema);
  seed.Reserve(static_cast<std::size_t>(n) * n, n + 1);
  for (int v = 0; v <= n; ++v) {
    seed.AddValue(0);
    seed.AddValue(1);
  }
  for (int i = 0; i < n; ++i) {
    seed.AddTuple({i, i});
    seed.AddTuple({i + 1, i});
  }
  ChaseConfig config;
  config.max_steps = 0;
  config.max_tuples = 0;
  CrossValidate(seed, deps, config, "zigzag reachability");
}

// ---- Work-stealing slices for few-member passes -----------------------------

TEST(ParallelChaseTest, SeedRowSlicesStayByteIdenticalAtEveryWidth) {
  // A single-dependency chase produces only |body rows| partition members
  // per pass; match_slice_ids cuts each member's seed-row delta range into
  // sub-tasks so a wide pool still gets fed. Tiny slices (2 ids) force the
  // splitter on from the first delta pass; serial and pooled runs must stay
  // byte-identical — including hom_nodes and the (larger) match_tasks —
  // because the slicing depends on the delta, never on the pool.
  SchemaPtr schema = MakeSchema({"A", "B"});
  DependencySet deps;
  deps.Add(std::move(ParseDependency(
               schema, "R(a,b) & R(a2,b) & R(a2,b2) => R(a,b2)"))
               .value(),
           "reach");
  const int n = 10;
  Instance seed(schema);
  for (int v = 0; v <= n; ++v) {
    seed.AddValue(0);
    seed.AddValue(1);
  }
  for (int i = 0; i < n; ++i) {
    seed.AddTuple({i, i});
    seed.AddTuple({i + 1, i});
  }
  ChaseConfig config;
  config.max_steps = 0;
  config.max_tuples = 0;
  config.match_slice_ids = 2;
  CrossValidate(seed, deps, config, "zigzag sliced (2-id slices)");

  // The splitter must actually have engaged: the same chase without slicing
  // decomposes into strictly fewer match tasks.
  Instance sliced_instance = seed;
  ChaseResult sliced = RunChase(&sliced_instance, deps, config);
  ChaseConfig unsliced_config = config;
  unsliced_config.match_slice_ids = 0;
  Instance unsliced_instance = seed;
  ChaseResult unsliced = RunChase(&unsliced_instance, deps, unsliced_config);
  EXPECT_GT(sliced.match_tasks, unsliced.match_tasks);
  // Slicing is invisible in the chase's output: same fires, same instance.
  EXPECT_EQ(sliced.steps, unsliced.steps);
  EXPECT_EQ(sliced_instance.ToString(), unsliced_instance.ToString());
}

// ---- Reduction sweep (the paper's gadget instances) -------------------------

class ReductionSweepParallelCheck : public ::testing::TestWithParam<int> {};

TEST_P(ReductionSweepParallelCheck, ImplicationAgreesOnSweepJobs) {
  WorkloadOptions options;
  options.size = 8;
  std::vector<Job> jobs = ReductionSweepWorkload(options);
  const Job& job = jobs[GetParam() % jobs.size()];

  ChaseConfig base = job.config.base_chase;
  base.record_trace = true;
  // Keep capped runs inside test time: the uncapped step budget would mean
  // thousands of small passes on the gap-regime jobs.
  base.max_steps = 400;

  for (std::uint64_t cap : {std::uint64_t{0}, std::uint64_t{16}}) {
    ChaseConfig serial_config = base;
    serial_config.max_fires_per_pass = cap;
    serial_config.pool = nullptr;
    ImplicationResult serial =
        ChaseImplies(job.dependencies, job.goal, serial_config);

    for (int threads : kThreadCounts) {
      ThreadPool pool(threads);
      ChaseConfig pooled_config = serial_config;
      pooled_config.pool = &pool;
      ImplicationResult pooled =
          ChaseImplies(job.dependencies, job.goal, pooled_config);

      std::string label = job.name + " cap=" + std::to_string(cap) +
                          " threads=" + std::to_string(threads);
      EXPECT_EQ(serial.verdict, pooled.verdict) << label;
      EXPECT_EQ(serial.chase.status, pooled.chase.status) << label;
      EXPECT_EQ(serial.chase.steps, pooled.chase.steps) << label;
      EXPECT_EQ(serial.chase.passes, pooled.chase.passes) << label;
      EXPECT_EQ(serial.chase.hom_nodes, pooled.chase.hom_nodes) << label;
      EXPECT_EQ(serial.chase.match_tasks, pooled.chase.match_tasks) << label;
      ExpectSameTrace(serial.chase, pooled.chase, label);
      ASSERT_EQ(serial.counterexample.has_value(),
                pooled.counterexample.has_value())
          << label;
      if (serial.counterexample.has_value()) {
        EXPECT_EQ(serial.counterexample->ToString(),
                  pooled.counterexample->ToString())
            << label;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Jobs, ReductionSweepParallelCheck,
                         ::testing::Range(0, 8));

// ---- The engine end to end --------------------------------------------------

TEST(ParallelChaseTest, BatchChaseParallelismPreservesDeterministicSummary) {
  // The batch pool is lent to every job's chase (two-level parallelism on
  // one pool); the deterministic summary must not notice.
  WorkloadOptions options;
  options.size = 6;
  std::vector<Job> jobs = ReductionSweepWorkload(options);

  BatchSummary reference = RunSerial(jobs);
  for (int threads : kThreadCounts) {
    BatchOptions pooled;
    pooled.num_threads = threads;
    pooled.chase_parallelism = true;
    BatchSummary nested = BatchSolver(pooled).Run(jobs);
    EXPECT_EQ(nested.DeterministicSummary(), reference.DeterministicSummary())
        << "threads=" << threads;

    BatchOptions flat = pooled;
    flat.chase_parallelism = false;
    BatchSummary unnested = BatchSolver(flat).Run(jobs);
    EXPECT_EQ(unnested.DeterministicSummary(),
              reference.DeterministicSummary())
        << "threads=" << threads << " (chase_parallelism off)";
  }
}

// ---- Degenerate pools -------------------------------------------------------

TEST(ParallelChaseTest, SingleThreadPoolIsTheSerialAlgorithm) {
  // ParallelFor's serial fallback triggers for width-1 pools: the chase
  // must not even submit helper tasks, just run inline.
  SchemaPtr schema = MakeSchema({"A", "B"});
  DependencySet deps;
  deps.Add(std::move(
               ParseDependency(schema, "R(a,b) & R(a2,b2) => R(a,b2)"))
               .value());
  Instance seed(schema);
  for (int v = 0; v < 4; ++v) {
    seed.AddValue(0);
    seed.AddValue(1);
  }
  seed.AddTuple({0, 1});
  seed.AddTuple({1, 2});
  seed.AddTuple({2, 3});

  ThreadPool pool(1);
  ChaseConfig config;
  config.pool = &pool;
  config.record_trace = true;
  Instance pooled_instance = seed;
  ChaseResult pooled = RunChase(&pooled_instance, deps, config);
  EXPECT_EQ(pool.QueueDepth(), 0u);

  config.pool = nullptr;
  Instance serial_instance = seed;
  ChaseResult serial = RunChase(&serial_instance, deps, config);
  EXPECT_EQ(serial.status, pooled.status);
  EXPECT_EQ(serial.hom_nodes, pooled.hom_nodes);
  EXPECT_EQ(serial_instance.ToString(), pooled_instance.ToString());
}

}  // namespace
}  // namespace tdlib
