// Tests for the semigroup substrate: words, presentations, normalization,
// the word-problem search, multiplication tables, and the model finder.
#include <gtest/gtest.h>

#include "semigroup/model_search.h"
#include "semigroup/normalizer.h"
#include "semigroup/presentation.h"
#include "semigroup/quotient.h"
#include "semigroup/rewrite.h"
#include "semigroup/table.h"
#include "semigroup/word.h"

namespace tdlib {
namespace {

TEST(Word, FindOccurrences) {
  Word w{1, 2, 1, 2, 1};
  EXPECT_EQ(FindOccurrences(w, {1, 2}), (std::vector<int>{0, 2}));
  EXPECT_EQ(FindOccurrences(w, {1}), (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(FindOccurrences(w, {2, 2}), (std::vector<int>{}));
  EXPECT_EQ(FindOccurrences(w, {1, 2, 1, 2, 1}), (std::vector<int>{0}));
  EXPECT_EQ(FindOccurrences(w, {1, 2, 1, 2, 1, 1}), (std::vector<int>{}));
}

TEST(Word, ReplaceAt) {
  Word w{1, 2, 3};
  EXPECT_EQ(ReplaceAt(w, 0, {1, 2}, {9}), (Word{9, 3}));
  EXPECT_EQ(ReplaceAt(w, 2, {3}, {7, 8}), (Word{1, 2, 7, 8}));
  EXPECT_EQ(ReplaceAt(w, 1, {2}, {2}), w);
}

TEST(Presentation, DistinguishedSymbolsPreInterned) {
  Presentation p;
  EXPECT_EQ(p.zero(), 0);
  EXPECT_EQ(p.a0(), 1);
  EXPECT_EQ(p.SymbolName(0), "0");
  EXPECT_EQ(p.SymbolName(1), "A0");
  EXPECT_EQ(p.SymbolId("0"), 0);
  EXPECT_EQ(p.AddSymbol("A0"), 1);  // idempotent
}

TEST(Presentation, EquationFromText) {
  Presentation p;
  EXPECT_TRUE(p.AddEquationFromText("A B = C"));
  EXPECT_EQ(p.equations().size(), 1u);
  EXPECT_EQ(p.equations()[0].lhs.size(), 2u);
  EXPECT_EQ(p.equations()[0].rhs.size(), 1u);
  EXPECT_EQ(p.num_symbols(), 5);  // 0, A0, A, B, C
  EXPECT_FALSE(p.AddEquationFromText("no equals sign"));
  EXPECT_FALSE(p.AddEquationFromText(" = B"));
  EXPECT_FALSE(p.AddEquationFromText("A = "));
}

TEST(Presentation, AbsorptionIsIdempotentAndComplete) {
  Presentation p;
  p.AddSymbol("A");
  p.AddAbsorptionEquations();
  std::size_t count = p.equations().size();
  p.AddAbsorptionEquations();
  EXPECT_EQ(p.equations().size(), count);
  EXPECT_TRUE(p.HasAbsorptionEquations());
  Presentation q;
  q.AddSymbol("A");
  EXPECT_FALSE(q.HasAbsorptionEquations());
}

TEST(Presentation, NormalizedPredicate) {
  Presentation p;
  p.AddEquationFromText("A B = C");
  EXPECT_TRUE(p.IsNormalized());
  p.AddEquationFromText("A B C = D");
  EXPECT_FALSE(p.IsNormalized());
}

TEST(Presentation, InvariantsCatchEmptySides) {
  Presentation p;
  p.AddEquation(Word{}, Word{p.zero()});
  EXPECT_NE(p.CheckInvariants(), "");
}

TEST(Normalizer, PaperExampleAbcEqualsDa) {
  // "if phi contains a conjunct ABC = DA ... add the equations AB = E and
  //  DA = F, and replace ABC = DA by EC = F."
  Presentation p;
  p.AddEquationFromText("A B C = D A");
  p.AddAbsorptionEquations();
  NormalizationResult result = NormalizeTo21(p);
  EXPECT_TRUE(result.normalized.IsNormalized());
  EXPECT_TRUE(result.normalized.HasAbsorptionEquations());
  // Two subwords (AB and DA) were named.
  EXPECT_EQ(result.introduced.size(), 2u);
  EXPECT_TRUE(result.aliases.empty());
}

TEST(Normalizer, SharedSubwordsNamedOnce) {
  Presentation p;
  p.AddEquationFromText("A B C = D");
  p.AddEquationFromText("A B D = C");
  NormalizationResult result = NormalizeTo21(p);
  // AB appears in both; it must be named exactly once.
  int ab_count = 0;
  for (const auto& [sym, subword] : result.introduced) {
    if (subword == Word{p.SymbolId("A"), p.SymbolId("B")}) ++ab_count;
  }
  EXPECT_EQ(ab_count, 1);
}

TEST(Normalizer, AliasesEliminatedBySubstitution) {
  Presentation p;
  int a = p.AddSymbol("A");
  int b = p.AddSymbol("B");
  p.AddEquation(Word{a}, Word{b});       // alias A = B
  p.AddEquationFromText("B B = B");
  NormalizationResult result = NormalizeTo21(p);
  EXPECT_TRUE(result.normalized.IsNormalized());
  ASSERT_EQ(result.aliases.size(), 1u);
  // The larger id is replaced by the smaller (distinguished symbols first).
  EXPECT_EQ(result.aliases[0].first, b);
  EXPECT_EQ(result.aliases[0].second, a);
}

TEST(Normalizer, PreservesWordProblemAnswer) {
  // Ground truth via bounded quotients: A0 ~ 0 before normalization iff
  // after (on a derivable instance).
  Presentation p;
  p.AddEquationFromText("A0 A0 A0 = A0");  // length-3 lhs
  p.AddEquationFromText("A0 A0 A0 = 0");
  p.AddAbsorptionEquations();
  WordProblemResult before = ProveA0IsZero(p);
  ASSERT_EQ(before.status, WordProblemStatus::kEqual);
  NormalizationResult norm = NormalizeTo21(p);
  WordProblemResult after = ProveA0IsZero(norm.normalized);
  EXPECT_EQ(after.status, WordProblemStatus::kEqual);
}

TEST(WordProblem, DerivationEndpointsAndSteps) {
  Presentation p;
  p.AddEquationFromText("A0 A0 = A0");
  p.AddEquationFromText("A0 A0 = 0");
  p.AddAbsorptionEquations();
  WordProblemResult r = ProveA0IsZero(p);
  ASSERT_EQ(r.status, WordProblemStatus::kEqual);
  ASSERT_GE(r.derivation.size(), 2u);
  EXPECT_EQ(r.derivation.front(), Word{p.a0()});
  EXPECT_EQ(r.derivation.back(), Word{p.zero()});
  // Every consecutive pair differs by one equation application.
  for (std::size_t i = 0; i + 1 < r.derivation.size(); ++i) {
    bool ok = false;
    for (const Equation& eq : p.equations()) {
      for (int dir = 0; dir < 2 && !ok; ++dir) {
        const Word& pat = dir == 0 ? eq.lhs : eq.rhs;
        const Word& rep = dir == 0 ? eq.rhs : eq.lhs;
        for (int off : FindOccurrences(r.derivation[i], pat)) {
          if (ReplaceAt(r.derivation[i], off, pat, rep) ==
              r.derivation[i + 1]) {
            ok = true;
            break;
          }
        }
      }
    }
    EXPECT_TRUE(ok) << "step " << i;
  }
}

TEST(WordProblem, IdenticalWordsTriviallyEqual) {
  Presentation p;
  p.AddAbsorptionEquations();
  WordProblemResult r = ProveEqual(p, Word{p.a0()}, Word{p.a0()});
  EXPECT_EQ(r.status, WordProblemStatus::kEqual);
  EXPECT_EQ(r.derivation.size(), 1u);
}

TEST(WordProblem, ExhaustsWithinLengthBound) {
  Presentation p;
  p.AddAbsorptionEquations();
  WordProblemConfig config;
  config.max_word_length = 4;
  WordProblemResult r = ProveA0IsZero(p, config);
  EXPECT_EQ(r.status, WordProblemStatus::kExhausted);
}

TEST(WordProblem, StateLimitReported) {
  Presentation p;
  p.AddEquationFromText("A0 A0 = A0");  // pumps words of growing length
  p.AddAbsorptionEquations();
  WordProblemConfig config;
  config.max_word_length = 30;
  config.max_states = 10;
  WordProblemResult r = ProveA0IsZero(p, config);
  EXPECT_EQ(r.status, WordProblemStatus::kLimit);
}

TEST(Table, NullSemigroupProperties) {
  MultiplicationTable null2 = MultiplicationTable::Null(2);
  EXPECT_TRUE(null2.IsAssociative());
  EXPECT_EQ(null2.ZeroElement(), std::optional<int>(0));
  EXPECT_FALSE(null2.IdentityElement().has_value());
  EXPECT_TRUE(null2.HasCancellationProperty());
}

TEST(Table, TrivialSemigroupHasIdentity) {
  // {0} with 0*0=0: 0 is both zero and identity.
  MultiplicationTable t(1);
  EXPECT_TRUE(t.IdentityElement().has_value());
  EXPECT_TRUE(t.ZeroElement().has_value());
}

TEST(Table, CyclicGroupProperties) {
  MultiplicationTable z3 = MultiplicationTable::CyclicGroup(3);
  EXPECT_TRUE(z3.IsAssociative());
  EXPECT_EQ(z3.IdentityElement(), std::optional<int>(0));
  EXPECT_FALSE(z3.ZeroElement().has_value());
  EXPECT_FALSE(z3.HasCancellationProperty());  // requires a zero
}

TEST(Table, CyclicGroupWithZeroSatisfiesCancellationI) {
  MultiplicationTable t = MultiplicationTable::CyclicGroupWithZero(3);
  EXPECT_TRUE(t.IsAssociative());
  EXPECT_EQ(t.ZeroElement(), std::optional<int>(0));
  EXPECT_TRUE(t.IdentityElement().has_value());
  EXPECT_TRUE(t.HasCancellationProperty());  // (i) suffices: has identity
}

TEST(Table, CancellationIIFailsWithAbsorbingNonZero) {
  // x*y = x for x != 0 violates condition (ii).
  MultiplicationTable t(3);
  t.SetProduct(1, 2, 1);
  EXPECT_FALSE(t.SatisfiesCancellationII(0));
  MultiplicationTable null3 = MultiplicationTable::Null(3);
  EXPECT_TRUE(null3.SatisfiesCancellationII(0));
}

TEST(Table, AdjoinIdentityBehaves) {
  MultiplicationTable g = MultiplicationTable::Null(2);
  MultiplicationTable g_prime = g.AdjoinIdentity();
  EXPECT_EQ(g_prime.size(), 3);
  EXPECT_EQ(g_prime.IdentityElement(), std::optional<int>(2));
  EXPECT_EQ(g_prime.ZeroElement(), std::optional<int>(0));
  // The paper's lemma inside part (B): G' keeps the cancellation property.
  EXPECT_TRUE(g_prime.SatisfiesCancellationI(0));
  // Old products unchanged.
  EXPECT_EQ(g_prime.Product(1, 1), 0);
}

TEST(Table, EvaluateWordFollowsAssignment) {
  MultiplicationTable z3 = MultiplicationTable::CyclicGroup(3);
  // Symbols 0 -> 1, A0 -> 2; word A0 A0 A0 evaluates to 2+2+2 mod 3 = 0.
  std::vector<int> assignment{1, 2};
  EXPECT_EQ(z3.EvaluateWord(Word{1, 1, 1}, assignment), 0);
  EXPECT_EQ(z3.EvaluateElements({2, 2}), 1);
}

TEST(Table, SatisfiesEquationAndPresentation) {
  Presentation p;
  p.AddEquationFromText("A0 A0 = 0");
  MultiplicationTable null2 = MultiplicationTable::Null(2);
  std::vector<int> good{0, 1, 0};  // 0->0, A0->1 (num_symbols may be 2)
  good.resize(p.num_symbols());
  EXPECT_TRUE(null2.SatisfiesPresentation(p, good));
}

TEST(ModelSearch, SeedsFindNullSemigroupForAbsorptionOnly) {
  Presentation p;
  p.AddAbsorptionEquations();
  ModelSearchResult r = FindRefutingSemigroup(p);
  ASSERT_EQ(r.status, ModelSearchStatus::kFound);
  EXPECT_EQ(r.witness->Verify(p), "");
}

TEST(ModelSearch, ExhaustsWhenA0MustVanish) {
  Presentation p;
  p.AddEquationFromText("A0 A0 = A0");
  p.AddEquationFromText("A0 A0 = 0");
  p.AddAbsorptionEquations();
  ModelSearchConfig config;
  config.max_size = 3;
  ModelSearchResult r = FindRefutingSemigroup(p, config);
  EXPECT_EQ(r.status, ModelSearchStatus::kExhausted);
  EXPECT_GT(r.tables_checked, 0u);
}

TEST(ModelSearch, GapPresentationHasNoRefuter) {
  // x * a = a with a != 0 contradicts cancellation (ii): exhausts.
  Presentation p;
  p.AddEquationFromText("A A0 = A0");
  p.AddAbsorptionEquations();
  ModelSearchConfig config;
  config.max_size = 3;
  ModelSearchResult r = FindRefutingSemigroup(p, config);
  EXPECT_EQ(r.status, ModelSearchStatus::kExhausted);
}

TEST(ModelSearch, BruteForceFindsWitnessBeyondSeeds) {
  // "A A = 0" with A0 free: the null semigroup works, but disable seeds to
  // exercise the brute-force path.
  Presentation p;
  p.AddSymbol("A");
  p.AddEquationFromText("A A = 0");
  p.AddAbsorptionEquations();
  ModelSearchConfig config;
  config.use_seeds = false;
  config.max_size = 2;
  ModelSearchResult r = FindRefutingSemigroup(p, config);
  ASSERT_EQ(r.status, ModelSearchStatus::kFound);
  EXPECT_EQ(r.witness->Verify(p), "");
}

TEST(Quotient, ClassesMergeUnderEquations) {
  Presentation p;
  p.AddEquationFromText("A0 A0 = A0");
  BoundedQuotient q(p, 3);
  EXPECT_TRUE(q.Equivalent(Word{p.a0()}, Word{p.a0(), p.a0()}));
  EXPECT_TRUE(q.Equivalent(Word{p.a0()}, Word{p.a0(), p.a0(), p.a0()}));
  EXPECT_FALSE(q.Equivalent(Word{p.a0()}, Word{p.zero()}));
}

TEST(Quotient, AgreesWithWordProblemSearch) {
  Presentation p;
  p.AddEquationFromText("A0 A0 = A0");
  p.AddEquationFromText("A0 A0 = 0");
  p.AddAbsorptionEquations();
  BoundedQuotient q(p, 4);
  EXPECT_TRUE(q.Equivalent(Word{p.a0()}, Word{p.zero()}));
  EXPECT_EQ(ProveA0IsZero(p).status, WordProblemStatus::kEqual);
}

TEST(Quotient, CountsWordsExactly) {
  Presentation p;  // 2 symbols, no equations
  BoundedQuotient q(p, 3);
  // 2 + 4 + 8 words of length 1..3.
  EXPECT_EQ(q.num_words(), 14u);
  EXPECT_EQ(q.num_classes(), 14u);  // nothing merges
  EXPECT_EQ(q.ClassOf(Word{0, 0, 0, 0}), -1);  // beyond the bound
}

}  // namespace
}  // namespace tdlib
