// Cross-module integration tests: full pipelines mirroring the paper's
// storyline, from presentations through the reduction to verdicts.
#include <gtest/gtest.h>

#include "chase/dual_solver.h"
#include "chase/full_td.h"
#include "chase/termination.h"
#include "core/parser.h"
#include "core/satisfaction.h"
#include "reduction/part_a.h"
#include "reduction/part_b.h"
#include "semigroup/normalizer.h"
#include "semigroup/quotient.h"

namespace tdlib {
namespace {

// ---- The headline pipeline: word problem <-> TD inference ------------------

TEST(Integration, PositiveInstanceEndToEnd) {
  // Word-problem positive => (A): D |= D0, witnessed three independent ways
  // (scripted replay, bridge invariants, black-box chase).
  Presentation p;
  p.AddEquationFromText("A0 A0 = A0");
  p.AddEquationFromText("A0 A0 = 0");
  p.AddAbsorptionEquations();
  PartAConfig config;
  config.chase.max_steps = 50000;
  PartAResult a = RunPartA(p, config);
  EXPECT_EQ(a.word_problem.status, WordProblemStatus::kEqual);
  EXPECT_TRUE(a.replay_reached_goal);
  EXPECT_EQ(a.black_box.verdict, Implication::kImplied);
  EXPECT_TRUE(a.consistent);

  // ... and the other side must find nothing: no refuting semigroup.
  ModelSearchConfig search;
  search.max_size = 3;
  PartBResult b = RunPartB(p, search);
  EXPECT_EQ(b.model_search.status, ModelSearchStatus::kExhausted);
}

TEST(Integration, NegativeInstanceEndToEnd) {
  // Word-problem negative with a finite refuter => (B): a finite database
  // satisfies D and violates D0 — and the dual solver refutes implication.
  Presentation p;
  p.AddSymbol("B");
  p.AddEquationFromText("B B = B");  // idempotent letter; A0 unconstrained
  p.AddAbsorptionEquations();

  PartBResult b = RunPartB(p);
  ASSERT_EQ(b.model_search.status, ModelSearchStatus::kFound);
  EXPECT_TRUE(b.verified) << b.message;

  NormalizationResult norm = NormalizeTo21(p);
  Result<GurevichLewisReduction> red =
      GurevichLewisReduction::Create(norm.normalized);
  ASSERT_TRUE(red.ok());
  // The constructed database is a concrete finite counterexample, so D
  // does NOT imply D0 (finite interpretation); verify by model checking
  // rather than by chase (which may diverge).
  EXPECT_EQ(FirstViolated(red.value().dependencies(), b.db->database), -1);
  EXPECT_EQ(CheckSatisfaction(red.value().goal(), b.db->database).verdict,
            Satisfaction::kViolated);
}

TEST(Integration, EffectiveInseparabilityPlayedOut) {
  // The two promise sets of the Main Theorem, on live instances:
  //   positive family: "A0 A0 = A0" + "A0 A0 = 0"  -> implied
  //   negative family: absorption only              -> finitely refuted
  // and a gap instance where both searches are doomed.
  {
    Presentation pos;
    pos.AddEquationFromText("A0 A0 = A0");
    pos.AddEquationFromText("A0 A0 = 0");
    pos.AddAbsorptionEquations();
    NormalizationResult norm = NormalizeTo21(pos);
    Result<GurevichLewisReduction> red =
        GurevichLewisReduction::Create(norm.normalized);
    ASSERT_TRUE(red.ok());
    DualSolverConfig config;
    config.base_chase.max_steps = 50000;
    DualResult r = SolveImplication(red.value().dependencies(),
                                    red.value().goal(), config);
    EXPECT_EQ(r.verdict, DualVerdict::kImplied);
  }
  {
    Presentation neg;
    neg.AddAbsorptionEquations();
    NormalizationResult norm = NormalizeTo21(neg);
    Result<GurevichLewisReduction> red =
        GurevichLewisReduction::Create(norm.normalized);
    ASSERT_TRUE(red.ok());
    DualResult r =
        SolveImplication(red.value().dependencies(), red.value().goal());
    EXPECT_TRUE(r.verdict == DualVerdict::kRefutedByFixpoint ||
                r.verdict == DualVerdict::kRefutedFinite);
  }
  {
    // Gap at the SEMIGROUP level: "A A0 = A0" is neither derivable nor
    // refutable inside the Main Lemma's semigroup class. The chase side
    // pumps forever — but the database-level enumerator still finds a tiny
    // counterexample (parts (A)/(B) are sufficient conditions, not a
    // dichotomy over all inputs). Either way, never implied.
    Presentation gap;
    gap.AddEquationFromText("A A0 = A0");
    gap.AddAbsorptionEquations();
    NormalizationResult norm = NormalizeTo21(gap);
    Result<GurevichLewisReduction> red =
        GurevichLewisReduction::Create(norm.normalized);
    ASSERT_TRUE(red.ok());
    DualSolverConfig config;
    config.rounds = 1;
    config.base_chase.max_steps = 50;
    config.base_counterexample.max_tuples = 2;
    DualResult r = SolveImplication(red.value().dependencies(),
                                    red.value().goal(), config);
    EXPECT_EQ(r.verdict, DualVerdict::kRefutedFinite);
  }
}

// ---- Parameter claims (the paper's comparison with Vardi) ------------------

TEST(Integration, AntecedentsBoundedAttributesUnbounded) {
  // Sweep presentations with growing alphabets: antecedents stay <= 5 while
  // attributes grow as 2n + 2.
  for (int extra = 0; extra <= 6; ++extra) {
    Presentation p;
    for (int s = 0; s < extra; ++s) {
      p.AddSymbol("S" + std::to_string(s));
    }
    p.AddAbsorptionEquations();
    NormalizationResult norm = NormalizeTo21(p);
    Result<GurevichLewisReduction> red =
        GurevichLewisReduction::Create(norm.normalized);
    ASSERT_TRUE(red.ok());
    EXPECT_LE(red.value().MaxAntecedents(), 5);
    EXPECT_EQ(red.value().arity(), 2 * (2 + extra) + 2);
  }
}

// ---- Decidable fragment sanity ----------------------------------------------

TEST(Integration, FullFragmentStaysDecidableAndWeaklyAcyclic) {
  SchemaPtr schema = MakeSchema({"A", "B", "C"});
  DependencySet d;
  auto add = [&](const std::string& text) {
    Result<Dependency> dep = ParseDependency(schema, text);
    ASSERT_TRUE(dep.ok()) << dep.error();
    d.Add(std::move(dep).value());
  };
  add("R(a,b,c) & R(a,b2,c2) => R(a,b,c2)");
  add("R(a,b,c) & R(a2,b,c) => R(a2,b,c)");
  EXPECT_TRUE(IsWeaklyAcyclic(d));
  Result<Dependency> goal = ParseDependency(
      schema, "R(a,b,c) & R(a,b2,c2) & R(a,b3,c3) => R(a,b,c3)");
  ASSERT_TRUE(goal.ok());
  std::string error;
  EXPECT_TRUE(DecideFullTdImplication(d, goal.value(), &error));
  EXPECT_EQ(error, "");
}

// ---- Bounded quotient as semantic ground truth -------------------------------

TEST(Integration, QuotientValidatesWordProblemOnFamily) {
  for (int variant = 0; variant < 4; ++variant) {
    Presentation p;
    p.AddEquationFromText("A0 A0 = A0");
    if (variant % 2 == 1) p.AddEquationFromText("A0 A0 = 0");
    p.AddAbsorptionEquations();
    BoundedQuotient q(p, 4);
    WordProblemConfig config;
    config.max_word_length = 4;
    WordProblemResult search = ProveA0IsZero(p, config);
    EXPECT_EQ(q.Equivalent(Word{p.a0()}, Word{p.zero()}),
              search.status == WordProblemStatus::kEqual)
        << "variant " << variant;
  }
}

// ---- The garment storyline from the introduction -----------------------------

TEST(Integration, GarmentCatalogStory) {
  SchemaPtr schema = MakeSchema({"SUPPLIER", "STYLE", "SIZE"});
  SchemaPtr parsed_schema;
  Result<DependencySet> program = ParseDependencyProgram(R"(
schema SUPPLIER STYLE SIZE
td fig1: R(a,b,c) & R(a,b2,c2) => R(a9,b,c2)
td eid:  R(a,b,c) & R(a,b2,c2) => R(a9,b,c) & R(a9,b,c2)
)",
                                                         &parsed_schema);
  ASSERT_TRUE(program.ok()) << program.error();
  const Dependency& fig1 = program.value().items[0];
  const Dependency& eid = program.value().items[1];

  // The EID implies the TD (its conclusion set contains the TD's), never
  // vice versa — "Since EIDs are more general than template dependencies".
  DependencySet just_eid;
  just_eid.Add(eid.RenameVariables("_e"));
  ChaseConfig config;
  config.max_steps = 1000;
  EXPECT_EQ(ChaseImplies(just_eid, fig1, config).verdict,
            Implication::kImplied);
  DependencySet just_td;
  just_td.Add(fig1.RenameVariables("_t"));
  ImplicationResult back = ChaseImplies(just_td, eid, config);
  EXPECT_NE(back.verdict, Implication::kImplied);
}

}  // namespace
}  // namespace tdlib
