// Tests for the homomorphism search engine, including the ablation knobs
// (index, dynamic ordering, posting-list intersection) that the EXP-CHASE
// and layout benches sweep.
#include "logic/homomorphism.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace tdlib {
namespace {

// Schema {A, B}; instance with a small "join graph".
class HomTest : public ::testing::Test {
 protected:
  HomTest() : schema_(MakeSchema({"A", "B"})), inst_(schema_) {
    // Domain A: 0,1,2; Domain B: 0,1.
    for (int i = 0; i < 3; ++i) inst_.AddValue(0);
    for (int i = 0; i < 2; ++i) inst_.AddValue(1);
    inst_.AddTuple({0, 0});
    inst_.AddTuple({1, 0});
    inst_.AddTuple({1, 1});
    inst_.AddTuple({2, 1});
  }
  SchemaPtr schema_;
  Instance inst_;
};

TEST_F(HomTest, SingleRowMatchesAnyTuple) {
  Tableau t(schema_);
  t.AddRow({t.NewVariable(0), t.NewVariable(1)});
  int count = 0;
  HomomorphismSearch search(t, inst_);
  EXPECT_EQ(search.ForEach([&](const Valuation&) {
    ++count;
    return true;
  }),
            HomSearchStatus::kExhausted);
  EXPECT_EQ(count, 4);  // one hom per tuple
}

TEST_F(HomTest, JoinThroughSharedVariable) {
  // R(a, b) & R(a', b): pairs of tuples agreeing on B.
  Tableau t(schema_);
  int a = t.NewVariable(0);
  int a2 = t.NewVariable(0);
  int b = t.NewVariable(1);
  t.AddRow({a, b});
  t.AddRow({a2, b});
  int count = 0;
  HomomorphismSearch search(t, inst_);
  search.ForEach([&](const Valuation&) {
    ++count;
    return true;
  });
  // B=0 has 2 tuples -> 4 ordered pairs; B=1 has 2 tuples -> 4 pairs.
  EXPECT_EQ(count, 8);
}

TEST_F(HomTest, InitialValuationRestricts) {
  Tableau t(schema_);
  int a = t.NewVariable(0);
  int b = t.NewVariable(1);
  t.AddRow({a, b});
  Valuation initial = Valuation::For(t);
  initial.Set(0, a, 1);  // pin A-variable to value 1
  HomomorphismSearch search(t, inst_);
  search.SetInitial(initial);
  int count = 0;
  search.ForEach([&](const Valuation& v) {
    EXPECT_EQ(v.Get(0, a), 1);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2);  // tuples (1,0) and (1,1)
}

TEST_F(HomTest, UnsatisfiablePinExhausts) {
  Tableau t(schema_);
  int a = t.NewVariable(0);
  int b = t.NewVariable(1);
  t.AddRow({a, b});
  t.AddRow({a, b});  // same row twice is fine
  Valuation initial = Valuation::For(t);
  initial.Set(0, a, 0);
  initial.Set(1, b, 1);  // (0,1) is not a tuple
  HomomorphismSearch search(t, inst_);
  search.SetInitial(initial);
  EXPECT_EQ(search.FindAny(nullptr), HomSearchStatus::kExhausted);
}

TEST_F(HomTest, FindAnyStopsEarly) {
  Tableau t(schema_);
  t.AddRow({t.NewVariable(0), t.NewVariable(1)});
  Valuation found = Valuation::For(t);
  HomomorphismSearch search(t, inst_);
  EXPECT_EQ(search.FindAny(&found), HomSearchStatus::kFound);
  // The returned valuation maps the row onto an actual tuple.
  Tuple image{found.Get(0, t.row(0)[0]), found.Get(1, t.row(0)[1])};
  EXPECT_TRUE(inst_.Contains(image));
}

TEST_F(HomTest, BudgetIsReported) {
  Tableau t(schema_);
  for (int i = 0; i < 4; ++i) {
    t.AddRow({t.NewVariable(0), t.NewVariable(1)});
  }
  HomSearchOptions options;
  options.max_nodes = 2;
  HomomorphismSearch search(t, inst_);
  int count = 0;
  HomomorphismSearch budgeted(t, inst_, options);
  EXPECT_EQ(budgeted.ForEach([&](const Valuation&) {
    ++count;
    return true;
  }),
            HomSearchStatus::kBudget);
}

TEST_F(HomTest, AblationKnobsAgreeOnCounts) {
  // The index and dynamic-order options are performance knobs; they must
  // not change the set of homomorphisms found.
  Tableau t(schema_);
  int a = t.NewVariable(0);
  int b = t.NewVariable(1);
  int b2 = t.NewVariable(1);
  t.AddRow({a, b});
  t.AddRow({a, b2});
  auto count_with = [&](bool use_index, bool use_order) {
    HomSearchOptions options;
    options.use_index = use_index;
    options.use_dynamic_order = use_order;
    HomomorphismSearch search(t, inst_, options);
    int count = 0;
    search.ForEach([&](const Valuation&) {
      ++count;
      return true;
    });
    return count;
  };
  int baseline = count_with(true, true);
  EXPECT_EQ(baseline, count_with(false, true));
  EXPECT_EQ(baseline, count_with(true, false));
  EXPECT_EQ(baseline, count_with(false, false));
}

TEST(Intersection, NodeForNodeIdenticalToSingleListScan) {
  // The multi-list intersection must be invisible in everything but the
  // candidate-filtering counter: same matches, in the same order, exploring
  // exactly the same search-tree nodes — while trying no MORE candidates
  // than the single-list scan (and strictly fewer once rows have several
  // selective bound positions). Random instances, a chain query whose rows
  // bind 2-3 positions once matching is under way, both layouts.
  for (TupleLayout layout : {TupleLayout::kRowMajor, TupleLayout::kColumnar}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      Rng rng(seed * 1299721);
      SchemaPtr schema = MakeSchema({"A", "B", "C"});
      Instance inst(schema, layout);
      const int domain = 6;
      for (int attr = 0; attr < 3; ++attr) {
        for (int v = 0; v < domain; ++v) inst.AddValue(attr);
      }
      for (int i = 0; i < 400; ++i) {
        inst.AddTuple({static_cast<int>(rng.Below(domain)),
                       static_cast<int>(rng.Below(domain)),
                       static_cast<int>(rng.Below(domain))});
      }
      ASSERT_EQ(inst.CheckInvariants(), "");

      Tableau query(schema);
      int a1 = query.NewVariable(0), a2 = query.NewVariable(0);
      int b_shared = query.NewVariable(1);
      int c1 = query.NewVariable(2), c_shared = query.NewVariable(2);
      query.AddRow({a1, b_shared, c1});
      query.AddRow({a2, b_shared, c_shared});
      query.AddRow({a1, b_shared, c_shared});

      auto run = [&](bool intersect) {
        HomSearchOptions options;
        options.use_intersection = intersect;
        HomomorphismSearch search(query, inst, options);
        std::vector<std::vector<std::vector<int>>> matches;
        search.ForEach([&](const Valuation& v) {
          matches.push_back(v.values);
          return true;
        });
        return std::make_tuple(matches, search.stats().nodes,
                               search.stats().candidates);
      };
      auto [on_matches, on_nodes, on_candidates] = run(true);
      auto [off_matches, off_nodes, off_candidates] = run(false);
      EXPECT_EQ(on_matches, off_matches) << "seed " << seed;
      EXPECT_EQ(on_nodes, off_nodes) << "seed " << seed;
      EXPECT_LE(on_candidates, off_candidates) << "seed " << seed;
    }
  }
}

TEST(SimdBlockFilter, ByteIdenticalToScalarOverRandomInstances) {
  // use_simd swaps the candidate-evaluation implementation — block masks
  // and the vectorized intersection for per-tuple TryBindRow checks and
  // the galloping merge. Unlike use_intersection it must leave EVERY
  // counter equal, candidates included, on both layouts, with and without
  // the index/intersection, over matching- and rejection-heavy workloads.
  for (TupleLayout layout : {TupleLayout::kRowMajor, TupleLayout::kColumnar}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      Rng rng(seed * 50923);
      SchemaPtr schema = MakeSchema({"A", "B", "C"});
      Instance inst(schema, layout);
      const int domain = 5;
      for (int attr = 0; attr < 3; ++attr) {
        for (int v = 0; v < domain; ++v) inst.AddValue(attr);
      }
      for (int i = 0; i < 500; ++i) {
        inst.AddTuple({static_cast<int>(rng.Below(domain)),
                       static_cast<int>(rng.Below(domain)),
                       static_cast<int>(rng.Below(domain))});
      }
      Tableau query(schema);
      int a1 = query.NewVariable(0), a2 = query.NewVariable(0);
      int b_shared = query.NewVariable(1);
      int c1 = query.NewVariable(2), c_shared = query.NewVariable(2);
      query.AddRow({a1, b_shared, c1});
      query.AddRow({a2, b_shared, c_shared});
      query.AddRow({a1, b_shared, c_shared});

      for (bool use_index : {true, false}) {
        for (bool use_intersection : {true, false}) {
          auto run = [&](bool simd) {
            HomSearchOptions options;
            options.use_index = use_index;
            options.use_intersection = use_intersection;
            options.use_simd = simd;
            HomomorphismSearch search(query, inst, options);
            std::vector<std::vector<std::vector<int>>> matches;
            search.ForEach([&](const Valuation& v) {
              matches.push_back(v.values);
              return true;
            });
            return std::make_tuple(matches, search.stats());
          };
          auto [on_matches, on_stats] = run(true);
          auto [off_matches, off_stats] = run(false);
          const std::string tag = "seed " + std::to_string(seed) +
                                  " index " + std::to_string(use_index) +
                                  " isect " + std::to_string(use_intersection);
          EXPECT_EQ(on_matches, off_matches) << tag;
          EXPECT_EQ(on_stats.nodes, off_stats.nodes) << tag;
          EXPECT_EQ(on_stats.candidates, off_stats.candidates) << tag;
          EXPECT_EQ(on_stats.intersections, off_stats.intersections) << tag;
          EXPECT_EQ(on_stats.intersect_skips, off_stats.intersect_skips)
              << tag;
        }
      }
    }
  }
}

TEST(SimdBlockFilter, EarlyStopCountsCandidatesExactly) {
  // The subtle parity case: a visitor stopping mid-block. The scalar loop
  // never reaches the ids after the stopping candidate, so the block path
  // must not pre-charge them to the `candidates` counter.
  Rng rng(99);
  SchemaPtr schema = MakeSchema({"A", "B"});
  Instance inst(schema);
  const int domain = 4;
  for (int attr = 0; attr < 2; ++attr) {
    for (int v = 0; v < domain; ++v) inst.AddValue(attr);
  }
  for (int i = 0; i < 300; ++i) {
    inst.AddTuple({static_cast<int>(rng.Below(domain)),
                   static_cast<int>(rng.Below(domain))});
  }
  Tableau query(schema);
  int a = query.NewVariable(0);
  query.AddRow({a, query.NewVariable(1)});
  query.AddRow({a, query.NewVariable(1)});
  for (int stop_after : {1, 2, 5, 17}) {
    auto run = [&](bool simd) {
      HomSearchOptions options;
      options.use_simd = simd;
      HomomorphismSearch search(query, inst, options);
      int remaining = stop_after;
      search.ForEach([&](const Valuation&) { return --remaining > 0; });
      return std::make_pair(search.stats().nodes, search.stats().candidates);
    };
    EXPECT_EQ(run(true), run(false)) << "stop_after=" << stop_after;
  }
}

TEST(MinIntersectSize, ThresholdMovesAccountingNeverMatches) {
  // The promoted knob: any threshold finds the same matches over the same
  // nodes; only the deterministic intersections/intersect_skips split (and
  // with it candidate filtering work) moves. Threshold 0 forces the merge
  // for every multi-list choice, a huge threshold forces the skip.
  Rng rng(31337);
  SchemaPtr schema = MakeSchema({"A", "B", "C"});
  Instance inst(schema);
  const int domain = 6;
  for (int attr = 0; attr < 3; ++attr) {
    for (int v = 0; v < domain; ++v) inst.AddValue(attr);
  }
  for (int i = 0; i < 400; ++i) {
    inst.AddTuple({static_cast<int>(rng.Below(domain)),
                   static_cast<int>(rng.Below(domain)),
                   static_cast<int>(rng.Below(domain))});
  }
  Tableau query(schema);
  int a1 = query.NewVariable(0);
  int b_shared = query.NewVariable(1);
  int c_shared = query.NewVariable(2);
  query.AddRow({a1, b_shared, query.NewVariable(2)});
  query.AddRow({query.NewVariable(0), b_shared, c_shared});
  query.AddRow({a1, b_shared, c_shared});

  auto run = [&](std::size_t threshold) {
    HomSearchOptions options;
    options.min_intersect_size = threshold;
    HomomorphismSearch search(query, inst, options);
    std::vector<std::vector<std::vector<int>>> matches;
    search.ForEach([&](const Valuation& v) {
      matches.push_back(v.values);
      return true;
    });
    return std::make_tuple(matches, search.stats());
  };
  auto [default_matches, default_stats] = run(8);
  ASSERT_FALSE(default_matches.empty());
  for (std::size_t threshold : {std::size_t{0}, std::size_t{2},
                                std::size_t{1000000}}) {
    auto [matches, stats] = run(threshold);
    EXPECT_EQ(matches, default_matches) << threshold;
    EXPECT_EQ(stats.nodes, default_stats.nodes) << threshold;
    // Every multi-list choice lands in exactly one bucket, whatever the
    // threshold — the total is the workload's, not the knob's.
    EXPECT_EQ(stats.intersections + stats.intersect_skips,
              default_stats.intersections + default_stats.intersect_skips)
        << threshold;
  }
  auto [all_merge_matches, all_merge] = run(0);
  auto [all_skip_matches, all_skip] = run(1000000);
  EXPECT_GT(all_merge.intersections, 0u);
  EXPECT_EQ(all_merge.intersect_skips, 0u);
  EXPECT_EQ(all_skip.intersections, 0u);
  EXPECT_GT(all_skip.intersect_skips, 0u);
  // Merging everywhere can only tighten candidate filtering.
  EXPECT_LE(all_merge.candidates, all_skip.candidates);
}

TEST(MapsInto, TableauContainment) {
  SchemaPtr schema = MakeSchema({"A", "B"});
  // t1: R(a, b)  — maps into anything with a row.
  Tableau t1(schema);
  t1.AddRow({t1.NewVariable(0), t1.NewVariable(1)});
  // t2: R(a, b) & R(a, b') — two rows sharing A.
  Tableau t2(schema);
  int a = t2.NewVariable(0);
  t2.AddRow({a, t2.NewVariable(1)});
  t2.AddRow({a, t2.NewVariable(1)});
  EXPECT_EQ(MapsInto(t1, t2), HomSearchStatus::kFound);
  EXPECT_EQ(MapsInto(t2, t1), HomSearchStatus::kFound);  // collapse both rows
  // t3: two rows with DIFFERENT A-variables that must stay different? They
  // need not: homomorphisms may merge variables, so t3 -> t1 also succeeds.
  Tableau t3(schema);
  t3.AddRow({t3.NewVariable(0), t3.NewVariable(1)});
  t3.AddRow({t3.NewVariable(0), t3.NewVariable(1)});
  EXPECT_EQ(MapsInto(t3, t1), HomSearchStatus::kFound);
}

TEST(MapsInto, RespectsTyping) {
  // A tableau whose B-variable pattern cannot be realized: R(a,b) & R(a,b')
  // with b != b' CAN map by merging b and b' — homomorphisms are free to
  // merge. What cannot happen is mapping across attributes; the type system
  // makes that unrepresentable, which this test documents.
  SchemaPtr schema = MakeSchema({"A", "B"});
  Tableau from(schema);
  int a = from.NewVariable(0);
  from.AddRow({a, from.NewVariable(1)});
  Tableau to(schema);
  to.AddRow({to.NewVariable(0), to.NewVariable(1)});
  EXPECT_EQ(MapsInto(from, to), HomSearchStatus::kFound);
}

TEST(HomSearchNodes, NodesAreCounted) {
  SchemaPtr schema = MakeSchema({"A"});
  Instance inst(schema);
  inst.AddValue(0);
  inst.AddTuple({0});
  Tableau t(schema);
  t.AddRow({t.NewVariable(0)});
  HomomorphismSearch search(t, inst);
  search.FindAny(nullptr);
  EXPECT_GT(search.nodes_explored(), 0u);
}

}  // namespace
}  // namespace tdlib
